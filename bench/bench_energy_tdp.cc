/**
 * @file
 * Ablation 7: the energy/TDP extension. The paper motivates mobile
 * SoCs with a "tight 3 Watt thermal design point" and accelerators
 * an order of magnitude more efficient than the AP; this bench
 * quantifies both: attainable performance under a TDP sweep, and
 * the energy story of offloading (why the IPU does HDR+ at
 * one-tenth the power).
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.h"
#include "core/energy.h"
#include "soc/catalog.h"
#include "util/table.h"

namespace {

using namespace gables;

/** Mobile-flavoured coefficients for the three-IP Snapdragon. */
EnergyModel
sd835Energy()
{
    // AP ~100 pJ/op; GPU ~20 pJ/op; DSP ~8 pJ/op (the paper's
    // "order of magnitude more efficient"); LPDDR4 ~25 pJ/byte.
    return EnergyModel({100e-12, 20e-12, 8e-12}, 25e-12, 0.4);
}

void
reproduce()
{
    SocSpec soc = SocCatalog::snapdragon835();
    EnergyModel energy = sd835Energy();

    bench::banner("Ablation 7a",
                  "attainable performance under a TDP sweep");
    // A GPU-resident vision workload: its hardware rooflines allow
    // ~350 Gops/s, far beyond what a phone's thermals can feed.
    Usecase vision("vision", {IpWork{0.02, 8.0}, IpWork{0.98, 32.0},
                              IpWork{0.0, 1.0}});
    TextTable t({"TDP (W)", "roofline Gops/s", "TDP-bound Gops/s",
                 "constrained", "thermally limited?"});
    for (double tdp : {1.0, 2.0, 3.0, 5.0, 8.0, 15.0}) {
        EnergyResult r = energy.evaluate(soc, vision, tdp);
        t.addRow({formatDouble(tdp, 1),
                  formatDouble(r.attainable / 1e9, 1),
                  formatDouble(r.tdpBound / 1e9, 1),
                  formatDouble(r.constrained / 1e9, 1),
                  r.thermallyLimited ? "yes" : "no"});
    }
    std::cout << t.render()
              << "at the paper's 3 W phone budget the chip is "
                 "thermally limited well below its rooflines\n";

    bench::banner("Ablation 7b",
                  "offload as an energy play (3 W budget)");
    TextTable t2({"work split", "energy/op (pJ)", "perf @ 3 W",
                  "power (W)"});
    struct Case {
        const char *name;
        Usecase u;
    };
    std::vector<Case> cases = {
        {"all on AP", Usecase("a", {IpWork{1.0, 16.0},
                                    IpWork{0.0, 1.0},
                                    IpWork{0.0, 1.0}})},
        {"80% GPU", Usecase("b", {IpWork{0.2, 16.0},
                                  IpWork{0.8, 16.0},
                                  IpWork{0.0, 1.0}})},
        {"80% GPU + 10% DSP", Usecase("c", {IpWork{0.1, 16.0},
                                            IpWork{0.8, 16.0},
                                            IpWork{0.1, 16.0}})},
    };
    for (const Case &c : cases) {
        EnergyResult r = energy.evaluate(soc, c.u, 3.0);
        t2.addRow({c.name,
                   formatDouble(energy.usecaseEnergyPerOp(c.u) * 1e12,
                                1),
                   formatDouble(r.constrained / 1e9, 2) + " Gops/s",
                   formatDouble(r.power, 2)});
    }
    std::cout << t2.render()
              << "moving work to efficient IPs multiplies the "
                 "performance available inside the same 3 W\n";
}

void
BM_EnergyEvaluate(benchmark::State &state)
{
    SocSpec soc = SocCatalog::snapdragon835();
    EnergyModel energy = sd835Energy();
    Usecase u("u", {IpWork{0.1, 8.0}, IpWork{0.8, 16.0},
                    IpWork{0.1, 4.0}});
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            energy.evaluate(soc, u, 3.0).constrained);
    }
}
BENCHMARK(BM_EnergyEvaluate);

} // namespace

int
main(int argc, char **argv)
{
    reproduce();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
