/**
 * @file
 * Hot-path throughput harness for the discrete-event core. Measures
 * the workloads that dominate sweep/ERT wall-clock:
 *
 *  - event_dense_2ip: two contending IPs with small requests — the
 *    event-machinery stress test (no batching is legal here, so this
 *    isolates queue + dispatch cost per event).
 *  - sweep_shape: many single-IP runs across an intensity grid, the
 *    shape `gables sweep` issues per grid point.
 *  - ert_shape: single-IP working-set sweep runs, the shape the ERT
 *    harness issues per sample.
 *
 * With --json PATH the measured rates are written as
 * BENCH_sim_hotpath.json for the perf-regression trajectory; CI
 * compares them against the committed baseline with a generous
 * tolerance. Run with --reps N to scale measurement time.
 */

#include <chrono>
#include <cstdint>
#include <sstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "sim/soc.h"
#include "soc/catalog.h"
#include "util/atomic_file.h"
#include "util/json_writer.h"
#include "util/parse.h"

namespace {

using namespace gables;
using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** Two identical IPs contending for one DRAM; tiny requests so the
 * run is dense in events (every chunk is two event dispatches). */
std::unique_ptr<sim::SimSoc>
makeContendedSoc()
{
    auto soc = std::make_unique<sim::SimSoc>("hotpath-2ip");
    soc->setDram(30e9, 100e-9);
    sim::BandwidthResource *fabric = soc->addFabric("f", 120e9, 20e-9);
    for (const char *name : {"A", "B"}) {
        sim::IpEngineConfig cfg;
        cfg.name = name;
        cfg.opsPerSec = 100e9;
        cfg.requestBytes = 256.0;
        cfg.maxOutstanding = 16;
        sim::SimSoc::EngineAttachment at;
        at.linkBandwidth = 25e9;
        at.fabric = fabric;
        soc->addEngine(cfg, at);
    }
    return soc;
}

sim::KernelJob
streamJob(double total_bytes, double intensity)
{
    sim::KernelJob job;
    job.workingSetBytes = total_bytes;
    job.totalBytes = total_bytes;
    job.opsPerByte = intensity;
    return job;
}

struct Measurement {
    double eventsPerSec = 0.0;
    double nsPerEvent = 0.0;
    double runsPerSec = 0.0;
    uint64_t events = 0;
    double seconds = 0.0; // wall time of the best (fastest) rep
};

/**
 * Each rep is timed on its own and the fastest rep is reported: the
 * minimum is the measurement least disturbed by scheduler and
 * frequency noise, which keeps the committed baseline stable for the
 * CI regression gate. `events` and the rates describe that best rep.
 */
class BestOf
{
  public:
    void sample(double seconds, uint64_t events, uint64_t runs)
    {
        double rate = static_cast<double>(events) / seconds;
        if (rate <= best_.eventsPerSec)
            return;
        best_.eventsPerSec = rate;
        best_.nsPerEvent =
            1e9 * seconds / static_cast<double>(events);
        best_.runsPerSec = static_cast<double>(runs) / seconds;
        best_.events = events;
        best_.seconds = seconds;
    }

    const Measurement &result() const { return best_; }

  private:
    Measurement best_;
};

/** The event-dense contended workload: events/sec is the headline. */
Measurement
measureEventDense(int reps)
{
    auto soc = makeContendedSoc();
    sim::KernelJob job = streamJob(4e6, 0.01);
    double checksum = 0.0;
    BestOf best;
    for (int r = 0; r < reps; ++r) {
        Clock::time_point t0 = Clock::now();
        sim::SocRunStats stats =
            soc->run({{"A", job}, {"B", job}});
        double seconds = secondsSince(t0);
        best.sample(seconds, soc->eventQueue().eventsExecuted(), 1);
        checksum += stats.duration;
    }
    if (!(checksum > 0.0))
        std::cerr << "warning: implausible zero checksum\n";
    return best.result();
}

/** Single-IP intensity grid, one run per point (sweep shape). */
Measurement
measureSweepShape(int reps)
{
    auto soc = SocCatalog::simpleSim(10e9, 20e9, 40e9);
    std::vector<double> intensities;
    for (int i = 0; i < 32; ++i)
        intensities.push_back(0.05 * (1 + i));
    BestOf best;
    for (int r = 0; r < reps; ++r) {
        uint64_t events = 0;
        Clock::time_point t0 = Clock::now();
        for (double i : intensities) {
            soc->run({{"IP0", streamJob(16e6, i)}});
            events += soc->eventQueue().eventsExecuted();
        }
        double seconds = secondsSince(t0);
        best.sample(seconds, events, intensities.size());
    }
    return best.result();
}

/** Single-IP working-set ladder on the 835 sim (ERT shape). */
Measurement
measureErtShape(int reps)
{
    auto soc = SocCatalog::snapdragon835Sim();
    std::vector<double> sets;
    for (double s = 64e3; s <= 64e6; s *= 4.0)
        sets.push_back(s);
    BestOf best;
    for (int r = 0; r < reps; ++r) {
        uint64_t events = 0;
        Clock::time_point t0 = Clock::now();
        for (double s : sets) {
            sim::KernelJob job = streamJob(16e6, 2.0);
            job.workingSetBytes = s;
            soc->run({{"CPU", job}});
            events += soc->eventQueue().eventsExecuted();
        }
        double seconds = secondsSince(t0);
        best.sample(seconds, events, sets.size());
    }
    return best.result();
}

void
writeMeasurement(JsonWriter &json, const std::string &name,
                 const Measurement &m)
{
    json.key(name);
    json.beginObject();
    json.kv("events_per_sec", m.eventsPerSec);
    json.kv("ns_per_event", m.nsPerEvent);
    json.kv("runs_per_sec", m.runsPerSec);
    json.kv("events", static_cast<size_t>(m.events));
    json.kv("seconds", m.seconds);
    json.endObject();
}

void
printMeasurement(const std::string &name, const Measurement &m)
{
    std::cout << "  " << name << ": "
              << formatDouble(m.eventsPerSec / 1e6, 2)
              << " M events/s, "
              << formatDouble(m.nsPerEvent, 1) << " ns/event, "
              << formatDouble(m.runsPerSec, 1) << " runs/s\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path;
    int reps = 20;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else if (arg == "--reps" && i + 1 < argc) {
            reps = static_cast<int>(
                parseIntInRange(argv[++i], 1, 1000000, "--reps"));
        } else {
            std::cerr << "usage: bench_event_hotpath [--json PATH] "
                         "[--reps N]\n";
            return 2;
        }
    }
    if (reps < 1)
        reps = 1;

    bench::banner("Simulation hot path",
                  "event throughput on sweep/ERT-shaped workloads");

    // Warm up allocators and the event pool so steady-state rates are
    // measured, not first-touch costs.
    measureEventDense(1);

    Measurement dense = measureEventDense(reps);
    Measurement sweep = measureSweepShape(std::max(1, reps / 4));
    Measurement ert = measureErtShape(std::max(1, reps / 4));

    printMeasurement("event_dense_2ip", dense);
    printMeasurement("sweep_shape", sweep);
    printMeasurement("ert_shape", ert);

    if (!json_path.empty()) {
        std::ostringstream out;
        JsonWriter json(out);
        json.beginObject();
        json.key("schema");
        json.beginObject();
        json.kv("name", "gables-sim-hotpath-bench");
        json.kv("version", 1);
        json.endObject();
        json.kv("reps", reps);
        json.key("workloads");
        json.beginObject();
        writeMeasurement(json, "event_dense_2ip", dense);
        writeMeasurement(json, "sweep_shape", sweep);
        writeMeasurement(json, "ert_shape", ert);
        json.endObject();
        json.endObject();
        writeFileAtomic(json_path, out.str());
        std::cout << "wrote " << json_path << "\n";
    }
    return 0;
}
