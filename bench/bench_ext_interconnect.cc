/**
 * @file
 * Ablation 2 (paper Section V-B): interconnect topology. Compares a
 * single wide fabric against the Figure 3 hierarchy where the DSP
 * sits on a slow system fabric — explaining its measured 5.4 GB/s —
 * and shows when a shared bus becomes the usecase bottleneck.
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.h"
#include "core/interconnect.h"
#include "soc/catalog.h"
#include "util/table.h"

namespace {

using namespace gables;

void
reproduce()
{
    bench::banner("Ablation 2 (V-B)",
                  "interconnect topologies on a CPU+GPU+DSP usecase");
    SocSpec soc = SocCatalog::snapdragon835();
    // A usecase that loads all three IPs with streaming work.
    Usecase u("stream", {IpWork{0.2, 1.0}, IpWork{0.6, 2.0},
                         IpWork{0.2, 0.5}});

    double base = GablesModel::evaluate(soc, u).attainable;

    // Topology A: one wide fabric (effectively the base model).
    InterconnectModel wide({BusSpec{"wide fabric", 128e9}},
                           {{true}, {true}, {true}});
    // Topology B: Figure 3 hierarchy (DSP on the 12.5 GB/s system
    // fabric).
    InterconnectModel hier = InterconnectModel::hierarchy(
        {"hb fabric", "system fabric"}, {128e9, 12.5e9}, {0, 0, 1},
        0.0);
    // Topology C: everything crammed onto one narrow bus.
    InterconnectModel narrow({BusSpec{"narrow bus", 5e9}},
                             {{true}, {true}, {true}});

    TextTable t({"topology", "Pattainable Gops/s", "bus bottleneck"});
    auto row = [&](const char *name, const InterconnectModel &model) {
        InterconnectResult r = model.evaluate(soc, u);
        t.addRow({name,
                  formatDouble(r.base.attainable / 1e9, 3),
                  r.bottleneckBus < 0
                      ? "-"
                      : model.buses()[static_cast<size_t>(
                                          r.bottleneckBus)]
                            .name});
    };
    t.addRow({"base model (no buses)", formatDouble(base / 1e9, 3),
              "-"});
    row("one wide fabric", wide);
    row("Figure 3 hierarchy", hier);
    row("one narrow 5 GB/s bus", narrow);
    std::cout << t.render();
    std::cout << "a sufficiently wide interconnect reduces to the "
                 "base model; a shared narrow bus becomes the "
                 "bottleneck (Eq. 17)\n";
}

void
BM_InterconnectEvaluate(benchmark::State &state)
{
    SocSpec soc = SocCatalog::snapdragon835();
    Usecase u("stream", {IpWork{0.2, 1.0}, IpWork{0.6, 2.0},
                         IpWork{0.2, 0.5}});
    InterconnectModel hier = InterconnectModel::hierarchy(
        {"hb", "sys"}, {128e9, 12.5e9}, {0, 0, 1}, 0.0);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            hier.evaluate(soc, u).base.attainable);
    }
}
BENCHMARK(BM_InterconnectEvaluate);

} // namespace

int
main(int argc, char **argv)
{
    reproduce();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
