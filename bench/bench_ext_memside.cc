/**
 * @file
 * Ablation 1 (paper Section V-A): how much does a memory-side
 * SRAM/cache buy? Sweeps the miss ratio on the Figure 6b scenario
 * (memory-bound offload) and on the HFR capture usecase, and sizes
 * the SRAM via the fractional-fit model.
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.h"
#include "core/memside.h"
#include "soc/catalog.h"
#include "util/table.h"
#include "util/units.h"

namespace {

using namespace gables;

void
reproduce()
{
    bench::banner("Ablation 1 (V-A)",
                  "memory-side memory vs miss ratio, Figure 6b case");
    SocSpec soc = SocCatalog::paperTwoIp();
    Usecase u = Usecase::twoIp("6b", 0.75, 8.0, 0.1);

    TextTable t({"miss ratio m", "Pattainable Gops/s", "bottleneck"});
    for (double m : {1.0, 0.75, 0.5, 0.25, 0.1, 0.0}) {
        GablesResult r = MemSideMemory::uniform(2, m).evaluate(soc, u);
        t.addRow({formatDouble(m, 2),
                  formatDouble(r.attainable / 1e9, 3),
                  r.bottleneckLabel(soc)});
    }
    std::cout << t.render();
    std::cout << "with enough reuse the bound shifts from the memory "
                 "interface to IP[1]'s link (2 Gops/s cap)\n";

    bench::banner("Ablation 1b",
                  "SRAM sizing via fractional fit (HFR TNR refs)");
    // A ten-IP usecase that spreads streaming work evenly: no single
    // link binds, so the summed demand makes the memory interface
    // the bottleneck — exactly where a memory-side SRAM helps. The
    // working set is the HFR case's five TNR reference frames.
    double working_set = 5.0 * 12.4e6;
    TextTable t2({"SRAM MiB", "miss ratio", "Pattainable Gops/s",
                  "bottleneck"});
    SocSpec full = SocCatalog::snapdragon835Full();
    Usecase spread("spread", [] {
        // Even streaming work over nine IPs (the wimpy scalar DSP
        // sits out so its compute roof does not mask the effect).
        std::vector<IpWork> w(kNumFullSocIps, IpWork{1.0 / 9.0, 1.0});
        w[kIpDsp] = IpWork{0.0, 1.0};
        return w;
    }());
    for (double mib : {0.0, 8.0, 16.0, 24.0, 32.0, 48.0, 64.0}) {
        double miss = fractionalFitMissRatio(working_set,
                                             mib * kMiB);
        GablesResult r =
            MemSideMemory::uniform(kNumFullSocIps, miss)
                .evaluate(full, spread);
        t2.addRow({formatDouble(mib, 0), formatDouble(miss, 3),
                   formatDouble(r.attainable / 1e9, 2),
                   r.bottleneckLabel(full)});
    }
    std::cout << t2.render();
    std::cout << "once enough of the reference set fits, the bound "
                 "crosses from the memory interface to an IP link: "
                 "more SRAM stops paying (the paper's conjecture 4 "
                 "pitfall)\n";
}

void
BM_MemSideEvaluate(benchmark::State &state)
{
    SocSpec soc = SocCatalog::paperTwoIp();
    Usecase u = Usecase::twoIp("6b", 0.75, 8.0, 0.1);
    MemSideMemory ext = MemSideMemory::uniform(2, 0.5);
    for (auto _ : state) {
        benchmark::DoNotOptimize(ext.evaluate(soc, u).attainable);
    }
}
BENCHMARK(BM_MemSideEvaluate);

} // namespace

int
main(int argc, char **argv)
{
    reproduce();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
