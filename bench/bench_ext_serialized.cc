/**
 * @file
 * Ablation 3 (paper Sections V-C and VI): concurrent vs serialized
 * work, and the MultiAmdahl comparison. Quantifies how much the
 * concurrency assumption (justified by Table I) is worth, and shows
 * what MultiAmdahl — which ignores bandwidth — misses on
 * bandwidth-starved usecases.
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.h"
#include "core/multiamdahl.h"
#include "core/phased.h"
#include "core/serialized.h"
#include "soc/catalog.h"
#include "util/table.h"

namespace {

using namespace gables;

void
reproduce()
{
    bench::banner("Ablation 3 (V-C)",
                  "concurrent vs serialized execution");
    SocSpec soc = SocCatalog::snapdragon835();

    TextTable t({"usecase", "concurrent Gops/s", "serialized Gops/s",
                 "concurrency speedup"});
    struct Case {
        const char *name;
        Usecase u;
    };
    std::vector<Case> cases = {
        {"balanced high-I",
         Usecase("a", {IpWork{0.2, 16.0}, IpWork{0.7, 16.0},
                       IpWork{0.1, 16.0}})},
        {"GPU-heavy streaming",
         Usecase("b", {IpWork{0.1, 1.0}, IpWork{0.85, 2.0},
                       IpWork{0.05, 0.5}})},
        {"CPU-dominant",
         Usecase("c", {IpWork{0.8, 8.0}, IpWork{0.15, 8.0},
                       IpWork{0.05, 8.0}})},
    };
    for (const Case &c : cases) {
        double con = GablesModel::evaluate(soc, c.u).attainable;
        double ser = SerializedModel::evaluate(soc, c.u).attainable;
        t.addRow({c.name, formatDouble(con / 1e9, 2),
                  formatDouble(ser / 1e9, 2),
                  formatDouble(con / ser, 2) + "x"});
    }
    std::cout << t.render();

    bench::banner("Ablation 3b",
                  "phased pipelines (capture phase + merge phase)");
    Usecase capture("capture", {IpWork{0.1, 4.0}, IpWork{0.8, 8.0},
                                IpWork{0.1, 2.0}});
    Usecase merge("merge", {IpWork{1.0, 16.0}, IpWork{0.0, 1.0},
                            IpWork{0.0, 1.0}});
    PhasedUsecase hdr(
        "hdr-like",
        {Phase{"capture", 0.7, PhaseMode::Concurrent, capture},
         Phase{"merge", 0.3, PhaseMode::Exclusive, merge}});
    PhasedResult pr = hdr.evaluate(soc);
    TextTable t2({"phase", "share", "phase Gops/s", "time share"});
    for (size_t i = 0; i < hdr.phases().size(); ++i) {
        t2.addRow({hdr.phases()[i].name,
                   formatDouble(hdr.phases()[i].workShare, 2),
                   formatDouble(pr.phasePerf[i] / 1e9, 2),
                   formatDouble(pr.timeShare[i], 3)});
    }
    std::cout << t2.render()
              << "overall: " << formatDouble(pr.attainable / 1e9, 2)
              << " Gops/s, dominant phase: "
              << hdr.phases()[static_cast<size_t>(pr.dominantPhase)]
                     .name
              << '\n';

    bench::banner("Ablation 3c (VI)",
                  "MultiAmdahl vs Gables on a bandwidth-starved case");
    // MultiAmdahl optimizes areas ignoring bandwidth; Gables shows
    // the same usecase is memory-bound, so extra area is wasted.
    Usecase starved("starved", {IpWork{0.25, 8.0}, IpWork{0.75, 0.1},
                                IpWork{0.0, 1.0}});
    MultiAmdahlModel ma = multiAmdahlFromGables(soc, starved, 100.0);
    MultiAmdahlResult mar = ma.optimize();
    GablesResult gr = GablesModel::evaluate(soc, starved);
    std::cout << "MultiAmdahl optimal areas: CPU="
              << formatDouble(mar.areas[0], 1)
              << " GPU=" << formatDouble(mar.areas[1], 1)
              << " (it would spend area on the GPU)\n"
              << "Gables verdict: bottleneck is "
              << gr.bottleneckLabel(soc) << " at "
              << formatDouble(gr.attainable / 1e9, 2)
              << " Gops/s -- area cannot fix a bandwidth bound;\n"
              << "this is the paper's key argument for modeling Bi "
                 "and Bpeak (Section VI)\n";
}

void
BM_SerializedEvaluate(benchmark::State &state)
{
    SocSpec soc = SocCatalog::snapdragon835();
    Usecase u("b", {IpWork{0.1, 1.0}, IpWork{0.85, 2.0},
                    IpWork{0.05, 0.5}});
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            SerializedModel::evaluate(soc, u).attainable);
    }
}
BENCHMARK(BM_SerializedEvaluate);

void
BM_MultiAmdahlOptimize(benchmark::State &state)
{
    SocSpec soc = SocCatalog::snapdragon835();
    Usecase u("u", {IpWork{0.25, 8.0}, IpWork{0.7, 4.0},
                    IpWork{0.05, 1.0}});
    MultiAmdahlModel ma = multiAmdahlFromGables(soc, u, 100.0);
    for (auto _ : state) {
        benchmark::DoNotOptimize(ma.optimize().performance);
    }
}
BENCHMARK(BM_MultiAmdahlOptimize);

} // namespace

int
main(int argc, char **argv)
{
    reproduce();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
