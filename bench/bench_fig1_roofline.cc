/**
 * @file
 * Regenerates Figure 1: the classic Roofline plot (Williams et al.)
 * that Gables builds on — a multicore chip with compute and
 * bandwidth ceilings — and demonstrates ridge-point reasoning.
 */

#include <benchmark/benchmark.h>

#include <fstream>
#include <iostream>

#include "bench_util.h"
#include "core/roofline.h"
#include "plot/roofline_plot.h"
#include "util/table.h"

namespace {

using namespace gables;

void
reproduce()
{
    bench::banner("Figure 1", "classic Roofline model with ceilings");

    // A generic multicore in the spirit of the original paper.
    Roofline chip(64e9, 16e9, "multicore");
    chip.addComputeCeiling("without SIMD", 16e9);
    chip.addComputeCeiling("without ILP", 32e9);
    chip.addBandwidthCeiling("without prefetch", 8e9);

    TextTable t({"I (ops/B)", "roof Gops/s", "w/ ceilings Gops/s",
                 "region"});
    for (double i : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 64.0}) {
        t.addRow({formatDouble(i, 3),
                  formatDouble(chip.attainable(i) / 1e9, 2),
                  formatDouble(chip.attainableWithCeilings(i) / 1e9,
                               2),
                  chip.computeBound(i) ? "compute" : "bandwidth"});
    }
    std::cout << t.render();
    std::cout << "ridge point: " << chip.ridgePoint() << " ops/B\n";

    RooflinePlot plot("Figure 1: Roofline model", 0.1, 128.0);
    plot.addRoofline(chip);
    std::ofstream out("fig1_roofline.svg");
    out << plot.renderSvg();
    std::cout << "wrote fig1_roofline.svg\n"
              << plot.renderAscii();
}

void
BM_RooflineAttainable(benchmark::State &state)
{
    Roofline chip(64e9, 16e9);
    double i = 0.1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(chip.attainable(i));
        i = i < 100.0 ? i * 1.1 : 0.1;
    }
}
BENCHMARK(BM_RooflineAttainable);

} // namespace

int
main(int argc, char **argv)
{
    reproduce();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
