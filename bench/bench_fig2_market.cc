/**
 * @file
 * Regenerates Figure 2: (a) mobile SoC chipsets introduced per year
 * and (b) IP blocks per SoC generation — the motivational datasets,
 * reconstructed shape-faithfully (see DESIGN.md).
 */

#include <benchmark/benchmark.h>

#include <fstream>
#include <iostream>

#include "analysis/sweep.h"
#include "bench_util.h"
#include "plot/series_plot.h"
#include "soc/market_data.h"
#include "util/table.h"

namespace {

using namespace gables;

Series
toSeries(const std::vector<YearCount> &data, const std::string &label)
{
    Series s;
    s.label = label;
    for (const YearCount &yc : data) {
        s.x.push_back(static_cast<double>(yc.year));
        s.y.push_back(yc.count);
    }
    return s;
}

void
reproduce()
{
    bench::banner("Figure 2a", "SoC chipsets per year (GSMArena mine)");
    TextTable ta({"year", "chipsets"});
    for (const YearCount &yc : MarketData::chipsetsPerYear())
        ta.addRow({std::to_string(yc.year),
                   formatDouble(yc.count, 0)});
    std::cout << ta.render();
    std::cout << "peak year: " << MarketData::peakChipsetYear()
              << " (paper: peak ~2015 then consolidation decline)\n";

    SeriesPlot pa("Figure 2a: SoC chipsets per year", "year",
                  "chipsets");
    pa.addSeries(toSeries(MarketData::chipsetsPerYear(), "chipsets"));
    std::ofstream fa("fig2a_chipsets.svg");
    fa << pa.renderSvg();
    std::cout << "wrote fig2a_chipsets.svg\n"
              << pa.renderAscii();

    bench::banner("Figure 2b",
                  "IP blocks per SoC generation (after Shao et al.)");
    TextTable tb({"generation", "IP blocks"});
    for (const YearCount &yc : MarketData::ipBlocksPerGeneration())
        tb.addRow({std::to_string(yc.year),
                   formatDouble(yc.count, 0)});
    std::cout << tb.render();
    std::cout << "latest generation exceeds 30 IPs, as in the paper\n";

    SeriesPlot pb("Figure 2b: IP blocks per generation", "generation",
                  "IP blocks");
    pb.addSeries(
        toSeries(MarketData::ipBlocksPerGeneration(), "IP blocks"));
    std::ofstream fb("fig2b_ipblocks.svg");
    fb << pb.renderSvg();
    std::cout << "wrote fig2b_ipblocks.svg\n";
}

void
BM_SeriesRender(benchmark::State &state)
{
    SeriesPlot p("bench", "x", "y");
    p.addSeries(toSeries(MarketData::chipsetsPerYear(), "c"));
    for (auto _ : state) {
        benchmark::DoNotOptimize(p.renderSvg().size());
    }
}
BENCHMARK(BM_SeriesRender);

} // namespace

int
main(int argc, char **argv)
{
    reproduce();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
