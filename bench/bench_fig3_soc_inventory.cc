/**
 * @file
 * Regenerates Figure 3 (as a table): the block inventory of a
 * modern mobile SoC — IPs, their accelerations and link bandwidths,
 * and the fabric hierarchy of the simulated chip.
 */

#include <benchmark/benchmark.h>

#include <fstream>
#include <iostream>

#include "bench_util.h"
#include "plot/roofline_plot.h"
#include "soc/catalog.h"
#include "util/table.h"
#include "util/units.h"

namespace {

using namespace gables;

void
reproduce()
{
    bench::banner("Figure 3",
                  "SoC block inventory (Snapdragon-835-like)");
    SocSpec soc = SocCatalog::snapdragon835Full();
    TextTable t({"IP", "acceleration Ai", "peak Gops/s",
                 "link Bi GB/s"});
    for (size_t i = 0; i < soc.numIps(); ++i) {
        const IpSpec &ip = soc.ip(i);
        t.addRow({ip.name, formatDouble(ip.acceleration, 2),
                  formatDouble(soc.ipPeakPerf(i) / 1e9, 1),
                  formatDouble(ip.bandwidth / 1e9, 1)});
    }
    std::cout << t.render();
    std::cout << "Ppeak (IP[0]) = " << formatOpsRate(soc.ppeak())
              << ", Bpeak = " << formatByteRate(soc.bpeak()) << '\n';

    // All ten isolated IP rooflines on one chart (the paper's
    // Section III observation that each IP has its own roofline).
    RooflinePlot plot("All IP rooflines, Snapdragon-835-like", 0.015,
                      128.0);
    for (size_t i = 0; i < soc.numIps(); ++i)
        plot.addRoofline(soc.ipRoofline(i));
    std::ofstream svg("fig3_all_ips.svg");
    svg << plot.renderSvg(900.0, 560.0);
    std::cout << "wrote fig3_all_ips.svg\n";

    bench::banner("Figure 3 (fabrics)",
                  "interconnect hierarchy of the simulated chip");
    std::cout
        << "  DRAM controller        29.8 GB/s, 100 ns\n"
        << "  high-bandwidth fabric  128 GB/s, 20 ns  <- CPU, GPU\n"
        << "  system fabric          12.5 GB/s, 40 ns <- DSP\n"
        << "  (paper: IPs cluster into fabrics by bandwidth needs)\n";
}

void
BM_CatalogConstruction(benchmark::State &state)
{
    for (auto _ : state) {
        SocSpec soc = SocCatalog::snapdragon835Full();
        benchmark::DoNotOptimize(soc.numIps());
    }
}
BENCHMARK(BM_CatalogConstruction);

} // namespace

int
main(int argc, char **argv)
{
    reproduce();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
