/**
 * @file
 * Regenerates Figure 6a-6d (and the appendix's exact numbers): the
 * two-IP Gables walkthrough. Prints the appendix table paper-vs-
 * computed, renders the four scaled-roofline plots as SVG files,
 * then times model evaluation with google-benchmark.
 */

#include <benchmark/benchmark.h>

#include <fstream>
#include <iostream>

#include "bench_util.h"
#include "core/gables.h"
#include "plot/roofline_plot.h"
#include "soc/catalog.h"
#include "util/units.h"

namespace {

using namespace gables;

struct Scenario {
    const char *name;
    SocSpec soc;
    Usecase usecase;
    double paperGops;
};

std::vector<Scenario>
scenarios()
{
    SocSpec base = SocCatalog::paperTwoIp();
    return {
        {"Fig 6a (f=0)", base, Usecase::twoIp("6a", 0.0, 8.0, 0.1),
         40.0},
        {"Fig 6b (f=0.75)", base,
         Usecase::twoIp("6b", 0.75, 8.0, 0.1), 1.3},
        {"Fig 6c (Bpeak=30)", base.withBpeak(30e9),
         Usecase::twoIp("6c", 0.75, 8.0, 0.1), 2.0},
        {"Fig 6d (balanced)", base.withBpeak(20e9),
         Usecase::twoIp("6d", 0.75, 8.0, 8.0), 160.0},
    };
}

void
reproduce()
{
    bench::banner("Figure 6 / Appendix",
                  "two-IP Gables walkthrough, Pattainable in Gops/s");
    bench::ComparisonTable table;
    for (const Scenario &s : scenarios()) {
        GablesResult r = GablesModel::evaluate(s.soc, s.usecase);
        table.add(s.name, s.paperGops, r.attainable / 1e9, "Gops/s",
                  4);
    }
    table.print();

    std::cout << "\nper-scenario bottlenecks:\n";
    for (const Scenario &s : scenarios()) {
        GablesResult r = GablesModel::evaluate(s.soc, s.usecase);
        std::cout << "  " << s.name << ": "
                  << r.bottleneckLabel(s.soc)
                  << " (Iavg=" << r.averageIntensity << ")\n";
    }

    for (const Scenario &s : scenarios()) {
        RooflinePlot plot(std::string(s.name) + " scaled rooflines",
                          0.01, 100.0);
        plot.addGables(s.soc, s.usecase);
        std::string path = std::string("fig6_") +
                           std::string(s.name).substr(4, 2) + ".svg";
        std::ofstream out(path);
        out << plot.renderSvg();
        std::cout << "wrote " << path << '\n';
    }
}

void
BM_GablesEvaluateTwoIp(benchmark::State &state)
{
    SocSpec soc = SocCatalog::paperTwoIp();
    Usecase u = Usecase::twoIp("bench", 0.75, 8.0, 0.1);
    for (auto _ : state) {
        GablesResult r = GablesModel::evaluate(soc, u);
        benchmark::DoNotOptimize(r.attainable);
    }
}
BENCHMARK(BM_GablesEvaluateTwoIp);

void
BM_GablesPerfFormTwoIp(benchmark::State &state)
{
    SocSpec soc = SocCatalog::paperTwoIp();
    Usecase u = Usecase::twoIp("bench", 0.75, 8.0, 0.1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            GablesModel::attainablePerfForm(soc, u));
    }
}
BENCHMARK(BM_GablesPerfFormTwoIp);

} // namespace

int
main(int argc, char **argv)
{
    reproduce();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
