/**
 * @file
 * Regenerates Figure 7 (a: CPU roofline, b: GPU roofline) by running
 * the ERT micro-benchmark on the simulated Snapdragon 835 and
 * fitting rooflines, compared against the paper's measured anchors.
 * Also emits the SVG rooflines and times a full ERT sweep.
 */

#include <benchmark/benchmark.h>

#include <fstream>
#include <iostream>

#include "bench_util.h"
#include "ert/ert.h"
#include "ert/fitter.h"
#include "plot/roofline_plot.h"
#include "soc/catalog.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/units.h"

namespace {

using namespace gables;

void
reproduceEngine(const char *engine, const char *figure,
                double paper_peak_gops, double paper_bw_gbs)
{
    auto soc = SocCatalog::snapdragon835Sim();
    ErtConfig config;
    config.intensities = ErtConfig::defaultIntensities();
    config.workingSetBytes = 64e6;
    config.totalBytes = 128e6;
    auto samples = ErtSweep::run(*soc, engine, config);
    RooflineFit fit = RooflineFitter::fitDram(samples);

    bench::banner(figure, std::string(engine) +
                              " empirical roofline (simulated chip)");
    TextTable t({"I (ops/B)", "Gops/s", "DRAM GB/s"});
    for (const ErtSample &s : samples) {
        t.addRow({formatDouble(s.opsPerByte, 4),
                  formatDouble(s.opsRate / 1e9, 3),
                  formatDouble(s.missByteRate / 1e9, 3)});
    }
    std::cout << t.render();

    bench::ComparisonTable cmp;
    cmp.add("peak performance", paper_peak_gops, fit.peakOps / 1e9,
            "Gops/s");
    cmp.add("DRAM bandwidth", paper_bw_gbs, fit.peakBw / 1e9, "GB/s");
    cmp.add("ridge point", paper_peak_gops / paper_bw_gbs, fit.ridge,
            "ops/B");
    cmp.print();

    RooflinePlot plot(std::string(figure) + " " + engine +
                          " roofline (sim)",
                      0.015, 128.0);
    plot.addRoofline(fit.roofline(engine));
    std::string path = std::string("fig7_") + engine + ".svg";
    std::ofstream out(path);
    out << plot.renderSvg();
    std::cout << "wrote " << path << '\n';
}

void
BM_ErtSweepCpu(benchmark::State &state)
{
    auto soc = SocCatalog::snapdragon835Sim();
    ErtConfig config;
    config.intensities = {0.125, 1.0, 8.0};
    config.workingSetBytes = 16e6;
    config.totalBytes = 16e6;
    for (auto _ : state) {
        auto samples = ErtSweep::run(*soc, "CPU", config);
        benchmark::DoNotOptimize(samples.back().opsRate);
    }
}
BENCHMARK(BM_ErtSweepCpu)->Unit(benchmark::kMillisecond);

} // namespace

void
reproduceSd821()
{
    // Section IV-A: "Our findings hold true for both systems" — the
    // same harness traces the previous-generation chip's rooflines.
    bench::banner("Section IV-A",
                  "the same sweep on the Snapdragon 821 (sim)");
    auto soc = SocCatalog::snapdragon821Sim();
    ErtConfig config;
    config.intensities = {0.0625, 0.25, 1.0, 4.0, 64.0, 1024.0};
    config.workingSetBytes = 64e6;
    config.totalBytes = 64e6;
    TextTable t({"engine", "peak Gops/s", "DRAM GB/s"});
    for (const char *engine : {"CPU", "GPU", "DSP"}) {
        auto samples = ErtSweep::run(*soc, engine, config);
        RooflineFit fit = RooflineFitter::fitDram(samples);
        t.addRow({engine, formatDouble(fit.peakOps / 1e9, 2),
                  formatDouble(fit.peakBw / 1e9, 2)});
    }
    std::cout << t.render()
              << "one generation back: same shapes, slightly lower "
                 "rates -- the paper's cross-chip consistency claim\n";
}

int
main(int argc, char **argv)
{
    reproduceEngine("CPU", "Figure 7a", 7.5, 15.1);
    reproduceEngine("GPU", "Figure 7b", 349.6, 24.4);
    reproduceSd821();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
