/**
 * @file
 * Regenerates Figure 8: performance vs fraction of work offloaded to
 * the GPU (f from 0 to 1 in eighths) for operational intensities 1
 * to 1024, normalized to all-work-on-CPU at I = 1... (as the paper
 * normalizes, all-on-CPU per line is ~the same 7.5 Gops/s). Runs the
 * experiment twice: on the simulated Snapdragon (with offload
 * coordination through the CPU, reproducing the paper's low-I
 * slowdown) and with the analytic Gables model (which omits
 * coordination, the comparison the paper draws in Section IV-C).
 */

#include <benchmark/benchmark.h>

#include <fstream>
#include <iostream>

#include "analysis/sweep.h"
#include "bench_util.h"
#include "plot/heatmap.h"
#include "plot/series_plot.h"
#include "sim/soc.h"
#include "soc/catalog.h"
#include "util/table.h"

namespace {

using namespace gables;

/** One simulated mixing point: total work split f to the GPU. */
double
mixingPoint(sim::SimSoc &soc, double f, double intensity)
{
    const double total_ops = 64e6;
    std::vector<sim::SimSoc::JobSubmission> jobs;
    if (f < 1.0) {
        sim::KernelJob cpu;
        cpu.workingSetBytes = 64e6;
        cpu.totalBytes = (1.0 - f) * total_ops / intensity;
        cpu.opsPerByte = intensity;
        jobs.push_back({"CPU", cpu});
    }
    if (f > 0.0) {
        sim::KernelJob gpu;
        gpu.workingSetBytes = 64e6;
        gpu.totalBytes = f * total_ops / intensity;
        gpu.opsPerByte = intensity;
        gpu.coordinationTime = 1e-6; // buffer handoff via the CPU
        jobs.push_back({"GPU", gpu});
    }
    return total_ops / soc.run(jobs).duration;
}

void
reproduce()
{
    const std::vector<double> intensities = {1.0, 4.0, 16.0, 64.0,
                                             256.0, 1024.0};
    std::vector<double> fractions;
    for (int i = 0; i <= 8; ++i)
        fractions.push_back(i / 8.0);

    bench::banner("Figure 8",
                  "normalized perf vs GPU work fraction (simulated)");

    auto soc = SocCatalog::snapdragon835Sim();
    std::vector<std::string> headers = {"f"};
    for (double i : intensities)
        headers.push_back("I=" + formatDouble(i, 0));
    TextTable t(headers);

    std::vector<Series> sim_series(intensities.size());
    std::vector<double> base(intensities.size());
    for (size_t k = 0; k < intensities.size(); ++k) {
        base[k] = mixingPoint(*soc, 0.0, intensities[k]);
        sim_series[k].label = "I=" + formatDouble(intensities[k], 0);
    }
    for (double f : fractions) {
        std::vector<std::string> row = {formatDouble(f, 3)};
        for (size_t k = 0; k < intensities.size(); ++k) {
            double norm =
                mixingPoint(*soc, f, intensities[k]) / base[k];
            row.push_back(formatDouble(norm, 3));
            sim_series[k].x.push_back(f);
            sim_series[k].y.push_back(norm);
        }
        t.addRow(row);
    }
    std::cout << t.render();

    // The paper's headline observations.
    double low_i_full = sim_series.front().y.back();
    double high_i_full = sim_series.back().y.back();
    std::cout << "\nobservations (paper Section IV-C):\n"
              << "  offload at I=1 -> " << formatDouble(low_i_full, 2)
              << "x ("
              << (low_i_full < 1.0 ? "slowdown, as in the paper"
                                   : "UNEXPECTED speedup")
              << ")\n"
              << "  offload at I=1024 -> "
              << formatDouble(high_i_full, 1)
              << "x (paper reports 39.4x on silicon)\n";

    SeriesPlot plot("Figure 8 (sim): mixing on Snapdragon 835",
                    "fraction f at GPU", "normalized performance");
    plot.setScales(Scale::Linear, Scale::Log);
    for (const Series &s : sim_series)
        plot.addSeries(s);
    std::ofstream out("fig8_mixing.svg");
    out << plot.renderSvg();
    std::cout << "wrote fig8_mixing.svg\n";

    // Analytic counterpart from the base model (no coordination).
    bench::banner("Figure 8 (model)",
                  "base Gables prediction for the same sweep");
    SocSpec spec = SocCatalog::snapdragon835();
    TextTable mt(headers);
    std::vector<Series> model_series;
    for (double i : intensities)
        model_series.push_back(Sweep::mixing(spec, i, i, fractions));
    for (size_t fi = 0; fi < fractions.size(); ++fi) {
        std::vector<std::string> row = {formatDouble(fractions[fi],
                                                     3)};
        for (const Series &s : model_series)
            row.push_back(formatDouble(s.y[fi], 3));
        mt.addRow(row);
    }
    std::cout << mt.render()
              << "note: the base model omits the CPU-routed "
                 "coordination bottleneck,\nso it misses the low-I "
                 "slowdown the silicon (and our simulator) shows.\n";

    // The whole family as one heatmap (simulated data).
    std::vector<std::string> x_ticks, y_ticks;
    for (double f : fractions)
        x_ticks.push_back(formatDouble(f, 3));
    std::vector<std::vector<double>> grid;
    for (size_t k = 0; k < intensities.size(); ++k) {
        y_ticks.push_back("I=" + formatDouble(intensities[k], 0));
        grid.push_back(sim_series[k].y);
    }
    HeatmapPlot map("Figure 8 as a heatmap (simulated)",
                    "fraction f at GPU", "operational intensity");
    map.setGrid(x_ticks, y_ticks, grid);
    map.setLogScale(true);
    std::ofstream hm("fig8_heatmap.svg");
    hm << map.renderSvg();
    std::cout << "wrote fig8_heatmap.svg\n"
              << map.renderAscii();
}

void
BM_MixingPoint(benchmark::State &state)
{
    auto soc = SocCatalog::snapdragon835Sim();
    for (auto _ : state) {
        benchmark::DoNotOptimize(mixingPoint(*soc, 0.5, 16.0));
    }
}
BENCHMARK(BM_MixingPoint)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    reproduce();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
