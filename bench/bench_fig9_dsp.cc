/**
 * @file
 * Regenerates Figure 9: the Hexagon DSP scalar-unit roofline, on the
 * simulated Snapdragon 835 where the DSP hangs off the slower system
 * fabric. Confirms the paper's observation that its bandwidth is far
 * below the CPU's and GPU's.
 */

#include <benchmark/benchmark.h>

#include <fstream>
#include <iostream>

#include "bench_util.h"
#include "ert/ert.h"
#include "ert/fitter.h"
#include "plot/roofline_plot.h"
#include "soc/catalog.h"
#include "util/table.h"

namespace {

using namespace gables;

void
reproduce()
{
    auto soc = SocCatalog::snapdragon835Sim();
    ErtConfig config;
    config.intensities = ErtConfig::defaultIntensities();
    config.workingSetBytes = 64e6;
    config.totalBytes = 64e6;
    auto samples = ErtSweep::run(*soc, "DSP", config);
    RooflineFit fit = RooflineFitter::fitDram(samples);

    bench::banner("Figure 9",
                  "DSP scalar-unit roofline (simulated chip)");
    TextTable t({"I (ops/B)", "Gops/s", "DRAM GB/s"});
    for (const ErtSample &s : samples) {
        t.addRow({formatDouble(s.opsPerByte, 4),
                  formatDouble(s.opsRate / 1e9, 3),
                  formatDouble(s.missByteRate / 1e9, 3)});
    }
    std::cout << t.render();

    bench::ComparisonTable cmp;
    cmp.add("peak performance (scalar)", 3.0, fit.peakOps / 1e9,
            "Gops/s");
    cmp.add("DRAM bandwidth", 5.4, fit.peakBw / 1e9, "GB/s");
    cmp.print();

    // The paper attributes the low bandwidth to the DSP's separate
    // fabric; compare against the CPU/GPU anchors.
    std::cout << "\nDSP bandwidth vs CPU (15.1) and GPU (24.4) GB/s: "
              << formatDouble(fit.peakBw / 1e9, 3)
              << " GB/s -- a different, slower interconnect fabric\n";

    RooflinePlot plot("Figure 9 DSP roofline (sim)", 0.015, 128.0);
    plot.addRoofline(fit.roofline("DSP"));
    std::ofstream out("fig9_dsp.svg");
    out << plot.renderSvg();
    std::cout << "wrote fig9_dsp.svg\n";
}

void
BM_ErtSweepDsp(benchmark::State &state)
{
    auto soc = SocCatalog::snapdragon835Sim();
    ErtConfig config;
    config.intensities = {0.125, 1.0, 8.0};
    config.workingSetBytes = 16e6;
    config.totalBytes = 16e6;
    for (auto _ : state) {
        auto samples = ErtSweep::run(*soc, "DSP", config);
        benchmark::DoNotOptimize(samples.back().opsRate);
    }
}
BENCHMARK(BM_ErtSweepDsp)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    reproduce();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
