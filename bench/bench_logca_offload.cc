/**
 * @file
 * Ablation 8: when does offload pay? Two models, one question. LogCA
 * (related work [33]) answers in offload *granularity*; Gables
 * answers in operational *intensity*. This bench runs both on a
 * Hexagon-DSP-like offload and shows they draw the same boundary
 * from different coordinates: small/low-reuse work stays on the CPU.
 */

#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>

#include "bench_util.h"
#include "core/gables.h"
#include "core/logca.h"
#include "soc/catalog.h"
#include "util/table.h"

namespace {

using namespace gables;

void
reproduce()
{
    bench::banner("Ablation 8a",
                  "LogCA: speedup vs offload granularity");
    LogCAModel::Params p;
    p.overhead = 50e-6;       // dispatch through the Android driver
    p.latency = 0.5e-6;       // DMA per item
    p.computePerItem = 10e-6; // host compute per item
    p.acceleration = 8.0;     // Hexagon vs CPU (paper Section II-A)
    p.beta = 1.0;
    p.eta = 1.0;
    LogCAModel logca(p);

    TextTable t({"granularity g", "host (ms)", "accel (ms)",
                 "speedup"});
    for (double g : {1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 16384.0}) {
        t.addRow({formatDouble(g, 0),
                  formatDouble(logca.hostTime(g) * 1e3, 3),
                  formatDouble(logca.accelTime(g) * 1e3, 3),
                  formatDouble(logca.speedup(g), 2) + "x"});
    }
    std::cout << t.render();
    std::cout << "break-even g1 = "
              << formatDouble(logca.breakEvenGranularity(), 1)
              << " items; asymptote "
              << formatDouble(logca.asymptoticSpeedup(), 2)
              << "x (vs A = 8: proportional transfer caps the win)\n";

    bench::banner("Ablation 8b",
                  "Gables: offload win vs operational intensity");
    SocSpec soc = SocCatalog::snapdragon835();
    TextTable t2({"intensity I", "CPU-only Gops/s", "DSP-only Gops/s",
                  "offload wins?"});
    for (double i : {0.0625, 0.25, 1.0, 4.0, 16.0}) {
        std::vector<IpWork> cpu_w = {IpWork{1.0, i}, IpWork{0.0, 1.0},
                                     IpWork{0.0, 1.0}};
        std::vector<IpWork> dsp_w = {IpWork{0.0, 1.0}, IpWork{0.0, 1.0},
                                     IpWork{1.0, i}};
        double cpu =
            GablesModel::evaluate(soc, Usecase("c", cpu_w)).attainable;
        double dsp =
            GablesModel::evaluate(soc, Usecase("d", dsp_w)).attainable;
        t2.addRow({formatDouble(i, 4), formatDouble(cpu / 1e9, 3),
                   formatDouble(dsp / 1e9, 3),
                   dsp > cpu ? "yes" : "no"});
    }
    std::cout << t2.render();
    std::cout
        << "the scalar DSP never beats the CPU on raw single-stream "
           "throughput\n(3 vs 7.5 Gops/s peak, 5.4 vs 15.1 GB/s) -- "
           "matching the paper's\nSection IV-D finding that the "
           "scalar unit is for low-power offload,\nnot acceleration. "
           "Both models agree: the offload decision depends on\n"
           "workload shape (granularity for LogCA, intensity and "
           "fraction for\nGables), not on the accelerator's "
           "existence.\n";
}

void
BM_LogCABreakEven(benchmark::State &state)
{
    LogCAModel::Params p;
    p.overhead = 50e-6;
    p.latency = 0.5e-6;
    p.computePerItem = 10e-6;
    p.acceleration = 8.0;
    LogCAModel logca(p);
    for (auto _ : state) {
        benchmark::DoNotOptimize(logca.breakEvenGranularity());
    }
}
BENCHMARK(BM_LogCABreakEven);

} // namespace

int
main(int argc, char **argv)
{
    reproduce();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
