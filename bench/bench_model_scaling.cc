/**
 * @file
 * Ablation 4: cost of the model itself. The paper pitches Gables as
 * an early-stage tool usable interactively and inside optimizers;
 * these google-benchmark timings show evaluation scales linearly in
 * N and stays in the nanosecond-to-microsecond regime even for
 * 1024-IP chips, and that the design-space explorer and optimal-
 * split solver are interactive-speed.
 *
 * With --json PATH the binary switches to a manual best-of-N harness
 * over the analytic hot-path workloads and writes
 * BENCH_model_eval.json for the perf-regression trajectory:
 *
 *  - evaluate_8ip: mutate-one-parameter + attainable() on a compiled
 *    8-IP evaluator — the steady-state sweep/advisor shape.
 *  - sweep_mixing_4096: a full Sweep::mixing grid, serial.
 *  - explorer_grid / explorer_grid_pruned: the 64x64 explorer cross
 *    product through exploreFrontier(), without and with subgrid
 *    bound pruning.
 *  - sweep_mixing_4096_scalar / explorer_grid_scalar: the same grid
 *    workloads forced onto the scalar reference path
 *    (simd::ScopedEnable), so the "*_simd_vs_scalar" speedups are a
 *    same-run, machine-independent measure of the packed lanes.
 *  - explorer_grid_reference: the same grid evaluated the pre-
 *    evaluator way (SocSpec rebuild + GablesModel::evaluate per
 *    design) — the denominator of the reported speedups, measured in
 *    the same run so the ratio cancels machine speed.
 *
 * CI compares the committed baseline with a generous tolerance and
 * asserts the evaluator speedup stays above its floor. Run with
 * --reps N to scale measurement time.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <sstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/explorer.h"
#include "analysis/optimal_split.h"
#include "analysis/sensitivity.h"
#include "analysis/sweep.h"
#include "bench_util.h"
#include "core/evaluator.h"
#include "core/gables.h"
#include "util/atomic_file.h"
#include "util/json_writer.h"
#include "util/parse.h"
#include "util/rng.h"

namespace {

using namespace gables;
using Clock = std::chrono::steady_clock;

/** Build a synthetic N-IP SoC and matching usecase. */
std::pair<SocSpec, Usecase>
synthetic(size_t n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<IpSpec> ips;
    for (size_t i = 0; i < n; ++i) {
        ips.push_back(IpSpec{"IP" + std::to_string(i),
                             i == 0 ? 1.0 : rng.logUniform(0.5, 50.0),
                             rng.logUniform(2e9, 50e9)});
    }
    SocSpec soc("synthetic", 10e9, 30e9, std::move(ips));
    std::vector<double> f = rng.simplex(n);
    std::vector<IpWork> work(n);
    for (size_t i = 0; i < n; ++i)
        work[i] = IpWork{f[i], rng.logUniform(0.1, 64.0)};
    return {soc, Usecase("synthetic", std::move(work))};
}

void
BM_EvaluateNIp(benchmark::State &state)
{
    auto [soc, u] = synthetic(static_cast<size_t>(state.range(0)), 7);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            GablesModel::evaluate(soc, u).attainable);
    }
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EvaluateNIp)->RangeMultiplier(4)->Range(2, 1024)
    ->Complexity(benchmark::oN);

void
BM_CompiledEvaluatorNIp(benchmark::State &state)
{
    auto [soc, u] = synthetic(static_cast<size_t>(state.range(0)), 7);
    GablesEvaluator ev(soc, u);
    double vals[4] = {0.5, 2.0, 8.0, 32.0};
    size_t i = 0;
    for (auto _ : state) {
        ev.setIntensity(1, vals[i++ & 3]);
        benchmark::DoNotOptimize(ev.attainable());
    }
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CompiledEvaluatorNIp)->RangeMultiplier(4)->Range(2, 1024)
    ->Complexity(benchmark::oN);

void
BM_PerfFormNIp(benchmark::State &state)
{
    auto [soc, u] = synthetic(static_cast<size_t>(state.range(0)), 7);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            GablesModel::attainablePerfForm(soc, u));
    }
}
BENCHMARK(BM_PerfFormNIp)->Range(2, 1024);

void
BM_OptimalSplitNIp(benchmark::State &state)
{
    size_t n = static_cast<size_t>(state.range(0));
    auto [soc, u] = synthetic(n, 11);
    Rng rng(13);
    std::vector<double> intensities;
    for (size_t i = 0; i < n; ++i)
        intensities.push_back(rng.logUniform(0.1, 64.0));
    OptimalSplitSolver solver(soc, intensities);
    for (auto _ : state) {
        benchmark::DoNotOptimize(solver.solve().attainable);
    }
}
BENCHMARK(BM_OptimalSplitNIp)->Range(2, 256);

void
BM_SensitivityNIp(benchmark::State &state)
{
    auto [soc, u] = synthetic(static_cast<size_t>(state.range(0)),
                              17);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            Sensitivity::analyze(soc, u).size());
    }
}
BENCHMARK(BM_SensitivityNIp)->Range(2, 64);

void
BM_Explorer1kDesigns(benchmark::State &state)
{
    auto [soc, u] = synthetic(3, 23);
    CostModel cost;
    cost.costPerBpeak = 1e-9;
    DesignExplorer ex(soc, {u}, cost);
    std::vector<double> bpeaks, accels;
    for (int i = 0; i < 32; ++i)
        bpeaks.push_back((i + 1) * 2e9);
    for (int i = 0; i < 32; ++i)
        accels.push_back(1.0 + i);
    ex.sweepBpeak(bpeaks);
    ex.sweepAcceleration(1, accels);
    for (auto _ : state) {
        benchmark::DoNotOptimize(ex.explore().size()); // 1024 designs
    }
}
BENCHMARK(BM_Explorer1kDesigns)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------
// Manual best-of-N harness (--json mode).
// ---------------------------------------------------------------

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct Measurement {
    double itemsPerSec = 0.0;
    double nsPerItem = 0.0;
    uint64_t items = 0;
    double seconds = 0.0; // wall time of the best (fastest) rep
};

/**
 * Each rep is timed on its own and the fastest rep is reported: the
 * minimum is the measurement least disturbed by scheduler and
 * frequency noise, which keeps the committed baseline stable for the
 * CI regression gate.
 */
class BestOf
{
  public:
    void sample(double seconds, uint64_t items)
    {
        double rate = static_cast<double>(items) / seconds;
        if (rate <= best_.itemsPerSec)
            return;
        best_.itemsPerSec = rate;
        best_.nsPerItem = 1e9 * seconds / static_cast<double>(items);
        best_.items = items;
        best_.seconds = seconds;
    }

    const Measurement &result() const { return best_; }

  private:
    Measurement best_;
};

/** Single-parameter mutation + attainable() on a compiled 8-IP
 * evaluator: the steady-state shape of every sweep/advisor probe. */
Measurement
measureEvaluate8Ip(int reps)
{
    auto [soc, u] = synthetic(8, 7);
    GablesEvaluator ev(soc, u);
    const uint64_t kEvals = 200000;
    double vals[4] = {0.5, 2.0, 8.0, 32.0};
    BestOf best;
    for (int r = 0; r < reps; ++r) {
        double acc = 0.0;
        Clock::time_point t0 = Clock::now();
        for (uint64_t i = 0; i < kEvals; ++i) {
            ev.setIntensity(3, vals[i & 3]);
            acc += ev.attainable();
        }
        double seconds = secondsSince(t0);
        benchmark::DoNotOptimize(acc);
        best.sample(seconds, kEvals);
    }
    return best.result();
}

/**
 * A full serial Sweep::mixing grid (paper Figure 8 shape), measured
 * on the packed and scalar paths in alternating reps. Interleaving
 * matters: the packed-vs-scalar ratio gates CI, and pairing the reps
 * inside one window keeps scheduler/frequency drift from landing on
 * only one side of the ratio.
 */
void
measureSweepMixing(int reps, Measurement &packed, Measurement &scalar)
{
    auto [soc, u] = synthetic(4, 31);
    const size_t kPoints = 4096;
    std::vector<double> fractions;
    fractions.reserve(kPoints);
    for (size_t i = 0; i < kPoints; ++i)
        fractions.push_back(static_cast<double>(i) / (kPoints - 1));
    auto one = [&](BestOf &best) {
        Clock::time_point t0 = Clock::now();
        Series s = Sweep::mixing(soc, 8.0, 0.1, fractions, true, 1);
        double seconds = secondsSince(t0);
        benchmark::DoNotOptimize(s.y.back());
        best.sample(seconds, kPoints);
    };
    BestOf best_packed, best_scalar;
    for (int r = 0; r < reps; ++r) {
        one(best_packed);
        {
            simd::ScopedEnable off(false);
            one(best_scalar);
        }
    }
    packed = best_packed.result();
    scalar = best_scalar.result();
}

/** The 64x64 explorer grid shared by the explorer workloads. */
DesignExplorer
makeGridExplorer(std::vector<double> &bpeaks,
                 std::vector<double> &accels)
{
    auto [soc, u] = synthetic(3, 23);
    CostModel cost;
    cost.costPerAcceleration = 1.0;
    cost.costPerBpeak = 1e-9;
    DesignExplorer ex(soc, {u}, cost);
    bpeaks.clear();
    accels.clear();
    for (int i = 0; i < 64; ++i)
        bpeaks.push_back((i + 1) * 1e9);
    for (int i = 0; i < 64; ++i)
        accels.push_back(1.0 + i);
    ex.sweepBpeak(bpeaks);
    ex.sweepAcceleration(1, accels);
    return ex;
}

/** The explorer cross product through the compiled-evaluator engine,
 * with or without subgrid bound pruning. The rate is grid designs
 * per second of wall time, so pruning shows up as a higher rate.
 * When @p scalar is given, packed and scalar reps alternate inside
 * the same window (see measureSweepMixing). */
Measurement
measureExplorerGrid(bool prune, int reps,
                    Measurement *scalar = nullptr)
{
    std::vector<double> bpeaks, accels;
    DesignExplorer ex = makeGridExplorer(bpeaks, accels);
    ExploreOptions opts;
    opts.jobs = 1;
    opts.prune = prune;
    const uint64_t designs =
        static_cast<uint64_t>(bpeaks.size() * accels.size());
    auto one = [&](BestOf &best) {
        Clock::time_point t0 = Clock::now();
        auto frontier = ex.exploreFrontier(opts);
        double seconds = secondsSince(t0);
        benchmark::DoNotOptimize(frontier.size());
        best.sample(seconds, designs);
    };
    BestOf best_packed, best_scalar;
    for (int r = 0; r < reps; ++r) {
        one(best_packed);
        if (scalar) {
            simd::ScopedEnable off(false);
            one(best_scalar);
        }
    }
    if (scalar)
        *scalar = best_scalar.result();
    return best_packed.result();
}

/**
 * The same grid evaluated the way the explorer worked before the
 * compiled-evaluator engine: one SocSpec rebuild per knob per design
 * and a full validating GablesModel::evaluate() per usecase. Kept as
 * an in-run reference so the speedup ratio is machine-independent.
 */
Measurement
measureExplorerReference(int reps)
{
    auto [soc, u] = synthetic(3, 23);
    std::vector<double> bpeaks, accels;
    for (int i = 0; i < 64; ++i)
        bpeaks.push_back((i + 1) * 1e9);
    for (int i = 0; i < 64; ++i)
        accels.push_back(1.0 + i);
    const uint64_t designs =
        static_cast<uint64_t>(bpeaks.size() * accels.size());
    BestOf best;
    for (int r = 0; r < reps; ++r) {
        double acc = 0.0;
        Clock::time_point t0 = Clock::now();
        for (double a : accels) {
            for (double b : bpeaks) {
                SocSpec design =
                    soc.withBpeak(b).withIpAcceleration(1, a);
                acc += GablesModel::evaluate(design, u).attainable;
            }
        }
        double seconds = secondsSince(t0);
        benchmark::DoNotOptimize(acc);
        best.sample(seconds, designs);
    }
    return best.result();
}

void
writeMeasurement(JsonWriter &json, const std::string &name,
                 const Measurement &m)
{
    json.key(name);
    json.beginObject();
    json.kv("items_per_sec", m.itemsPerSec);
    json.kv("ns_per_item", m.nsPerItem);
    json.kv("items", static_cast<size_t>(m.items));
    json.kv("seconds", m.seconds);
    json.endObject();
}

void
printMeasurement(const std::string &name, const Measurement &m)
{
    std::cout << "  " << name << ": "
              << formatDouble(m.itemsPerSec / 1e6, 3)
              << " M items/s, " << formatDouble(m.nsPerItem, 1)
              << " ns/item\n";
}

int
runManual(const std::string &json_path, int reps)
{
    bench::banner("Analytic hot path",
                  "compiled-evaluator throughput vs the rebuild-and-"
                  "revalidate reference");

    // Warm up allocators so steady-state rates are measured, not
    // first-touch costs.
    measureEvaluate8Ip(1);

    // The grid workloads run the packed path and the scalar
    // reference path in alternating reps of the same window: the
    // packed-vs-scalar ratio cancels machine speed the same way
    // explorer_grid_reference does for the evaluator, and the
    // interleave keeps drift off the ratio.
    Measurement eval8 = measureEvaluate8Ip(reps);
    Measurement mixing, mixing_scalar;
    measureSweepMixing(std::max(1, reps / 4), mixing, mixing_scalar);
    Measurement grid_scalar;
    Measurement grid = measureExplorerGrid(
        false, std::max(1, reps / 4), &grid_scalar);
    Measurement pruned = measureExplorerGrid(true,
                                             std::max(1, reps / 4));
    Measurement reference =
        measureExplorerReference(std::max(1, reps / 4));

    printMeasurement("evaluate_8ip", eval8);
    printMeasurement("sweep_mixing_4096", mixing);
    printMeasurement("sweep_mixing_4096_scalar", mixing_scalar);
    printMeasurement("explorer_grid", grid);
    printMeasurement("explorer_grid_scalar", grid_scalar);
    printMeasurement("explorer_grid_pruned", pruned);
    printMeasurement("explorer_grid_reference", reference);

    double speedup_grid = grid.itemsPerSec / reference.itemsPerSec;
    double speedup_pruned =
        pruned.itemsPerSec / reference.itemsPerSec;
    double speedup_mixing_simd =
        mixing.itemsPerSec / mixing_scalar.itemsPerSec;
    double speedup_grid_simd =
        grid.itemsPerSec / grid_scalar.itemsPerSec;
    std::cout << "  speedup vs reference: "
              << formatDouble(speedup_grid, 1) << "x unpruned, "
              << formatDouble(speedup_pruned, 1) << "x pruned\n";
    std::cout << "  packed vs scalar lanes: "
              << formatDouble(speedup_mixing_simd, 1)
              << "x mixing sweep, "
              << formatDouble(speedup_grid_simd, 1)
              << "x explorer grid (lane width "
              << (simd::enabled() ? GablesEvalPack::kWidth : 1)
              << ")\n";

    std::ostringstream out;
    JsonWriter json(out);
    json.beginObject();
    json.key("schema");
    json.beginObject();
    json.kv("name", "gables-model-eval-bench");
    json.kv("version", 1);
    json.endObject();
    json.kv("reps", reps);
    json.key("config");
    json.beginObject();
    json.kv("lane_width",
            simd::enabled()
                ? static_cast<size_t>(GablesEvalPack::kWidth)
                : static_cast<size_t>(1));
    json.kv("simd_compiled",
            static_cast<size_t>(simd::kCompiledIn ? 1 : 0));
    json.kv("simd_enabled",
            static_cast<size_t>(simd::enabled() ? 1 : 0));
    json.endObject();
    json.key("workloads");
    json.beginObject();
    writeMeasurement(json, "evaluate_8ip", eval8);
    writeMeasurement(json, "sweep_mixing_4096", mixing);
    writeMeasurement(json, "sweep_mixing_4096_scalar",
                     mixing_scalar);
    writeMeasurement(json, "explorer_grid", grid);
    writeMeasurement(json, "explorer_grid_scalar", grid_scalar);
    writeMeasurement(json, "explorer_grid_pruned", pruned);
    writeMeasurement(json, "explorer_grid_reference", reference);
    json.endObject();
    json.key("speedup");
    json.beginObject();
    json.kv("explorer_grid_vs_reference", speedup_grid);
    json.kv("explorer_grid_pruned_vs_reference", speedup_pruned);
    json.kv("sweep_mixing_4096_simd_vs_scalar",
            speedup_mixing_simd);
    json.kv("explorer_grid_simd_vs_scalar", speedup_grid_simd);
    json.endObject();
    json.endObject();
    writeFileAtomic(json_path, out.str());
    std::cout << "wrote " << json_path << "\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path;
    int reps = 20;
    std::vector<char *> passthrough;
    passthrough.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else if (arg == "--reps" && i + 1 < argc) {
            reps = static_cast<int>(
                parseIntInRange(argv[++i], 1, 1000000, "--reps"));
        } else {
            passthrough.push_back(argv[i]);
        }
    }
    if (!json_path.empty())
        return runManual(json_path, reps);

    gables::bench::banner(
        "Ablation 4",
        "model-evaluation cost vs N (google-benchmark timings)");
    int pargc = static_cast<int>(passthrough.size());
    benchmark::Initialize(&pargc, passthrough.data());
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
