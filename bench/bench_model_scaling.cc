/**
 * @file
 * Ablation 4: cost of the model itself. The paper pitches Gables as
 * an early-stage tool usable interactively and inside optimizers;
 * these google-benchmark timings show evaluation scales linearly in
 * N and stays in the nanosecond-to-microsecond regime even for
 * 1024-IP chips, and that the design-space explorer and optimal-
 * split solver are interactive-speed.
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "analysis/explorer.h"
#include "analysis/optimal_split.h"
#include "analysis/sensitivity.h"
#include "bench_util.h"
#include "core/gables.h"
#include "util/rng.h"

namespace {

using namespace gables;

/** Build a synthetic N-IP SoC and matching usecase. */
std::pair<SocSpec, Usecase>
synthetic(size_t n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<IpSpec> ips;
    for (size_t i = 0; i < n; ++i) {
        ips.push_back(IpSpec{"IP" + std::to_string(i),
                             i == 0 ? 1.0 : rng.logUniform(0.5, 50.0),
                             rng.logUniform(2e9, 50e9)});
    }
    SocSpec soc("synthetic", 10e9, 30e9, std::move(ips));
    std::vector<double> f = rng.simplex(n);
    std::vector<IpWork> work(n);
    for (size_t i = 0; i < n; ++i)
        work[i] = IpWork{f[i], rng.logUniform(0.1, 64.0)};
    return {soc, Usecase("synthetic", std::move(work))};
}

void
BM_EvaluateNIp(benchmark::State &state)
{
    auto [soc, u] = synthetic(static_cast<size_t>(state.range(0)), 7);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            GablesModel::evaluate(soc, u).attainable);
    }
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EvaluateNIp)->RangeMultiplier(4)->Range(2, 1024)
    ->Complexity(benchmark::oN);

void
BM_PerfFormNIp(benchmark::State &state)
{
    auto [soc, u] = synthetic(static_cast<size_t>(state.range(0)), 7);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            GablesModel::attainablePerfForm(soc, u));
    }
}
BENCHMARK(BM_PerfFormNIp)->Range(2, 1024);

void
BM_OptimalSplitNIp(benchmark::State &state)
{
    size_t n = static_cast<size_t>(state.range(0));
    auto [soc, u] = synthetic(n, 11);
    Rng rng(13);
    std::vector<double> intensities;
    for (size_t i = 0; i < n; ++i)
        intensities.push_back(rng.logUniform(0.1, 64.0));
    OptimalSplitSolver solver(soc, intensities);
    for (auto _ : state) {
        benchmark::DoNotOptimize(solver.solve().attainable);
    }
}
BENCHMARK(BM_OptimalSplitNIp)->Range(2, 256);

void
BM_SensitivityNIp(benchmark::State &state)
{
    auto [soc, u] = synthetic(static_cast<size_t>(state.range(0)),
                              17);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            Sensitivity::analyze(soc, u).size());
    }
}
BENCHMARK(BM_SensitivityNIp)->Range(2, 64);

void
BM_Explorer1kDesigns(benchmark::State &state)
{
    auto [soc, u] = synthetic(3, 23);
    CostModel cost;
    cost.costPerBpeak = 1e-9;
    DesignExplorer ex(soc, {u}, cost);
    std::vector<double> bpeaks, accels;
    for (int i = 0; i < 32; ++i)
        bpeaks.push_back((i + 1) * 2e9);
    for (int i = 0; i < 32; ++i)
        accels.push_back(1.0 + i);
    ex.sweepBpeak(bpeaks);
    ex.sweepAcceleration(1, accels);
    for (auto _ : state) {
        benchmark::DoNotOptimize(ex.explore().size()); // 1024 designs
    }
}
BENCHMARK(BM_Explorer1kDesigns)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    gables::bench::banner(
        "Ablation 4",
        "model-evaluation cost vs N (google-benchmark timings)");
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
