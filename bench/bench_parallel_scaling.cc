/**
 * @file
 * Scaling study of the parallel evaluation engine on the explorer
 * grid: the same three-knob cross product of Snapdragon-835-like
 * designs is evaluated with 1, 2, 4, and 8 pool workers, verifying
 * byte-identical output along the way and reporting the speedup
 * curve. Near-linear scaling is expected up to the machine's core
 * count (the grid is embarrassingly parallel); on fewer cores the
 * curve flattens at the hardware limit.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <iostream>
#include <vector>

#include "analysis/explorer.h"
#include "analysis/sweep.h"
#include "bench_util.h"
#include "parallel/parallel_for.h"
#include "soc/catalog.h"
#include "soc/usecases.h"
#include "util/table.h"

namespace {

using namespace gables;

/** The shared study grid: Bpeak x GPU acceleration x GPU link. */
DesignExplorer
makeExplorer(int points_per_knob)
{
    SocSpec base = SocCatalog::snapdragon835Full();
    std::vector<Usecase> portfolio;
    for (const UsecaseEntry &entry : UsecaseCatalog::extended())
        portfolio.push_back(entry.graph.toUsecase(base));

    CostModel cost;
    cost.costPerAcceleration = 1.0;
    cost.costPerBpeak = 0.5e-9;
    cost.costPerIpBandwidth = 0.1e-9;
    DesignExplorer explorer(base, portfolio, cost);

    std::vector<double> bpeaks, accels, links;
    for (int i = 0; i < points_per_knob; ++i) {
        bpeaks.push_back(10e9 + i * 5e9);
        accels.push_back(2.0 + i * 2.0);
        links.push_back(8e9 + i * 4e9);
    }
    const size_t gpu = 3; // snapdragon835Full: AP, Display, G2DS, GPU
    explorer.sweepBpeak(bpeaks);
    explorer.sweepAcceleration(gpu, accels);
    explorer.sweepIpBandwidth(gpu, links);
    return explorer;
}

double
timeExplore(const DesignExplorer &explorer, int jobs,
            std::vector<Candidate> &out)
{
    auto start = std::chrono::steady_clock::now();
    out = explorer.explore(jobs);
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

void
reproduce()
{
    bench::banner("Parallel scaling",
                  "explorer grid speedup vs pool workers");
    DesignExplorer explorer = makeExplorer(12);
    std::cout << "grid: " << explorer.gridSize()
              << " candidate designs x "
              << UsecaseCatalog::extended().size()
              << " usecases; hardware threads: "
              << parallel::defaultJobs() << "\n";

    std::vector<Candidate> serial;
    double t1 = timeExplore(explorer, 1, serial);

    TextTable t({"jobs", "time (ms)", "speedup", "identical"});
    t.addRow({"1", formatDouble(t1 * 1e3, 1), "1.00", "-"});
    for (int jobs : {2, 4, 8}) {
        std::vector<Candidate> result;
        double tj = timeExplore(explorer, jobs, result);

        bool identical = result.size() == serial.size();
        for (size_t i = 0; identical && i < result.size(); ++i) {
            identical = result[i].minPerf == serial[i].minPerf &&
                        result[i].cost == serial[i].cost &&
                        result[i].pareto == serial[i].pareto &&
                        result[i].perUsecase == serial[i].perUsecase;
        }
        t.addRow({std::to_string(jobs), formatDouble(tj * 1e3, 1),
                  formatDouble(t1 / tj, 2),
                  identical ? "yes" : "NO"});
        if (!identical) {
            std::cout << "ERROR: jobs=" << jobs
                      << " diverged from the serial grid\n";
            std::exit(1);
        }
    }
    std::cout << t.render()
              << "(speedup saturates at the machine's core count; "
                 "expect ~linear up to 8 on 8+ cores)\n";
}

void
BM_ExplorerGrid(benchmark::State &state)
{
    DesignExplorer explorer = makeExplorer(8);
    int jobs = static_cast<int>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(explorer.explore(jobs).size());
    }
    state.counters["designs/s"] = benchmark::Counter(
        static_cast<double>(explorer.gridSize() *
                            state.iterations()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ExplorerGrid)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void
BM_MixingSweep(benchmark::State &state)
{
    SocSpec soc = SocCatalog::snapdragon835Full();
    int jobs = static_cast<int>(state.range(0));
    std::vector<double> fractions;
    for (int i = 0; i < 20000; ++i)
        fractions.push_back(i / 19999.0);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            Sweep::mixing(soc, 8.0, 0.5, fractions, true, jobs)
                .y.size());
    }
}
BENCHMARK(BM_MixingSweep)->Arg(1)->Arg(8)->Unit(
    benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    reproduce();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
