/**
 * @file
 * Ablation 6: dynamic pipeline vs analytic bound. For every catalog
 * usecase, runs the frame-pipeline discrete-event simulation and
 * compares its steady-state frame rate with the Gables-style static
 * bound — quantifying how much of the upper bound a real(istic)
 * store-and-forward pipeline with finite buffering achieves, and
 * where the losses come from.
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.h"
#include "soc/catalog.h"
#include "soc/pipeline.h"
#include "soc/usecases.h"
#include "util/table.h"

namespace {

using namespace gables;

void
reproduce()
{
    bench::banner("Ablation 6",
                  "frame-pipeline simulation vs analytic fps bound");
    SocSpec soc = SocCatalog::snapdragon835Full();
    TextTable t({"usecase", "analytic fps", "simulated fps",
                 "achieved", "binding resource util"});
    for (const UsecaseEntry &entry : UsecaseCatalog::all()) {
        sim::PipelineStats stats =
            sim::PipelineSim(soc, entry.graph).run(96);
        DataflowAnalysis a = entry.graph.analyze(soc);
        // Busiest resource in the simulation.
        const sim::ResourceStats *busiest = &stats.resources.front();
        for (const sim::ResourceStats &r : stats.resources) {
            if (r.utilization > busiest->utilization)
                busiest = &r;
        }
        t.addRow({entry.graph.name(), formatDouble(a.maxFps, 1),
                  formatDouble(stats.steadyFps, 1),
                  formatDouble(stats.steadyFps / a.maxFps * 100.0,
                               1) +
                      "%",
                  busiest->name + " @ " +
                      formatDouble(busiest->utilization, 2)});
    }
    std::cout << t.render();
    std::cout
        << "the static Gables-style bound assumes perfect overlap "
           "and infinite buffering;\nthe event-driven pipeline "
           "(sliced transfers, double-buffered sensor ring,\n"
           "store-and-forward hops) achieves 70-100% of it and "
           "never exceeds it --\nexactly the upper-bound "
           "relationship the paper claims for the model.\n";

    bench::banner("Ablation 6b",
                  "slices per frame vs achieved fraction (HFR)");
    UsecaseEntry hfr = UsecaseCatalog::videocaptureHfr();
    DataflowAnalysis a = hfr.graph.analyze(soc);
    TextTable t2({"slices/frame", "simulated fps", "achieved"});
    for (int slices : {1, 2, 4, 8, 16}) {
        sim::PipelineStats stats =
            sim::PipelineSim(soc, hfr.graph).run(96, 0.0, slices);
        t2.addRow({formatDouble(slices, 0),
                   formatDouble(stats.steadyFps, 1),
                   formatDouble(stats.steadyFps / a.maxFps * 100.0,
                                1) +
                       "%"});
    }
    std::cout << t2.render()
              << "finer slicing = more transfer/compute overlap = "
                 "closer to the bound (line-buffered IPs)\n";
}

void
BM_PipelineHfr96Frames(benchmark::State &state)
{
    SocSpec soc = SocCatalog::snapdragon835Full();
    UsecaseEntry hfr = UsecaseCatalog::videocaptureHfr();
    sim::PipelineSim sim(soc, hfr.graph);
    for (auto _ : state) {
        benchmark::DoNotOptimize(sim.run(96).steadyFps);
    }
}
BENCHMARK(BM_PipelineHfr96Frames)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    reproduce();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
