/**
 * @file
 * Ablation 9: inverse design. Takes the full Snapdragon-835-like SoC
 * (deliberately generous) and the extended usecase portfolio at its
 * frame-rate targets, and shrinks every knob to the cheapest design
 * that still runs everything — the paper's "which IPs and roughly
 * how big?" answered constructively, Figure 6d's "sufficient"
 * reasoning generalized to all knobs and nine usecases at once.
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "analysis/provisioner.h"
#include "bench_util.h"
#include "soc/catalog.h"
#include "soc/usecases.h"
#include "util/table.h"

namespace {

using namespace gables;

/**
 * Requirements from the usecase catalog at each entry's fps target,
 * capped at what the generous design can actually do (HFR and Lens
 * miss their targets on ANY scaling of this design — see
 * bench_table1 — so we require their achievable rates instead).
 */
std::vector<Requirement>
portfolio(const SocSpec &soc)
{
    std::vector<Requirement> reqs;
    for (const UsecaseEntry &entry : UsecaseCatalog::extended()) {
        Usecase u = entry.graph.toUsecase(soc);
        double capability = GablesModel::evaluate(soc, u).attainable;
        double target = entry.graph.opsPerFrame() * entry.targetFps;
        reqs.push_back(
            Requirement{u, std::min(target, capability * 0.999)});
    }
    return reqs;
}

void
reproduce()
{
    bench::banner("Ablation 9",
                  "shrink-to-fit provisioning for the nine-usecase "
                  "portfolio");
    SocSpec start = SocCatalog::snapdragon835Full();
    std::vector<Requirement> reqs = portfolio(start);
    ProvisionedDesign r = Provisioner::minimize(start, reqs);

    TextTable t({"knob", "generous", "sufficient", "kept"});
    t.addRow({"Bpeak (GB/s)", formatDouble(start.bpeak() / 1e9, 1),
              formatDouble(r.soc.bpeak() / 1e9, 1),
              formatDouble(r.soc.bpeak() / start.bpeak() * 100.0, 0) +
                  "%"});
    for (size_t i = 0; i < start.numIps(); ++i) {
        t.addRow({start.ip(i).name + " link (GB/s)",
                  formatDouble(start.ip(i).bandwidth / 1e9, 1),
                  formatDouble(r.soc.ip(i).bandwidth / 1e9, 2),
                  formatDouble(r.soc.ip(i).bandwidth /
                                   start.ip(i).bandwidth * 100.0,
                               0) +
                      "%"});
    }
    for (size_t i = 1; i < start.numIps(); ++i) {
        t.addRow({start.ip(i).name + " accel (Ai)",
                  formatDouble(start.ip(i).acceleration, 1),
                  formatDouble(r.soc.ip(i).acceleration, 2),
                  formatDouble(r.soc.ip(i).acceleration /
                                   start.ip(i).acceleration * 100.0,
                               0) +
                      "%"});
    }
    std::cout << t.render();
    std::cout << "converged in " << r.iterations
              << " fixpoint iterations; every usecase still meets "
                 "its requirement.\nknobs kept near 100% are the "
                 "portfolio's true constraints (conjecture 3: the\n"
                 "fi estimates decide which accelerations are "
                 "justified); knobs far below 100%\nwere "
                 "over-provisioned for THESE usecases.\n";
}

void
BM_ProvisionPortfolio(benchmark::State &state)
{
    SocSpec start = SocCatalog::snapdragon835Full();
    std::vector<Requirement> reqs = portfolio(start);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            Provisioner::minimize(start, reqs).iterations);
    }
}
BENCHMARK(BM_ProvisionPortfolio)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    reproduce();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
