/**
 * @file
 * Load generator for the `gables serve` daemon: a socket client that
 * derives its request mix from the committed replay corpus
 * (tests/corpus/*.json), so the daemon is exercised with the same
 * scenarios the CLI regression backbone replays.
 *
 * Two phases:
 *
 *  - corpus_mix_serial: every corpus-derived request round-trips
 *    serially --reps times; per-request latency yields p50/p99.
 *    Any error response fails the run (exit 1), which makes the CI
 *    smoke job a protocol check as well as a perf check.
 *  - cached_eval_throughput: one fixed eval request repeated --evals
 *    times, pipelined (a writer thread streams requests while the
 *    main thread drains responses), measuring steady-state cached
 *    requests/s — the headline number BENCH_serve.json gates.
 *
 * With --spawn GABLES_BIN the loadgen forks the daemon itself on a
 * private unix socket, shuts it down afterwards, and propagates its
 * exit status; otherwise it attaches to --socket/--port. --json
 * writes the BENCH_serve.json schema atomically (temp + rename).
 */

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <cmath>
#include <fstream>

#include "core/gables.h"
#include "core/serialize.h"
#include "replay/bundle.h"
#include "replay/replayer.h"
#include "soc/catalog.h"
#include "util/atomic_file.h"
#include "util/json_reader.h"
#include "util/json_writer.h"
#include "util/logging.h"
#include "util/parse.h"

namespace {

using namespace gables;
using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** One derived request: a full JSON line plus provenance. */
struct MixRequest {
    std::string bundle;
    std::string op;
    std::string line;
};

/** Connected socket with buffered line reads. */
class LineClient
{
  public:
    explicit LineClient(int fd) : fd_(fd) {}
    ~LineClient()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }
    LineClient(const LineClient &) = delete;
    LineClient &operator=(const LineClient &) = delete;

    int fd() const { return fd_; }

    void sendAll(const char *data, size_t len)
    {
        while (len > 0) {
            ssize_t sent = ::send(fd_, data, len, MSG_NOSIGNAL);
            if (sent < 0) {
                if (errno == EINTR)
                    continue;
                fatal(std::string("send failed: ") +
                      std::strerror(errno));
            }
            data += sent;
            len -= static_cast<size_t>(sent);
        }
    }

    void sendLine(const std::string &line)
    {
        std::string framed = line;
        framed += '\n';
        sendAll(framed.data(), framed.size());
    }

    /** @return One response line (without the newline). */
    std::string recvLine()
    {
        for (;;) {
            size_t nl = buf_.find('\n');
            if (nl != std::string::npos) {
                std::string line = buf_.substr(0, nl);
                buf_.erase(0, nl + 1);
                return line;
            }
            char chunk[65536];
            ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
            if (got < 0) {
                if (errno == EINTR)
                    continue;
                fatal(std::string("recv failed: ") +
                      std::strerror(errno));
            }
            if (got == 0)
                fatal("server closed the connection mid-response");
            buf_.append(chunk, static_cast<size_t>(got));
        }
    }

  private:
    int fd_;
    std::string buf_;
};

int
connectUnix(const std::string &path)
{
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        fatal(std::string("cannot create socket: ") +
              std::strerror(errno));
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        int saved = errno;
        ::close(fd);
        errno = saved;
        return -1;
    }
    return fd;
}

int
connectTcp(int port)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        fatal(std::string("cannot create socket: ") +
              std::strerror(errno));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        int saved = errno;
        ::close(fd);
        errno = saved;
        return -1;
    }
    return fd;
}

/** Resolve a catalog SoC by the names the CLI accepts. */
SocSpec
catalogSoc(const std::string &name)
{
    if (name == "sd835" || name.empty())
        return SocCatalog::snapdragon835();
    if (name == "sd835-full")
        return SocCatalog::snapdragon835Full();
    if (name == "sd821")
        return SocCatalog::snapdragon821();
    if (name == "paper")
        return SocCatalog::paperTwoIp();
    if (name == "paper-balanced")
        return SocCatalog::paperTwoIpBalanced();
    // Unknown names (future catalog growth) fall back to the paper
    // two-IP chip rather than failing the whole mix.
    return SocCatalog::paperTwoIp();
}

std::string
argvFlag(const std::vector<std::string> &argv,
         const std::string &flag, const std::string &def)
{
    for (size_t i = 0; i + 1 < argv.size(); ++i)
        if (argv[i] == flag)
            return argv[i + 1];
    return def;
}

bool
hasFlag(const std::vector<std::string> &argv, const std::string &flag)
{
    for (size_t i = 0; i + 1 < argv.size(); ++i)
        if (argv[i] == flag)
            return true;
    return false;
}

/** Serialize one request body shared by every op: inline soc +
 * usecase in the core/serialize.h wire shape. */
void
writeModelInputs(JsonWriter &json, const SocSpec &soc,
                 const Usecase &usecase)
{
    std::ostringstream soc_json;
    writeJson(soc_json, soc);
    json.key("soc");
    replay::writeJsonValue(json, parseJson(soc_json.str()));
    std::ostringstream usecase_json;
    writeJson(usecase_json, usecase);
    json.key("usecase");
    replay::writeJsonValue(json, parseJson(usecase_json.str()));
}

/**
 * Derive one serve request from a corpus bundle's recorded command.
 * CLI subcommands the daemon serves map to their op; everything else
 * (sim, ert, robust, ...) contributes an eval of the same SoC, so
 * every bundle adds load. Model inputs follow the CLI defaults the
 * bundle's argv overrides (--soc, --f, --i0, --i1).
 */
MixRequest
deriveRequest(const std::string &bundle_name,
              const std::string &subcommand,
              const std::vector<std::string> &argv, int id)
{
    static const char *kServed[] = {"eval", "sweep", "explore",
                                    "advise"};
    std::string op = "eval";
    for (const char *served : kServed)
        if (subcommand == served)
            op = served;

    bool paper_flags = hasFlag(argv, "--f") || hasFlag(argv, "--i0") ||
                       hasFlag(argv, "--i1");
    std::string soc_name =
        argvFlag(argv, "--soc", paper_flags ? "paper" : "sd835");
    SocSpec soc = catalogSoc(soc_name);

    // The cmdEval shape: work fraction f at IP[1], the rest at the
    // host IP[0], zero on any further IPs.
    double f = parseDoubleStrict(argvFlag(argv, "--f", "0.75"));
    double i0 = parseDoubleStrict(argvFlag(argv, "--i0", "8"));
    double i1 = parseDoubleStrict(argvFlag(argv, "--i1", "8"));
    std::vector<IpWork> work(soc.numIps(), IpWork{0.0, 1.0});
    work[0] = IpWork{soc.numIps() > 1 ? 1.0 - f : 1.0, i0};
    if (soc.numIps() > 1)
        work[1] = IpWork{f, i1};
    Usecase usecase("loadgen", work);

    std::ostringstream line;
    JsonWriter json(line, false);
    json.beginObject();
    json.kv("id", id);
    json.kv("op", op);
    writeModelInputs(json, soc, usecase);
    if (op == "sweep") {
        json.kv("axis", "intensity");
        json.kv("ip", 0);
        json.key("values");
        json.beginArray();
        for (int p = 0; p < 33; ++p)
            json.value(0.125 * std::pow(2.0, p * 0.375));
        json.endArray();
    } else if (op == "explore") {
        json.key("sweep");
        json.beginArray();
        json.beginObject();
        json.kv("knob", "bpeak");
        json.key("values");
        json.beginArray();
        for (double scale : {0.5, 1.0, 1.5, 2.0})
            json.value(soc.bpeak() * scale);
        json.endArray();
        json.endObject();
        json.endArray();
        json.key("cost");
        json.beginObject();
        json.kv("per_bpeak", 1e-9);
        json.endObject();
    }
    json.endObject();
    return MixRequest{bundle_name, op, line.str()};
}

/** Load the corpus and derive the request mix (sorted by filename
 * for determinism). */
std::vector<MixRequest>
corpusMix(const std::string &dir)
{
    std::vector<std::string> files = replay::listBundles(dir);
    std::sort(files.begin(), files.end());
    std::vector<MixRequest> mix;
    for (const std::string &path : files) {
        std::ifstream in(path);
        if (!in)
            fatal("cannot open corpus bundle '" + path + "'");
        std::ostringstream buf;
        buf << in.rdbuf();
        JsonValue doc = parseJson(buf.str());
        if (!doc.has("command"))
            continue;
        const JsonValue &command = doc.at("command");
        if (!command.has("subcommand") || !command.has("argv"))
            continue;
        std::vector<std::string> argv;
        for (const JsonValue &arg : command.at("argv").items())
            argv.push_back(arg.asString());
        std::string stem = path;
        size_t slash = stem.find_last_of('/');
        if (slash != std::string::npos)
            stem = stem.substr(slash + 1);
        mix.push_back(deriveRequest(
            stem, command.at("subcommand").asString(), argv,
            static_cast<int>(mix.size()) + 1));
    }
    if (mix.empty())
        fatal("no usable corpus bundles in '" + dir + "'");
    return mix;
}

/** The fixed request of the cached-eval throughput phase. */
std::string
cachedEvalRequest()
{
    SocSpec soc = SocCatalog::paperTwoIp();
    std::vector<IpWork> work{IpWork{0.25, 8.0}, IpWork{0.75, 8.0}};
    Usecase usecase("loadgen", work);
    std::ostringstream line;
    JsonWriter json(line, false);
    json.beginObject();
    json.kv("id", 0);
    json.kv("op", "eval");
    writeModelInputs(json, soc, usecase);
    json.endObject();
    return line.str();
}

double
percentile(std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    double rank = p * static_cast<double>(sorted.size() - 1);
    size_t lo = static_cast<size_t>(rank);
    size_t hi = std::min(lo + 1, sorted.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

bool
responseOk(const std::string &line)
{
    JsonValue doc = parseJson(line);
    return doc.has("ok") && doc.at("ok").isBool() &&
           doc.at("ok").asBool();
}

struct SpawnedDaemon {
    pid_t pid = -1;
    std::string socketPath;
};

SpawnedDaemon
spawnDaemon(const std::string &gables_bin, int jobs)
{
    SpawnedDaemon daemon;
    daemon.socketPath = "/tmp/gables-loadgen-" +
                        std::to_string(::getpid()) + ".sock";
    std::remove(daemon.socketPath.c_str());
    std::string jobs_str = std::to_string(jobs);
    daemon.pid = ::fork();
    if (daemon.pid < 0)
        fatal(std::string("fork failed: ") + std::strerror(errno));
    if (daemon.pid == 0) {
        ::execl(gables_bin.c_str(), gables_bin.c_str(), "serve",
                "--socket", daemon.socketPath.c_str(), "--jobs",
                jobs_str.c_str(), static_cast<char *>(nullptr));
        std::perror("execl gables");
        ::_exit(127);
    }
    return daemon;
}

int
usageError()
{
    std::cerr
        << "usage: bench_serve_loadgen [--spawn GABLES_BIN]\n"
           "           [--socket PATH | --port N] [--corpus DIR]\n"
           "           [--reps N] [--evals N] [--jobs N]\n"
           "           [--json PATH] [--shutdown]\n"
           "Drives a gables serve daemon with the corpus-derived\n"
           "request mix (latency p50/p99) and a pipelined cached-\n"
           "eval stream (requests/s). --spawn forks the daemon on a\n"
           "private unix socket and shuts it down afterwards.\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string spawn_bin;
    std::string socket_path;
    int port = -1;
    std::string corpus_dir = "tests/corpus";
    std::string json_path;
    long reps = 5;
    long evals = 200000;
    int jobs = 4;
    bool shutdown_daemon = false;

    try {
        for (int i = 1; i < argc; ++i) {
            std::string arg = argv[i];
            auto next = [&](const char *what) -> std::string {
                if (i + 1 >= argc)
                    fatal(std::string(what) + " needs a value");
                return argv[++i];
            };
            if (arg == "--spawn")
                spawn_bin = next("--spawn");
            else if (arg == "--socket")
                socket_path = next("--socket");
            else if (arg == "--port")
                port = static_cast<int>(
                    parseIntStrict(next("--port")));
            else if (arg == "--corpus")
                corpus_dir = next("--corpus");
            else if (arg == "--json")
                json_path = next("--json");
            else if (arg == "--reps")
                reps = parseIntStrict(next("--reps"));
            else if (arg == "--evals")
                evals = parseIntStrict(next("--evals"));
            else if (arg == "--jobs")
                jobs = static_cast<int>(
                    parseIntStrict(next("--jobs")));
            else if (arg == "--shutdown")
                shutdown_daemon = true;
            else if (arg == "--help" || arg == "-h") {
                usageError();
                return 0;
            }
            else {
                std::cerr << "unknown option '" << arg << "'\n";
                return usageError();
            }
        }
        if (reps < 1 || evals < 1 || jobs < 1)
            fatal("--reps, --evals and --jobs must be >= 1");
        if (spawn_bin.empty() && socket_path.empty() && port < 0)
            fatal("need --spawn, --socket or --port");
    } catch (const gables::FatalError &err) {
        std::cerr << "bench_serve_loadgen: " << err.what() << '\n';
        return usageError();
    }

    ::signal(SIGPIPE, SIG_IGN);

    SpawnedDaemon daemon;
    try {
        if (!spawn_bin.empty()) {
            daemon = spawnDaemon(spawn_bin, jobs);
            socket_path = daemon.socketPath;
            shutdown_daemon = true;
        }

        // Connect (with retries while a spawned daemon boots).
        int fd = -1;
        for (int attempt = 0; attempt < 100; ++attempt) {
            fd = socket_path.empty() ? connectTcp(port)
                                     : connectUnix(socket_path);
            if (fd >= 0)
                break;
            if (daemon.pid < 0)
                break; // external daemon: fail fast below
            std::this_thread::sleep_for(
                std::chrono::milliseconds(50));
        }
        if (fd < 0)
            fatal("cannot connect to the daemon: " +
                  std::string(std::strerror(errno)));
        LineClient client(fd);

        // Phase 1: corpus mix, serial round trips.
        std::vector<MixRequest> mix = corpusMix(corpus_dir);
        std::vector<double> latencies_us;
        latencies_us.reserve(mix.size() * static_cast<size_t>(reps));
        size_t errors = 0;
        Clock::time_point mix_t0 = Clock::now();
        for (long rep = 0; rep < reps; ++rep) {
            for (const MixRequest &req : mix) {
                Clock::time_point t0 = Clock::now();
                client.sendLine(req.line);
                std::string response = client.recvLine();
                latencies_us.push_back(secondsSince(t0) * 1e6);
                if (!responseOk(response)) {
                    ++errors;
                    std::cerr << "error response for " << req.bundle
                              << " (" << req.op
                              << "): " << response << '\n';
                }
            }
        }
        double mix_seconds = secondsSince(mix_t0);
        std::sort(latencies_us.begin(), latencies_us.end());
        double p50 = percentile(latencies_us, 0.50);
        double p99 = percentile(latencies_us, 0.99);
        double mix_rps =
            static_cast<double>(latencies_us.size()) / mix_seconds;

        // Phase 2: pipelined cached evals. A writer thread streams
        // all requests; this thread counts response newlines. The
        // first request warms the cache outside the timed window.
        std::string eval_line = cachedEvalRequest();
        eval_line += '\n';
        client.sendAll(eval_line.data(), eval_line.size());
        if (!responseOk(client.recvLine()))
            fatal("cached-eval warmup request failed");

        size_t total = static_cast<size_t>(evals);
        Clock::time_point tput_t0 = Clock::now();
        std::thread writer([&client, &eval_line, total] {
            // Batch ~128 requests per send: big enough for the
            // server to batch onto its pool, small enough to keep
            // the pipe moving.
            std::string chunk;
            chunk.reserve(eval_line.size() * 128);
            size_t sent = 0;
            while (sent < total) {
                chunk.clear();
                size_t n = std::min<size_t>(128, total - sent);
                for (size_t i = 0; i < n; ++i)
                    chunk += eval_line;
                client.sendAll(chunk.data(), chunk.size());
                sent += n;
            }
        });
        size_t received = 0;
        while (received < total) {
            client.recvLine();
            ++received;
        }
        writer.join();
        double tput_seconds = secondsSince(tput_t0);
        double tput_rps = static_cast<double>(total) / tput_seconds;

        if (shutdown_daemon) {
            client.sendLine("{\"id\": -1, \"op\": \"shutdown\"}");
            client.recvLine();
        }

        std::cout << "corpus mix: " << mix.size()
                  << " request(s) x " << reps << " rep(s), p50 "
                  << p50 << " us, p99 " << p99 << " us, "
                  << static_cast<long>(mix_rps) << " req/s, "
                  << errors << " error(s)\n"
                  << "cached eval: " << total << " requests in "
                  << tput_seconds << " s = "
                  << static_cast<long>(tput_rps) << " req/s\n";

        if (!json_path.empty()) {
            std::ostringstream out;
            JsonWriter json(out);
            json.beginObject();
            json.key("schema");
            json.beginObject();
            json.kv("name", "gables-serve-bench");
            json.kv("version", 1);
            json.endObject();
            json.kv("reps", static_cast<size_t>(reps));
            json.kv("jobs", static_cast<size_t>(jobs));
            json.key("workloads");
            json.beginObject();
            json.key("cached_eval_throughput");
            json.beginObject();
            json.kv("requests_per_sec", tput_rps);
            json.kv("requests", total);
            json.kv("seconds", tput_seconds);
            json.endObject();
            json.key("corpus_mix_serial");
            json.beginObject();
            json.kv("requests_per_sec", mix_rps);
            json.kv("p50_us", p50);
            json.kv("p99_us", p99);
            json.kv("requests", latencies_us.size());
            json.kv("errors", errors);
            json.endObject();
            json.endObject();
            json.endObject();
            out << '\n';
            writeFileAtomic(json_path, out.str());
            std::cout << "wrote " << json_path << '\n';
        }

        if (daemon.pid > 0) {
            int status = 0;
            ::waitpid(daemon.pid, &status, 0);
            if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
                std::cerr << "daemon exited abnormally\n";
                return 1;
            }
        }
        return errors == 0 ? 0 : 1;
    } catch (const gables::FatalError &err) {
        std::cerr << "bench_serve_loadgen: error: " << err.what()
                  << '\n';
        if (daemon.pid > 0)
            ::kill(daemon.pid, SIGTERM);
        return 1;
    }
}
