/**
 * @file
 * Ablation 5: simulator fidelity. Sweeps random single-IP designs
 * and operating points, comparing the analytic Gables bound against
 * the discrete-event simulator — the bound property (sim <= model)
 * and the gap distribution.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <iostream>

#include "bench_util.h"
#include "core/gables.h"
#include "parallel/parallel_for.h"
#include "sim/soc.h"
#include "soc/catalog.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace gables;

void
reproduce()
{
    bench::banner("Ablation 5",
                  "Gables bound vs simulator, random designs");
    // Draw every operating point serially first so the stream of
    // random numbers is independent of the worker count; the trials
    // themselves fan out over the pool into index-order slots.
    Rng rng(20260706);
    struct Trial {
        double peak, link, dram, intensity;
        double model = 0.0, sim = 0.0;
    };
    const int trials = 16;
    std::vector<Trial> grid(trials);
    for (Trial &trial : grid) {
        trial.peak = rng.logUniform(1e9, 100e9);
        trial.link = rng.logUniform(2e9, 50e9);
        trial.dram = rng.logUniform(2e9, 50e9);
        trial.intensity = rng.logUniform(0.05, 64.0);
    }

    parallel::parallelFor(
        grid.size(), [&](size_t i) {
            Trial &trial = grid[i];
            SocSpec spec("s", trial.peak, trial.dram,
                         {IpSpec{"IP0", 1.0, trial.link}});
            Usecase u("u", {IpWork{1.0, trial.intensity}});
            trial.model = GablesModel::evaluate(spec, u).attainable;

            auto soc = SocCatalog::simpleSim(trial.peak, trial.link,
                                             trial.dram);
            sim::KernelJob job;
            job.workingSetBytes = 64e6;
            job.totalBytes = 64e6;
            job.opsPerByte = trial.intensity;
            trial.sim = soc->run({{"IP0", job}})
                            .engine("IP0")
                            .achievedOpsRate();
        },
        parallel::ForOptions{});

    TextTable t({"peak Gops/s", "link GB/s", "DRAM GB/s", "I",
                 "model Gops/s", "sim Gops/s", "sim/model"});
    double worst = 1.0, best = 0.0, sum = 0.0;
    for (const Trial &trial : grid) {
        double ratio = trial.sim / trial.model;
        worst = std::min(worst, ratio);
        best = std::max(best, ratio);
        sum += ratio;
        t.addRow({formatDouble(trial.peak / 1e9, 2),
                  formatDouble(trial.link / 1e9, 2),
                  formatDouble(trial.dram / 1e9, 2),
                  formatDouble(trial.intensity, 3),
                  formatDouble(trial.model / 1e9, 2),
                  formatDouble(trial.sim / 1e9, 2),
                  formatDouble(ratio, 4)});
    }
    std::cout << t.render();
    std::cout << "sim/model ratio: min " << formatDouble(worst, 4)
              << ", mean " << formatDouble(sum / trials, 4)
              << ", max " << formatDouble(best, 4)
              << " (the model is an upper bound; the simulator "
                 "achieves >90% of it)\n";
}

void
BM_SimSingleRun(benchmark::State &state)
{
    auto soc = SocCatalog::simpleSim(10e9, 20e9, 40e9);
    sim::KernelJob job;
    job.workingSetBytes = 16e6;
    job.totalBytes = 16e6;
    job.opsPerByte = 1.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(soc->run({{"IP0", job}}).duration);
    }
}
BENCHMARK(BM_SimSingleRun)->Unit(benchmark::kMillisecond);

void
BM_SimEventsPerSecond(benchmark::State &state)
{
    auto soc = SocCatalog::simpleSim(10e9, 20e9, 40e9);
    sim::KernelJob job;
    job.workingSetBytes = 16e6;
    job.totalBytes = 16e6;
    job.opsPerByte = 1.0;
    uint64_t events = 0;
    for (auto _ : state) {
        soc->run({{"IP0", job}});
        events += soc->eventQueue().eventsExecuted();
    }
    state.counters["events/s"] = benchmark::Counter(
        static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimEventsPerSecond)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    reproduce();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
