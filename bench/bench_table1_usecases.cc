/**
 * @file
 * Regenerates Table I (the usecase x IP concurrency matrix) and the
 * Figure 4 WiFi-streaming dataflow, then analyzes every catalog
 * usecase on the full Snapdragon-835-like SoC: sustainable frame
 * rate, bottleneck, and DRAM traffic (the Section II-B narrative).
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include <fstream>

#include "bench_util.h"
#include "plot/heatmap.h"
#include "soc/catalog.h"
#include "soc/usecases.h"
#include "util/table.h"

namespace {

using namespace gables;

void
reproduceTableOne()
{
    bench::banner("Table I", "usecase x IP concurrency matrix");
    std::vector<std::string> headers = {"Usecase"};
    for (const std::string &ip : UsecaseCatalog::ipColumns())
        headers.push_back(ip);
    TextTable t(headers);
    for (const auto &[name, row] : UsecaseCatalog::tableOneMatrix()) {
        std::vector<std::string> cells = {name};
        for (bool active : row)
            cells.push_back(active ? "X" : "");
        t.addRow(cells);
    }
    std::cout << t.render();
    std::cout << "every usecase exercises >= 5 IPs concurrently, as "
                 "the paper's Table I shows\n";
}

void
reproduceFigure4()
{
    bench::banner("Figure 4", "WiFi streaming usecase dataflow");
    DataflowGraph g = UsecaseCatalog::wifiStreaming().graph;
    TextTable t({"buffer", "producer", "consumer", "MB/frame"});
    for (const DataflowBuffer &b : g.buffers()) {
        t.addRow({b.label, b.producer.empty() ? "(ext)" : b.producer,
                  b.consumer.empty() ? "(ext)" : b.consumer,
                  formatDouble(b.bytesPerFrame / 1e6, 3)});
    }
    std::cout << t.render();
}

void
analyzeUsecases()
{
    bench::banner("Usecase analysis",
                  "extended catalog on the full Snapdragon-835 spec");
    SocSpec soc = SocCatalog::snapdragon835Full();
    TextTable t({"usecase", "target fps", "max fps", "meets?",
                 "bottleneck", "DRAM GB/s @ target"});
    for (const UsecaseEntry &entry : UsecaseCatalog::extended()) {
        DataflowAnalysis a = entry.graph.analyze(soc);
        std::string who =
            a.bottleneckIp < 0
                ? "memory (Bpeak)"
                : soc.ip(static_cast<size_t>(a.bottleneckIp)).name;
        double demand =
            a.dramBytesPerFrame * entry.targetFps / 1e9;
        t.addRow({entry.graph.name(),
                  formatDouble(entry.targetFps, 0),
                  formatDouble(a.maxFps, 1),
                  a.maxFps >= entry.targetFps ? "yes" : "NO",
                  who, formatDouble(demand, 1)});
    }
    std::cout << t.render();
    std::cout << "the 4K240 HFR case demands more than the ~30 GB/s "
                 "the chip has -- the paper's Section II-B example\n";

    // Occupancy heatmap: how busy is each IP in each usecase when it
    // runs at its sustainable rate? (ipTime per frame x maxFps; 1.0
    // = the binding IP.)
    bench::banner("Table I (occupancy)",
                  "per-IP busy fraction at each usecase's max rate");
    std::vector<std::string> x_ticks;
    for (const std::string &ip : UsecaseCatalog::ipColumns())
        x_ticks.push_back(ip);
    std::vector<std::string> y_ticks;
    std::vector<std::vector<double>> grid;
    for (const UsecaseEntry &entry : UsecaseCatalog::extended()) {
        DataflowAnalysis a = entry.graph.analyze(soc);
        std::vector<double> row;
        for (double t_ip : a.ipTimes)
            row.push_back(t_ip * a.maxFps);
        y_ticks.push_back(entry.graph.name());
        grid.push_back(std::move(row));
    }
    HeatmapPlot map("IP occupancy across usecases", "IP",
                    "usecase");
    map.setGrid(x_ticks, y_ticks, grid);
    std::ofstream hm("table1_occupancy.svg");
    hm << map.renderSvg(52.0);
    std::cout << "wrote table1_occupancy.svg\n"
              << map.renderAscii();
}

void
BM_AnalyzeAllUsecases(benchmark::State &state)
{
    SocSpec soc = SocCatalog::snapdragon835Full();
    auto all = UsecaseCatalog::all();
    for (auto _ : state) {
        for (const UsecaseEntry &entry : all)
            benchmark::DoNotOptimize(
                entry.graph.analyze(soc).maxFps);
    }
}
BENCHMARK(BM_AnalyzeAllUsecases);

} // namespace

int
main(int argc, char **argv)
{
    reproduceTableOne();
    reproduceFigure4();
    analyzeUsecases();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
