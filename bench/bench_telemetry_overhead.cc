/**
 * @file
 * Telemetry cost accounting: the stats registry and epoch sampling
 * are observational, so the question is only how much wall-clock
 * they add to a run, never whether they change its results. Measures
 * bare runs, instrumented runs, and instrumented runs with epoch
 * sampling, plus the raw per-sample cost of the stat primitives.
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.h"
#include "sim/soc.h"
#include "soc/catalog.h"
#include "telemetry/stats.h"
#include "util/table.h"

namespace {

using namespace gables;

sim::KernelJob
benchJob()
{
    sim::KernelJob job;
    job.workingSetBytes = 16e6;
    job.totalBytes = 16e6;
    job.opsPerByte = 1.0;
    return job;
}

void
reproduce()
{
    bench::banner("Telemetry overhead",
                  "instrumented vs bare simulation runs");
    // Sanity line for the report: the instrumented run's results are
    // bit-identical to the bare run's, so overhead is the only cost.
    auto bare = SocCatalog::snapdragon835Sim();
    auto inst = SocCatalog::snapdragon835Sim();
    telemetry::StatsRegistry reg;
    inst->attachTelemetry(&reg);
    sim::KernelJob job = benchJob();
    double a = bare->run({{"CPU", job}}).duration;
    double b = inst->run({{"CPU", job}}, 32).duration;
    std::cout << "bit-identical durations: "
              << (a == b ? "yes" : "NO — INVARIANT BROKEN") << " ("
              << reg.size() << " stats registered)\n";
}

void
BM_RunBare(benchmark::State &state)
{
    auto soc = SocCatalog::snapdragon835Sim();
    sim::KernelJob job = benchJob();
    for (auto _ : state)
        benchmark::DoNotOptimize(soc->run({{"CPU", job}}).duration);
}
BENCHMARK(BM_RunBare)->Unit(benchmark::kMillisecond);

void
BM_RunWithRegistry(benchmark::State &state)
{
    auto soc = SocCatalog::snapdragon835Sim();
    telemetry::StatsRegistry reg;
    soc->attachTelemetry(&reg);
    sim::KernelJob job = benchJob();
    for (auto _ : state)
        benchmark::DoNotOptimize(soc->run({{"CPU", job}}).duration);
}
BENCHMARK(BM_RunWithRegistry)->Unit(benchmark::kMillisecond);

void
BM_RunWithRegistryAndEpochs(benchmark::State &state)
{
    auto soc = SocCatalog::snapdragon835Sim();
    telemetry::StatsRegistry reg;
    soc->attachTelemetry(&reg);
    sim::KernelJob job = benchJob();
    for (auto _ : state)
        benchmark::DoNotOptimize(
            soc->run({{"CPU", job}}, 64).duration);
}
BENCHMARK(BM_RunWithRegistryAndEpochs)->Unit(benchmark::kMillisecond);

void
BM_DistributionSample(benchmark::State &state)
{
    telemetry::Distribution d;
    double v = 0.0;
    for (auto _ : state) {
        d.sample(v);
        v += 1.0;
    }
    benchmark::DoNotOptimize(d.stddev());
}
BENCHMARK(BM_DistributionSample);

void
BM_HistogramSample(benchmark::State &state)
{
    telemetry::Histogram h(0.0, 64.0, 16);
    double v = 0.0;
    for (auto _ : state) {
        h.sample(v);
        v = v < 64.0 ? v + 1.0 : 0.0;
    }
    benchmark::DoNotOptimize(h.count());
}
BENCHMARK(BM_HistogramSample);

} // namespace

int
main(int argc, char **argv)
{
    reproduce();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
