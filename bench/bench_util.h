/**
 * @file
 * Shared helpers for the benchmark/reproduction binaries: a
 * paper-vs-measured comparison table and standard headers. Each
 * bench binary prints its reproduction tables first, then runs any
 * registered google-benchmark timings.
 */

#ifndef GABLES_BENCH_BENCH_UTIL_H
#define GABLES_BENCH_BENCH_UTIL_H

#include <iostream>
#include <string>

#include "util/strings.h"
#include "util/table.h"

namespace gables {
namespace bench {

/** Print a banner naming the experiment being regenerated. */
inline void
banner(const std::string &experiment, const std::string &what)
{
    std::cout << "\n=== " << experiment << ": " << what << " ===\n";
}

/**
 * A paper-vs-measured table: rows carry the quantity, the paper's
 * value, our value, and the relative error.
 */
class ComparisonTable
{
  public:
    ComparisonTable()
        : table_({"quantity", "paper", "ours", "rel.err"})
    {
        table_.setAlign(0, TextTable::Align::Left);
    }

    /** Add one comparison row; values are formatted by the caller. */
    void
    add(const std::string &quantity, double paper, double ours,
        const std::string &unit, int precision = 4)
    {
        double err = paper != 0.0 ? (ours - paper) / paper : 0.0;
        table_.addRow({quantity,
                       formatDouble(paper, precision) + " " + unit,
                       formatDouble(ours, precision) + " " + unit,
                       formatDouble(err * 100.0, 2) + "%"});
    }

    /** Print the table to stdout. */
    void
    print() const
    {
        std::cout << table_.render();
    }

  private:
    TextTable table_;
};

} // namespace bench
} // namespace gables

#endif // GABLES_BENCH_BENCH_UTIL_H
