file(REMOVE_RECURSE
  "../bench/bench_energy_tdp"
  "../bench/bench_energy_tdp.pdb"
  "CMakeFiles/bench_energy_tdp.dir/bench_energy_tdp.cc.o"
  "CMakeFiles/bench_energy_tdp.dir/bench_energy_tdp.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_energy_tdp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
