# Empty dependencies file for bench_energy_tdp.
# This may be replaced when dependencies are built.
