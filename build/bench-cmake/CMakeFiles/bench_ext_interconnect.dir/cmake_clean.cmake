file(REMOVE_RECURSE
  "../bench/bench_ext_interconnect"
  "../bench/bench_ext_interconnect.pdb"
  "CMakeFiles/bench_ext_interconnect.dir/bench_ext_interconnect.cc.o"
  "CMakeFiles/bench_ext_interconnect.dir/bench_ext_interconnect.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_interconnect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
