# Empty compiler generated dependencies file for bench_ext_interconnect.
# This may be replaced when dependencies are built.
