file(REMOVE_RECURSE
  "../bench/bench_ext_memside"
  "../bench/bench_ext_memside.pdb"
  "CMakeFiles/bench_ext_memside.dir/bench_ext_memside.cc.o"
  "CMakeFiles/bench_ext_memside.dir/bench_ext_memside.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_memside.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
