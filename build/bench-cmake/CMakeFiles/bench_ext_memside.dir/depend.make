# Empty dependencies file for bench_ext_memside.
# This may be replaced when dependencies are built.
