file(REMOVE_RECURSE
  "../bench/bench_ext_serialized"
  "../bench/bench_ext_serialized.pdb"
  "CMakeFiles/bench_ext_serialized.dir/bench_ext_serialized.cc.o"
  "CMakeFiles/bench_ext_serialized.dir/bench_ext_serialized.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_serialized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
