# Empty dependencies file for bench_ext_serialized.
# This may be replaced when dependencies are built.
