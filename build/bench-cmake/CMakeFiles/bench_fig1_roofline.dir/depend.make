# Empty dependencies file for bench_fig1_roofline.
# This may be replaced when dependencies are built.
