file(REMOVE_RECURSE
  "../bench/bench_fig2_market"
  "../bench/bench_fig2_market.pdb"
  "CMakeFiles/bench_fig2_market.dir/bench_fig2_market.cc.o"
  "CMakeFiles/bench_fig2_market.dir/bench_fig2_market.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
