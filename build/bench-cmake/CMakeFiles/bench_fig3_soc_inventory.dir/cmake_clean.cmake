file(REMOVE_RECURSE
  "../bench/bench_fig3_soc_inventory"
  "../bench/bench_fig3_soc_inventory.pdb"
  "CMakeFiles/bench_fig3_soc_inventory.dir/bench_fig3_soc_inventory.cc.o"
  "CMakeFiles/bench_fig3_soc_inventory.dir/bench_fig3_soc_inventory.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_soc_inventory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
