file(REMOVE_RECURSE
  "../bench/bench_fig6_twoip"
  "../bench/bench_fig6_twoip.pdb"
  "CMakeFiles/bench_fig6_twoip.dir/bench_fig6_twoip.cc.o"
  "CMakeFiles/bench_fig6_twoip.dir/bench_fig6_twoip.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_twoip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
