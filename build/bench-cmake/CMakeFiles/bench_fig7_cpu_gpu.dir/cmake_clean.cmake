file(REMOVE_RECURSE
  "../bench/bench_fig7_cpu_gpu"
  "../bench/bench_fig7_cpu_gpu.pdb"
  "CMakeFiles/bench_fig7_cpu_gpu.dir/bench_fig7_cpu_gpu.cc.o"
  "CMakeFiles/bench_fig7_cpu_gpu.dir/bench_fig7_cpu_gpu.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_cpu_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
