file(REMOVE_RECURSE
  "../bench/bench_fig8_mixing"
  "../bench/bench_fig8_mixing.pdb"
  "CMakeFiles/bench_fig8_mixing.dir/bench_fig8_mixing.cc.o"
  "CMakeFiles/bench_fig8_mixing.dir/bench_fig8_mixing.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_mixing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
