file(REMOVE_RECURSE
  "../bench/bench_fig9_dsp"
  "../bench/bench_fig9_dsp.pdb"
  "CMakeFiles/bench_fig9_dsp.dir/bench_fig9_dsp.cc.o"
  "CMakeFiles/bench_fig9_dsp.dir/bench_fig9_dsp.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
