file(REMOVE_RECURSE
  "../bench/bench_logca_offload"
  "../bench/bench_logca_offload.pdb"
  "CMakeFiles/bench_logca_offload.dir/bench_logca_offload.cc.o"
  "CMakeFiles/bench_logca_offload.dir/bench_logca_offload.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_logca_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
