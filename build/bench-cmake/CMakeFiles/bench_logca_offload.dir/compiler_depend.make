# Empty compiler generated dependencies file for bench_logca_offload.
# This may be replaced when dependencies are built.
