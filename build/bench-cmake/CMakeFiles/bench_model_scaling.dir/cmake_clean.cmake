file(REMOVE_RECURSE
  "../bench/bench_model_scaling"
  "../bench/bench_model_scaling.pdb"
  "CMakeFiles/bench_model_scaling.dir/bench_model_scaling.cc.o"
  "CMakeFiles/bench_model_scaling.dir/bench_model_scaling.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_model_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
