file(REMOVE_RECURSE
  "../bench/bench_pipeline_vs_model"
  "../bench/bench_pipeline_vs_model.pdb"
  "CMakeFiles/bench_pipeline_vs_model.dir/bench_pipeline_vs_model.cc.o"
  "CMakeFiles/bench_pipeline_vs_model.dir/bench_pipeline_vs_model.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pipeline_vs_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
