# Empty dependencies file for bench_pipeline_vs_model.
# This may be replaced when dependencies are built.
