file(REMOVE_RECURSE
  "../bench/bench_provisioner"
  "../bench/bench_provisioner.pdb"
  "CMakeFiles/bench_provisioner.dir/bench_provisioner.cc.o"
  "CMakeFiles/bench_provisioner.dir/bench_provisioner.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_provisioner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
