# Empty compiler generated dependencies file for bench_provisioner.
# This may be replaced when dependencies are built.
