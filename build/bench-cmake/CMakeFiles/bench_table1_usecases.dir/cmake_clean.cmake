file(REMOVE_RECURSE
  "../bench/bench_table1_usecases"
  "../bench/bench_table1_usecases.pdb"
  "CMakeFiles/bench_table1_usecases.dir/bench_table1_usecases.cc.o"
  "CMakeFiles/bench_table1_usecases.dir/bench_table1_usecases.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_usecases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
