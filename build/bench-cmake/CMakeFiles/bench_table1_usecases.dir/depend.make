# Empty dependencies file for bench_table1_usecases.
# This may be replaced when dependencies are built.
