file(REMOVE_RECURSE
  "CMakeFiles/architects_day.dir/architects_day.cpp.o"
  "CMakeFiles/architects_day.dir/architects_day.cpp.o.d"
  "architects_day"
  "architects_day.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/architects_day.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
