# Empty dependencies file for architects_day.
# This may be replaced when dependencies are built.
