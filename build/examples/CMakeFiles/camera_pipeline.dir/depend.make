# Empty dependencies file for camera_pipeline.
# This may be replaced when dependencies are built.
