# Empty dependencies file for empirical_roofline.
# This may be replaced when dependencies are built.
