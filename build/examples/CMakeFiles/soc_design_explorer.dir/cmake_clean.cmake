file(REMOVE_RECURSE
  "CMakeFiles/soc_design_explorer.dir/soc_design_explorer.cpp.o"
  "CMakeFiles/soc_design_explorer.dir/soc_design_explorer.cpp.o.d"
  "soc_design_explorer"
  "soc_design_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soc_design_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
