# Empty dependencies file for soc_design_explorer.
# This may be replaced when dependencies are built.
