
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/advisor.cc" "src/analysis/CMakeFiles/gables_analysis.dir/advisor.cc.o" "gcc" "src/analysis/CMakeFiles/gables_analysis.dir/advisor.cc.o.d"
  "/root/repo/src/analysis/balance.cc" "src/analysis/CMakeFiles/gables_analysis.dir/balance.cc.o" "gcc" "src/analysis/CMakeFiles/gables_analysis.dir/balance.cc.o.d"
  "/root/repo/src/analysis/explorer.cc" "src/analysis/CMakeFiles/gables_analysis.dir/explorer.cc.o" "gcc" "src/analysis/CMakeFiles/gables_analysis.dir/explorer.cc.o.d"
  "/root/repo/src/analysis/optimal_split.cc" "src/analysis/CMakeFiles/gables_analysis.dir/optimal_split.cc.o" "gcc" "src/analysis/CMakeFiles/gables_analysis.dir/optimal_split.cc.o.d"
  "/root/repo/src/analysis/provisioner.cc" "src/analysis/CMakeFiles/gables_analysis.dir/provisioner.cc.o" "gcc" "src/analysis/CMakeFiles/gables_analysis.dir/provisioner.cc.o.d"
  "/root/repo/src/analysis/robustness.cc" "src/analysis/CMakeFiles/gables_analysis.dir/robustness.cc.o" "gcc" "src/analysis/CMakeFiles/gables_analysis.dir/robustness.cc.o.d"
  "/root/repo/src/analysis/sensitivity.cc" "src/analysis/CMakeFiles/gables_analysis.dir/sensitivity.cc.o" "gcc" "src/analysis/CMakeFiles/gables_analysis.dir/sensitivity.cc.o.d"
  "/root/repo/src/analysis/sweep.cc" "src/analysis/CMakeFiles/gables_analysis.dir/sweep.cc.o" "gcc" "src/analysis/CMakeFiles/gables_analysis.dir/sweep.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gables_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gables_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
