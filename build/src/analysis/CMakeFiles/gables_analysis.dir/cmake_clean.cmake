file(REMOVE_RECURSE
  "CMakeFiles/gables_analysis.dir/advisor.cc.o"
  "CMakeFiles/gables_analysis.dir/advisor.cc.o.d"
  "CMakeFiles/gables_analysis.dir/balance.cc.o"
  "CMakeFiles/gables_analysis.dir/balance.cc.o.d"
  "CMakeFiles/gables_analysis.dir/explorer.cc.o"
  "CMakeFiles/gables_analysis.dir/explorer.cc.o.d"
  "CMakeFiles/gables_analysis.dir/optimal_split.cc.o"
  "CMakeFiles/gables_analysis.dir/optimal_split.cc.o.d"
  "CMakeFiles/gables_analysis.dir/provisioner.cc.o"
  "CMakeFiles/gables_analysis.dir/provisioner.cc.o.d"
  "CMakeFiles/gables_analysis.dir/robustness.cc.o"
  "CMakeFiles/gables_analysis.dir/robustness.cc.o.d"
  "CMakeFiles/gables_analysis.dir/sensitivity.cc.o"
  "CMakeFiles/gables_analysis.dir/sensitivity.cc.o.d"
  "CMakeFiles/gables_analysis.dir/sweep.cc.o"
  "CMakeFiles/gables_analysis.dir/sweep.cc.o.d"
  "libgables_analysis.a"
  "libgables_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gables_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
