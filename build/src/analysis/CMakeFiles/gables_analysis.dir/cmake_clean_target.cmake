file(REMOVE_RECURSE
  "libgables_analysis.a"
)
