# Empty dependencies file for gables_analysis.
# This may be replaced when dependencies are built.
