file(REMOVE_RECURSE
  "CMakeFiles/gables.dir/gables_main.cc.o"
  "CMakeFiles/gables.dir/gables_main.cc.o.d"
  "gables"
  "gables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
