# Empty dependencies file for gables.
# This may be replaced when dependencies are built.
