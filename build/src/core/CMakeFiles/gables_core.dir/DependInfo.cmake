
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/amdahl.cc" "src/core/CMakeFiles/gables_core.dir/amdahl.cc.o" "gcc" "src/core/CMakeFiles/gables_core.dir/amdahl.cc.o.d"
  "/root/repo/src/core/combined.cc" "src/core/CMakeFiles/gables_core.dir/combined.cc.o" "gcc" "src/core/CMakeFiles/gables_core.dir/combined.cc.o.d"
  "/root/repo/src/core/energy.cc" "src/core/CMakeFiles/gables_core.dir/energy.cc.o" "gcc" "src/core/CMakeFiles/gables_core.dir/energy.cc.o.d"
  "/root/repo/src/core/gables.cc" "src/core/CMakeFiles/gables_core.dir/gables.cc.o" "gcc" "src/core/CMakeFiles/gables_core.dir/gables.cc.o.d"
  "/root/repo/src/core/interconnect.cc" "src/core/CMakeFiles/gables_core.dir/interconnect.cc.o" "gcc" "src/core/CMakeFiles/gables_core.dir/interconnect.cc.o.d"
  "/root/repo/src/core/logca.cc" "src/core/CMakeFiles/gables_core.dir/logca.cc.o" "gcc" "src/core/CMakeFiles/gables_core.dir/logca.cc.o.d"
  "/root/repo/src/core/memside.cc" "src/core/CMakeFiles/gables_core.dir/memside.cc.o" "gcc" "src/core/CMakeFiles/gables_core.dir/memside.cc.o.d"
  "/root/repo/src/core/multiamdahl.cc" "src/core/CMakeFiles/gables_core.dir/multiamdahl.cc.o" "gcc" "src/core/CMakeFiles/gables_core.dir/multiamdahl.cc.o.d"
  "/root/repo/src/core/phased.cc" "src/core/CMakeFiles/gables_core.dir/phased.cc.o" "gcc" "src/core/CMakeFiles/gables_core.dir/phased.cc.o.d"
  "/root/repo/src/core/roofline.cc" "src/core/CMakeFiles/gables_core.dir/roofline.cc.o" "gcc" "src/core/CMakeFiles/gables_core.dir/roofline.cc.o.d"
  "/root/repo/src/core/serialize.cc" "src/core/CMakeFiles/gables_core.dir/serialize.cc.o" "gcc" "src/core/CMakeFiles/gables_core.dir/serialize.cc.o.d"
  "/root/repo/src/core/serialized.cc" "src/core/CMakeFiles/gables_core.dir/serialized.cc.o" "gcc" "src/core/CMakeFiles/gables_core.dir/serialized.cc.o.d"
  "/root/repo/src/core/soc_spec.cc" "src/core/CMakeFiles/gables_core.dir/soc_spec.cc.o" "gcc" "src/core/CMakeFiles/gables_core.dir/soc_spec.cc.o.d"
  "/root/repo/src/core/usecase.cc" "src/core/CMakeFiles/gables_core.dir/usecase.cc.o" "gcc" "src/core/CMakeFiles/gables_core.dir/usecase.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/gables_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
