file(REMOVE_RECURSE
  "CMakeFiles/gables_core.dir/amdahl.cc.o"
  "CMakeFiles/gables_core.dir/amdahl.cc.o.d"
  "CMakeFiles/gables_core.dir/combined.cc.o"
  "CMakeFiles/gables_core.dir/combined.cc.o.d"
  "CMakeFiles/gables_core.dir/energy.cc.o"
  "CMakeFiles/gables_core.dir/energy.cc.o.d"
  "CMakeFiles/gables_core.dir/gables.cc.o"
  "CMakeFiles/gables_core.dir/gables.cc.o.d"
  "CMakeFiles/gables_core.dir/interconnect.cc.o"
  "CMakeFiles/gables_core.dir/interconnect.cc.o.d"
  "CMakeFiles/gables_core.dir/logca.cc.o"
  "CMakeFiles/gables_core.dir/logca.cc.o.d"
  "CMakeFiles/gables_core.dir/memside.cc.o"
  "CMakeFiles/gables_core.dir/memside.cc.o.d"
  "CMakeFiles/gables_core.dir/multiamdahl.cc.o"
  "CMakeFiles/gables_core.dir/multiamdahl.cc.o.d"
  "CMakeFiles/gables_core.dir/phased.cc.o"
  "CMakeFiles/gables_core.dir/phased.cc.o.d"
  "CMakeFiles/gables_core.dir/roofline.cc.o"
  "CMakeFiles/gables_core.dir/roofline.cc.o.d"
  "CMakeFiles/gables_core.dir/serialize.cc.o"
  "CMakeFiles/gables_core.dir/serialize.cc.o.d"
  "CMakeFiles/gables_core.dir/serialized.cc.o"
  "CMakeFiles/gables_core.dir/serialized.cc.o.d"
  "CMakeFiles/gables_core.dir/soc_spec.cc.o"
  "CMakeFiles/gables_core.dir/soc_spec.cc.o.d"
  "CMakeFiles/gables_core.dir/usecase.cc.o"
  "CMakeFiles/gables_core.dir/usecase.cc.o.d"
  "libgables_core.a"
  "libgables_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gables_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
