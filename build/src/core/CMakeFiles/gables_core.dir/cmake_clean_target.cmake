file(REMOVE_RECURSE
  "libgables_core.a"
)
