# Empty dependencies file for gables_core.
# This may be replaced when dependencies are built.
