file(REMOVE_RECURSE
  "CMakeFiles/gables_ert.dir/ert.cc.o"
  "CMakeFiles/gables_ert.dir/ert.cc.o.d"
  "CMakeFiles/gables_ert.dir/fitter.cc.o"
  "CMakeFiles/gables_ert.dir/fitter.cc.o.d"
  "libgables_ert.a"
  "libgables_ert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gables_ert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
