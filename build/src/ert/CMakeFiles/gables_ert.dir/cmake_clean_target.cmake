file(REMOVE_RECURSE
  "libgables_ert.a"
)
