# Empty dependencies file for gables_ert.
# This may be replaced when dependencies are built.
