
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/plot/ascii.cc" "src/plot/CMakeFiles/gables_plot.dir/ascii.cc.o" "gcc" "src/plot/CMakeFiles/gables_plot.dir/ascii.cc.o.d"
  "/root/repo/src/plot/axes.cc" "src/plot/CMakeFiles/gables_plot.dir/axes.cc.o" "gcc" "src/plot/CMakeFiles/gables_plot.dir/axes.cc.o.d"
  "/root/repo/src/plot/heatmap.cc" "src/plot/CMakeFiles/gables_plot.dir/heatmap.cc.o" "gcc" "src/plot/CMakeFiles/gables_plot.dir/heatmap.cc.o.d"
  "/root/repo/src/plot/roofline_plot.cc" "src/plot/CMakeFiles/gables_plot.dir/roofline_plot.cc.o" "gcc" "src/plot/CMakeFiles/gables_plot.dir/roofline_plot.cc.o.d"
  "/root/repo/src/plot/series_plot.cc" "src/plot/CMakeFiles/gables_plot.dir/series_plot.cc.o" "gcc" "src/plot/CMakeFiles/gables_plot.dir/series_plot.cc.o.d"
  "/root/repo/src/plot/svg.cc" "src/plot/CMakeFiles/gables_plot.dir/svg.cc.o" "gcc" "src/plot/CMakeFiles/gables_plot.dir/svg.cc.o.d"
  "/root/repo/src/plot/viz_export.cc" "src/plot/CMakeFiles/gables_plot.dir/viz_export.cc.o" "gcc" "src/plot/CMakeFiles/gables_plot.dir/viz_export.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gables_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/gables_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gables_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
