file(REMOVE_RECURSE
  "CMakeFiles/gables_plot.dir/ascii.cc.o"
  "CMakeFiles/gables_plot.dir/ascii.cc.o.d"
  "CMakeFiles/gables_plot.dir/axes.cc.o"
  "CMakeFiles/gables_plot.dir/axes.cc.o.d"
  "CMakeFiles/gables_plot.dir/heatmap.cc.o"
  "CMakeFiles/gables_plot.dir/heatmap.cc.o.d"
  "CMakeFiles/gables_plot.dir/roofline_plot.cc.o"
  "CMakeFiles/gables_plot.dir/roofline_plot.cc.o.d"
  "CMakeFiles/gables_plot.dir/series_plot.cc.o"
  "CMakeFiles/gables_plot.dir/series_plot.cc.o.d"
  "CMakeFiles/gables_plot.dir/svg.cc.o"
  "CMakeFiles/gables_plot.dir/svg.cc.o.d"
  "CMakeFiles/gables_plot.dir/viz_export.cc.o"
  "CMakeFiles/gables_plot.dir/viz_export.cc.o.d"
  "libgables_plot.a"
  "libgables_plot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gables_plot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
