file(REMOVE_RECURSE
  "libgables_plot.a"
)
