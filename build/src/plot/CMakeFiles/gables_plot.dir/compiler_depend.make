# Empty compiler generated dependencies file for gables_plot.
# This may be replaced when dependencies are built.
