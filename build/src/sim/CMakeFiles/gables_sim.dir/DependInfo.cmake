
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/event_queue.cc" "src/sim/CMakeFiles/gables_sim.dir/event_queue.cc.o" "gcc" "src/sim/CMakeFiles/gables_sim.dir/event_queue.cc.o.d"
  "/root/repo/src/sim/ip_engine.cc" "src/sim/CMakeFiles/gables_sim.dir/ip_engine.cc.o" "gcc" "src/sim/CMakeFiles/gables_sim.dir/ip_engine.cc.o.d"
  "/root/repo/src/sim/memory_system.cc" "src/sim/CMakeFiles/gables_sim.dir/memory_system.cc.o" "gcc" "src/sim/CMakeFiles/gables_sim.dir/memory_system.cc.o.d"
  "/root/repo/src/sim/resource.cc" "src/sim/CMakeFiles/gables_sim.dir/resource.cc.o" "gcc" "src/sim/CMakeFiles/gables_sim.dir/resource.cc.o.d"
  "/root/repo/src/sim/soc.cc" "src/sim/CMakeFiles/gables_sim.dir/soc.cc.o" "gcc" "src/sim/CMakeFiles/gables_sim.dir/soc.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/sim/CMakeFiles/gables_sim.dir/trace.cc.o" "gcc" "src/sim/CMakeFiles/gables_sim.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/gables_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
