file(REMOVE_RECURSE
  "CMakeFiles/gables_sim.dir/event_queue.cc.o"
  "CMakeFiles/gables_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/gables_sim.dir/ip_engine.cc.o"
  "CMakeFiles/gables_sim.dir/ip_engine.cc.o.d"
  "CMakeFiles/gables_sim.dir/memory_system.cc.o"
  "CMakeFiles/gables_sim.dir/memory_system.cc.o.d"
  "CMakeFiles/gables_sim.dir/resource.cc.o"
  "CMakeFiles/gables_sim.dir/resource.cc.o.d"
  "CMakeFiles/gables_sim.dir/soc.cc.o"
  "CMakeFiles/gables_sim.dir/soc.cc.o.d"
  "CMakeFiles/gables_sim.dir/trace.cc.o"
  "CMakeFiles/gables_sim.dir/trace.cc.o.d"
  "libgables_sim.a"
  "libgables_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gables_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
