file(REMOVE_RECURSE
  "libgables_sim.a"
)
