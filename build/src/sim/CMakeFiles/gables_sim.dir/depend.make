# Empty dependencies file for gables_sim.
# This may be replaced when dependencies are built.
