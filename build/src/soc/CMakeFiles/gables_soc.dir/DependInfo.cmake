
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/soc/catalog.cc" "src/soc/CMakeFiles/gables_soc.dir/catalog.cc.o" "gcc" "src/soc/CMakeFiles/gables_soc.dir/catalog.cc.o.d"
  "/root/repo/src/soc/config.cc" "src/soc/CMakeFiles/gables_soc.dir/config.cc.o" "gcc" "src/soc/CMakeFiles/gables_soc.dir/config.cc.o.d"
  "/root/repo/src/soc/dataflow.cc" "src/soc/CMakeFiles/gables_soc.dir/dataflow.cc.o" "gcc" "src/soc/CMakeFiles/gables_soc.dir/dataflow.cc.o.d"
  "/root/repo/src/soc/market_data.cc" "src/soc/CMakeFiles/gables_soc.dir/market_data.cc.o" "gcc" "src/soc/CMakeFiles/gables_soc.dir/market_data.cc.o.d"
  "/root/repo/src/soc/pipeline.cc" "src/soc/CMakeFiles/gables_soc.dir/pipeline.cc.o" "gcc" "src/soc/CMakeFiles/gables_soc.dir/pipeline.cc.o.d"
  "/root/repo/src/soc/usecases.cc" "src/soc/CMakeFiles/gables_soc.dir/usecases.cc.o" "gcc" "src/soc/CMakeFiles/gables_soc.dir/usecases.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gables_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gables_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gables_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
