file(REMOVE_RECURSE
  "CMakeFiles/gables_soc.dir/catalog.cc.o"
  "CMakeFiles/gables_soc.dir/catalog.cc.o.d"
  "CMakeFiles/gables_soc.dir/config.cc.o"
  "CMakeFiles/gables_soc.dir/config.cc.o.d"
  "CMakeFiles/gables_soc.dir/dataflow.cc.o"
  "CMakeFiles/gables_soc.dir/dataflow.cc.o.d"
  "CMakeFiles/gables_soc.dir/market_data.cc.o"
  "CMakeFiles/gables_soc.dir/market_data.cc.o.d"
  "CMakeFiles/gables_soc.dir/pipeline.cc.o"
  "CMakeFiles/gables_soc.dir/pipeline.cc.o.d"
  "CMakeFiles/gables_soc.dir/usecases.cc.o"
  "CMakeFiles/gables_soc.dir/usecases.cc.o.d"
  "libgables_soc.a"
  "libgables_soc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gables_soc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
