file(REMOVE_RECURSE
  "libgables_soc.a"
)
