# Empty dependencies file for gables_soc.
# This may be replaced when dependencies are built.
