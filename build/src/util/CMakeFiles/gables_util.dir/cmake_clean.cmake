file(REMOVE_RECURSE
  "CMakeFiles/gables_util.dir/arg_parser.cc.o"
  "CMakeFiles/gables_util.dir/arg_parser.cc.o.d"
  "CMakeFiles/gables_util.dir/csv.cc.o"
  "CMakeFiles/gables_util.dir/csv.cc.o.d"
  "CMakeFiles/gables_util.dir/json_writer.cc.o"
  "CMakeFiles/gables_util.dir/json_writer.cc.o.d"
  "CMakeFiles/gables_util.dir/logging.cc.o"
  "CMakeFiles/gables_util.dir/logging.cc.o.d"
  "CMakeFiles/gables_util.dir/math_util.cc.o"
  "CMakeFiles/gables_util.dir/math_util.cc.o.d"
  "CMakeFiles/gables_util.dir/rng.cc.o"
  "CMakeFiles/gables_util.dir/rng.cc.o.d"
  "CMakeFiles/gables_util.dir/strings.cc.o"
  "CMakeFiles/gables_util.dir/strings.cc.o.d"
  "CMakeFiles/gables_util.dir/table.cc.o"
  "CMakeFiles/gables_util.dir/table.cc.o.d"
  "CMakeFiles/gables_util.dir/units.cc.o"
  "CMakeFiles/gables_util.dir/units.cc.o.d"
  "libgables_util.a"
  "libgables_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gables_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
