file(REMOVE_RECURSE
  "libgables_util.a"
)
