# Empty compiler generated dependencies file for gables_util.
# This may be replaced when dependencies are built.
