file(REMOVE_RECURSE
  "CMakeFiles/analysis_advisor_test.dir/analysis_advisor_test.cc.o"
  "CMakeFiles/analysis_advisor_test.dir/analysis_advisor_test.cc.o.d"
  "analysis_advisor_test"
  "analysis_advisor_test.pdb"
  "analysis_advisor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_advisor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
