# Empty dependencies file for analysis_advisor_test.
# This may be replaced when dependencies are built.
