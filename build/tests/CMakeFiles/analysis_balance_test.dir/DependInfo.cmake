
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis_balance_test.cc" "tests/CMakeFiles/analysis_balance_test.dir/analysis_balance_test.cc.o" "gcc" "tests/CMakeFiles/analysis_balance_test.dir/analysis_balance_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/gables_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gables_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ert/CMakeFiles/gables_ert.dir/DependInfo.cmake"
  "/root/repo/build/src/plot/CMakeFiles/gables_plot.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gables_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/gables_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gables_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
