file(REMOVE_RECURSE
  "CMakeFiles/analysis_explorer_test.dir/analysis_explorer_test.cc.o"
  "CMakeFiles/analysis_explorer_test.dir/analysis_explorer_test.cc.o.d"
  "analysis_explorer_test"
  "analysis_explorer_test.pdb"
  "analysis_explorer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_explorer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
