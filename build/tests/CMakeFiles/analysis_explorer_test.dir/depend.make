# Empty dependencies file for analysis_explorer_test.
# This may be replaced when dependencies are built.
