file(REMOVE_RECURSE
  "CMakeFiles/analysis_optimal_split_test.dir/analysis_optimal_split_test.cc.o"
  "CMakeFiles/analysis_optimal_split_test.dir/analysis_optimal_split_test.cc.o.d"
  "analysis_optimal_split_test"
  "analysis_optimal_split_test.pdb"
  "analysis_optimal_split_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_optimal_split_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
