# Empty dependencies file for analysis_optimal_split_test.
# This may be replaced when dependencies are built.
