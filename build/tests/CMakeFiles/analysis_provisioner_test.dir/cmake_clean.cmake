file(REMOVE_RECURSE
  "CMakeFiles/analysis_provisioner_test.dir/analysis_provisioner_test.cc.o"
  "CMakeFiles/analysis_provisioner_test.dir/analysis_provisioner_test.cc.o.d"
  "analysis_provisioner_test"
  "analysis_provisioner_test.pdb"
  "analysis_provisioner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_provisioner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
