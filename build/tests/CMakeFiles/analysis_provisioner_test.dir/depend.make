# Empty dependencies file for analysis_provisioner_test.
# This may be replaced when dependencies are built.
