file(REMOVE_RECURSE
  "CMakeFiles/analysis_robustness_test.dir/analysis_robustness_test.cc.o"
  "CMakeFiles/analysis_robustness_test.dir/analysis_robustness_test.cc.o.d"
  "analysis_robustness_test"
  "analysis_robustness_test.pdb"
  "analysis_robustness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_robustness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
