# Empty dependencies file for analysis_robustness_test.
# This may be replaced when dependencies are built.
