file(REMOVE_RECURSE
  "CMakeFiles/analysis_sensitivity_test.dir/analysis_sensitivity_test.cc.o"
  "CMakeFiles/analysis_sensitivity_test.dir/analysis_sensitivity_test.cc.o.d"
  "analysis_sensitivity_test"
  "analysis_sensitivity_test.pdb"
  "analysis_sensitivity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_sensitivity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
