# Empty dependencies file for analysis_sensitivity_test.
# This may be replaced when dependencies are built.
