# Empty dependencies file for analysis_sweep_test.
# This may be replaced when dependencies are built.
