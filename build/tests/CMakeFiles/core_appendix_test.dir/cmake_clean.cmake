file(REMOVE_RECURSE
  "CMakeFiles/core_appendix_test.dir/core_appendix_test.cc.o"
  "CMakeFiles/core_appendix_test.dir/core_appendix_test.cc.o.d"
  "core_appendix_test"
  "core_appendix_test.pdb"
  "core_appendix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_appendix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
