# Empty compiler generated dependencies file for core_appendix_test.
# This may be replaced when dependencies are built.
