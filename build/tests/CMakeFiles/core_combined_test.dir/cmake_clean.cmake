file(REMOVE_RECURSE
  "CMakeFiles/core_combined_test.dir/core_combined_test.cc.o"
  "CMakeFiles/core_combined_test.dir/core_combined_test.cc.o.d"
  "core_combined_test"
  "core_combined_test.pdb"
  "core_combined_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_combined_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
