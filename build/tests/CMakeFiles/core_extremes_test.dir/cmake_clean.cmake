file(REMOVE_RECURSE
  "CMakeFiles/core_extremes_test.dir/core_extremes_test.cc.o"
  "CMakeFiles/core_extremes_test.dir/core_extremes_test.cc.o.d"
  "core_extremes_test"
  "core_extremes_test.pdb"
  "core_extremes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_extremes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
