# Empty dependencies file for core_extremes_test.
# This may be replaced when dependencies are built.
