file(REMOVE_RECURSE
  "CMakeFiles/core_gables_test.dir/core_gables_test.cc.o"
  "CMakeFiles/core_gables_test.dir/core_gables_test.cc.o.d"
  "core_gables_test"
  "core_gables_test.pdb"
  "core_gables_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_gables_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
