# Empty compiler generated dependencies file for core_gables_test.
# This may be replaced when dependencies are built.
