file(REMOVE_RECURSE
  "CMakeFiles/core_logca_test.dir/core_logca_test.cc.o"
  "CMakeFiles/core_logca_test.dir/core_logca_test.cc.o.d"
  "core_logca_test"
  "core_logca_test.pdb"
  "core_logca_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_logca_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
