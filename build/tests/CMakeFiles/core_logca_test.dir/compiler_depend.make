# Empty compiler generated dependencies file for core_logca_test.
# This may be replaced when dependencies are built.
