file(REMOVE_RECURSE
  "CMakeFiles/core_roofline_test.dir/core_roofline_test.cc.o"
  "CMakeFiles/core_roofline_test.dir/core_roofline_test.cc.o.d"
  "core_roofline_test"
  "core_roofline_test.pdb"
  "core_roofline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_roofline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
