# Empty compiler generated dependencies file for ert_test.
# This may be replaced when dependencies are built.
