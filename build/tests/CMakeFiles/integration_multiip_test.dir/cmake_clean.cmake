file(REMOVE_RECURSE
  "CMakeFiles/integration_multiip_test.dir/integration_multiip_test.cc.o"
  "CMakeFiles/integration_multiip_test.dir/integration_multiip_test.cc.o.d"
  "integration_multiip_test"
  "integration_multiip_test.pdb"
  "integration_multiip_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_multiip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
