# Empty compiler generated dependencies file for integration_multiip_test.
# This may be replaced when dependencies are built.
