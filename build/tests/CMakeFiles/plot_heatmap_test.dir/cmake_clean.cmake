file(REMOVE_RECURSE
  "CMakeFiles/plot_heatmap_test.dir/plot_heatmap_test.cc.o"
  "CMakeFiles/plot_heatmap_test.dir/plot_heatmap_test.cc.o.d"
  "plot_heatmap_test"
  "plot_heatmap_test.pdb"
  "plot_heatmap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plot_heatmap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
