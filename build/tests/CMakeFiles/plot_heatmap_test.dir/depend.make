# Empty dependencies file for plot_heatmap_test.
# This may be replaced when dependencies are built.
