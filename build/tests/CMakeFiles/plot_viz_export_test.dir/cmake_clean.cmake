file(REMOVE_RECURSE
  "CMakeFiles/plot_viz_export_test.dir/plot_viz_export_test.cc.o"
  "CMakeFiles/plot_viz_export_test.dir/plot_viz_export_test.cc.o.d"
  "plot_viz_export_test"
  "plot_viz_export_test.pdb"
  "plot_viz_export_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plot_viz_export_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
