# Empty compiler generated dependencies file for plot_viz_export_test.
# This may be replaced when dependencies are built.
