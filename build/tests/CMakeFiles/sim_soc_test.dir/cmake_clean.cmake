file(REMOVE_RECURSE
  "CMakeFiles/sim_soc_test.dir/sim_soc_test.cc.o"
  "CMakeFiles/sim_soc_test.dir/sim_soc_test.cc.o.d"
  "sim_soc_test"
  "sim_soc_test.pdb"
  "sim_soc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_soc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
