# Empty compiler generated dependencies file for sim_soc_test.
# This may be replaced when dependencies are built.
