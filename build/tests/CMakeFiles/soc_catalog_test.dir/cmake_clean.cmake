file(REMOVE_RECURSE
  "CMakeFiles/soc_catalog_test.dir/soc_catalog_test.cc.o"
  "CMakeFiles/soc_catalog_test.dir/soc_catalog_test.cc.o.d"
  "soc_catalog_test"
  "soc_catalog_test.pdb"
  "soc_catalog_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soc_catalog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
