# Empty compiler generated dependencies file for soc_catalog_test.
# This may be replaced when dependencies are built.
