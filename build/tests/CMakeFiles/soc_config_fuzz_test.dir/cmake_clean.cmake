file(REMOVE_RECURSE
  "CMakeFiles/soc_config_fuzz_test.dir/soc_config_fuzz_test.cc.o"
  "CMakeFiles/soc_config_fuzz_test.dir/soc_config_fuzz_test.cc.o.d"
  "soc_config_fuzz_test"
  "soc_config_fuzz_test.pdb"
  "soc_config_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soc_config_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
