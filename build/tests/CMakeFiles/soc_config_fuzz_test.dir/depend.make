# Empty dependencies file for soc_config_fuzz_test.
# This may be replaced when dependencies are built.
