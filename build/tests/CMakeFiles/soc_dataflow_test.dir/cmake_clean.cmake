file(REMOVE_RECURSE
  "CMakeFiles/soc_dataflow_test.dir/soc_dataflow_test.cc.o"
  "CMakeFiles/soc_dataflow_test.dir/soc_dataflow_test.cc.o.d"
  "soc_dataflow_test"
  "soc_dataflow_test.pdb"
  "soc_dataflow_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soc_dataflow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
