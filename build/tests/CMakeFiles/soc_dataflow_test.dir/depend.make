# Empty dependencies file for soc_dataflow_test.
# This may be replaced when dependencies are built.
