file(REMOVE_RECURSE
  "CMakeFiles/soc_pipeline_test.dir/soc_pipeline_test.cc.o"
  "CMakeFiles/soc_pipeline_test.dir/soc_pipeline_test.cc.o.d"
  "soc_pipeline_test"
  "soc_pipeline_test.pdb"
  "soc_pipeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soc_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
