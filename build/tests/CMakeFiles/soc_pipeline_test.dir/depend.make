# Empty dependencies file for soc_pipeline_test.
# This may be replaced when dependencies are built.
