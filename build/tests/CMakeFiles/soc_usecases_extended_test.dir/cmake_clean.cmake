file(REMOVE_RECURSE
  "CMakeFiles/soc_usecases_extended_test.dir/soc_usecases_extended_test.cc.o"
  "CMakeFiles/soc_usecases_extended_test.dir/soc_usecases_extended_test.cc.o.d"
  "soc_usecases_extended_test"
  "soc_usecases_extended_test.pdb"
  "soc_usecases_extended_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soc_usecases_extended_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
