# Empty dependencies file for soc_usecases_extended_test.
# This may be replaced when dependencies are built.
