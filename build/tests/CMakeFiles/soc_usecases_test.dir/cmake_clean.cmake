file(REMOVE_RECURSE
  "CMakeFiles/soc_usecases_test.dir/soc_usecases_test.cc.o"
  "CMakeFiles/soc_usecases_test.dir/soc_usecases_test.cc.o.d"
  "soc_usecases_test"
  "soc_usecases_test.pdb"
  "soc_usecases_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soc_usecases_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
