file(REMOVE_RECURSE
  "CMakeFiles/util_arg_parser_test.dir/util_arg_parser_test.cc.o"
  "CMakeFiles/util_arg_parser_test.dir/util_arg_parser_test.cc.o.d"
  "util_arg_parser_test"
  "util_arg_parser_test.pdb"
  "util_arg_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_arg_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
