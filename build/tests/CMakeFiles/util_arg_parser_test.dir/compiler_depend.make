# Empty compiler generated dependencies file for util_arg_parser_test.
# This may be replaced when dependencies are built.
