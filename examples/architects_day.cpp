/**
 * @file
 * An SoC architect's day with Gables: take one candidate design and
 * one future usecase estimate, and answer the questions that come up
 * in an early-stage design review, end to end:
 *
 *   1. where does the usecase bottleneck?            (evaluate)
 *   2. which single move buys the most?              (advisor)
 *   3. how sure are we, given fuzzy estimates?       (robustness)
 *   4. what does it cost in watts — and what does a
 *      3 W phone budget leave on the table?          (energy)
 *   5. does a dynamic pipeline confirm the bound?    (pipeline sim)
 *
 * Run: build/examples/architects_day
 */

#include <iostream>

#include "analysis/advisor.h"
#include "analysis/robustness.h"
#include "core/energy.h"
#include "core/gables.h"
#include "soc/catalog.h"
#include "soc/pipeline.h"
#include "soc/usecases.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/units.h"

using namespace gables;

int
main()
{
    SocSpec soc = SocCatalog::snapdragon835Full();
    UsecaseEntry ar = UsecaseCatalog::arNavigation();
    Usecase usecase = ar.graph.toUsecase(soc);

    // 1. Where does it bottleneck?
    GablesResult base = GablesModel::evaluate(soc, usecase);
    std::cout << "1. " << ar.graph.name() << " on " << soc.name()
              << ": " << formatOpsRate(base.attainable)
              << ", bound by " << base.bottleneckLabel(soc) << '\n';
    DataflowAnalysis analysis = ar.graph.analyze(soc);
    std::cout << "   frame-rate view: "
              << formatDouble(analysis.maxFps, 1) << " fps vs the "
              << formatDouble(ar.targetFps, 0) << " fps target\n\n";

    // 2. Which single move buys the most?
    std::cout << "2. top design moves:\n";
    auto advice = Advisor::advise(soc, usecase);
    int shown = 0;
    for (const Advice &a : advice) {
        if (a.kind == AdviceKind::ShrinkSlack || shown == 3)
            continue;
        std::cout << "   " << formatDouble(a.gain, 2) << "x  "
                  << a.description << '\n';
        ++shown;
    }
    std::cout << '\n';

    // 3. How sure are we? The fi/Ii numbers are estimates for a
    //    chip that ships in three years.
    Robustness::Options opts;
    opts.samples = 2000;
    opts.target = base.attainable * 0.8;
    RobustnessReport rob = Robustness::analyze(soc, usecase, opts);
    std::cout << "3. under 2x intensity / 1.5x fraction jitter:\n"
              << "   p5 " << formatOpsRate(rob.p5) << ", median "
              << formatOpsRate(rob.p50) << ", p95 "
              << formatOpsRate(rob.p95) << '\n'
              << "   P(>= 80% of nominal) = "
              << formatDouble(rob.meetsTargetProbability * 100.0, 1)
              << "%\n   bottleneck shares:";
    for (const auto &[ip, share] : rob.bottleneckShare) {
        std::cout << ' '
                  << (ip < 0 ? "memory"
                             : soc.ip(static_cast<size_t>(ip)).name)
                  << "=" << formatDouble(share * 100.0, 0) << "%";
    }
    std::cout << "\n\n";

    // 4. The watts. Mobile coefficients: AP 100 pJ/op, fixed-
    //    function blocks 5-20 pJ/op, LPDDR 25 pJ/B, 0.4 W static.
    std::vector<double> e_per_op(soc.numIps(), 15e-12);
    e_per_op[kIpAp] = 100e-12;
    e_per_op[kIpGpu] = 20e-12;
    e_per_op[kIpDsp] = 8e-12;
    e_per_op[kIpIpu] = 5e-12;
    EnergyModel energy(e_per_op, 25e-12, 0.4);
    EnergyResult er = energy.evaluate(soc, usecase, 3.0);
    std::cout << "4. at the 3 W budget: "
              << formatOpsRate(er.constrained)
              << (er.thermallyLimited ? " (thermally limited)"
                                      : " (roofline limited)")
              << ", drawing " << formatDouble(er.power, 2) << " W, "
              << formatDouble(er.energyPerOp * 1e12, 1)
              << " pJ/op\n\n";

    // 5. Confirm with the dynamic pipeline.
    sim::PipelineSim pipeline(soc, ar.graph);
    sim::PipelineStats stats = pipeline.run(96);
    std::cout << "5. event-driven pipeline: "
              << formatDouble(stats.steadyFps, 1)
              << " fps steady state ("
              << formatDouble(stats.steadyFps / analysis.maxFps *
                                  100.0,
                              0)
              << "% of the analytic bound — the model is a sound "
                 "upper bound)\n";
    return 0;
}
