/**
 * @file
 * Camera pipeline analysis: the paper's motivating scenario. Builds
 * the 4K240 high-frame-rate capture dataflow (Section II-B), shows
 * it blowing the DRAM budget of a Snapdragon-835-class SoC, and
 * walks through the design levers an SoC architect has: more DRAM
 * bandwidth, or a memory-side SRAM absorbing the TNR reference
 * traffic (extension V-A).
 *
 * Run: build/examples/camera_pipeline
 */

#include <iostream>

#include "core/memside.h"
#include "soc/catalog.h"
#include "soc/usecases.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/units.h"

using namespace gables;

namespace {

void
report(const char *label, const SocSpec &soc,
       const UsecaseEntry &entry, double max_fps)
{
    std::cout << "  " << label << ": max "
              << formatDouble(max_fps, 1) << " fps vs target "
              << formatDouble(entry.targetFps, 0) << " -> "
              << (max_fps >= entry.targetFps ? "OK" : "MISSES")
              << '\n';
    (void)soc;
}

} // namespace

int
main()
{
    SocSpec soc = SocCatalog::snapdragon835Full();
    UsecaseEntry hfr = UsecaseCatalog::videocaptureHfr();

    std::cout << "usecase: " << hfr.graph.name() << " ("
              << formatDouble(hfr.targetFps, 0) << " fps target)\n";

    // Per-frame traffic budget.
    TextTable t({"buffer", "producer", "consumer", "MB/frame"});
    for (const DataflowBuffer &b : hfr.graph.buffers()) {
        t.addRow({b.label, b.producer.empty() ? "(sensor)" : b.producer,
                  b.consumer.empty() ? "(ext)" : b.consumer,
                  formatDouble(b.bytesPerFrame / 1e6, 2)});
    }
    std::cout << t.render();

    DataflowAnalysis base = hfr.graph.analyze(soc);
    std::cout << "\nDRAM demand at target: "
              << formatByteRate(base.dramBytesPerFrame *
                                hfr.targetFps)
              << " vs Bpeak " << formatByteRate(soc.bpeak()) << '\n';
    report("stock SoC", soc, hfr, base.maxFps);

    // Lever 1: widen DRAM. How much would 240 fps need?
    double needed = base.dramBytesPerFrame * hfr.targetFps;
    SocSpec wide = soc.withBpeak(needed);
    report("Bpeak -> 61.5 GB/s", wide, hfr,
           hfr.graph.analyze(wide).maxFps);

    // Lever 2: a memory-side SRAM holding the TNR reference frames.
    // The ISP's reference traffic (5 frames, ~62 MB) gets reuse; the
    // Gables miss-ratio view of that is mi << 1 for the ISP.
    Usecase lowered = hfr.graph.toUsecase(soc);
    std::vector<double> miss(soc.numIps(), 1.0);
    miss[soc.ipIndex("ISP")] =
        fractionalFitMissRatio(5.0 * UsecaseCatalog::k4kYuvBytes,
                               32.0 * kMiB);
    GablesResult with_sram =
        MemSideMemory(miss).evaluate(soc, lowered);
    GablesResult without =
        GablesModel::evaluate(soc, lowered);
    std::cout << "\nGables view (per-op bound, unit-normalized):\n"
              << "  without SRAM: "
              << formatOpsRate(without.attainable) << " ("
              << without.bottleneckLabel(soc) << ")\n"
              << "  with 32 MiB memory-side SRAM for the ISP: "
              << formatOpsRate(with_sram.attainable) << " ("
              << with_sram.bottleneckLabel(soc) << ")\n";

    std::cout << "\nlesson (paper Section II-B): at 4K240 the "
                 "reference-frame traffic, not any single IP, is the "
                 "wall; buy reuse before bandwidth.\n";
    return 0;
}
