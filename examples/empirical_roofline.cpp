/**
 * @file
 * Empirical roofline measurement (paper Section IV): run the
 * Algorithm-1 micro-benchmark on every engine of the simulated
 * Snapdragon 835, fit pessimistic rooflines, write the Figure 7/9
 * style SVG charts, and finish with the working-set sweep that
 * exposes the CPU's cache tiers (the paper's note that smaller
 * arrays see higher bandwidth).
 *
 * Run: build/examples/empirical_roofline
 */

#include <fstream>
#include <iostream>

#include "ert/ert.h"
#include "ert/fitter.h"
#include "plot/roofline_plot.h"
#include "soc/catalog.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/units.h"

using namespace gables;

int
main()
{
    auto soc = SocCatalog::snapdragon835Sim();

    ErtConfig config;
    config.intensities = ErtConfig::defaultIntensities();
    config.workingSetBytes = 64e6; // defeat the local memories
    config.totalBytes = 128e6;

    RooflinePlot all("Snapdragon 835 (sim): all engines", 0.015,
                     128.0);
    TextTable t({"engine", "peak Gops/s", "DRAM GB/s",
                 "ridge ops/B", "fit residual"});
    for (const char *engine : {"CPU", "GPU", "DSP"}) {
        auto samples = ErtSweep::run(*soc, engine, config);
        RooflineFit fit = RooflineFitter::fitDram(samples);
        t.addRow({engine, formatDouble(fit.peakOps / 1e9, 2),
                  formatDouble(fit.peakBw / 1e9, 2),
                  formatDouble(fit.ridge, 3),
                  formatDouble(fit.maxRelResidual, 4)});
        all.addRoofline(fit.roofline(engine));
    }
    std::cout << t.render();

    std::ofstream out("soc_rooflines.svg");
    out << all.renderSvg();
    std::cout << "wrote soc_rooflines.svg\n\n"
              << all.renderAscii() << '\n';

    // Cache tiers: the same streaming kernel at shrinking working
    // sets. Paper: "the CPU can obtain higher bandwidth from its
    // internal L1 and L2 caches by using smaller array sizes."
    std::cout << "CPU bandwidth vs working-set size (I = 0.01):\n";
    TextTable ws({"working set", "GB/s", "served by"});
    for (double set : {256.0 * 1024, 1.0 * kMiB, 2.0 * kMiB,
                       8.0 * kMiB, 64.0 * kMiB}) {
        auto samples = ErtSweep::workingSetSweep(*soc, "CPU", {set},
                                                 0.01, 64e6);
        const ErtSample &s = samples.front();
        ws.addRow({formatBytes(set, 3),
                   formatDouble(s.byteRate / 1e9, 2),
                   s.missByteRate < s.byteRate * 0.5 ? "L2"
                                                     : "DRAM path"});
    }
    std::cout << ws.render();
    return 0;
}
