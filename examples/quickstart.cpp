/**
 * @file
 * Quickstart: the paper's Figure 6 walkthrough in ~60 lines of
 * library code. Build a two-IP SoC, assign work, read off the
 * attainable bound and the bottleneck, then fix the design the way
 * Section III-C does.
 *
 * Run: build/examples/quickstart
 */

#include <iostream>

#include "analysis/balance.h"
#include "core/gables.h"
#include "plot/roofline_plot.h"
#include "util/units.h"

using namespace gables;

int
main()
{
    // Hardware: Ppeak = 40 Gops/s CPU, a 5x accelerator (GPU),
    // 10 GB/s of off-chip DRAM bandwidth, and per-IP links of 6 and
    // 15 GB/s (paper Figure 6a).
    SocSpec soc("my first SoC", 40e9, 10e9,
                {
                    IpSpec{"CPU", 1.0, 6e9},
                    IpSpec{"GPU", 5.0, 15e9},
                });

    // Software: all work on the CPU at 8 ops/byte.
    Usecase cpu_only = Usecase::twoIp("cpu-only", 0.0, 8.0, 0.1);
    GablesResult r = GablesModel::evaluate(soc, cpu_only);
    std::cout << "all work on the CPU:   "
              << formatOpsRate(r.attainable) << "  (bound: "
              << r.bottleneckLabel(soc) << ")\n";

    // Offload 75% to the GPU - but the GPU work has terrible data
    // reuse (0.1 ops/byte). Performance collapses (Figure 6b).
    Usecase offload = Usecase::twoIp("offload", 0.75, 8.0, 0.1);
    r = GablesModel::evaluate(soc, offload);
    std::cout << "naive offload:         "
              << formatOpsRate(r.attainable) << "  (bound: "
              << r.bottleneckLabel(soc) << ")\n";

    // Throwing DRAM bandwidth at it barely helps (Figure 6c).
    r = GablesModel::evaluate(soc.withBpeak(30e9), offload);
    std::cout << "with 30 GB/s DRAM:     "
              << formatOpsRate(r.attainable) << "  (bound: "
              << r.bottleneckLabel(soc) << ")\n";

    // The real fix: give the GPU reuse (I1 = 8) and then size the
    // DRAM bandwidth to exactly what the usecase needs (Figure 6d).
    Usecase reuse = Usecase::twoIp("reuse", 0.75, 8.0, 8.0);
    double sufficient = Balance::sufficientBpeak(
        soc.withBpeak(30e9), reuse);
    SocSpec balanced = soc.withBpeak(sufficient);
    r = GablesModel::evaluate(balanced, reuse);
    std::cout << "balanced design:       "
              << formatOpsRate(r.attainable) << "  with Bpeak = "
              << formatByteRate(sufficient) << '\n';

    // All three rooflines now meet at I = 8: zero slack.
    BalanceReport report = Balance::report(balanced, reuse);
    std::cout << "max slack:             " << report.maxSlack * 100.0
              << "%\n";

    // And the picture, straight to the terminal.
    RooflinePlot plot("balanced two-IP SoC", 0.01, 100.0);
    plot.addGables(balanced, reuse);
    std::cout << '\n' << plot.renderAscii();
    return 0;
}
