/**
 * @file
 * Early-stage design-space exploration: "which IPs should my SoC
 * include and roughly how big?" (paper Section I). Takes a must-run
 * usecase portfolio (the paper stresses every usecase must run
 * acceptably — the average is immaterial), enumerates candidate
 * designs over Bpeak and accelerator sizes, prints the Pareto
 * frontier under a simple cost model, and finishes with sensitivity
 * and optimal-work-split analyses of the chosen design.
 *
 * Run: build/examples/soc_design_explorer
 */

#include <iostream>

#include "analysis/explorer.h"
#include "analysis/optimal_split.h"
#include "analysis/sensitivity.h"
#include "soc/catalog.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/units.h"

using namespace gables;

int
main()
{
    // Template: a three-IP SoC (CPU + candidate GPU + candidate DSP).
    SocSpec base("candidate", 7.5e9, 15e9,
                 {
                     IpSpec{"CPU", 1.0, 15e9},
                     IpSpec{"GPU", 20.0, 24e9},
                     IpSpec{"DSP", 4.0, 8e9},
                 });

    // The must-run portfolio: a compute-heavy vision usecase, a
    // streaming usecase with poor reuse, and a CPU-centric one.
    std::vector<Usecase> portfolio = {
        Usecase("vision", {IpWork{0.1, 8.0}, IpWork{0.8, 16.0},
                           IpWork{0.1, 4.0}}),
        Usecase("streaming", {IpWork{0.2, 2.0}, IpWork{0.3, 0.5},
                              IpWork{0.5, 1.0}}),
        Usecase("interactive", {IpWork{0.7, 4.0}, IpWork{0.2, 8.0},
                                IpWork{0.1, 2.0}}),
    };

    CostModel cost;
    cost.costPerAcceleration = 1.0;   // area-like
    cost.costPerBpeak = 0.5e-9;       // PHY/pins per GB/s
    cost.costPerIpBandwidth = 0.1e-9; // wires per GB/s

    DesignExplorer explorer(base, portfolio, cost);
    explorer.sweepBpeak({10e9, 15e9, 20e9, 30e9, 40e9});
    explorer.sweepAcceleration(1, {10.0, 20.0, 40.0, 80.0});
    explorer.sweepAcceleration(2, {2.0, 4.0, 8.0});

    auto candidates = explorer.explore();
    auto frontier = DesignExplorer::frontier(candidates);

    std::cout << "explored " << candidates.size()
              << " designs; Pareto frontier has " << frontier.size()
              << ":\n";
    TextTable t({"Bpeak GB/s", "A_GPU", "A_DSP", "worst-case Gops/s",
                 "cost"});
    for (const Candidate &c : frontier) {
        t.addRow({formatDouble(c.soc.bpeak() / 1e9, 0),
                  formatDouble(c.soc.ip(1).acceleration, 0),
                  formatDouble(c.soc.ip(2).acceleration, 0),
                  formatDouble(c.minPerf / 1e9, 2),
                  formatDouble(c.cost, 1)});
    }
    std::cout << t.render();

    // Pick the knee: the cheapest design within 5% of the best
    // worst-case performance.
    const Candidate *pick = &frontier.front();
    double best = frontier.back().minPerf;
    for (const Candidate &c : frontier) {
        if (c.minPerf >= 0.95 * best) {
            pick = &c;
            break;
        }
    }
    std::cout << "\nchosen design: Bpeak = "
              << formatByteRate(pick->soc.bpeak()) << ", A_GPU = "
              << pick->soc.ip(1).acceleration << ", A_DSP = "
              << pick->soc.ip(2).acceleration << '\n';

    // Which knob matters most for the weakest usecase?
    size_t weakest = 0;
    for (size_t i = 1; i < portfolio.size(); ++i) {
        if (pick->perUsecase[i] < pick->perUsecase[weakest])
            weakest = i;
    }
    std::cout << "weakest usecase: " << portfolio[weakest].name()
              << "; elasticities:\n";
    for (const SensitivityEntry &e :
         Sensitivity::analyze(pick->soc, portfolio[weakest])) {
        if (e.elasticity > 0.01)
            std::cout << "  " << e.parameter << " -> "
                      << formatDouble(e.elasticity, 3) << '\n';
    }

    // If the software team could re-split the vision workload
    // freely, what is the ceiling?
    OptimalSplit split =
        OptimalSplitSolver(pick->soc, {8.0, 16.0, 4.0}).solve();
    std::cout << "\noptimal vision split: f = {";
    for (size_t i = 0; i < split.fractions.size(); ++i)
        std::cout << (i ? ", " : "")
                  << formatDouble(split.fractions[i], 3);
    std::cout << "} -> " << formatOpsRate(split.attainable) << '\n';
    return 0;
}
