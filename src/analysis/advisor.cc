#include "analysis/advisor.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "analysis/balance.h"
#include "analysis/optimal_split.h"
#include "core/evaluator.h"
#include "telemetry/span.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/units.h"

namespace gables {

std::string
toString(AdviceKind kind)
{
    switch (kind) {
      case AdviceKind::RaiseBpeak:
        return "raise Bpeak";
      case AdviceKind::RaiseIpBandwidth:
        return "raise IP link bandwidth";
      case AdviceKind::RaiseAcceleration:
        return "raise IP acceleration";
      case AdviceKind::RaiseIntensity:
        return "raise operational intensity";
      case AdviceKind::Resplit:
        return "re-apportion work";
      case AdviceKind::ShrinkSlack:
        return "shrink over-provisioned resource";
    }
    return "unknown";
}

double
Advisor::minimalScale(const std::function<double(double)> &perf_at_scale,
                      double max_scale)
{
    double target = perf_at_scale(max_scale);
    double lo = 1.0;
    double hi = max_scale;
    for (int iter = 0; iter < 60; ++iter) {
        double mid = std::sqrt(lo * hi);
        if (perf_at_scale(mid) >= target * (1.0 - 1e-9))
            hi = mid;
        else
            lo = mid;
    }
    return hi;
}

std::vector<Advice>
Advisor::advise(const SocSpec &soc, const Usecase &usecase,
                const Options &options)
{
    GABLES_SPAN("advisor.advise");
    if (!(options.maxScale > 1.0))
        fatal("advisor maxScale must exceed 1");

    // One compiled evaluator serves the base point and every probe of
    // the minimalScale bisections: each probe sets the scaled
    // parameter, evaluates, and restores the base value.
    GablesEvaluator ev(soc, usecase);
    const double base = ev.attainable();
    std::vector<Advice> advice;

    auto consider = [&](AdviceKind kind, int ip, double before,
                        double max_scale,
                        const std::function<double(double)> &perf_at,
                        const std::function<std::string(double)>
                            &describe) {
        double best = perf_at(max_scale);
        if (best < base * options.minGain)
            return;
        double scale = minimalScale(perf_at, max_scale);
        Advice a;
        a.kind = kind;
        a.ip = ip;
        a.before = before;
        a.after = before * scale;
        a.newAttainable = perf_at(scale);
        a.gain = a.newAttainable / base;
        a.description = describe(a.after);
        advice.push_back(std::move(a));
    };

    // Chip-level: Bpeak.
    consider(
        AdviceKind::RaiseBpeak, -1, soc.bpeak(), options.maxScale,
        [&](double s) {
            ev.setBpeak(soc.bpeak() * s);
            double p = ev.attainable();
            ev.setBpeak(soc.bpeak());
            return p;
        },
        [&](double after) {
            return "raise Bpeak from " + formatByteRate(soc.bpeak()) +
                   " to " + formatByteRate(after);
        });

    // Per-IP knobs.
    for (size_t i = 0; i < soc.numIps(); ++i) {
        if (usecase.fraction(i) == 0.0)
            continue;
        const IpSpec &ip = soc.ip(i);
        std::string who = ip.name.empty()
                              ? "IP[" + std::to_string(i) + "]"
                              : ip.name;

        consider(
            AdviceKind::RaiseIpBandwidth, static_cast<int>(i),
            ip.bandwidth, options.maxScale,
            [&, i](double s) {
                ev.setIpBandwidth(i, ip.bandwidth * s);
                double p = ev.attainable();
                ev.setIpBandwidth(i, ip.bandwidth);
                return p;
            },
            [&, who](double after) {
                return "widen " + who + " link from " +
                       formatByteRate(ip.bandwidth) + " to " +
                       formatByteRate(after);
            });

        if (i > 0) { // A0 is pinned to 1 by the model
            consider(
                AdviceKind::RaiseAcceleration, static_cast<int>(i),
                ip.acceleration, options.maxScale,
                [&, i](double s) {
                    ev.setAcceleration(i, ip.acceleration * s);
                    double p = ev.attainable();
                    ev.setAcceleration(i, ip.acceleration);
                    return p;
                },
                [&, who](double after) {
                    return "grow " + who + " acceleration from " +
                           formatDouble(ip.acceleration, 3) + " to " +
                           formatDouble(after, 3);
                });
        }

        double intensity = usecase.intensity(i);
        if (!std::isinf(intensity)) {
            consider(
                AdviceKind::RaiseIntensity, static_cast<int>(i),
                intensity, options.maxIntensityScale,
                [&, i, intensity](double s) {
                    ev.setIntensity(i, intensity * s);
                    double p = ev.attainable();
                    ev.setIntensity(i, intensity);
                    return p;
                },
                [&, who](double after) {
                    return "increase data reuse at " + who +
                           " to I = " + formatDouble(after, 3) +
                           " ops/byte (software + local memory)";
                });
        }
    }

    // Software: optimal re-split at current intensities.
    {
        std::vector<double> intensities;
        intensities.reserve(soc.numIps());
        bool feasible = true;
        for (size_t i = 0; i < soc.numIps(); ++i) {
            double v = usecase.intensity(i);
            if (!(v > 0.0))
                feasible = false;
            intensities.push_back(v);
        }
        if (feasible) {
            OptimalSplit split =
                OptimalSplitSolver(soc, intensities).solve();
            if (split.attainable >= base * options.minGain) {
                Advice a;
                a.kind = AdviceKind::Resplit;
                a.newAttainable = split.attainable;
                a.gain = split.attainable / base;
                std::string f_list;
                for (size_t i = 0; i < split.fractions.size(); ++i)
                    f_list += (i ? ", " : "") +
                              formatDouble(split.fractions[i], 3);
                a.description =
                    "re-apportion work to f = {" + f_list + "}";
                advice.push_back(std::move(a));
            }
        }
    }

    std::sort(advice.begin(), advice.end(),
              [](const Advice &a, const Advice &b) {
                  return a.gain > b.gain;
              });

    // Slack report: resources that can shrink for free.
    double sufficient_bpeak = Balance::sufficientBpeak(soc, usecase);
    if (sufficient_bpeak > 0.0 &&
        sufficient_bpeak < soc.bpeak() * 0.999) {
        Advice a;
        a.kind = AdviceKind::ShrinkSlack;
        a.before = soc.bpeak();
        a.after = sufficient_bpeak;
        a.newAttainable = base;
        a.gain = 1.0;
        a.description = "Bpeak of " + formatByteRate(soc.bpeak()) +
                        " is over-provisioned; " +
                        formatByteRate(sufficient_bpeak) +
                        " suffices for this usecase";
        advice.push_back(std::move(a));
    }
    for (size_t i = 0; i < soc.numIps(); ++i) {
        if (usecase.fraction(i) == 0.0)
            continue;
        double sufficient =
            Balance::sufficientIpBandwidth(soc, usecase, i);
        if (sufficient > 0.0 &&
            sufficient < soc.ip(i).bandwidth * 0.999) {
            Advice a;
            a.kind = AdviceKind::ShrinkSlack;
            a.ip = static_cast<int>(i);
            a.before = soc.ip(i).bandwidth;
            a.after = sufficient;
            a.newAttainable = base;
            a.gain = 1.0;
            a.description =
                soc.ip(i).name + " link of " +
                formatByteRate(soc.ip(i).bandwidth) +
                " is over-provisioned; " + formatByteRate(sufficient) +
                " suffices";
            advice.push_back(std::move(a));
        }
    }
    return advice;
}

} // namespace gables
