/**
 * @file
 * The design advisor: automates the paper's Figure 6 reasoning.
 * Given a SoC and a usecase, it enumerates the design moves an
 * architect (or software lead) could make — more off-chip bandwidth,
 * a wider IP link, a bigger accelerator, more data reuse, a better
 * work split — evaluates each with the model, and returns them
 * ranked by predicted gain. It also flags over-provisioned
 * resources that could be shrunk for free (the Figure 6d move of
 * cutting Bpeak from 30 to 20 GB/s).
 */

#ifndef GABLES_ANALYSIS_ADVISOR_H
#define GABLES_ANALYSIS_ADVISOR_H

#include <functional>
#include <string>
#include <vector>

#include "core/gables.h"

namespace gables {

/** The kind of design move an advice item proposes. */
enum class AdviceKind {
    /** Raise the off-chip bandwidth Bpeak. */
    RaiseBpeak,
    /** Raise one IP's link bandwidth Bi. */
    RaiseIpBandwidth,
    /** Raise one IP's acceleration Ai. */
    RaiseAcceleration,
    /** Raise one IP's operational intensity Ii (software reuse). */
    RaiseIntensity,
    /** Re-apportion the work fractions optimally. */
    Resplit,
    /** Shrink an over-provisioned resource at no performance cost. */
    ShrinkSlack,
};

/** @return A short display string for an advice kind. */
std::string toString(AdviceKind kind);

/** One ranked suggestion. */
struct Advice {
    /** The move's kind. */
    AdviceKind kind = AdviceKind::RaiseBpeak;
    /** Affected IP index, or -1 for chip-level moves. */
    int ip = -1;
    /** Human-readable description with concrete numbers. */
    std::string description;
    /** Parameter value before the move. */
    double before = 0.0;
    /** Proposed parameter value. */
    double after = 0.0;
    /** Attainable performance if the move is applied (ops/s). */
    double newAttainable = 0.0;
    /** newAttainable / current attainable. */
    double gain = 1.0;
};

/**
 * The advisor. Stateless; configuration knobs control how far each
 * move may scale a parameter.
 */
class Advisor
{
  public:
    /** Tuning knobs. */
    struct Options {
        /** Cap on how far any parameter may be scaled up. */
        double maxScale = 4.0;
        /** Ignore moves with gain below this factor. */
        double minGain = 1.005;
        /** Intensities are software-changeable up to this factor. */
        double maxIntensityScale = 16.0;
    };

    /**
     * Analyze and rank moves.
     *
     * @param soc     Hardware description.
     * @param usecase Software description.
     * @param options Tuning knobs.
     * @return Improvement moves sorted by descending gain, followed
     *         by ShrinkSlack items (gain == 1 by construction).
     */
    static std::vector<Advice> advise(const SocSpec &soc,
                                      const Usecase &usecase,
                                      const Options &options);

    /** advise() with default options. */
    static std::vector<Advice>
    advise(const SocSpec &soc, const Usecase &usecase)
    {
        return advise(soc, usecase, Options{});
    }

  private:
    /**
     * Smallest scale in (1, max_scale] of a monotone knob that
     * realizes (nearly) the performance at max_scale, found by
     * bisection — proposals are "just enough", not maximal.
     */
    static double minimalScale(
        const std::function<double(double)> &perf_at_scale,
        double max_scale);
};

} // namespace gables

#endif // GABLES_ANALYSIS_ADVISOR_H
