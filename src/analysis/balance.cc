#include "analysis/balance.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"

namespace gables {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

} // namespace

BalanceReport
Balance::report(const SocSpec &soc, const Usecase &usecase)
{
    GablesResult r = GablesModel::evaluate(soc, usecase);
    BalanceReport report;
    report.attainable = r.attainable;
    report.ipSlack.reserve(r.ips.size());
    double max_slack = 0.0;
    for (const IpTiming &t : r.ips) {
        double slack =
            std::isinf(t.perfBound) ? kInf
                                    : t.perfBound / r.attainable - 1.0;
        report.ipSlack.push_back(slack);
        if (!std::isinf(slack))
            max_slack = std::max(max_slack, slack);
    }
    report.memorySlack = std::isinf(r.memoryPerfBound)
                             ? kInf
                             : r.memoryPerfBound / r.attainable - 1.0;
    if (!std::isinf(report.memorySlack))
        max_slack = std::max(max_slack, report.memorySlack);
    report.maxSlack = max_slack;
    return report;
}

double
Balance::sufficientBpeak(const SocSpec &soc, const Usecase &usecase)
{
    GablesResult r = GablesModel::evaluate(soc, usecase);
    if (r.totalDataBytes == 0.0)
        return 0.0;
    // Performance when memory is not the constraint: the max over
    // IP-side times only.
    double ip_time = 0.0;
    for (const IpTiming &t : r.ips)
        ip_time = std::max(ip_time, t.time);
    GABLES_ASSERT(ip_time > 0.0, "usecase with data but no IP time");
    double perf_no_memory = 1.0 / ip_time;
    return r.totalDataBytes * perf_no_memory;
}

double
Balance::sufficientIpBandwidth(const SocSpec &soc, const Usecase &usecase,
                               size_t ip)
{
    GablesResult r = GablesModel::evaluate(soc, usecase);
    const IpTiming &t = r.ips.at(ip);
    if (t.dataBytes == 0.0)
        return 0.0;
    // The IP's transfer must not take longer than the binding time of
    // all other resources (including its own compute).
    double other_time = std::max(t.computeTime, r.memoryTime);
    for (size_t i = 0; i < r.ips.size(); ++i) {
        if (i != ip)
            other_time = std::max(other_time, r.ips[i].time);
    }
    GABLES_ASSERT(other_time > 0.0, "no binding time besides IP link");
    return t.dataBytes / other_time;
}

double
Balance::requiredIntensity(const SocSpec &soc, const Usecase &usecase,
                           size_t ip, double target_perf)
{
    if (!(target_perf > 0.0))
        fatal("requiredIntensity: target must be > 0");
    double f = usecase.fraction(ip);
    if (f == 0.0)
        return 0.0; // an idle IP needs no reuse at all

    // The IP's compute roof caps its scaled roofline at Ai*Ppeak/f
    // regardless of intensity.
    if (soc.ipPeakPerf(ip) / f < target_perf)
        return kInf;

    // Find the smallest I such that evaluate() with I at this IP
    // reaches the target. Attainable performance is nondecreasing in
    // I, so bisection on a log grid works.
    auto perf_at = [&](double intensity) {
        Usecase modified = usecase.withWork(ip, IpWork{f, intensity});
        return GablesModel::evaluate(soc, modified).attainable;
    };

    double lo = 1e-6;
    double hi = 1e9;
    if (perf_at(hi) < target_perf * (1.0 - 1e-9))
        return kInf; // another resource caps performance below target
    if (perf_at(lo) >= target_perf)
        return lo;
    for (int iter = 0; iter < 120; ++iter) {
        double mid = std::sqrt(lo * hi);
        if (perf_at(mid) >= target_perf)
            hi = mid;
        else
            lo = mid;
    }
    return hi;
}

} // namespace gables
