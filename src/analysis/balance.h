/**
 * @file
 * Balanced-design solvers: the Figure 6d question. A design is
 * balanced for a usecase when no resource is over-provisioned — the
 * binding IP rooflines and the memory roofline all bound performance
 * at (nearly) the same value, as in the paper's final two-IP SoC
 * where all three rooflines meet at 160 Gops/s.
 */

#ifndef GABLES_ANALYSIS_BALANCE_H
#define GABLES_ANALYSIS_BALANCE_H

#include <vector>

#include "core/gables.h"

namespace gables {

/** Diagnosis of how balanced a design is for a usecase. */
struct BalanceReport {
    /** Attainable performance (ops/s). */
    double attainable = 0.0;
    /**
     * Per-IP slack: perfBound / attainable - 1 (0 means the IP's
     * scaled roofline exactly binds; large means over-provisioned
     * for this usecase). +inf for idle IPs.
     */
    std::vector<double> ipSlack;
    /** Memory-interface slack, same definition. */
    double memorySlack = 0.0;
    /**
     * Max finite slack across resources; a perfectly balanced design
     * has ~0.
     */
    double maxSlack = 0.0;
};

/**
 * Balanced-design analysis and solvers.
 */
class Balance
{
  public:
    /** Compute the slack report for a design/usecase pair. */
    static BalanceReport report(const SocSpec &soc,
                                const Usecase &usecase);

    /**
     * The smallest off-chip bandwidth that does not reduce attainable
     * performance: Bpeak* = (sum Di) * Pattainable-without-memory-
     * bound. Any Bpeak above this is wasted expense for this usecase
     * (the Figure 6d move from 30 down to 20 GB/s).
     *
     * @return The sufficient Bpeak in bytes/s; 0 when the usecase
     *         moves no data.
     */
    static double sufficientBpeak(const SocSpec &soc,
                                  const Usecase &usecase);

    /**
     * The smallest link bandwidth Bi for IP @p ip that does not
     * reduce attainable performance (holding all else fixed).
     */
    static double sufficientIpBandwidth(const SocSpec &soc,
                                        const Usecase &usecase,
                                        size_t ip);

    /**
     * The operational intensity IP @p ip would need for its scaled
     * roofline to reach the bound set by the other resources
     * evaluated at that same intensity — the Figure 6d move of
     * raising I1 from 0.1 to 8. Solved numerically; returns +inf if
     * no finite intensity suffices (the IP is compute-bound below
     * the target).
     *
     * @param target_perf Desired attainable performance (ops/s).
     */
    static double requiredIntensity(const SocSpec &soc,
                                    const Usecase &usecase, size_t ip,
                                    double target_perf);
};

} // namespace gables

#endif // GABLES_ANALYSIS_BALANCE_H
