#include "analysis/explorer.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace gables {

double
CostModel::cost(const SocSpec &soc) const
{
    double accel = 0.0;
    double ip_bw = 0.0;
    for (const IpSpec &ip : soc.ips()) {
        accel += ip.acceleration;
        ip_bw += ip.bandwidth;
    }
    return costPerAcceleration * accel + costPerBpeak * soc.bpeak() +
           costPerIpBandwidth * ip_bw;
}

DesignExplorer::DesignExplorer(SocSpec base, std::vector<Usecase> usecases,
                               CostModel cost)
    : base_(std::move(base)), usecases_(std::move(usecases)),
      cost_(cost)
{
    if (usecases_.empty())
        fatal("design explorer needs at least one usecase");
    for (const Usecase &u : usecases_) {
        if (u.numIps() != base_.numIps())
            fatal("usecase '" + u.name() +
                  "' does not match the base design's IP count");
    }
}

void
DesignExplorer::sweepBpeak(std::vector<double> values)
{
    if (values.empty())
        fatal("empty sweep values");
    knobs_.push_back({[](const SocSpec &s, double v) {
                          return s.withBpeak(v);
                      },
                      std::move(values)});
}

void
DesignExplorer::sweepAcceleration(size_t ip, std::vector<double> values)
{
    if (values.empty())
        fatal("empty sweep values");
    if (ip == 0)
        fatal("cannot sweep A0: the paper fixes A0 = 1");
    knobs_.push_back({[ip](const SocSpec &s, double v) {
                          return s.withIpAcceleration(ip, v);
                      },
                      std::move(values)});
}

void
DesignExplorer::sweepIpBandwidth(size_t ip, std::vector<double> values)
{
    if (values.empty())
        fatal("empty sweep values");
    knobs_.push_back({[ip](const SocSpec &s, double v) {
                          return s.withIpBandwidth(ip, v);
                      },
                      std::move(values)});
}

size_t
DesignExplorer::gridSize() const
{
    size_t total = 1;
    for (const Knob &knob : knobs_)
        total *= knob.values.size();
    return total;
}

std::vector<Candidate>
DesignExplorer::explore(int jobs, parallel::ForStats *stats) const
{
    // The cross product is enumerated odometer-style with knob 0
    // fastest-varying; flat index i decomposes into per-knob digits
    // so candidates land in pre-sized slots in enumeration order
    // regardless of how many workers evaluate them.
    std::vector<Candidate> candidates(
        gridSize(), Candidate{base_, 0.0, {}, 0.0, false});

    parallel::ForOptions opts;
    opts.jobs = jobs;
    parallel::ForStats st = parallel::parallelFor(
        candidates.size(),
        [&](size_t i) {
            SocSpec design = base_;
            size_t rest = i;
            for (const Knob &knob : knobs_) {
                design =
                    knob.apply(design,
                               knob.values[rest % knob.values.size()]);
                rest /= knob.values.size();
            }

            Candidate c{design, 0.0, {}, cost_.cost(design), false};
            double min_perf = std::numeric_limits<double>::infinity();
            for (const Usecase &u : usecases_) {
                double p = GablesModel::evaluate(design, u).attainable;
                c.perUsecase.push_back(p);
                min_perf = std::min(min_perf, p);
            }
            c.minPerf = min_perf;
            candidates[i] = std::move(c);
        },
        opts);
    if (stats)
        *stats = st;

    // Pareto marking: candidate c is dominated if another candidate
    // has >= perf and <= cost with at least one strict. Each index
    // only writes its own flag, so the scan parallelizes cleanly.
    parallel::parallelFor(
        candidates.size(),
        [&](size_t i) {
            bool dominated = false;
            for (size_t j = 0;
                 j < candidates.size() && !dominated; ++j) {
                if (i == j)
                    continue;
                const Candidate &a = candidates[j];
                const Candidate &b = candidates[i];
                bool better_or_equal =
                    a.minPerf >= b.minPerf && a.cost <= b.cost;
                bool strictly_better =
                    a.minPerf > b.minPerf || a.cost < b.cost;
                dominated = better_or_equal && strictly_better;
            }
            candidates[i].pareto = !dominated;
        },
        opts);

    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate &a, const Candidate &b) {
                  return a.minPerf > b.minPerf;
              });
    return candidates;
}

std::vector<Candidate>
DesignExplorer::frontier(const std::vector<Candidate> &candidates)
{
    std::vector<Candidate> out;
    for (const Candidate &c : candidates) {
        if (c.pareto)
            out.push_back(c);
    }
    std::sort(out.begin(), out.end(),
              [](const Candidate &a, const Candidate &b) {
                  return a.cost < b.cost;
              });
    return out;
}

} // namespace gables
