#include "analysis/explorer.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "telemetry/span.h"
#include "util/logging.h"

namespace gables {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/** Pareto domination: a is at least as good on both axes and
 * strictly better on one. */
bool
dominatesPoint(double a_perf, double a_cost, double b_perf,
               double b_cost)
{
    return a_perf >= b_perf && a_cost <= b_cost &&
           (a_perf > b_perf || a_cost < b_cost);
}

} // namespace

double
CostModel::cost(double bpeak, const std::vector<IpSpec> &ips) const
{
    double accel = 0.0;
    double ip_bw = 0.0;
    for (const IpSpec &ip : ips) {
        accel += ip.acceleration;
        ip_bw += ip.bandwidth;
    }
    return costPerAcceleration * accel + costPerBpeak * bpeak +
           costPerIpBandwidth * ip_bw;
}

double
CostModel::cost(const SocSpec &soc) const
{
    return cost(soc.bpeak(), soc.ips());
}

DesignExplorer::DesignExplorer(SocSpec base, std::vector<Usecase> usecases,
                               CostModel cost)
    : base_(std::move(base)), usecases_(std::move(usecases)),
      cost_(cost)
{
    if (usecases_.empty())
        fatal("design explorer needs at least one usecase");
    for (const Usecase &u : usecases_) {
        if (u.numIps() != base_.numIps())
            fatal("usecase '" + u.name() +
                  "' does not match the base design's IP count");
    }
}

void
DesignExplorer::sweepBpeak(std::vector<double> values)
{
    if (values.empty())
        fatal("empty sweep values");
    knobs_.push_back({Knob::Kind::Bpeak, 0, std::move(values)});
}

void
DesignExplorer::sweepAcceleration(size_t ip, std::vector<double> values)
{
    if (values.empty())
        fatal("empty sweep values");
    if (ip == 0)
        fatal("cannot sweep A0: the paper fixes A0 = 1");
    if (ip >= base_.numIps())
        fatal("sweep targets IP " + std::to_string(ip) +
              " but the base design has only " +
              std::to_string(base_.numIps()) + " IPs");
    knobs_.push_back({Knob::Kind::Acceleration, ip, std::move(values)});
}

void
DesignExplorer::sweepIpBandwidth(size_t ip, std::vector<double> values)
{
    if (values.empty())
        fatal("empty sweep values");
    if (ip >= base_.numIps())
        fatal("sweep targets IP " + std::to_string(ip) +
              " but the base design has only " +
              std::to_string(base_.numIps()) + " IPs");
    knobs_.push_back({Knob::Kind::IpBandwidth, ip, std::move(values)});
}

size_t
DesignExplorer::gridSize() const
{
    size_t total = 1;
    for (const Knob &knob : knobs_)
        total *= knob.values.size();
    return total;
}

bool
DesignExplorer::hasDuplicateKnobTargets() const
{
    for (size_t i = 0; i < knobs_.size(); ++i) {
        for (size_t j = i + 1; j < knobs_.size(); ++j) {
            if (knobs_[i].kind != knobs_[j].kind)
                continue;
            if (knobs_[i].kind == Knob::Kind::Bpeak ||
                knobs_[i].ip == knobs_[j].ip)
                return true;
        }
    }
    return false;
}

DesignExplorer::WorkerState
DesignExplorer::makeWorkerState() const
{
    WorkerState ws;
    ws.evaluators.reserve(usecases_.size());
    for (const Usecase &u : usecases_)
        ws.evaluators.emplace_back(base_, u);
    ws.bpeak = base_.bpeak();
    ws.ips = base_.ips();
    // "No digit applied yet": the first applyDigits() call applies
    // every knob.
    ws.digits.assign(knobs_.size(),
                     std::numeric_limits<size_t>::max());
    ws.incremental = !hasDuplicateKnobTargets();
    return ws;
}

void
DesignExplorer::applyKnobHardware(WorkerState &ws, const Knob &knob,
                                  double v)
{
    switch (knob.kind) {
    case Knob::Kind::Bpeak:
        ws.bpeak = v;
        break;
    case Knob::Kind::Acceleration:
        ws.ips[knob.ip].acceleration = v;
        break;
    case Knob::Kind::IpBandwidth:
        ws.ips[knob.ip].bandwidth = v;
        break;
    }
}

void
DesignExplorer::applyKnobLane(GablesEvalPack &pack, size_t lane,
                              const Knob &knob, double v)
{
    switch (knob.kind) {
    case Knob::Kind::Bpeak:
        pack.setBpeak(lane, v);
        break;
    case Knob::Kind::Acceleration:
        pack.setAcceleration(lane, knob.ip, v);
        break;
    case Knob::Kind::IpBandwidth:
        pack.setIpBandwidth(lane, knob.ip, v);
        break;
    }
}

void
DesignExplorer::applyKnob(WorkerState &ws, const Knob &knob,
                          double v) const
{
    switch (knob.kind) {
    case Knob::Kind::Bpeak:
        for (GablesEvaluator &ev : ws.evaluators)
            ev.setBpeak(v);
        break;
    case Knob::Kind::Acceleration:
        for (GablesEvaluator &ev : ws.evaluators)
            ev.setAcceleration(knob.ip, v);
        break;
    case Knob::Kind::IpBandwidth:
        for (GablesEvaluator &ev : ws.evaluators)
            ev.setIpBandwidth(knob.ip, v);
        break;
    }
    applyKnobHardware(ws, knob, v);
}

void
DesignExplorer::applyDigits(WorkerState &ws, size_t flat) const
{
    size_t rest = flat;
    for (size_t k = 0; k < knobs_.size(); ++k) {
        const Knob &knob = knobs_[k];
        size_t digit = rest % knob.values.size();
        rest /= knob.values.size();
        if (!ws.incremental || ws.digits[k] != digit) {
            applyKnob(ws, knob, knob.values[digit]);
            ws.digits[k] = digit;
        }
    }
}

void
DesignExplorer::evaluateOne(size_t flat, WorkerState &ws,
                            Candidate &out) const
{
    applyDigits(ws, flat);
    out.soc = SocSpec(base_.name(), base_.ppeak(), ws.bpeak, ws.ips);
    out.cost = cost_.cost(ws.bpeak, ws.ips);
    out.pareto = false;
    out.perUsecase.clear();
    out.perUsecase.reserve(usecases_.size());
    double min_perf = kInf;
    for (GablesEvaluator &ev : ws.evaluators) {
        double p = ev.attainable();
        out.perUsecase.push_back(p);
        min_perf = std::min(min_perf, p);
    }
    out.minPerf = min_perf;
}

std::vector<Candidate>
DesignExplorer::explore(int jobs, parallel::ForStats *stats) const
{
    // The cross product is enumerated odometer-style with knob 0
    // fastest-varying; flat index i decomposes into per-knob digits
    // so candidates land in pre-sized slots in enumeration order
    // regardless of how many workers evaluate them.
    std::vector<Candidate> candidates(
        gridSize(), Candidate{base_, 0.0, {}, 0.0, false});

    parallel::ForOptions opts;
    opts.jobs = jobs;
    int workers = parallel::plannedWorkers(candidates.size(), opts);
    std::vector<WorkerState> states;
    states.reserve(static_cast<size_t>(workers));
    for (int w = 0; w < workers; ++w)
        states.push_back(makeWorkerState());

    parallel::ForStats st;
    {
        GABLES_SPAN("explore.grid");
        st = parallel::parallelFor(
            candidates.size(),
            [&](size_t i, int worker) {
                evaluateOne(i, states[static_cast<size_t>(worker)],
                            candidates[i]);
            },
            opts);
    }
    if (stats)
        *stats = st;

    // Pareto marking: candidate c is dominated if another candidate
    // has >= perf and <= cost with at least one strict. Each index
    // only writes its own flag, so the scan parallelizes cleanly.
    GABLES_SPAN("explore.pareto");
    parallel::parallelFor(
        candidates.size(),
        [&](size_t i) {
            bool dominated = false;
            for (size_t j = 0;
                 j < candidates.size() && !dominated; ++j) {
                if (i == j)
                    continue;
                dominated = dominatesPoint(
                    candidates[j].minPerf, candidates[j].cost,
                    candidates[i].minPerf, candidates[i].cost);
            }
            candidates[i].pareto = !dominated;
        },
        opts);

    // Stable: equal-minPerf candidates keep enumeration order, which
    // is what makes the pruned frontier ordering reproducible.
    std::stable_sort(candidates.begin(), candidates.end(),
                     [](const Candidate &a, const Candidate &b) {
                         return a.minPerf > b.minPerf;
                     });
    return candidates;
}

std::vector<Candidate>
DesignExplorer::exploreFrontier(const ExploreOptions &options,
                                ExploreStats *stats) const
{
    const size_t total = gridSize();
    const size_t n_use = usecases_.size();
    const size_t n_knobs = knobs_.size();

    parallel::ForOptions opts;
    opts.jobs = options.jobs;
    const int workers = parallel::plannedWorkers(total, opts);

    // Per-knob bounds assume each knob drives its own model term;
    // two sweeps on the same term make the later one override the
    // earlier in enumeration order, so fall back to full evaluation.
    const bool prune = options.prune && !hasDuplicateKnobTargets();
    const size_t chunk = std::max<size_t>(1, options.subgridSize);

    ExploreStats st;
    st.forStats.workers = workers;
    st.forStats.busySeconds.assign(static_cast<size_t>(workers), 0.0);

    std::vector<WorkerState> states;
    states.reserve(static_cast<size_t>(workers));
    for (int w = 0; w < workers; ++w)
        states.push_back(makeWorkerState());
    WorkerState probe = prune ? makeWorkerState() : WorkerState{};

    // Packed grid path: each worker carries one pack per usecase and
    // evaluates kWidth designs per pass. Each lane reproduces the
    // scalar per-design mutation sequence bit-for-bit, and the
    // min-across-usecases reduction visits usecases in the same
    // order, so frontiers and eval counters are identical.
    const bool packed = simd::enabled();
    if (packed) {
        for (WorkerState &ws : states) {
            ws.packs.reserve(ws.evaluators.size());
            for (const GablesEvaluator &ev : ws.evaluators)
                ws.packs.emplace_back(ev);
            // "No digit applied yet" sentinels, as in
            // makeWorkerState(): the first pack stages every knob on
            // every lane.
            ws.laneDigits.assign(GablesEvalPack::kWidth * n_knobs,
                                 std::numeric_limits<size_t>::max());
            ws.curDigits.assign(n_knobs, 0);
        }
    }

    // Flat-index stride of each knob (knob 0 varies fastest).
    std::vector<size_t> stride(n_knobs, 1);
    for (size_t k = 1; k < n_knobs; ++k)
        stride[k] = stride[k - 1] * knobs_[k - 1].values.size();

    // The digits knob k takes over flat range [lo, hi] form either
    // the full radix or a contiguous run (mod radix) of the quotient
    // lo/stride .. hi/stride.
    auto forEachCoveredDigit = [&](size_t k, size_t lo, size_t hi,
                                   auto &&fn) {
        size_t radix = knobs_[k].values.size();
        size_t q_lo = lo / stride[k];
        size_t q_hi = hi / stride[k];
        size_t count = q_hi - q_lo + 1;
        if (count >= radix) {
            for (size_t d = 0; d < radix; ++d)
                fn(d);
            return;
        }
        size_t d = q_lo % radix;
        for (size_t t = 0; t < count; ++t) {
            fn(d);
            d = (d + 1 == radix) ? 0 : d + 1;
        }
    };

    // Light per-design record; full Candidates (SocSpec, perUsecase)
    // are materialized only for the final frontier members.
    struct Point {
        size_t flat;
        double minPerf;
        double cost;
    };
    // Pareto set of all designs evaluated so far, kept in
    // enumeration order.
    std::vector<Point> incumbents;

    // A subgrid is skipped when some incumbent strictly dominates
    // its best corner — and therefore strictly dominates every
    // design inside it: performance is weakly nondecreasing in every
    // knob (bitwise, since FP *, /, +, max are weakly monotone), so
    // Pmax at the all-max corner bounds the box from above, and the
    // linear cost at the sign-chosen corner bounds it from below.
    auto dominatedByIncumbent = [&](double p_max, double c_min) {
        for (const Point &c : incumbents) {
            if ((c.minPerf >= p_max && c.cost < c_min) ||
                (c.minPerf > p_max && c.cost <= c_min))
                return true;
        }
        return false;
    };

    auto subgridBounds = [&](size_t lo, size_t hi, double &p_max,
                             double &c_min) {
        // Max-performance corner: largest covered value per knob,
        // evaluated with the same arithmetic as any real design.
        for (size_t k = 0; k < n_knobs; ++k) {
            double best = -kInf;
            forEachCoveredDigit(k, lo, hi, [&](size_t d) {
                best = std::max(best, knobs_[k].values[d]);
            });
            applyKnob(probe, knobs_[k], best);
        }
        double min_perf = kInf;
        for (GablesEvaluator &ev : probe.evaluators)
            min_perf = std::min(min_perf, ev.attainable());
        p_max = min_perf;

        // Min-cost corner: per knob, the covered value whose linear
        // cost contribution is smallest given the coefficient sign.
        for (size_t k = 0; k < n_knobs; ++k) {
            double coeff = 0.0;
            switch (knobs_[k].kind) {
            case Knob::Kind::Bpeak:
                coeff = cost_.costPerBpeak;
                break;
            case Knob::Kind::Acceleration:
                coeff = cost_.costPerAcceleration;
                break;
            case Knob::Kind::IpBandwidth:
                coeff = cost_.costPerIpBandwidth;
                break;
            }
            bool want_min = coeff >= 0.0;
            double chosen = want_min ? kInf : -kInf;
            forEachCoveredDigit(k, lo, hi, [&](size_t d) {
                double v = knobs_[k].values[d];
                chosen = want_min ? std::min(chosen, v)
                                  : std::max(chosen, v);
            });
            applyKnobHardware(probe, knobs_[k], chosen);
        }
        c_min = cost_.cost(probe.bpeak, probe.ips);
    };

    auto mergeIncumbent = [&](const Point &p) {
        for (const Point &c : incumbents) {
            if (dominatesPoint(c.minPerf, c.cost, p.minPerf, p.cost))
                return;
        }
        incumbents.erase(
            std::remove_if(incumbents.begin(), incumbents.end(),
                           [&](const Point &c) {
                               return dominatesPoint(p.minPerf, p.cost,
                                                     c.minPerf, c.cost);
                           }),
            incumbents.end());
        incumbents.push_back(p);
    };

    // One pool reused across every subgrid; busy time accumulates.
    parallel::ThreadPool pool(workers);
    std::vector<Point> chunk_points;
    chunk_points.reserve(chunk);

    for (size_t lo = 0; lo < total; lo += chunk) {
        const size_t hi = std::min(total, lo + chunk);
        if (prune && !incumbents.empty()) {
            GABLES_SPAN("explore.bounds");
            double p_max = 0.0;
            double c_min = 0.0;
            subgridBounds(lo, hi - 1, p_max, c_min);
            if (dominatedByIncumbent(p_max, c_min)) {
                ++st.subgridsSkipped;
                st.evalsPruned +=
                    static_cast<uint64_t>(hi - lo) * n_use;
                continue;
            }
        }

        GABLES_SPAN("explore.grid");
        chunk_points.resize(hi - lo);
        if (packed) {
            // One loop index = one pack of consecutive flat indices.
            constexpr size_t W = GablesEvalPack::kWidth;
            const size_t npacks = (hi - lo + W - 1) / W;
            pool.forEach(npacks, [&](size_t pi, int worker) {
                WorkerState &ws =
                    states[static_cast<size_t>(worker)];
                const size_t p0 = lo + pi * W;
                const size_t cnt = std::min(W, hi - p0);
                // Decompose the pack's first flat index once; the
                // remaining lanes advance the digit odometer by one
                // step each instead of re-dividing per lane.
                size_t rest = p0;
                for (size_t k = 0; k < n_knobs; ++k) {
                    ws.curDigits[k] = rest % knobs_[k].values.size();
                    rest /= knobs_[k].values.size();
                }
                for (size_t w = 0; w < cnt; ++w) {
                    if (w != 0) {
                        for (size_t k = 0; k < n_knobs; ++k) {
                            if (++ws.curDigits[k] <
                                knobs_[k].values.size())
                                break;
                            ws.curDigits[k] = 0;
                        }
                    }
                    // Stage each knob in registration order, skipping
                    // digits the lane already carries — the same
                    // unchanged-digit skip the scalar applyDigits()
                    // performs, and gated off by the same
                    // `incremental` flag when knobs share a model
                    // term (later knobs must then win by
                    // re-application, identically to the scalar
                    // non-incremental path).
                    size_t *lane_digits =
                        ws.laneDigits.data() + w * n_knobs;
                    for (size_t k = 0; k < n_knobs; ++k) {
                        const Knob &knob = knobs_[k];
                        const size_t digit = ws.curDigits[k];
                        if (!ws.incremental ||
                            lane_digits[k] != digit) {
                            const double v = knob.values[digit];
                            for (GablesEvalPack &pack : ws.packs)
                                applyKnobLane(pack, w, knob, v);
                            lane_digits[k] = digit;
                        }
                    }
                }
                for (GablesEvalPack &pack : ws.packs)
                    pack.run(cnt);
                // Linear cost from the pack's own parameter rows:
                // the per-lane sums reduce in IP index order, so
                // cost bits match CostModel::cost() on the scratch
                // hardware arrays the scalar path maintains.
                double sum_a[W];
                double sum_b[W];
                ws.packs.front().paramSums(sum_a, sum_b);
                const GablesEvalPack &hw = ws.packs.front();
                for (size_t w = 0; w < cnt; ++w) {
                    double min_perf = kInf;
                    for (GablesEvalPack &pack : ws.packs)
                        min_perf =
                            std::min(min_perf, pack.attainable(w));
                    Point &p = chunk_points[p0 - lo + w];
                    p.flat = p0 + w;
                    p.minPerf = min_perf;
                    p.cost =
                        cost_.costPerAcceleration * sum_a[w] +
                        cost_.costPerBpeak * hw.bpeak(w) +
                        cost_.costPerIpBandwidth * sum_b[w];
                }
            });
        } else {
            pool.forEach(hi - lo, [&](size_t i, int worker) {
                WorkerState &ws =
                    states[static_cast<size_t>(worker)];
                Point &p = chunk_points[i];
                p.flat = lo + i;
                applyDigits(ws, p.flat);
                p.cost = cost_.cost(ws.bpeak, ws.ips);
                double min_perf = kInf;
                for (GablesEvaluator &ev : ws.evaluators)
                    min_perf = std::min(min_perf, ev.attainable());
                p.minPerf = min_perf;
            });
        }
        const std::vector<double> &busy = pool.busySeconds();
        for (size_t w = 0;
             w < busy.size() && w < st.forStats.busySeconds.size(); ++w)
            st.forStats.busySeconds[w] += busy[w];

        // Merge in enumeration order so the incumbent list stays in
        // enumeration order (appends only ever grow the flat index).
        for (const Point &p : chunk_points)
            mergeIncumbent(p);
    }

    // Materialize the frontier: re-derive each member's SocSpec and
    // per-usecase detail (deterministic, so bit-identical to the
    // values that earned it frontier membership).
    GABLES_SPAN("explore.materialize");
    std::vector<Candidate> out;
    out.reserve(incumbents.size());
    WorkerState &scratch = states.front();
    for (const Point &p : incumbents) {
        Candidate c{base_, 0.0, {}, 0.0, false};
        evaluateOne(p.flat, scratch, c);
        c.pareto = true;
        out.push_back(std::move(c));
    }
    // Equal-cost frontier members necessarily tie on minPerf too
    // (else one would dominate the other), and they sit in
    // enumeration order, so this matches frontier(explore()) exactly.
    std::stable_sort(out.begin(), out.end(),
                     [](const Candidate &a, const Candidate &b) {
                         return a.cost < b.cost;
                     });

    for (const WorkerState &ws : states) {
        for (const GablesEvaluator &ev : ws.evaluators)
            st.evals += ev.evalCount();
        for (const GablesEvalPack &pack : ws.packs)
            st.evals += pack.evalCount();
    }
    for (const GablesEvaluator &ev : probe.evaluators)
        st.evals += ev.evalCount();
    if (stats)
        *stats = st;
    return out;
}

std::vector<Candidate>
DesignExplorer::frontier(const std::vector<Candidate> &candidates)
{
    std::vector<Candidate> out;
    size_t members = 0;
    for (const Candidate &c : candidates)
        members += c.pareto ? 1 : 0;
    out.reserve(members);
    for (const Candidate &c : candidates) {
        if (c.pareto)
            out.push_back(c);
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const Candidate &a, const Candidate &b) {
                         return a.cost < b.cost;
                     });
    return out;
}

} // namespace gables
