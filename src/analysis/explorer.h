/**
 * @file
 * Early-stage design-space exploration — the paper's motivating
 * scenario ("Which IPs should my SoC include and roughly how big?").
 * Enumerates candidate SoC designs over parameter grids, evaluates a
 * set of must-run usecases (the paper stresses the average is
 * immaterial: every usecase must run acceptably, so the score is the
 * MINIMUM attainable performance across usecases), attaches a simple
 * cost model, and extracts the Pareto frontier.
 */

#ifndef GABLES_ANALYSIS_EXPLORER_H
#define GABLES_ANALYSIS_EXPLORER_H

#include <functional>
#include <string>
#include <vector>

#include "core/gables.h"
#include "parallel/parallel_for.h"

namespace gables {

/**
 * Linear cost model for a candidate SoC: silicon-area-like cost for
 * compute and wire/PHY-like cost for bandwidth.
 */
struct CostModel {
    /** Cost per unit of total acceleration sum(Ai). */
    double costPerAcceleration = 1.0;
    /** Cost per byte/s of off-chip bandwidth Bpeak. */
    double costPerBpeak = 0.0;
    /** Cost per byte/s of summed IP link bandwidth sum(Bi). */
    double costPerIpBandwidth = 0.0;

    /** Evaluate the cost of a design. */
    double cost(const SocSpec &soc) const;
};

/** One evaluated candidate design. */
struct Candidate {
    /** The design. */
    SocSpec soc;
    /** Minimum attainable performance across the usecase set. */
    double minPerf = 0.0;
    /** Per-usecase attainable performance, usecase order preserved. */
    std::vector<double> perUsecase;
    /** Cost under the explorer's cost model. */
    double cost = 0.0;
    /** True if no other candidate dominates it (set by explore()). */
    bool pareto = false;
};

/**
 * Grid-enumeration design-space explorer.
 */
class DesignExplorer
{
  public:
    /**
     * @param base      Template design; enumerated knobs override it.
     * @param usecases  Must-run usecases (all evaluated per design).
     * @param cost      Cost model.
     */
    DesignExplorer(SocSpec base, std::vector<Usecase> usecases,
                   CostModel cost);

    /** Enumerate Bpeak over these values (bytes/s). */
    void sweepBpeak(std::vector<double> values);

    /** Enumerate IP @p ip's acceleration over these values. */
    void sweepAcceleration(size_t ip, std::vector<double> values);

    /** Enumerate IP @p ip's link bandwidth over these values. */
    void sweepIpBandwidth(size_t ip, std::vector<double> values);

    /**
     * Evaluate the full cross product of all registered sweeps and
     * mark the Pareto-optimal (max perf, min cost) candidates.
     *
     * Candidate evaluation and Pareto marking run on the parallel
     * worker-pool layer; results are byte-identical for any @p jobs
     * (candidates land in enumeration-order slots before sorting).
     *
     * @param jobs  Worker count (1 = legacy serial, 0 = hardware).
     * @param stats Optional out: worker count and busy time of the
     *              candidate-evaluation loop.
     * @return All candidates, Pareto members flagged, sorted by
     *         descending minPerf.
     */
    std::vector<Candidate>
    explore(int jobs = 1, parallel::ForStats *stats = nullptr) const;

    /** @return Number of candidate designs explore() will evaluate. */
    size_t gridSize() const;

    /** @return Only the Pareto frontier, sorted by ascending cost. */
    static std::vector<Candidate>
    frontier(const std::vector<Candidate> &candidates);

  private:
    struct Knob {
        std::function<SocSpec(const SocSpec &, double)> apply;
        std::vector<double> values;
    };

    SocSpec base_;
    std::vector<Usecase> usecases_;
    CostModel cost_;
    std::vector<Knob> knobs_;
};

} // namespace gables

#endif // GABLES_ANALYSIS_EXPLORER_H
