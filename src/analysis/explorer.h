/**
 * @file
 * Early-stage design-space exploration — the paper's motivating
 * scenario ("Which IPs should my SoC include and roughly how big?").
 * Enumerates candidate SoC designs over parameter grids, evaluates a
 * set of must-run usecases (the paper stresses the average is
 * immaterial: every usecase must run acceptably, so the score is the
 * MINIMUM attainable performance across usecases), attaches a simple
 * cost model, and extracts the Pareto frontier.
 *
 * Evaluation runs on per-worker compiled GablesEvaluator instances:
 * each knob digit updates one model term instead of rebuilding a
 * SocSpec per knob per design. exploreFrontier() additionally prunes
 * with monotonicity bounds: Pattainable is nondecreasing in Ai, Bi,
 * and Bpeak, so one evaluation at a subgrid's max corner upper-bounds
 * every design inside it, and the linear cost model's min corner
 * lower-bounds their cost — a subgrid whose best possible point is
 * strictly dominated by the incumbent frontier is skipped without
 * evaluating its designs. The frontier is provably identical to the
 * unpruned one (skipped designs are strictly dominated, and strict
 * domination is inherited through the incumbent set).
 */

#ifndef GABLES_ANALYSIS_EXPLORER_H
#define GABLES_ANALYSIS_EXPLORER_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/evaluator.h"
#include "core/gables.h"
#include "parallel/parallel_for.h"

namespace gables {

/**
 * Linear cost model for a candidate SoC: silicon-area-like cost for
 * compute and wire/PHY-like cost for bandwidth.
 */
struct CostModel {
    /** Cost per unit of total acceleration sum(Ai). */
    double costPerAcceleration = 1.0;
    /** Cost per byte/s of off-chip bandwidth Bpeak. */
    double costPerBpeak = 0.0;
    /** Cost per byte/s of summed IP link bandwidth sum(Bi). */
    double costPerIpBandwidth = 0.0;

    /** Evaluate the cost of a design. */
    double cost(const SocSpec &soc) const;

    /** Same arithmetic on raw hardware arrays (allocation-free form
     * used by the explorer's hot loop; cost(SocSpec) delegates here,
     * so both produce bit-identical values). */
    double cost(double bpeak, const std::vector<IpSpec> &ips) const;
};

/** One evaluated candidate design. */
struct Candidate {
    /** The design. */
    SocSpec soc;
    /** Minimum attainable performance across the usecase set. */
    double minPerf = 0.0;
    /** Per-usecase attainable performance, usecase order preserved. */
    std::vector<double> perUsecase;
    /** Cost under the explorer's cost model. */
    double cost = 0.0;
    /** True if no other candidate dominates it (set by explore()). */
    bool pareto = false;
};

/** Tuning knobs for exploreFrontier(). */
struct ExploreOptions {
    /** Worker count (1 = serial, 0 = hardware concurrency). */
    int jobs = 1;
    /** Enable bound-based subgrid pruning (the frontier is identical
     * either way; pruning only skips work). */
    bool prune = true;
    /** Flat enumeration indices per pruning subgrid. */
    size_t subgridSize = 256;
};

/** Work accounting of one exploreFrontier() run, for the model.*
 * telemetry counters. */
struct ExploreStats {
    /** Model evaluations performed: designs x usecases, plus one
     * max-corner probe per usecase per tested subgrid, plus one
     * re-evaluation per usecase per frontier member when the final
     * candidates are materialized. */
    uint64_t evals = 0;
    /** Model evaluations skipped via subgrid bounds. */
    uint64_t evalsPruned = 0;
    /** Subgrids skipped whole. */
    uint64_t subgridsSkipped = 0;
    /** Worker count and busy time of the evaluation loops. */
    parallel::ForStats forStats;
};

/**
 * Grid-enumeration design-space explorer.
 */
class DesignExplorer
{
  public:
    /**
     * @param base      Template design; enumerated knobs override it.
     * @param usecases  Must-run usecases (all evaluated per design).
     * @param cost      Cost model.
     */
    DesignExplorer(SocSpec base, std::vector<Usecase> usecases,
                   CostModel cost);

    /** Enumerate Bpeak over these values (bytes/s). */
    void sweepBpeak(std::vector<double> values);

    /** Enumerate IP @p ip's acceleration over these values. */
    void sweepAcceleration(size_t ip, std::vector<double> values);

    /** Enumerate IP @p ip's link bandwidth over these values. */
    void sweepIpBandwidth(size_t ip, std::vector<double> values);

    /**
     * Evaluate the full cross product of all registered sweeps and
     * mark the Pareto-optimal (max perf, min cost) candidates.
     *
     * Candidate evaluation and Pareto marking run on the parallel
     * worker-pool layer; results are byte-identical for any @p jobs
     * (candidates land in enumeration-order slots before sorting).
     *
     * @param jobs  Worker count (1 = legacy serial, 0 = hardware).
     * @param stats Optional out: worker count and busy time of the
     *              candidate-evaluation loop.
     * @return All candidates, Pareto members flagged, sorted by
     *         descending minPerf (stable: enumeration order breaks
     *         ties).
     */
    std::vector<Candidate>
    explore(int jobs = 1, parallel::ForStats *stats = nullptr) const;

    /**
     * The Pareto frontier only, with bound-based subgrid pruning:
     * dominated regions of the grid are skipped without evaluating
     * their designs, so only a fraction of the cross product is ever
     * computed on large grids. The returned frontier — member set,
     * every Candidate field, and order — is identical to
     * frontier(explore(jobs)) for any options (verified by golden
     * and property tests); pruning only changes how much work is
     * done.
     *
     * @param options Worker count and pruning knobs.
     * @param stats   Optional out: evaluation/pruning work counters.
     * @return Pareto frontier, sorted by ascending cost.
     */
    std::vector<Candidate>
    exploreFrontier(const ExploreOptions &options = {},
                    ExploreStats *stats = nullptr) const;

    /** @return Number of candidate designs explore() will evaluate. */
    size_t gridSize() const;

    /** @return Only the Pareto frontier, sorted by ascending cost. */
    static std::vector<Candidate>
    frontier(const std::vector<Candidate> &candidates);

  private:
    /** A swept parameter: which model term it drives and the grid
     * values it takes (knob 0 varies fastest in enumeration order). */
    struct Knob {
        enum class Kind { Bpeak, Acceleration, IpBandwidth };
        Kind kind;
        size_t ip; // unused for Bpeak
        std::vector<double> values;
    };

    /**
     * Per-worker evaluation state: one compiled evaluator per
     * usecase, scratch hardware arrays for materializing the
     * candidate's SocSpec, and the last-applied knob digits so
     * consecutive grid points only touch the knobs that changed.
     */
    struct WorkerState {
        std::vector<GablesEvaluator> evaluators;
        /** Packed mirrors of `evaluators` (one pack per usecase),
         * populated only when exploreFrontier() runs the packed grid
         * path; each pack lane holds one design of a pack. */
        std::vector<GablesEvalPack> packs;
        /** Last digits applied to each pack lane, [lane][knob] flat —
         * the packed grid's analogue of `digits`, letting a lane skip
         * knobs whose digit it already carries (consecutive packs
         * move a lane by kWidth flat indices, which typically changes
         * only the low knob digits). Packed path only. */
        std::vector<size_t> laneDigits;
        /** Packed-path scratch: the digits of the lane currently
         * being staged (decomposed once per pack, then advanced
         * odometer-style per lane). */
        std::vector<size_t> curDigits;
        double bpeak = 0.0;
        std::vector<IpSpec> ips;
        std::vector<size_t> digits;
        /** False when knobs share a model term: the term's value then
         * depends on applying every knob in registration order (later
         * wins), so the unchanged-digit skip would make a design's
         * value depend on traversal history. */
        bool incremental = true;
    };

    WorkerState makeWorkerState() const;
    /** Apply knob value @p v to the worker's evaluators and scratch
     * hardware arrays. */
    void applyKnob(WorkerState &ws, const Knob &knob, double v) const;
    /** Apply knob value @p v to the scratch hardware arrays only
     * (bound probes that never evaluate the model). */
    static void applyKnobHardware(WorkerState &ws, const Knob &knob,
                                  double v);
    /** Apply knob value @p v to lane @p lane of one pack. */
    static void applyKnobLane(GablesEvalPack &pack, size_t lane,
                              const Knob &knob, double v);
    /** Decompose @p flat into per-knob digits and apply the ones
     * that differ from the worker's last applied digits. */
    void applyDigits(WorkerState &ws, size_t flat) const;
    /** Evaluate flat enumeration index @p flat into @p out. */
    void evaluateOne(size_t flat, WorkerState &ws, Candidate &out) const;
    /** @return True if two knobs drive the same model term (later
     * application overrides earlier; bounds would be wrong). */
    bool hasDuplicateKnobTargets() const;

    SocSpec base_;
    std::vector<Usecase> usecases_;
    CostModel cost_;
    std::vector<Knob> knobs_;
};

} // namespace gables

#endif // GABLES_ANALYSIS_EXPLORER_H
