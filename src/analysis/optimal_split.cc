#include "analysis/optimal_split.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "core/evaluator.h"
#include "util/logging.h"

namespace gables {

OptimalSplitSolver::OptimalSplitSolver(const SocSpec &soc,
                                       std::vector<double> intensities)
    : soc_(soc), intensities_(std::move(intensities))
{
    soc_.validate();
    if (intensities_.size() != soc_.numIps())
        fatal("optimal split: need one intensity per IP");
    for (size_t i = 0; i < intensities_.size(); ++i) {
        if (!(intensities_[i] > 0.0))
            fatal("optimal split: intensity I[" + std::to_string(i) +
                  "] must be > 0");
    }

    // Both fill passes visit IPs in the same order and use the same
    // t-independent roofline values; compute them once here.
    const size_t n = soc_.numIps();
    order_.resize(n);
    std::iota(order_.begin(), order_.end(), size_t{0});
    std::sort(order_.begin(), order_.end(), [&](size_t a, size_t b) {
        return intensities_[a] > intensities_[b];
    });
    roofs_.resize(n);
    for (size_t i = 0; i < n; ++i) {
        roofs_[i] = std::isinf(intensities_[i])
                        ? soc_.ipPeakPerf(i)
                        : std::min(soc_.ip(i).bandwidth *
                                       intensities_[i],
                                   soc_.ipPeakPerf(i));
    }
}

double
OptimalSplitSolver::placeableWork(double t) const
{
    // Each IP can absorb at most ri * t ops within deadline t; the
    // memory interface can carry Bpeak * t bytes. Greedily place work
    // on the IPs that cost the least bytes per op (highest Ii) first.
    double byte_budget = soc_.bpeak() * t;
    double placed = 0.0;
    for (size_t i : order_) {
        double cap = roofs_[i] * t;
        if (std::isinf(intensities_[i])) {
            placed += cap; // free of memory traffic
            continue;
        }
        double bytes_per_op = 1.0 / intensities_[i];
        double mem_cap = byte_budget / bytes_per_op;
        double take = std::min(cap, mem_cap);
        placed += take;
        byte_budget -= take * bytes_per_op;
        if (byte_budget <= 0.0)
            break;
    }
    return placed;
}

OptimalSplit
OptimalSplitSolver::solve() const
{
    // placeableWork(t) is increasing and linear in t, so the optimal
    // deadline is t* = 1 / placeableWork(1): scale-invariance lets us
    // evaluate at t = 1 and read off the throughput directly.
    double throughput = placeableWork(1.0);
    GABLES_ASSERT(throughput > 0.0, "no work placeable at any rate");
    double t_star = 1.0 / throughput;

    // Re-run the greedy fill at t* to recover the fractions.
    const size_t n = soc_.numIps();
    std::vector<double> fractions(n, 0.0);
    double byte_budget = soc_.bpeak() * t_star;
    double remaining = 1.0;
    for (size_t i : order_) {
        if (remaining <= 0.0)
            break;
        double cap = roofs_[i] * t_star;
        double take;
        if (std::isinf(intensities_[i])) {
            take = std::min(cap, remaining);
        } else {
            double bytes_per_op = 1.0 / intensities_[i];
            double mem_cap = byte_budget / bytes_per_op;
            take = std::min({cap, mem_cap, remaining});
            byte_budget -= take * bytes_per_op;
        }
        fractions[i] = take;
        remaining -= take;
    }
    // Numerical residue: dump it on the last IP touched and
    // renormalize (it is O(eps)).
    double sum = std::accumulate(fractions.begin(), fractions.end(), 0.0);
    GABLES_ASSERT(sum > 0.0, "greedy fill placed no work");
    for (double &f : fractions)
        f /= sum;

    std::vector<IpWork> work(n);
    for (size_t i = 0; i < n; ++i)
        work[i] = IpWork{fractions[i], intensities_[i]};
    Usecase usecase("optimal split", std::move(work));

    GablesEvaluator ev(soc_, usecase);
    OptimalSplit result{std::move(fractions), ev.attainable(),
                        std::move(usecase)};
    return result;
}

} // namespace gables
