/**
 * @file
 * Optimal work apportionment: given the hardware and the per-IP
 * operational intensities, find the work fractions fi that maximize
 * attainable performance (paper conjecture 3 turned into a solver —
 * "it is critical to estimate the fraction of work fi at each IP").
 *
 * The problem is: maximize 1/t subject to
 *   fi <= ri * t           (every IP finishes within t)
 *   sum(fi / Ii) <= Bpeak*t (memory finishes within t)
 *   sum(fi) = 1, fi >= 0
 * where ri = min(Bi * Ii, Ai * Ppeak) is IP[i]'s unscaled roofline
 * value. For fixed t the maximum placeable work is computed greedily
 * (fill high-intensity IPs first, since they consume the least
 * memory-bandwidth budget per op), and t is found by bisection.
 */

#ifndef GABLES_ANALYSIS_OPTIMAL_SPLIT_H
#define GABLES_ANALYSIS_OPTIMAL_SPLIT_H

#include <vector>

#include "core/gables.h"

namespace gables {

/** Result of the optimal work-split solver. */
struct OptimalSplit {
    /** Optimal fractions, index-aligned with the SoC's IPs. */
    std::vector<double> fractions;
    /** Attainable performance at the optimum (ops/s). */
    double attainable = 0.0;
    /** The usecase built from the optimal fractions. */
    Usecase usecase;
};

/**
 * Solver for the optimal concurrent work split.
 */
class OptimalSplitSolver
{
  public:
    /**
     * @param soc         Hardware description.
     * @param intensities Per-IP operational intensity of the work if
     *                    assigned there (ops/byte, > 0 or +inf).
     */
    OptimalSplitSolver(const SocSpec &soc,
                       std::vector<double> intensities);

    /**
     * Solve for the performance-maximizing fractions.
     *
     * The returned attainable performance equals
     * GablesModel::evaluate on the returned usecase (verified by
     * tests), and no other fraction vector can beat it.
     */
    OptimalSplit solve() const;

    /**
     * The maximum total work placeable within deadline @p t
     * (exposed for tests).
     */
    double placeableWork(double t) const;

  private:
    const SocSpec &soc_;
    std::vector<double> intensities_;
    /** IP indices in greedy fill order (descending intensity),
     * computed once at construction instead of per fill pass. */
    std::vector<size_t> order_;
    /** Unscaled roofline value ri = min(Bi * Ii, Ai * Ppeak) per IP
     * (Ai * Ppeak alone when Ii is infinite), hoisted because it does
     * not depend on the deadline t. */
    std::vector<double> roofs_;
};

} // namespace gables

#endif // GABLES_ANALYSIS_OPTIMAL_SPLIT_H
