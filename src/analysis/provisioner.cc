#include "analysis/provisioner.h"

#include <cmath>
#include <functional>

#include "telemetry/span.h"
#include "util/logging.h"

namespace gables {

bool
Provisioner::meetsAll(const SocSpec &soc,
                      const std::vector<Requirement> &requirements)
{
    for (const Requirement &req : requirements) {
        if (GablesModel::evaluate(soc, req.usecase).attainable <
            req.minPerf * (1.0 - 1e-12))
            return false;
    }
    return true;
}

namespace {

/**
 * The smallest scale in (0, 1] of a monotone knob that still meets
 * every requirement, by bisection in log space.
 */
double
minimalScale(const std::function<bool(double)> &ok, double tolerance)
{
    GABLES_ASSERT(ok(1.0), "knob must start feasible");
    double lo = 1e-6;
    if (ok(lo))
        return lo;
    double hi = 1.0;
    while (hi / lo > 1.0 + tolerance) {
        double mid = std::sqrt(lo * hi);
        if (ok(mid))
            hi = mid;
        else
            lo = mid;
    }
    return hi;
}

} // namespace

ProvisionedDesign
Provisioner::minimize(const SocSpec &start,
                      const std::vector<Requirement> &requirements,
                      const Options &options)
{
    GABLES_SPAN("provision.minimize");
    if (requirements.empty())
        fatal("provisioner needs at least one requirement");
    for (const Requirement &req : requirements) {
        if (!(req.minPerf > 0.0))
            fatal("requirement '" + req.usecase.name() +
                  "' needs a positive target");
        if (req.usecase.numIps() != start.numIps())
            fatal("requirement '" + req.usecase.name() +
                  "' does not match the design's IP count");
    }
    if (!(options.tolerance > 0.0 && options.tolerance < 1.0))
        fatal("provisioner tolerance must be in (0, 1)");

    ProvisionedDesign result(start);
    if (!meetsAll(start, requirements)) {
        // Infeasible starting point: report and echo the input.
        result.feasible = false;
        for (const Requirement &req : requirements)
            result.achieved.push_back(
                GablesModel::evaluate(start, req.usecase).attainable);
        return result;
    }
    result.feasible = true;

    SocSpec current = start;
    for (int iter = 0; iter < options.maxIterations; ++iter) {
        SocSpec before = current;

        // Shrink Bpeak.
        {
            double base = current.bpeak();
            double scale = minimalScale(
                [&](double s) {
                    return meetsAll(current.withBpeak(base * s),
                                    requirements);
                },
                options.tolerance);
            current = current.withBpeak(base * scale);
        }
        // Shrink each link.
        for (size_t i = 0; i < current.numIps(); ++i) {
            double base = current.ip(i).bandwidth;
            double scale = minimalScale(
                [&](double s) {
                    return meetsAll(
                        current.withIpBandwidth(i, base * s),
                        requirements);
                },
                options.tolerance);
            current = current.withIpBandwidth(i, base * scale);
        }
        // Shrink each acceleration (A0 is pinned to 1 by the model).
        for (size_t i = 1; i < current.numIps(); ++i) {
            double base = current.ip(i).acceleration;
            double floor_scale = options.minAcceleration / base;
            double scale = minimalScale(
                [&](double s) {
                    if (s < floor_scale)
                        return false;
                    return meetsAll(
                        current.withIpAcceleration(i, base * s),
                        requirements);
                },
                options.tolerance);
            current = current.withIpAcceleration(i, base * scale);
        }

        result.iterations = iter + 1;
        // Fixpoint: no knob moved by more than the tolerance.
        bool converged =
            std::fabs(current.bpeak() / before.bpeak() - 1.0) <
            options.tolerance;
        for (size_t i = 0; converged && i < current.numIps(); ++i) {
            converged =
                std::fabs(current.ip(i).bandwidth /
                              before.ip(i).bandwidth -
                          1.0) < options.tolerance &&
                std::fabs(current.ip(i).acceleration /
                              before.ip(i).acceleration -
                          1.0) < options.tolerance;
        }
        if (converged)
            break;
    }

    result.soc = current;
    for (const Requirement &req : requirements)
        result.achieved.push_back(
            GablesModel::evaluate(current, req.usecase).attainable);
    GABLES_ASSERT(meetsAll(current, requirements),
                  "provisioner produced an infeasible design");
    return result;
}

} // namespace gables
