/**
 * @file
 * Inverse design: the paper's early-stage question ("which IPs and
 * roughly how big?") answered constructively. Given a portfolio of
 * usecases with required performance (or frame-rate) targets, start
 * from a generously over-provisioned design and shrink every knob —
 * Bpeak, each Bi, each Ai — to the smallest value that still meets
 * every target, iterating to a fixpoint. The result is a minimal
 * (up to tolerance) design in the spirit of Figure 6d's "sufficient
 * 20 GB/s", generalized to all knobs and many usecases at once.
 */

#ifndef GABLES_ANALYSIS_PROVISIONER_H
#define GABLES_ANALYSIS_PROVISIONER_H

#include <string>
#include <vector>

#include "core/gables.h"

namespace gables {

/** One requirement: a usecase and its minimum performance. */
struct Requirement {
    /** The usecase (index-aligned with the design's IPs). */
    Usecase usecase;
    /** Required attainable performance (ops/s), > 0. */
    double minPerf = 0.0;
};

/** The provisioning result. */
struct ProvisionedDesign {
    /** @param initial The design the result starts from. */
    explicit ProvisionedDesign(SocSpec initial) : soc(std::move(initial))
    {}

    /** The minimized design. */
    SocSpec soc;
    /** True if the starting design met all targets (otherwise no
     * amount of shrinking helps and `soc` echoes the input). */
    bool feasible = false;
    /** Per-requirement attainable performance on the final design. */
    std::vector<double> achieved;
    /** Fixpoint iterations used. */
    int iterations = 0;
};

/**
 * The shrink-to-fit provisioner.
 */
class Provisioner
{
  public:
    /** Tuning knobs. */
    struct Options {
        /** Relative tolerance: each knob is minimized until a
         * further (1 - tol) scaling would violate a target. */
        double tolerance = 1e-3;
        /** Fixpoint iteration cap. */
        int maxIterations = 8;
        /** Keep every Ai >= this floor (A0 is pinned to 1). */
        double minAcceleration = 0.1;
    };

    /**
     * Minimize @p start subject to every requirement.
     *
     * @param start        An over-provisioned starting design; every
     *                     requirement must already be met by it.
     * @param requirements Usecases and their ops/s targets.
     * @param options      Tuning knobs.
     */
    static ProvisionedDesign minimize(const SocSpec &start,
                                      const std::vector<Requirement>
                                          &requirements,
                                      const Options &options);

    /** minimize() with default options. */
    static ProvisionedDesign
    minimize(const SocSpec &start,
             const std::vector<Requirement> &requirements)
    {
        return minimize(start, requirements, Options{});
    }

    /** @return True if @p soc meets every requirement. */
    static bool meetsAll(const SocSpec &soc,
                         const std::vector<Requirement> &requirements);
};

} // namespace gables

#endif // GABLES_ANALYSIS_PROVISIONER_H
