#include "analysis/robustness.h"

#include <algorithm>
#include <cmath>

#include "core/evaluator.h"
#include "telemetry/span.h"
#include "util/logging.h"
#include "util/rng.h"

namespace gables {

RobustnessReport
Robustness::analyze(const SocSpec &soc, const Usecase &usecase,
                    const Options &options)
{
    GABLES_SPAN("robust.analyze");
    if (options.samples < 1)
        fatal("robustness analysis needs at least one sample");
    if (!(options.intensityJitter >= 1.0) ||
        !(options.fractionJitter >= 1.0))
        fatal("jitter factors must be >= 1");

    // One compiled evaluator serves the nominal point and every
    // Monte-Carlo sample; each sample overwrites the per-IP work
    // terms in place instead of constructing a Usecase.
    GablesEvaluator ev(soc, usecase);

    RobustnessReport report;
    report.samples = options.samples;
    report.nominal = ev.attainable();

    Rng rng(options.seed);
    std::vector<double> perf;
    perf.reserve(options.samples);
    std::map<int, int> bottleneck_counts;
    int meets = 0;

    const size_t n = usecase.numIps();
    std::vector<double> fractions(n, 0.0);
    std::vector<double> intensities(n, 1.0);
    GablesResult scratch;

    // One perturbed sample's work terms, drawn in sample-major,
    // IP-minor order — the packed path batches samples but consumes
    // the RNG stream in exactly this order, so both paths see
    // identical draws.
    auto drawSample = [&]() {
        double sum = 0.0;
        for (size_t i = 0; i < n; ++i) {
            const IpWork &w = usecase.at(i);
            if (w.fraction == 0.0) {
                fractions[i] = 0.0;
                intensities[i] = 1.0;
                continue;
            }
            double f_scale =
                options.fractionJitter == 1.0
                    ? 1.0
                    : rng.logUniform(1.0 / options.fractionJitter,
                                     options.fractionJitter);
            double i_scale =
                options.intensityJitter == 1.0
                    ? 1.0
                    : rng.logUniform(1.0 / options.intensityJitter,
                                     options.intensityJitter);
            intensities[i] = std::isinf(w.intensity)
                                 ? w.intensity
                                 : w.intensity * i_scale;
            fractions[i] = w.fraction * f_scale;
            sum += fractions[i];
        }
        GABLES_ASSERT(sum > 0.0, "perturbation removed all work");
        return sum;
    };
    auto recordSample = [&](double attainable, int bottleneck_ip) {
        perf.push_back(attainable);
        bottleneck_counts[bottleneck_ip]++;
        if (options.target > 0.0 && attainable >= options.target)
            ++meets;
    };

    if (simd::enabled()) {
        // Packed Monte-Carlo: kWidth samples per pass. Every lane's
        // work terms are fully overwritten per sample (all n IPs),
        // so lanes never leak state between passes.
        constexpr size_t W = GablesEvalPack::kWidth;
        GablesEvalPack pack(ev);
        const size_t samples = static_cast<size_t>(options.samples);
        for (size_t s0 = 0; s0 < samples; s0 += W) {
            const size_t cnt = std::min(W, samples - s0);
            for (size_t w = 0; w < cnt; ++w) {
                double sum = drawSample();
                for (size_t i = 0; i < n; ++i)
                    pack.setWork(w, i, fractions[i] / sum,
                                 intensities[i]);
            }
            pack.run(cnt);
            for (size_t w = 0; w < cnt; ++w)
                recordSample(pack.attainable(w),
                             pack.bottleneckIp(w));
        }
    } else {
        for (int s = 0; s < options.samples; ++s) {
            double sum = drawSample();
            for (size_t i = 0; i < n; ++i)
                ev.setWork(i, fractions[i] / sum, intensities[i]);

            ev.evaluate(scratch);
            recordSample(scratch.attainable, scratch.bottleneckIp);
        }
    }

    std::sort(perf.begin(), perf.end());
    auto quantile = [&](double q) {
        double pos = q * (perf.size() - 1);
        size_t lo = static_cast<size_t>(pos);
        size_t hi = std::min(lo + 1, perf.size() - 1);
        double t = pos - static_cast<double>(lo);
        return perf[lo] * (1.0 - t) + perf[hi] * t;
    };
    double total = 0.0;
    for (double p : perf)
        total += p;
    report.mean = total / perf.size();
    report.p5 = quantile(0.05);
    report.p50 = quantile(0.50);
    report.p95 = quantile(0.95);
    report.meetsTargetProbability =
        options.target > 0.0
            ? static_cast<double>(meets) / options.samples
            : 1.0;
    for (const auto &[ip, count] : bottleneck_counts)
        report.bottleneckShare[ip] =
            static_cast<double>(count) / options.samples;
    return report;
}

} // namespace gables
