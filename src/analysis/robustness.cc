#include "analysis/robustness.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/rng.h"

namespace gables {

RobustnessReport
Robustness::analyze(const SocSpec &soc, const Usecase &usecase,
                    const Options &options)
{
    if (options.samples < 1)
        fatal("robustness analysis needs at least one sample");
    if (!(options.intensityJitter >= 1.0) ||
        !(options.fractionJitter >= 1.0))
        fatal("jitter factors must be >= 1");

    RobustnessReport report;
    report.samples = options.samples;
    report.nominal = GablesModel::evaluate(soc, usecase).attainable;

    Rng rng(options.seed);
    std::vector<double> perf;
    perf.reserve(options.samples);
    std::map<int, int> bottleneck_counts;
    int meets = 0;

    for (int s = 0; s < options.samples; ++s) {
        std::vector<IpWork> work(usecase.numIps());
        double sum = 0.0;
        for (size_t i = 0; i < usecase.numIps(); ++i) {
            const IpWork &w = usecase.at(i);
            if (w.fraction == 0.0) {
                work[i] = IpWork{0.0, 1.0};
                continue;
            }
            double f_scale =
                options.fractionJitter == 1.0
                    ? 1.0
                    : rng.logUniform(1.0 / options.fractionJitter,
                                     options.fractionJitter);
            double i_scale =
                options.intensityJitter == 1.0
                    ? 1.0
                    : rng.logUniform(1.0 / options.intensityJitter,
                                     options.intensityJitter);
            double intensity = std::isinf(w.intensity)
                                   ? w.intensity
                                   : w.intensity * i_scale;
            work[i] = IpWork{w.fraction * f_scale, intensity};
            sum += work[i].fraction;
        }
        GABLES_ASSERT(sum > 0.0, "perturbation removed all work");
        for (IpWork &w : work)
            w.fraction /= sum;

        Usecase sample("mc", std::move(work));
        GablesResult r = GablesModel::evaluate(soc, sample);
        perf.push_back(r.attainable);
        bottleneck_counts[r.bottleneckIp]++;
        if (options.target > 0.0 && r.attainable >= options.target)
            ++meets;
    }

    std::sort(perf.begin(), perf.end());
    auto quantile = [&](double q) {
        double pos = q * (perf.size() - 1);
        size_t lo = static_cast<size_t>(pos);
        size_t hi = std::min(lo + 1, perf.size() - 1);
        double t = pos - static_cast<double>(lo);
        return perf[lo] * (1.0 - t) + perf[hi] * t;
    };
    double total = 0.0;
    for (double p : perf)
        total += p;
    report.mean = total / perf.size();
    report.p5 = quantile(0.05);
    report.p50 = quantile(0.50);
    report.p95 = quantile(0.95);
    report.meetsTargetProbability =
        options.target > 0.0
            ? static_cast<double>(meets) / options.samples
            : 1.0;
    for (const auto &[ip, count] : bottleneck_counts)
        report.bottleneckShare[ip] =
            static_cast<double>(count) / options.samples;
    return report;
}

} // namespace gables
