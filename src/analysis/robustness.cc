#include "analysis/robustness.h"

#include <algorithm>
#include <cmath>

#include "core/evaluator.h"
#include "telemetry/span.h"
#include "util/logging.h"
#include "util/rng.h"

namespace gables {

RobustnessReport
Robustness::analyze(const SocSpec &soc, const Usecase &usecase,
                    const Options &options)
{
    GABLES_SPAN("robust.analyze");
    if (options.samples < 1)
        fatal("robustness analysis needs at least one sample");
    if (!(options.intensityJitter >= 1.0) ||
        !(options.fractionJitter >= 1.0))
        fatal("jitter factors must be >= 1");

    // One compiled evaluator serves the nominal point and every
    // Monte-Carlo sample; each sample overwrites the per-IP work
    // terms in place instead of constructing a Usecase.
    GablesEvaluator ev(soc, usecase);

    RobustnessReport report;
    report.samples = options.samples;
    report.nominal = ev.attainable();

    Rng rng(options.seed);
    std::vector<double> perf;
    perf.reserve(options.samples);
    std::map<int, int> bottleneck_counts;
    int meets = 0;

    const size_t n = usecase.numIps();
    std::vector<double> fractions(n, 0.0);
    std::vector<double> intensities(n, 1.0);
    GablesResult scratch;

    for (int s = 0; s < options.samples; ++s) {
        double sum = 0.0;
        for (size_t i = 0; i < n; ++i) {
            const IpWork &w = usecase.at(i);
            if (w.fraction == 0.0) {
                fractions[i] = 0.0;
                intensities[i] = 1.0;
                continue;
            }
            double f_scale =
                options.fractionJitter == 1.0
                    ? 1.0
                    : rng.logUniform(1.0 / options.fractionJitter,
                                     options.fractionJitter);
            double i_scale =
                options.intensityJitter == 1.0
                    ? 1.0
                    : rng.logUniform(1.0 / options.intensityJitter,
                                     options.intensityJitter);
            intensities[i] = std::isinf(w.intensity)
                                 ? w.intensity
                                 : w.intensity * i_scale;
            fractions[i] = w.fraction * f_scale;
            sum += fractions[i];
        }
        GABLES_ASSERT(sum > 0.0, "perturbation removed all work");
        for (size_t i = 0; i < n; ++i)
            ev.setWork(i, fractions[i] / sum, intensities[i]);

        ev.evaluate(scratch);
        perf.push_back(scratch.attainable);
        bottleneck_counts[scratch.bottleneckIp]++;
        if (options.target > 0.0 && scratch.attainable >= options.target)
            ++meets;
    }

    std::sort(perf.begin(), perf.end());
    auto quantile = [&](double q) {
        double pos = q * (perf.size() - 1);
        size_t lo = static_cast<size_t>(pos);
        size_t hi = std::min(lo + 1, perf.size() - 1);
        double t = pos - static_cast<double>(lo);
        return perf[lo] * (1.0 - t) + perf[hi] * t;
    };
    double total = 0.0;
    for (double p : perf)
        total += p;
    report.mean = total / perf.size();
    report.p5 = quantile(0.05);
    report.p50 = quantile(0.50);
    report.p95 = quantile(0.95);
    report.meetsTargetProbability =
        options.target > 0.0
            ? static_cast<double>(meets) / options.samples
            : 1.0;
    for (const auto &[ip, count] : bottleneck_counts)
        report.bottleneckShare[ip] =
            static_cast<double>(count) / options.samples;
    return report;
}

} // namespace gables
