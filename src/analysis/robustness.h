/**
 * @file
 * Monte-Carlo robustness analysis. The paper's early-design reality:
 * usecase parameters (work fractions, intensities) for a chip that
 * ships in 2-3 years are estimates, not measurements. This module
 * perturbs a nominal usecase with log-normal-ish multiplicative
 * noise, evaluates the distribution of attainable performance, and
 * reports quantiles plus the probability of meeting a target — so a
 * design can be chosen for its worst plausible case, not its
 * nominal one.
 */

#ifndef GABLES_ANALYSIS_ROBUSTNESS_H
#define GABLES_ANALYSIS_ROBUSTNESS_H

#include <cstdint>
#include <map>
#include <vector>

#include "core/gables.h"

namespace gables {

/** Distribution summary of a robustness run. */
struct RobustnessReport {
    /** Number of samples drawn. */
    int samples = 0;
    /** Performance at the nominal (unperturbed) usecase (ops/s). */
    double nominal = 0.0;
    /** Sample mean (ops/s). */
    double mean = 0.0;
    /** 5th / 50th / 95th percentile performance (ops/s). */
    double p5 = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    /** Fraction of samples meeting the target (if one was given). */
    double meetsTargetProbability = 1.0;
    /**
     * How often each resource was the bottleneck: key is the IP
     * index, or -1 for the memory interface.
     */
    std::map<int, double> bottleneckShare;
};

/**
 * Monte-Carlo evaluator.
 */
class Robustness
{
  public:
    /** Perturbation configuration. */
    struct Options {
        /** Samples to draw. */
        int samples = 1000;
        /** RNG seed (deterministic across runs). */
        uint64_t seed = 1;
        /**
         * Multiplicative jitter on intensities: each Ii is scaled
         * by a log-uniform factor in [1/x, x].
         */
        double intensityJitter = 2.0;
        /**
         * Jitter on work fractions: each active fi is scaled by a
         * uniform factor in [1/x, x], then the vector renormalizes.
         */
        double fractionJitter = 1.5;
        /** Performance target (ops/s); 0 = no target. */
        double target = 0.0;
    };

    /**
     * Run the analysis.
     *
     * @param soc     Hardware description.
     * @param usecase Nominal usecase.
     * @param options Perturbation configuration.
     */
    static RobustnessReport analyze(const SocSpec &soc,
                                    const Usecase &usecase,
                                    const Options &options);

    /** analyze() with default options. */
    static RobustnessReport
    analyze(const SocSpec &soc, const Usecase &usecase)
    {
        return analyze(soc, usecase, Options{});
    }
};

} // namespace gables

#endif // GABLES_ANALYSIS_ROBUSTNESS_H
