#include "analysis/sensitivity.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <functional>

#include "core/evaluator.h"
#include "telemetry/span.h"
#include "util/logging.h"

namespace gables {

double
Sensitivity::elasticity(double value,
                        const std::function<double(double)> &perf_at,
                        double rel_step)
{
    GABLES_ASSERT(value > 0.0, "elasticity needs a positive parameter");
    GABLES_ASSERT(rel_step > 0.0 && rel_step < 1.0, "bad probe step");
    double up = value * (1.0 + rel_step);
    double down = value / (1.0 + rel_step);
    double perf_up = perf_at(up);
    double perf_down = perf_at(down);
    GABLES_ASSERT(perf_up > 0.0 && perf_down > 0.0,
                  "performance must stay positive during probing");
    return (std::log(perf_up) - std::log(perf_down)) /
           (std::log(up) - std::log(down));
}

namespace {

/** One elasticity probe: which model term, and its base value. */
struct Probe {
    enum class Kind { Ppeak, Bpeak, Acceleration, IpBandwidth,
                      Intensity };
    std::string name;
    Kind kind;
    size_t ip;
    double value;
};

void
applyProbeLane(GablesEvalPack &pack, size_t lane, const Probe &p,
               double v)
{
    switch (p.kind) {
    case Probe::Kind::Ppeak:
        pack.setPpeak(lane, v);
        break;
    case Probe::Kind::Bpeak:
        pack.setBpeak(lane, v);
        break;
    case Probe::Kind::Acceleration:
        pack.setAcceleration(lane, p.ip, v);
        break;
    case Probe::Kind::IpBandwidth:
        pack.setIpBandwidth(lane, p.ip, v);
        break;
    case Probe::Kind::Intensity:
        pack.setIntensity(lane, p.ip, v);
        break;
    }
}

/**
 * Packed probe evaluation: two lanes per probe (the up and down
 * perturbations), kWidth/2 probes per pass. Each lane is the base
 * state plus one mutation — exactly the state the scalar probe
 * lambda evaluates before restoring — and the elasticity arithmetic
 * below is the same expression elasticity() computes, so entries are
 * bit-identical to the scalar path.
 */
std::vector<SensitivityEntry>
analyzePacked(const std::vector<Probe> &probes,
              GablesEvaluator &base, double rel_step)
{
    constexpr size_t W = GablesEvalPack::kWidth;
    constexpr size_t kPerPack = W / 2;
    std::vector<SensitivityEntry> entries;
    entries.reserve(probes.size());

    GablesEvalPack pack(base);
    std::array<double, kPerPack> ups{};
    std::array<double, kPerPack> downs{};
    for (size_t p0 = 0; p0 < probes.size(); p0 += kPerPack) {
        const size_t cnt = std::min(kPerPack, probes.size() - p0);
        if (p0 != 0)
            pack.broadcast(base); // clear the previous pass's lanes
        for (size_t j = 0; j < cnt; ++j) {
            const Probe &p = probes[p0 + j];
            GABLES_ASSERT(p.value > 0.0,
                          "elasticity needs a positive parameter");
            GABLES_ASSERT(rel_step > 0.0 && rel_step < 1.0,
                          "bad probe step");
            ups[j] = p.value * (1.0 + rel_step);
            downs[j] = p.value / (1.0 + rel_step);
            applyProbeLane(pack, 2 * j, p, ups[j]);
            applyProbeLane(pack, 2 * j + 1, p, downs[j]);
        }
        pack.run(2 * cnt);
        for (size_t j = 0; j < cnt; ++j) {
            double perf_up = pack.attainable(2 * j);
            double perf_down = pack.attainable(2 * j + 1);
            GABLES_ASSERT(perf_up > 0.0 && perf_down > 0.0,
                          "performance must stay positive during "
                          "probing");
            entries.push_back(
                {probes[p0 + j].name,
                 (std::log(perf_up) - std::log(perf_down)) /
                     (std::log(ups[j]) - std::log(downs[j]))});
        }
    }
    return entries;
}

} // namespace

std::vector<SensitivityEntry>
Sensitivity::analyze(const SocSpec &soc, const Usecase &usecase,
                     double rel_step)
{
    GABLES_SPAN("sensitivity.analyze");
    std::vector<SensitivityEntry> entries;
    entries.reserve(2 * soc.numIps() + 1 + usecase.numIps());

    // One compiled evaluator serves every probe: each lambda sets the
    // probed parameter, evaluates, and restores the base value, so
    // only the touched timing lanes are ever recomputed.
    GablesEvaluator ev(soc, usecase);

    if (simd::enabled()) {
        // Probe list in the exact order the scalar path emits.
        std::vector<Probe> probes;
        probes.reserve(2 * soc.numIps() + 1 + usecase.numIps());
        probes.push_back(
            {"Ppeak", Probe::Kind::Ppeak, 0, soc.ppeak()});
        probes.push_back(
            {"Bpeak", Probe::Kind::Bpeak, 0, soc.bpeak()});
        for (size_t i = 1; i < soc.numIps(); ++i)
            probes.push_back({"A[" + std::to_string(i) + "]",
                              Probe::Kind::Acceleration, i,
                              soc.ip(i).acceleration});
        for (size_t i = 0; i < soc.numIps(); ++i)
            probes.push_back({"B[" + std::to_string(i) + "]",
                              Probe::Kind::IpBandwidth, i,
                              soc.ip(i).bandwidth});
        for (size_t i = 0; i < usecase.numIps(); ++i) {
            const IpWork &w = usecase.at(i);
            if (w.fraction == 0.0 || std::isinf(w.intensity))
                continue;
            probes.push_back({"I[" + std::to_string(i) + "]",
                              Probe::Kind::Intensity, i,
                              w.intensity});
        }
        return analyzePacked(probes, ev, rel_step);
    }

    entries.push_back(
        {"Ppeak", elasticity(
                      soc.ppeak(),
                      [&](double v) {
                          ev.setPpeak(v);
                          double p = ev.attainable();
                          ev.setPpeak(soc.ppeak());
                          return p;
                      },
                      rel_step)});

    entries.push_back(
        {"Bpeak", elasticity(
                      soc.bpeak(),
                      [&](double v) {
                          ev.setBpeak(v);
                          double p = ev.attainable();
                          ev.setBpeak(soc.bpeak());
                          return p;
                      },
                      rel_step)});

    for (size_t i = 1; i < soc.numIps(); ++i) {
        entries.push_back(
            {"A[" + std::to_string(i) + "]",
             elasticity(
                 soc.ip(i).acceleration,
                 [&](double v) {
                     ev.setAcceleration(i, v);
                     double p = ev.attainable();
                     ev.setAcceleration(i, soc.ip(i).acceleration);
                     return p;
                 },
                 rel_step)});
    }

    for (size_t i = 0; i < soc.numIps(); ++i) {
        entries.push_back(
            {"B[" + std::to_string(i) + "]",
             elasticity(
                 soc.ip(i).bandwidth,
                 [&](double v) {
                     ev.setIpBandwidth(i, v);
                     double p = ev.attainable();
                     ev.setIpBandwidth(i, soc.ip(i).bandwidth);
                     return p;
                 },
                 rel_step)});
    }

    for (size_t i = 0; i < usecase.numIps(); ++i) {
        const IpWork &w = usecase.at(i);
        if (w.fraction == 0.0 || std::isinf(w.intensity))
            continue;
        entries.push_back(
            {"I[" + std::to_string(i) + "]",
             elasticity(
                 w.intensity,
                 [&](double v) {
                     ev.setIntensity(i, v);
                     double p = ev.attainable();
                     ev.setIntensity(i, w.intensity);
                     return p;
                 },
                 rel_step)});
    }
    return entries;
}

} // namespace gables
