#include "analysis/sensitivity.h"

#include <cmath>
#include <functional>

#include "core/evaluator.h"
#include "telemetry/span.h"
#include "util/logging.h"

namespace gables {

double
Sensitivity::elasticity(double value,
                        const std::function<double(double)> &perf_at,
                        double rel_step)
{
    GABLES_ASSERT(value > 0.0, "elasticity needs a positive parameter");
    GABLES_ASSERT(rel_step > 0.0 && rel_step < 1.0, "bad probe step");
    double up = value * (1.0 + rel_step);
    double down = value / (1.0 + rel_step);
    double perf_up = perf_at(up);
    double perf_down = perf_at(down);
    GABLES_ASSERT(perf_up > 0.0 && perf_down > 0.0,
                  "performance must stay positive during probing");
    return (std::log(perf_up) - std::log(perf_down)) /
           (std::log(up) - std::log(down));
}

std::vector<SensitivityEntry>
Sensitivity::analyze(const SocSpec &soc, const Usecase &usecase,
                     double rel_step)
{
    GABLES_SPAN("sensitivity.analyze");
    std::vector<SensitivityEntry> entries;
    entries.reserve(2 * soc.numIps() + 1 + usecase.numIps());

    // One compiled evaluator serves every probe: each lambda sets the
    // probed parameter, evaluates, and restores the base value, so
    // only the touched timing lanes are ever recomputed.
    GablesEvaluator ev(soc, usecase);

    entries.push_back(
        {"Ppeak", elasticity(
                      soc.ppeak(),
                      [&](double v) {
                          ev.setPpeak(v);
                          double p = ev.attainable();
                          ev.setPpeak(soc.ppeak());
                          return p;
                      },
                      rel_step)});

    entries.push_back(
        {"Bpeak", elasticity(
                      soc.bpeak(),
                      [&](double v) {
                          ev.setBpeak(v);
                          double p = ev.attainable();
                          ev.setBpeak(soc.bpeak());
                          return p;
                      },
                      rel_step)});

    for (size_t i = 1; i < soc.numIps(); ++i) {
        entries.push_back(
            {"A[" + std::to_string(i) + "]",
             elasticity(
                 soc.ip(i).acceleration,
                 [&](double v) {
                     ev.setAcceleration(i, v);
                     double p = ev.attainable();
                     ev.setAcceleration(i, soc.ip(i).acceleration);
                     return p;
                 },
                 rel_step)});
    }

    for (size_t i = 0; i < soc.numIps(); ++i) {
        entries.push_back(
            {"B[" + std::to_string(i) + "]",
             elasticity(
                 soc.ip(i).bandwidth,
                 [&](double v) {
                     ev.setIpBandwidth(i, v);
                     double p = ev.attainable();
                     ev.setIpBandwidth(i, soc.ip(i).bandwidth);
                     return p;
                 },
                 rel_step)});
    }

    for (size_t i = 0; i < usecase.numIps(); ++i) {
        const IpWork &w = usecase.at(i);
        if (w.fraction == 0.0 || std::isinf(w.intensity))
            continue;
        entries.push_back(
            {"I[" + std::to_string(i) + "]",
             elasticity(
                 w.intensity,
                 [&](double v) {
                     ev.setIntensity(i, v);
                     double p = ev.attainable();
                     ev.setIntensity(i, w.intensity);
                     return p;
                 },
                 rel_step)});
    }
    return entries;
}

} // namespace gables
