/**
 * @file
 * Sensitivity analysis: elasticities of attainable performance with
 * respect to every hardware and software parameter. Answers the
 * early-design question "which knob is worth turning?" — e.g. in
 * Figure 6b the Bpeak elasticity is ~1 (bandwidth-starved) while the
 * Ppeak elasticity is 0.
 */

#ifndef GABLES_ANALYSIS_SENSITIVITY_H
#define GABLES_ANALYSIS_SENSITIVITY_H

#include <functional>
#include <string>
#include <vector>

#include "core/gables.h"

namespace gables {

/** Elasticity of performance w.r.t. one parameter. */
struct SensitivityEntry {
    /** Parameter label, e.g. "Bpeak", "A[1]", "I[1]". */
    std::string parameter;
    /**
     * Elasticity d ln(Pattainable) / d ln(parameter), estimated by a
     * central finite difference in log space. For a pure bottleneck
     * model this is ~1 for the binding resource and ~0 for slack
     * resources; fractional values mean the bottleneck shifts within
     * the probe step.
     */
    double elasticity = 0.0;
};

/**
 * Finite-difference sensitivity of the base Gables model.
 */
class Sensitivity
{
  public:
    /**
     * Compute elasticities for Ppeak, Bpeak, each Ai (i >= 1), each
     * Bi, and each Ii with fi > 0.
     *
     * @param soc      Hardware description.
     * @param usecase  Software description.
     * @param rel_step Relative probe step (default 1%).
     * @return Entries ordered: Ppeak, Bpeak, A[1..], B[0..], I[..].
     */
    static std::vector<SensitivityEntry> analyze(const SocSpec &soc,
                                                 const Usecase &usecase,
                                                 double rel_step = 0.01);

    /**
     * Elasticity of a single scalar map via central difference in
     * log space.
     *
     * @param value Current parameter value (> 0).
     * @param perf_at Evaluates performance at a given parameter
     *                value.
     * @param rel_step Relative probe step.
     */
    static double elasticity(
        double value, const std::function<double(double)> &perf_at,
        double rel_step = 0.01);
};

} // namespace gables

#endif // GABLES_ANALYSIS_SENSITIVITY_H
