#include "analysis/sweep.h"

#include <algorithm>

#include "telemetry/span.h"
#include "util/logging.h"
#include "util/strings.h"

namespace gables {

Series
Sweep::fill(std::string label, const std::vector<double> &xs,
            const std::function<double(double)> &evaluate, int jobs,
            parallel::ForStats *stats)
{
    Series series;
    series.label = std::move(label);
    series.x.reserve(xs.size());
    series.y.reserve(xs.size());
    series.x = xs;
    series.y.resize(xs.size());
    parallel::ForOptions opts;
    opts.jobs = jobs;
    GABLES_SPAN("sweep.grid");
    parallel::ForStats st = parallel::parallelFor(
        xs.size(),
        [&](size_t i) { series.y[i] = evaluate(series.x[i]); }, opts);
    if (stats)
        *stats = st;
    return series;
}

Series
Sweep::fillWith(std::string label, const SocSpec &soc,
                const Usecase &seed, const std::vector<double> &xs,
                const std::function<double(GablesEvaluator &, double)>
                    &point,
                const std::function<void(GablesEvalPack &,
                                         const double *, size_t)>
                    &packStage,
                double divisor, int jobs, parallel::ForStats *stats)
{
    Series series;
    series.label = std::move(label);
    series.x.reserve(xs.size());
    series.y.reserve(xs.size());
    series.x = xs;
    series.y.resize(xs.size());

    parallel::ForOptions opts;
    opts.jobs = jobs;

    if (packStage && simd::enabled() && !xs.empty()) {
        // Packed grid: each loop index is one pack of kWidth points.
        // Lanes land in the same pre-sized slots as the scalar path,
        // and each lane's value is bit-identical, so the output is
        // byte-for-byte the same for any job count.
        constexpr size_t W = GablesEvalPack::kWidth;
        const size_t packs = (xs.size() + W - 1) / W;
        int workers = parallel::plannedWorkers(packs, opts);
        std::vector<GablesEvalPack> lanes;
        lanes.reserve(static_cast<size_t>(workers));
        {
            GABLES_SPAN("sweep.compile");
            GablesEvaluator base(soc, seed);
            for (int w = 0; w < workers; ++w)
                lanes.emplace_back(base);
        }

        GABLES_SPAN("sweep.grid");
        parallel::ForStats st = parallel::parallelFor(
            packs,
            [&](size_t pi, int worker) {
                GablesEvalPack &pack =
                    lanes[static_cast<size_t>(worker)];
                const size_t p0 = pi * W;
                const size_t cnt = std::min(W, xs.size() - p0);
                packStage(pack, series.x.data() + p0, cnt);
                pack.run(cnt);
                for (size_t w = 0; w < cnt; ++w)
                    series.y[p0 + w] = pack.attainable(w) / divisor;
            },
            opts);
        if (stats)
            *stats = st;
        return series;
    }

    // One compiled evaluator per pool worker: mutators are stateful,
    // and worker indices are stable for the duration of one loop.
    // An empty grid never calls the body, so compile nothing.
    int workers =
        xs.empty() ? 0 : parallel::plannedWorkers(xs.size(), opts);
    std::vector<GablesEvaluator> evaluators;
    evaluators.reserve(static_cast<size_t>(workers));
    {
        GABLES_SPAN("sweep.compile");
        for (int w = 0; w < workers; ++w)
            evaluators.emplace_back(soc, seed);
    }

    GABLES_SPAN("sweep.grid");
    parallel::ForStats st = parallel::parallelFor(
        xs.size(),
        [&](size_t i, int worker) {
            series.y[i] =
                point(evaluators[static_cast<size_t>(worker)],
                      series.x[i]);
        },
        opts);
    if (stats)
        *stats = st;
    return series;
}

Series
Sweep::mixing(const SocSpec &soc, double i0, double i1,
              const std::vector<double> &fractions, bool normalize,
              int jobs, parallel::ForStats *stats)
{
    if (soc.numIps() < 2)
        fatal("mixing sweep needs a SoC with at least two IPs");
    for (double f : fractions) {
        if (!(f >= 0.0 && f <= 1.0))
            fatal("mixing fraction must be in [0, 1]");
    }

    auto usecase_for = [&](double f) {
        std::vector<IpWork> work(soc.numIps());
        work[0] = IpWork{1.0 - f, i0};
        work[1] = IpWork{f, i1};
        for (size_t i = 2; i < work.size(); ++i)
            work[i] = IpWork{0.0, 1.0};
        return Usecase("mixing", std::move(work));
    };

    double base = 1.0;
    if (normalize) {
        GablesEvaluator ev(soc, usecase_for(0.0));
        base = ev.attainable();
    }

    Usecase seed =
        usecase_for(fractions.empty() ? 0.0 : fractions[0]);
    return fillWith(
        "I0=" + formatDouble(i0) + " I1=" + formatDouble(i1), soc, seed,
        fractions,
        [base](GablesEvaluator &ev, double f) {
            ev.setFraction(0, 1.0 - f);
            ev.setFraction(1, f);
            return ev.attainable() / base;
        },
        [](GablesEvalPack &pack, const double *fs, size_t cnt) {
            double f0[GablesEvalPack::kWidth];
            for (size_t w = 0; w < cnt; ++w)
                f0[w] = 1.0 - fs[w];
            pack.setFractionRow(0, f0, cnt);
            pack.setFractionRow(1, fs, cnt);
        },
        base, jobs, stats);
}

Series
Sweep::bpeak(const SocSpec &soc, const Usecase &usecase,
             const std::vector<double> &values, int jobs,
             parallel::ForStats *stats)
{
    return fillWith(
        "Bpeak sweep", soc, usecase, values,
        [](GablesEvaluator &ev, double b) {
            ev.setBpeak(b);
            return ev.attainable();
        },
        [](GablesEvalPack &pack, const double *bs, size_t cnt) {
            pack.setBpeakLanes(bs, cnt);
        },
        1.0, jobs, stats);
}

Series
Sweep::intensity(const SocSpec &soc, const Usecase &usecase, size_t ip,
                 const std::vector<double> &values, int jobs,
                 parallel::ForStats *stats)
{
    return fillWith(
        "I[" + std::to_string(ip) + "] sweep", soc, usecase, values,
        [ip](GablesEvaluator &ev, double i) {
            ev.setIntensity(ip, i);
            return ev.attainable();
        },
        [ip](GablesEvalPack &pack, const double *is, size_t cnt) {
            pack.setIntensityRow(ip, is, cnt);
        },
        1.0, jobs, stats);
}

Series
Sweep::acceleration(const SocSpec &soc, const Usecase &usecase, size_t ip,
                    const std::vector<double> &values, int jobs,
                    parallel::ForStats *stats)
{
    if (ip == 0)
        fatal("cannot sweep A0: the paper fixes A0 = 1");
    return fillWith(
        "A[" + std::to_string(ip) + "] sweep", soc, usecase, values,
        [ip](GablesEvaluator &ev, double a) {
            ev.setAcceleration(ip, a);
            return ev.attainable();
        },
        [ip](GablesEvalPack &pack, const double *as, size_t cnt) {
            pack.setAccelerationRow(ip, as, cnt);
        },
        1.0, jobs, stats);
}

Series
Sweep::ipBandwidth(const SocSpec &soc, const Usecase &usecase, size_t ip,
                   const std::vector<double> &values, int jobs,
                   parallel::ForStats *stats)
{
    return fillWith(
        "B[" + std::to_string(ip) + "] sweep", soc, usecase, values,
        [ip](GablesEvaluator &ev, double b) {
            ev.setIpBandwidth(ip, b);
            return ev.attainable();
        },
        [ip](GablesEvalPack &pack, const double *bs, size_t cnt) {
            pack.setIpBandwidthRow(ip, bs, cnt);
        },
        1.0, jobs, stats);
}

Series
Sweep::custom(const std::string &label, const std::vector<double> &xs,
              const std::function<double(double)> &evaluate, int jobs,
              parallel::ForStats *stats)
{
    return fill(label, xs, evaluate, jobs, stats);
}

} // namespace gables
