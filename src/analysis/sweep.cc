#include "analysis/sweep.h"

#include "util/logging.h"
#include "util/strings.h"

namespace gables {

Series
Sweep::fill(std::string label, const std::vector<double> &xs,
            const std::function<double(double)> &evaluate, int jobs,
            parallel::ForStats *stats)
{
    Series series;
    series.label = std::move(label);
    series.x = xs;
    series.y.resize(xs.size());
    parallel::ForOptions opts;
    opts.jobs = jobs;
    parallel::ForStats st = parallel::parallelFor(
        xs.size(),
        [&](size_t i) { series.y[i] = evaluate(series.x[i]); }, opts);
    if (stats)
        *stats = st;
    return series;
}

Series
Sweep::mixing(const SocSpec &soc, double i0, double i1,
              const std::vector<double> &fractions, bool normalize,
              int jobs, parallel::ForStats *stats)
{
    if (soc.numIps() < 2)
        fatal("mixing sweep needs a SoC with at least two IPs");

    auto usecase_for = [&](double f) {
        std::vector<IpWork> work(soc.numIps());
        work[0] = IpWork{1.0 - f, i0};
        work[1] = IpWork{f, i1};
        for (size_t i = 2; i < work.size(); ++i)
            work[i] = IpWork{0.0, 1.0};
        return Usecase("mixing", std::move(work));
    };

    double base = 1.0;
    if (normalize)
        base = GablesModel::evaluate(soc, usecase_for(0.0)).attainable;

    return fill(
        "I0=" + formatDouble(i0) + " I1=" + formatDouble(i1), fractions,
        [&](double f) {
            if (!(f >= 0.0 && f <= 1.0))
                fatal("mixing fraction must be in [0, 1]");
            return GablesModel::evaluate(soc, usecase_for(f)).attainable /
                   base;
        },
        jobs, stats);
}

Series
Sweep::bpeak(const SocSpec &soc, const Usecase &usecase,
             const std::vector<double> &values, int jobs,
             parallel::ForStats *stats)
{
    return fill(
        "Bpeak sweep", values,
        [&](double b) {
            return GablesModel::evaluate(soc.withBpeak(b), usecase)
                .attainable;
        },
        jobs, stats);
}

Series
Sweep::intensity(const SocSpec &soc, const Usecase &usecase, size_t ip,
                 const std::vector<double> &values, int jobs,
                 parallel::ForStats *stats)
{
    return fill(
        "I[" + std::to_string(ip) + "] sweep", values,
        [&](double i) {
            Usecase modified =
                usecase.withWork(ip, IpWork{usecase.fraction(ip), i});
            return GablesModel::evaluate(soc, modified).attainable;
        },
        jobs, stats);
}

Series
Sweep::acceleration(const SocSpec &soc, const Usecase &usecase, size_t ip,
                    const std::vector<double> &values, int jobs,
                    parallel::ForStats *stats)
{
    if (ip == 0)
        fatal("cannot sweep A0: the paper fixes A0 = 1");
    return fill(
        "A[" + std::to_string(ip) + "] sweep", values,
        [&](double a) {
            return GablesModel::evaluate(soc.withIpAcceleration(ip, a),
                                         usecase)
                .attainable;
        },
        jobs, stats);
}

Series
Sweep::ipBandwidth(const SocSpec &soc, const Usecase &usecase, size_t ip,
                   const std::vector<double> &values, int jobs,
                   parallel::ForStats *stats)
{
    return fill(
        "B[" + std::to_string(ip) + "] sweep", values,
        [&](double b) {
            return GablesModel::evaluate(soc.withIpBandwidth(ip, b),
                                         usecase)
                .attainable;
        },
        jobs, stats);
}

Series
Sweep::custom(const std::string &label, const std::vector<double> &xs,
              const std::function<double(double)> &evaluate, int jobs,
              parallel::ForStats *stats)
{
    return fill(label, xs, evaluate, jobs, stats);
}

} // namespace gables
