#include "analysis/sweep.h"

#include "util/logging.h"
#include "util/strings.h"

namespace gables {

Series
Sweep::mixing(const SocSpec &soc, double i0, double i1,
              const std::vector<double> &fractions, bool normalize)
{
    if (soc.numIps() < 2)
        fatal("mixing sweep needs a SoC with at least two IPs");

    auto usecase_for = [&](double f) {
        std::vector<IpWork> work(soc.numIps());
        work[0] = IpWork{1.0 - f, i0};
        work[1] = IpWork{f, i1};
        for (size_t i = 2; i < work.size(); ++i)
            work[i] = IpWork{0.0, 1.0};
        return Usecase("mixing", std::move(work));
    };

    double base = 1.0;
    if (normalize)
        base = GablesModel::evaluate(soc, usecase_for(0.0)).attainable;

    Series series;
    series.label = "I0=" + formatDouble(i0) + " I1=" + formatDouble(i1);
    for (double f : fractions) {
        if (!(f >= 0.0 && f <= 1.0))
            fatal("mixing fraction must be in [0, 1]");
        double perf =
            GablesModel::evaluate(soc, usecase_for(f)).attainable;
        series.x.push_back(f);
        series.y.push_back(perf / base);
    }
    return series;
}

Series
Sweep::bpeak(const SocSpec &soc, const Usecase &usecase,
             const std::vector<double> &values)
{
    Series series;
    series.label = "Bpeak sweep";
    for (double b : values) {
        series.x.push_back(b);
        series.y.push_back(
            GablesModel::evaluate(soc.withBpeak(b), usecase).attainable);
    }
    return series;
}

Series
Sweep::intensity(const SocSpec &soc, const Usecase &usecase, size_t ip,
                 const std::vector<double> &values)
{
    Series series;
    series.label = "I[" + std::to_string(ip) + "] sweep";
    for (double i : values) {
        Usecase modified = usecase.withWork(
            ip, IpWork{usecase.fraction(ip), i});
        series.x.push_back(i);
        series.y.push_back(
            GablesModel::evaluate(soc, modified).attainable);
    }
    return series;
}

Series
Sweep::acceleration(const SocSpec &soc, const Usecase &usecase, size_t ip,
                    const std::vector<double> &values)
{
    if (ip == 0)
        fatal("cannot sweep A0: the paper fixes A0 = 1");
    Series series;
    series.label = "A[" + std::to_string(ip) + "] sweep";
    for (double a : values) {
        series.x.push_back(a);
        series.y.push_back(
            GablesModel::evaluate(soc.withIpAcceleration(ip, a), usecase)
                .attainable);
    }
    return series;
}

Series
Sweep::ipBandwidth(const SocSpec &soc, const Usecase &usecase, size_t ip,
                   const std::vector<double> &values)
{
    Series series;
    series.label = "B[" + std::to_string(ip) + "] sweep";
    for (double b : values) {
        series.x.push_back(b);
        series.y.push_back(
            GablesModel::evaluate(soc.withIpBandwidth(ip, b), usecase)
                .attainable);
    }
    return series;
}

Series
Sweep::custom(const std::string &label, const std::vector<double> &xs,
              const std::function<double(double)> &evaluate)
{
    Series series;
    series.label = label;
    for (double x : xs) {
        series.x.push_back(x);
        series.y.push_back(evaluate(x));
    }
    return series;
}

} // namespace gables
