/**
 * @file
 * Parameter sweeps over the Gables model — the workhorse behind the
 * paper's Figure 6 progression and Figure 8 mixing curves, and the
 * data source for all line plots.
 */

#ifndef GABLES_ANALYSIS_SWEEP_H
#define GABLES_ANALYSIS_SWEEP_H

#include <functional>
#include <string>
#include <vector>

#include "core/evaluator.h"
#include "core/gables.h"
#include "parallel/parallel_for.h"

namespace gables {

/** A named (x, y) series, the unit of plotting and CSV output. */
struct Series {
    /** Display label, e.g. "I = 64". */
    std::string label;
    /** Abscissae. */
    std::vector<double> x;
    /** Ordinates, index-aligned with x. */
    std::vector<double> y;
};

/**
 * Sweep drivers producing Series from the model.
 *
 * Every driver evaluates its grid with the parallel worker-pool
 * layer: @p jobs = 1 (the default) is the legacy serial path, 0
 * means hardware concurrency. Output is byte-identical for any job
 * count — points are written into pre-sized slots and exceptions
 * surface from the lowest failing index, exactly as a serial loop.
 * When @p stats is non-null it receives the worker count and
 * per-worker busy time for telemetry RunReports.
 *
 * The model drivers (mixing, bpeak, intensity, acceleration,
 * ipBandwidth) run on per-worker GablesEvaluator instances: the
 * (SoC, usecase) pair is compiled once per worker and each grid
 * point updates a single parameter, instead of rebuilding a spec
 * copy and re-deriving every term per point. Results are
 * bit-identical to the per-point GablesModel::evaluate() path.
 *
 * When the packed path is live (simd::enabled()), the same drivers
 * batch kPackWidth grid points into a per-worker GablesEvalPack and
 * evaluate a pack per pass; lanes are written back into the same
 * pre-sized slots, so output stays byte-identical to the scalar path
 * for any job count (the pack itself is bit-exact per lane).
 */
class Sweep
{
  public:
    /**
     * Two-IP mixing sweep (paper Figure 8): vary the fraction f of
     * work at IP[1] over @p fractions, holding intensities fixed,
     * and report performance normalized to the f = 0 point.
     *
     * @param soc        A SoC with at least two IPs; work moves
     *                   between IP[0] and IP[1].
     * @param i0         Operational intensity at IP[0].
     * @param i1         Operational intensity at IP[1].
     * @param fractions  Values of f in [0, 1].
     * @param normalize  If true (paper's Figure 8), divide by the
     *                   performance at f = 0 with intensity i0.
     * @param jobs       Worker count (1 = serial, 0 = hardware).
     * @param stats      Optional out: worker count and busy time.
     */
    static Series mixing(const SocSpec &soc, double i0, double i1,
                         const std::vector<double> &fractions,
                         bool normalize = true, int jobs = 1,
                         parallel::ForStats *stats = nullptr);

    /**
     * Sweep off-chip bandwidth Bpeak over @p values for a fixed
     * usecase, reporting attainable performance (the Figure 6b->6c
     * question: "is more DRAM bandwidth the fix?").
     */
    static Series bpeak(const SocSpec &soc, const Usecase &usecase,
                        const std::vector<double> &values,
                        int jobs = 1,
                        parallel::ForStats *stats = nullptr);

    /**
     * Sweep IP @p ip's operational intensity over @p values, holding
     * everything else fixed (the Figure 6c->6d question: "what does
     * data reuse buy?").
     */
    static Series intensity(const SocSpec &soc, const Usecase &usecase,
                            size_t ip, const std::vector<double> &values,
                            int jobs = 1,
                            parallel::ForStats *stats = nullptr);

    /**
     * Sweep IP @p ip's acceleration Ai over @p values (the
     * over-design question of paper conjecture 3).
     */
    static Series acceleration(const SocSpec &soc, const Usecase &usecase,
                               size_t ip,
                               const std::vector<double> &values,
                               int jobs = 1,
                               parallel::ForStats *stats = nullptr);

    /**
     * Sweep IP @p ip's link bandwidth Bi over @p values.
     */
    static Series ipBandwidth(const SocSpec &soc, const Usecase &usecase,
                              size_t ip,
                              const std::vector<double> &values,
                              int jobs = 1,
                              parallel::ForStats *stats = nullptr);

    /**
     * Generic sweep: apply @p evaluate to each x and record the
     * result.
     */
    static Series
    custom(const std::string &label, const std::vector<double> &xs,
           const std::function<double(double)> &evaluate, int jobs = 1,
           parallel::ForStats *stats = nullptr);

  private:
    /** Shared grid driver: y[i] = evaluate(xs[i]) in parallel. */
    static Series fill(std::string label, const std::vector<double> &xs,
                       const std::function<double(double)> &evaluate,
                       int jobs, parallel::ForStats *stats);

    /**
     * Evaluator-backed grid driver: compiles (soc, seed) once per
     * pool worker and runs y[i] = point(evaluator, xs[i]) with the
     * worker's evaluator, so each point mutates one parameter
     * instead of rebuilding the pair.
     *
     * When @p packStage is provided and the packed path is enabled,
     * the grid runs GablesEvalPack::kWidth points per pass instead:
     * packStage(pack, xs, cnt) bulk-stages one parameter batch (one
     * indirect call and one row store per pack, not per point), the
     * pack evaluates all lanes, and y[i] = attainable(lane) /
     * divisor. @p divisor is 1.0 for raw sweeps (x / 1.0 is exact)
     * and the normalization base for mixing, so packed output
     * matches the scalar `point` lambda bit-for-bit.
     */
    static Series
    fillWith(std::string label, const SocSpec &soc, const Usecase &seed,
             const std::vector<double> &xs,
             const std::function<double(GablesEvaluator &, double)> &point,
             const std::function<void(GablesEvalPack &, const double *,
                                      size_t)> &packStage,
             double divisor, int jobs, parallel::ForStats *stats);
};

} // namespace gables

#endif // GABLES_ANALYSIS_SWEEP_H
