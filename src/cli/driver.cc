/**
 * @file
 * The `gables` command implementations and dispatch: evaluate
 * SoC/usecase pairs, run sweeps, analyze catalog usecases, derive
 * empirical rooflines on the simulated Snapdragons, emit SVG/ASCII
 * plots, and record/replay whole invocations. Compiled as a library
 * (gables_cli_driver) so `gables replay` can re-enter the dispatch
 * in-process; the binary's main() in gables_main.cc only strips the
 * global flags and forwards here.
 */

#include "cli/driver.h"

#include <algorithm>
#include <atomic>
#include <csignal>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/advisor.h"
#include "analysis/balance.h"
#include "analysis/explorer.h"
#include "analysis/provisioner.h"
#include "analysis/robustness.h"
#include "analysis/sensitivity.h"
#include "analysis/sweep.h"
#include "core/gables.h"
#include "core/serialize.h"
#include "ert/ert.h"
#include "ert/fitter.h"
#include "parallel/parallel_for.h"
#include "plot/roofline_plot.h"
#include "plot/series_plot.h"
#include "plot/viz_export.h"
#include "replay/bundle.h"
#include "replay/replayer.h"
#include "serve/server.h"
#include "serve/service.h"
#include "soc/catalog.h"
#include "soc/config.h"
#include "soc/pipeline.h"
#include "soc/usecases.h"
#include "telemetry/report.h"
#include "telemetry/report_diff.h"
#include "telemetry/span.h"
#include "telemetry/stats.h"
#include "util/arg_parser.h"
#include "util/atomic_file.h"
#include "util/json_reader.h"
#include "util/logging.h"
#include "util/parse.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/units.h"

namespace {

using namespace gables;
using namespace gables::cli;

/**
 * Map an ArgParser::parse failure to the exit-code contract: --help
 * is a success, anything else is a usage error.
 */
int
usageExit(const ArgParser &args)
{
    return args.helpRequested() ? kExitOk : kExitUsage;
}

/** Resolve a --soc option value to a catalog spec. */
SocSpec
resolveSoc(const std::string &name)
{
    if (name == "sd835" || name.empty())
        return SocCatalog::snapdragon835();
    if (name == "sd835-full")
        return SocCatalog::snapdragon835Full();
    if (name == "sd821")
        return SocCatalog::snapdragon821();
    if (name == "paper")
        return SocCatalog::paperTwoIp();
    if (name == "paper-balanced")
        return SocCatalog::paperTwoIpBalanced();
    fatal("unknown SoC '" + name + "'" +
          didYouMean(name, {"sd835", "sd835-full", "sd821", "paper",
                            "paper-balanced"}) +
          " (try sd835, sd835-full, sd821, paper, paper-balanced)");
}

/** Declare the shared --jobs option on a grid command. */
void
addJobsOption(ArgParser &args)
{
    args.addIntOption("jobs",
                      "worker threads for the grid (0 = all hardware "
                      "threads, 1 = serial)",
                      "0");
}

/** Resolve --jobs to a worker count (default: all hardware threads). */
int
resolveJobs(const ArgParser &args)
{
    long jobs = args.getInt("jobs", 0);
    if (jobs < 0 || jobs > 4096)
        fatal("--jobs must be in [0, 4096] (0 = hardware "
              "concurrency)");
    return jobs == 0 ? parallel::defaultJobs()
                     : static_cast<int>(jobs);
}

/**
 * Record the worker count and per-worker busy time of a grid
 * evaluation in the telemetry registry (the "parallel.*" names the
 * determinism contract excludes from byte-identity).
 */
void
recordParallelStats(telemetry::StatsRegistry &reg,
                    const parallel::ForStats &stats)
{
    reg.counter("parallel.workers",
                "worker-pool size used for the grid evaluation")
        .add(stats.workers);
    telemetry::Distribution &busy = reg.distribution(
        "parallel.worker_busy_s",
        "wall-clock seconds each worker spent inside the grid body");
    for (double b : stats.busySeconds)
        busy.sample(b);
}

/**
 * Finish a run report: attach the active span tracer (nullptr when
 * --profile is off, so the bytes are unchanged) and write it to
 * @p path.
 */
void
writeReport(telemetry::RunReport &report, const std::string &path)
{
    report.setProfile(telemetry::SpanTracer::active());
    std::ostringstream out;
    report.write(out);
    writeFileAtomic(path, out.str());
    std::cout << "wrote " << path << '\n';
}

/** Read a whole file, fataling with the path on failure. */
std::string
slurpFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open '" + path + "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

int
cmdEval(int argc, const char *const *argv)
{
    ArgParser args("gables eval",
                   "evaluate a usecase on a SoC and report the bound");
    args.addOption("soc", "catalog SoC name", "paper");
    args.addOption("file", "config file with the SoC and usecases");
    args.addOption("usecase", "usecase name from the file");
    args.addDoubleOption("f", "fraction of work at IP[1]", "0.75");
    args.addDoubleOption("i0", "operational intensity at IP[0]", "8");
    args.addDoubleOption("i1", "operational intensity at IP[1]", "8");
    args.addFlag("json", "emit the result as JSON");
    args.addOption("svg", "write a scaled-roofline SVG to this path");
    args.addOption("viz-json",
                   "write the visualization JSON to this path");
    args.addFlag("ascii", "print an ASCII scaled-roofline plot");
    args.addOption("metrics",
                   "write a run-report JSON with the evaluation to "
                   "this path");
    if (!args.parse(argc, argv, std::cerr))
        return usageExit(args);

    SocSpec soc = resolveSoc("paper");
    Usecase usecase("cli", {IpWork{1.0, 1.0}});
    if (args.has("file")) {
        SocConfig cfg = loadSocConfig(args.getString("file"));
        soc = cfg.soc;
        if (cfg.usecases.empty())
            fatal("config file declares no usecases");
        usecase = args.has("usecase")
                      ? cfg.usecase(args.getString("usecase"))
                      : cfg.usecases.front();
    } else {
        soc = resolveSoc(args.getString("soc", "paper"));
        double f = args.getDouble("f", 0.75);
        std::vector<IpWork> work(soc.numIps(), IpWork{0.0, 1.0});
        work[0] = IpWork{1.0 - f, args.getDouble("i0", 8.0)};
        if (soc.numIps() > 1)
            work[1] = IpWork{f, args.getDouble("i1", 8.0)};
        usecase = Usecase("cli", work);
    }

    GablesResult result = GablesModel::evaluate(soc, usecase);
    if (args.has("json")) {
        writeJson(std::cout, soc, usecase, result);
    } else {
        std::cout << "SoC:        " << soc.name() << '\n'
                  << "Pattainable: "
                  << formatOpsRate(result.attainable) << '\n'
                  << "bottleneck:  " << result.bottleneckLabel(soc)
                  << '\n';
        TextTable t({"IP", "f", "I", "C_i (s)", "D_i (B)", "T_i (s)",
                     "1/T_i"});
        for (size_t i = 0; i < soc.numIps(); ++i) {
            const IpTiming &ti = result.ips[i];
            t.addRow({soc.ip(i).name,
                      formatDouble(usecase.fraction(i), 4),
                      formatDouble(usecase.intensity(i), 4),
                      formatDouble(ti.computeTime * 1e9, 4) + "n",
                      formatDouble(ti.dataBytes, 4),
                      formatDouble(ti.time * 1e9, 4) + "n",
                      formatOpsRate(ti.perfBound)});
        }
        t.addRow({"memory", "-",
                  formatDouble(result.averageIntensity, 4), "-",
                  formatDouble(result.totalDataBytes, 4),
                  formatDouble(result.memoryTime * 1e9, 4) + "n",
                  formatOpsRate(result.memoryPerfBound)});
        std::cout << t.render();
    }

    if (args.has("svg") || args.has("ascii")) {
        RooflinePlot plot("Gables: " + soc.name(), 0.01, 100.0);
        plot.addGables(soc, usecase);
        if (args.has("svg")) {
            std::string path = args.getString("svg");
            std::ofstream out(path);
            if (!out)
                fatal("cannot open '" + path + "'");
            out << plot.renderSvg();
            std::cout << "wrote " << path << '\n';
        }
        if (args.has("ascii"))
            std::cout << plot.renderAscii();
    }
    if (args.has("viz-json")) {
        std::string path = args.getString("viz-json");
        std::ofstream out(path);
        if (!out)
            fatal("cannot open '" + path + "'");
        writeVisualizationJson(out, soc, usecase);
        std::cout << "wrote " << path << '\n';
    }
    if (args.has("metrics")) {
        telemetry::StatsRegistry reg;
        reg.gauge("model.attainable",
                  "Gables attainable performance bound (ops/s)")
            .set(result.attainable);
        reg.gauge("model.memory_perf_bound",
                  "memory-interface performance bound (ops/s)")
            .set(result.memoryPerfBound);
        reg.gauge("model.average_intensity",
                  "usecase average operational intensity (ops/byte)")
            .set(result.averageIntensity);
        telemetry::TimeSeries &bounds = reg.timeSeries(
            "model.ip_perf_bound",
            "per-IP performance bound (ops/s) keyed by IP index");
        for (size_t i = 0; i < result.ips.size(); ++i)
            bounds.sample(static_cast<double>(i),
                          result.ips[i].perfBound);
        reg.counter("model.evals",
                    "Gables model evaluations performed")
            .add(1.0);

        telemetry::RunReport report("gables eval", soc.name());
        report.addConfig("usecase", usecase.name());
        for (size_t i = 0; i < usecase.numIps(); ++i) {
            std::string n = std::to_string(i);
            report.addConfig("f" + n, usecase.fraction(i));
            report.addConfig("i" + n, usecase.intensity(i));
        }
        report.setRegistry(&reg);
        writeReport(report, args.getString("metrics"));
    }
    return 0;
}

int
cmdSweep(int argc, const char *const *argv)
{
    ArgParser args("gables sweep",
                   "mixing sweep: performance vs fraction at IP[1]");
    args.addOption("soc", "catalog SoC name", "sd835");
    args.addDoubleOption("i0", "intensity at IP[0]", "1");
    args.addDoubleOption("i1", "intensity at IP[1]", "1");
    args.addIntOption("points", "number of f points", "9");
    args.addFlag("ascii", "plot the sweep as ASCII");
    args.addOption("metrics",
                   "write a run-report JSON with the sweep series "
                   "to this path");
    addJobsOption(args);
    if (!args.parse(argc, argv, std::cerr))
        return usageExit(args);

    SocSpec soc = resolveSoc(args.getString("soc", "sd835"));
    long n = args.getInt("points", 9);
    if (n < 2 || n > 1000000)
        fatal("--points must be in [2, 1000000]");
    int jobs = resolveJobs(args);
    std::vector<double> fractions;
    fractions.reserve(static_cast<size_t>(n));
    for (long i = 0; i < n; ++i)
        fractions.push_back(static_cast<double>(i) / (n - 1));
    parallel::ForStats pstats;
    Series series = Sweep::mixing(soc, args.getDouble("i0", 1.0),
                                  args.getDouble("i1", 1.0), fractions,
                                  true, jobs, &pstats);

    TextTable t({"f", "normalized perf"});
    for (size_t i = 0; i < series.x.size(); ++i)
        t.addRow({formatDouble(series.x[i], 4),
                  formatDouble(series.y[i], 4)});
    std::cout << t.render();

    if (args.has("ascii")) {
        SeriesPlot plot("mixing sweep on " + soc.name(),
                        "fraction f at IP[1]", "normalized perf");
        plot.addSeries(series);
        std::cout << plot.renderAscii();
    }
    if (args.has("metrics")) {
        telemetry::StatsRegistry reg;
        telemetry::TimeSeries &ts = reg.timeSeries(
            "mixing.normalized_perf",
            "normalized attainable vs fraction f at IP[1]");
        for (size_t i = 0; i < series.x.size(); ++i)
            ts.sample(series.x[i], series.y[i]);

        // One evaluation per grid point plus the f = 0 normalization
        // baseline.
        reg.counter("model.evals",
                    "Gables model evaluations performed by the sweep")
            .add(static_cast<double>(n + 1));
        recordParallelStats(reg, pstats);

        telemetry::RunReport report("gables sweep", soc.name());
        report.addConfig("soc", args.getString("soc", "sd835"));
        report.addConfig("i0", args.getDouble("i0", 1.0));
        report.addConfig("i1", args.getDouble("i1", 1.0));
        report.addConfig("points", n);
        report.addConfig("jobs", static_cast<long>(jobs));
        report.setRegistry(&reg);
        writeReport(report, args.getString("metrics"));
    }
    return 0;
}

int
cmdSim(int argc, const char *const *argv)
{
    ArgParser args("gables sim",
                   "discrete-event simulation of a catalog SoC with "
                   "full telemetry: metrics JSON and Perfetto trace");
    args.addOption("soc",
                   "catalog SoC (sd835, sd821 use the calibrated "
                   "sims; other names go through the spec bridge)",
                   "sd835");
    args.addOption("engines",
                   "comma-separated engine names (default: all)");
    args.addDoubleOption("working-set", "working-set bytes per engine",
                         "67108864");
    args.addDoubleOption("bytes", "total bytes streamed per engine",
                         "67108864");
    args.addDoubleOption("intensity",
                         "ops per byte (the roofline knob)", "1");
    args.addIntOption("epochs",
                      "time slices for utilization-vs-time series",
                      "32");
    args.addOption("metrics", "write the run-report JSON to this "
                              "path");
    args.addOption("trace",
                   "write a Perfetto/chrome://tracing JSON to this "
                   "path");
    if (!args.parse(argc, argv, std::cerr))
        return usageExit(args);

    std::string soc_name = args.getString("soc", "sd835");
    std::unique_ptr<sim::SimSoc> soc;
    SocSpec spec = resolveSoc("paper");
    if (soc_name == "sd835" || soc_name.empty()) {
        soc = SocCatalog::snapdragon835Sim();
        spec = SocCatalog::snapdragon835();
    } else if (soc_name == "sd821") {
        soc = SocCatalog::snapdragon821Sim();
        spec = SocCatalog::snapdragon821();
    } else {
        spec = resolveSoc(soc_name);
        soc = SocCatalog::simFromSpec(spec);
    }

    std::vector<std::string> engines;
    if (args.has("engines")) {
        for (const std::string &e :
             split(args.getString("engines"), ','))
            if (!e.empty())
                engines.push_back(e);
        if (engines.empty())
            fatal("--engines names no engines");
    } else {
        for (size_t i = 0; i < spec.numIps(); ++i)
            engines.push_back(spec.ip(i).name);
    }

    telemetry::StatsRegistry reg;
    soc->attachTelemetry(&reg);
    sim::TraceRecorder trace;
    if (args.has("trace"))
        soc->attachTracer(&trace);

    sim::KernelJob job;
    job.workingSetBytes = args.getDouble("working-set", 64.0 * 1024 * 1024);
    job.totalBytes = args.getDouble("bytes", 64.0 * 1024 * 1024);
    job.opsPerByte = args.getDouble("intensity", 1.0);
    std::vector<sim::SimSoc::JobSubmission> jobs;
    for (const std::string &e : engines)
        jobs.push_back({e, job});

    long epochs = args.getInt("epochs", 32);
    if (epochs < 1 || epochs > 1000000)
        fatal("--epochs must be in [1, 1000000]");
    inform("sim: " + soc->name() + ", " +
           std::to_string(engines.size()) + " engine(s), " +
           std::to_string(epochs) + " epochs" +
           (args.has("trace") ? ", tracing" : ""));
    sim::SocRunStats stats =
        soc->run(jobs, static_cast<int>(epochs));

    std::cout << soc->name() << ": "
              << formatDouble(stats.duration * 1e3, 3)
              << " ms simulated, aggregate "
              << formatOpsRate(stats.aggregateOpsRate()) << '\n';
    TextTable et({"engine", "ops/s", "bytes/s", "DRAM bytes/s"});
    for (const sim::EngineRunStats &e : stats.engines) {
        et.addRow({e.name, formatOpsRate(e.achievedOpsRate()),
                   formatByteRate(e.achievedByteRate()),
                   formatByteRate(e.achievedMissRate())});
    }
    std::cout << et.render();
    TextTable rt({"resource", "util", "mean wait", "max queue"});
    for (const sim::ResourceStats &r : stats.resources) {
        const telemetry::Distribution *wait =
            reg.findDistribution(r.name + ".wait_time");
        const telemetry::Distribution *depth =
            reg.findDistribution(r.name + ".queue_depth");
        rt.addRow({r.name, formatDouble(r.utilization, 3),
                   wait ? formatDouble(wait->mean() * 1e9, 1) + "n"
                        : "-",
                   depth ? formatDouble(depth->max(), 0) : "-"});
    }
    std::cout << rt.render();

    if (args.has("trace")) {
        // With --profile on, the tool's own spans export as
        // "ph":"X" duration slices on per-thread profile tracks
        // alongside the simulated resource tracks.
        if (const telemetry::SpanTracer *tracer =
                telemetry::SpanTracer::active()) {
            for (const telemetry::SpanEvent &ev : tracer->events())
                trace.record("profile/thread" +
                                 std::to_string(ev.thread),
                             ev.startSeconds, ev.durationSeconds,
                             ev.path);
        }
        std::string path = args.getString("trace");
        std::ofstream out(path);
        if (!out)
            fatal("cannot open '" + path + "'");
        trace.writeChromeTrace(out);
        std::cout << "wrote " << path << " ("
                  << trace.events().size() << " slices, "
                  << trace.counterEvents().size()
                  << " counter samples)\n";
    }
    if (args.has("metrics")) {
        telemetry::RunReport report("gables sim", soc->name());
        report.addConfig("soc", soc_name);
        report.addConfig("engines", join(engines, ","));
        report.addConfig("working_set_bytes", job.workingSetBytes);
        report.addConfig("total_bytes", job.totalBytes);
        report.addConfig("ops_per_byte", job.opsPerByte);
        report.addConfig("epochs", epochs);
        report.setDuration(stats.duration);
        for (const sim::EngineRunStats &e : stats.engines) {
            report.addEngine({e.name, e.ops, e.bytes, e.missBytes,
                              e.achievedOpsRate()});
            // Model-vs-sim: compare against the single-IP Gables
            // bound min(Ai*Ppeak, I * min(Bi, Bpeak)); concurrent
            // contention shows up as a negative delta.
            bool found = false;
            for (size_t i = 0; i < spec.numIps(); ++i) {
                if (spec.ip(i).name != e.name)
                    continue;
                double bw =
                    std::min(spec.ip(i).bandwidth, spec.bpeak());
                double bound = std::min(spec.ipPeakPerf(i),
                                        job.opsPerByte * bw);
                report.addDelta(e.name, bound,
                                e.achievedOpsRate());
                found = true;
            }
            if (!found)
                warn("no spec IP named '" + e.name +
                     "'; skipping its model-vs-sim delta");
        }
        for (const sim::ResourceStats &r : stats.resources)
            report.addResource(
                {r.name, r.bytesServed, r.busyTime, r.utilization});
        report.setRegistry(&reg);
        writeReport(report, args.getString("metrics"));
    }
    return 0;
}

int
cmdUsecases(int argc, const char *const *argv)
{
    ArgParser args("gables usecases",
                   "analyze the catalog usecases on a SoC");
    args.addOption("soc", "catalog SoC name", "sd835-full");
    if (!args.parse(argc, argv, std::cerr))
        return usageExit(args);

    SocSpec soc = resolveSoc(args.getString("soc", "sd835-full"));
    TextTable t({"usecase", "target fps", "max fps", "bottleneck",
                 "DRAM MB/frame"});
    for (const UsecaseEntry &entry : UsecaseCatalog::extended()) {
        DataflowAnalysis a = entry.graph.analyze(soc);
        std::string who =
            a.bottleneckIp < 0
                ? "memory"
                : soc.ip(static_cast<size_t>(a.bottleneckIp)).name;
        t.addRow({entry.graph.name(), formatDouble(entry.targetFps, 1),
                  formatDouble(a.maxFps, 1), who,
                  formatDouble(a.dramBytesPerFrame / 1e6, 1)});
    }
    std::cout << t.render();
    return 0;
}

int
cmdErt(int argc, const char *const *argv)
{
    ArgParser args("gables ert",
                   "empirical roofline of a simulated Snapdragon IP");
    args.addOption("engine", "CPU, GPU, or DSP", "CPU");
    args.addOption("chip", "sd835 or sd821", "sd835");
    args.addOption("metrics",
                   "write a run-report JSON with the samples and the "
                   "fit to this path");
    addJobsOption(args);
    if (!args.parse(argc, argv, std::cerr))
        return usageExit(args);

    std::string chip = args.getString("chip", "sd835");
    if (chip != "sd835" && chip != "sd821")
        fatal("unknown chip '" + chip + "'" +
              didYouMean(chip, {"sd835", "sd821"}) +
              " (try sd835 or sd821)");
    // Each pool worker builds its own simulator, so trials run
    // concurrently without sharing mutable simulator state.
    ErtSweep::SocFactory make_soc = [&chip] {
        return chip == "sd821" ? SocCatalog::snapdragon821Sim()
                               : SocCatalog::snapdragon835Sim();
    };
    int jobs = resolveJobs(args);
    ErtConfig config;
    config.intensities = ErtConfig::defaultIntensities();
    std::string engine = args.getString("engine", "CPU");
    parallel::ForStats pstats;
    auto samples = ErtSweep::run(make_soc, engine, config, jobs,
                                 &pstats);
    RooflineFit fit = RooflineFitter::fitDram(samples);

    TextTable t({"I (ops/B)", "ops/s", "DRAM B/s"});
    for (const ErtSample &s : samples)
        t.addRow({formatDouble(s.opsPerByte, 4),
                  formatOpsRate(s.opsRate),
                  formatByteRate(s.missByteRate)});
    std::cout << t.render() << "fit: peak "
              << formatOpsRate(fit.peakOps) << ", DRAM "
              << formatByteRate(fit.peakBw) << ", ridge "
              << formatDouble(fit.ridge, 3) << " ops/B\n";

    if (args.has("metrics")) {
        telemetry::StatsRegistry reg;
        telemetry::TimeSeries &ops = reg.timeSeries(
            "ert.ops_rate", "achieved ops/s vs kernel intensity");
        telemetry::TimeSeries &dram = reg.timeSeries(
            "ert.dram_byte_rate",
            "achieved DRAM-side bytes/s vs kernel intensity");
        for (const ErtSample &s : samples) {
            ops.sample(s.opsPerByte, s.opsRate);
            dram.sample(s.opsPerByte, s.missByteRate);
        }
        reg.counter("ert.fit.peak_ops",
                    "fitted peak compute rate (ops/s)")
            .add(fit.peakOps);
        reg.counter("ert.fit.peak_bw",
                    "fitted peak DRAM bandwidth (bytes/s)")
            .add(fit.peakBw);
        reg.counter("ert.fit.ridge",
                    "fitted ridge point (ops/byte)")
            .add(fit.ridge);
        recordParallelStats(reg, pstats);

        telemetry::RunReport report("gables ert", chip);
        report.addConfig("chip", chip);
        report.addConfig("engine", engine);
        report.addConfig("points",
                         static_cast<long>(samples.size()));
        report.addConfig("jobs", static_cast<long>(jobs));
        report.setRegistry(&reg);
        writeReport(report, args.getString("metrics"));
    }
    return 0;
}

int
cmdAdvise(int argc, const char *const *argv)
{
    ArgParser args("gables advise",
                   "rank design moves for a SoC/usecase pair");
    args.addOption("file", "config file with the SoC and usecases");
    args.addOption("usecase", "usecase name from the file");
    args.addOption("soc", "catalog SoC (when no file given)", "paper");
    args.addDoubleOption("f", "fraction of work at IP[1]", "0.75");
    args.addDoubleOption("i0", "intensity at IP[0]", "8");
    args.addDoubleOption("i1", "intensity at IP[1]", "0.1");
    args.addOption("metrics",
                   "write a run-report JSON with the ranked moves to "
                   "this path");
    if (!args.parse(argc, argv, std::cerr))
        return usageExit(args);

    SocSpec soc = resolveSoc("paper");
    Usecase usecase("cli", {IpWork{1.0, 1.0}});
    if (args.has("file")) {
        SocConfig cfg = loadSocConfig(args.getString("file"));
        soc = cfg.soc;
        if (cfg.usecases.empty())
            fatal("config file declares no usecases");
        usecase = args.has("usecase")
                      ? cfg.usecase(args.getString("usecase"))
                      : cfg.usecases.front();
    } else {
        soc = resolveSoc(args.getString("soc", "paper"));
        double f = args.getDouble("f", 0.75);
        std::vector<IpWork> work(soc.numIps(), IpWork{0.0, 1.0});
        work[0] = IpWork{1.0 - f, args.getDouble("i0", 8.0)};
        if (soc.numIps() > 1)
            work[1] = IpWork{f, args.getDouble("i1", 0.1)};
        usecase = Usecase("cli", work);
    }

    GablesResult base = GablesModel::evaluate(soc, usecase);
    std::cout << "current: " << formatOpsRate(base.attainable)
              << " (" << base.bottleneckLabel(soc) << ")\n\n";
    auto advice = Advisor::advise(soc, usecase);
    if (advice.empty()) {
        std::cout << "no moves found: the design is balanced for "
                     "this usecase\n";
    } else {
        TextTable t({"move", "gain", "new perf"});
        for (const Advice &a : advice) {
            t.addRow({a.description,
                      a.kind == AdviceKind::ShrinkSlack
                          ? "free"
                          : formatDouble(a.gain, 3) + "x",
                      formatOpsRate(a.newAttainable)});
        }
        std::cout << t.render();
    }
    if (args.has("metrics")) {
        telemetry::StatsRegistry reg;
        reg.gauge("advisor.base_attainable",
                  "attainable bound of the unmodified design (ops/s)")
            .set(base.attainable);
        reg.counter("advisor.moves", "design moves found")
            .add(static_cast<double>(advice.size()));
        telemetry::TimeSeries &moves = reg.timeSeries(
            "advisor.new_attainable",
            "attainable after each ranked move (ops/s), keyed by "
            "rank");
        for (size_t i = 0; i < advice.size(); ++i)
            moves.sample(static_cast<double>(i),
                         advice[i].newAttainable);

        telemetry::RunReport report("gables advise", soc.name());
        report.addConfig("usecase", usecase.name());
        for (size_t i = 0; i < usecase.numIps(); ++i) {
            std::string n = std::to_string(i);
            report.addConfig("f" + n, usecase.fraction(i));
            report.addConfig("i" + n, usecase.intensity(i));
        }
        report.setRegistry(&reg);
        writeReport(report, args.getString("metrics"));
    }
    return 0;
}

int
cmdRobust(int argc, const char *const *argv)
{
    ArgParser args("gables robust",
                   "Monte-Carlo robustness of a usecase estimate");
    args.addOption("soc", "catalog SoC name", "paper-balanced");
    args.addDoubleOption("f", "fraction of work at IP[1]", "0.75");
    args.addDoubleOption("i0", "intensity at IP[0]", "8");
    args.addDoubleOption("i1", "intensity at IP[1]", "8");
    args.addIntOption("samples", "Monte-Carlo samples", "1000");
    args.addDoubleOption("target", "ops/s target (0 = none)", "0");
    args.addIntOption("seed", "RNG seed (runs are deterministic "
                              "for a given seed)",
                      "1");
    args.addOption("metrics",
                   "write a run-report JSON with the estimate "
                   "distribution to this path");
    if (!args.parse(argc, argv, std::cerr))
        return usageExit(args);

    SocSpec soc = resolveSoc(args.getString("soc", "paper-balanced"));
    double f = args.getDouble("f", 0.75);
    std::vector<IpWork> work(soc.numIps(), IpWork{0.0, 1.0});
    work[0] = IpWork{1.0 - f, args.getDouble("i0", 8.0)};
    if (soc.numIps() > 1)
        work[1] = IpWork{f, args.getDouble("i1", 8.0)};
    Usecase usecase("cli", work);

    Robustness::Options opts;
    long samples = args.getInt("samples", 1000);
    if (samples < 1 || samples > 100000000)
        fatal("--samples must be in [1, 100000000]");
    opts.samples = static_cast<int>(samples);
    opts.target = args.getDouble("target", 0.0);
    long seed = args.getInt("seed", 1);
    if (seed < 0)
        fatal("--seed must be >= 0");
    opts.seed = static_cast<uint64_t>(seed);
    RobustnessReport r = Robustness::analyze(soc, usecase, opts);
    std::cout << "nominal: " << formatOpsRate(r.nominal)
              << "\nmean:    " << formatOpsRate(r.mean)
              << "\np5/p50/p95: " << formatOpsRate(r.p5) << " / "
              << formatOpsRate(r.p50) << " / "
              << formatOpsRate(r.p95) << '\n';
    if (opts.target > 0.0)
        std::cout << "P(meets target): "
                  << formatDouble(r.meetsTargetProbability * 100.0, 1)
                  << "%\n";
    std::cout << "bottleneck shares:\n";
    for (const auto &[ip, share] : r.bottleneckShare) {
        std::string who = ip < 0 ? "memory"
                                 : soc.ip(static_cast<size_t>(ip)).name;
        std::cout << "  " << who << ": "
                  << formatDouble(share * 100.0, 1) << "%\n";
    }
    if (args.has("metrics")) {
        telemetry::StatsRegistry reg;
        reg.gauge("robust.nominal",
                  "performance at the unperturbed usecase (ops/s)")
            .set(r.nominal);
        reg.gauge("robust.mean", "Monte-Carlo sample mean (ops/s)")
            .set(r.mean);
        reg.gauge("robust.p5", "5th percentile performance (ops/s)")
            .set(r.p5);
        reg.gauge("robust.p50", "median performance (ops/s)")
            .set(r.p50);
        reg.gauge("robust.p95", "95th percentile performance (ops/s)")
            .set(r.p95);
        if (opts.target > 0.0)
            reg.gauge("robust.meets_target_probability",
                      "fraction of samples meeting the ops/s target")
                .set(r.meetsTargetProbability);
        telemetry::TimeSeries &shares = reg.timeSeries(
            "robust.bottleneck_share",
            "bottleneck frequency keyed by IP index (-1 = memory)");
        for (const auto &[ip, share] : r.bottleneckShare)
            shares.sample(static_cast<double>(ip), share);

        telemetry::RunReport report("gables robust", soc.name());
        report.addConfig("usecase", usecase.name());
        report.addConfig("f", f);
        report.addConfig("samples", samples);
        report.addConfig("target", opts.target);
        report.addConfig("seed", seed);
        report.setRegistry(&reg);
        writeReport(report, args.getString("metrics"));
    }
    return 0;
}

int
cmdSensitivity(int argc, const char *const *argv)
{
    ArgParser args("gables sensitivity",
                   "elasticity of the attainable bound w.r.t. every "
                   "hardware and software parameter");
    args.addOption("soc", "catalog SoC name", "paper");
    args.addOption("file", "config file with the SoC and usecases");
    args.addOption("usecase", "usecase name from the file");
    args.addDoubleOption("f", "fraction of work at IP[1]", "0.75");
    args.addDoubleOption("i0", "intensity at IP[0]", "8");
    args.addDoubleOption("i1", "intensity at IP[1]", "8");
    args.addDoubleOption("step", "relative probe step", "0.01");
    args.addOption("metrics",
                   "write a run-report JSON with the elasticities to "
                   "this path");
    if (!args.parse(argc, argv, std::cerr))
        return usageExit(args);

    SocSpec soc = resolveSoc("paper");
    Usecase usecase("cli", {IpWork{1.0, 1.0}});
    if (args.has("file")) {
        SocConfig cfg = loadSocConfig(args.getString("file"));
        soc = cfg.soc;
        if (cfg.usecases.empty())
            fatal("config file declares no usecases");
        usecase = args.has("usecase")
                      ? cfg.usecase(args.getString("usecase"))
                      : cfg.usecases.front();
    } else {
        soc = resolveSoc(args.getString("soc", "paper"));
        double f = args.getDouble("f", 0.75);
        std::vector<IpWork> work(soc.numIps(), IpWork{0.0, 1.0});
        work[0] = IpWork{1.0 - f, args.getDouble("i0", 8.0)};
        if (soc.numIps() > 1)
            work[1] = IpWork{f, args.getDouble("i1", 8.0)};
        usecase = Usecase("cli", work);
    }
    double step = args.getDouble("step", 0.01);
    if (!(step > 0.0) || !(step < 1.0))
        fatal("--step must be in (0, 1)");

    auto entries = Sensitivity::analyze(soc, usecase, step);
    TextTable t({"parameter", "elasticity"});
    for (const SensitivityEntry &e : entries)
        t.addRow({e.parameter, formatDouble(e.elasticity, 4)});
    std::cout << t.render();

    if (args.has("metrics")) {
        telemetry::StatsRegistry reg;
        for (const SensitivityEntry &e : entries)
            reg.gauge("sensitivity." + e.parameter,
                      "elasticity d ln(P) / d ln(" + e.parameter +
                          ")")
                .set(e.elasticity);

        telemetry::RunReport report("gables sensitivity", soc.name());
        report.addConfig("usecase", usecase.name());
        report.addConfig("step", step);
        for (size_t i = 0; i < usecase.numIps(); ++i) {
            std::string n = std::to_string(i);
            report.addConfig("f" + n, usecase.fraction(i));
            report.addConfig("i" + n, usecase.intensity(i));
        }
        report.setRegistry(&reg);
        writeReport(report, args.getString("metrics"));
    }
    return 0;
}

/** Print a one-screen human summary of a parsed run report. */
void
showReport(const std::string &path, const JsonValue &doc)
{
    std::cout << path << ":\n";
    if (doc.has("schema"))
        std::cout << "  schema:    "
                  << doc.at("schema").at("name").asString() << " v"
                  << formatDouble(
                         doc.at("schema").at("version").asNumber(), 0)
                  << '\n';
    if (doc.has("generator"))
        std::cout << "  generator: "
                  << doc.at("generator").asString() << '\n';
    if (doc.has("subject"))
        std::cout << "  subject:   " << doc.at("subject").asString()
                  << '\n';
    if (doc.has("config")) {
        std::cout << "  config:   ";
        for (const auto &m : doc.at("config").members()) {
            std::cout << ' ' << m.first << '=';
            if (m.second.isString())
                std::cout << m.second.asString();
            else if (m.second.isNumber())
                std::cout << formatDouble(m.second.asNumber(), 6);
        }
        std::cout << '\n';
    }
    if (doc.has("duration_s"))
        std::cout << "  duration:  "
                  << formatDouble(doc.at("duration_s").asNumber() * 1e3,
                                  3)
                  << " ms simulated\n";
    if (doc.has("engines"))
        std::cout << "  engines:   " << doc.at("engines").size()
                  << " row(s)\n";
    if (doc.has("resources"))
        std::cout << "  resources: " << doc.at("resources").size()
                  << " row(s)\n";
    if (doc.has("stats"))
        std::cout << "  stats:     " << doc.at("stats").size()
                  << " metric(s)\n";
    if (doc.has("profile")) {
        const JsonValue &prof = doc.at("profile");
        std::cout << "  profile:   "
                  << formatDouble(prof.at("wall_s").asNumber() * 1e3,
                                  3)
                  << " ms wall, "
                  << formatDouble(prof.at("threads").asNumber(), 0)
                  << " thread(s)\n";
        for (const JsonValue &span : prof.at("spans").items())
            std::cout << "    " << span.at("name").asString() << ": "
                      << formatDouble(
                             span.at("total_s").asNumber() * 1e3, 3)
                      << " ms over "
                      << formatDouble(span.at("count").asNumber(), 0)
                      << " call(s)\n";
    }
}

int
cmdReport(int argc, const char *const *argv)
{
    ArgParser args(
        "gables report",
        "inspect and diff run-report JSON artifacts:\n"
        "  gables report show FILE\n"
        "  gables report diff A.json B.json [tolerances]\n"
        "diff exits 0 when the reports match within tolerance, 1 "
        "when they differ");
    args.addDoubleOption("tol-rel",
                         "relative tolerance when comparing numeric "
                         "fields",
                         "0");
    args.addDoubleOption("tol-abs",
                         "absolute tolerance when comparing numeric "
                         "fields",
                         "0");
    args.addDoubleOption(
        "min-ratio",
        "one-sided gate: a numeric field fails only when B/A falls "
        "below this ratio (perf baselines; overrides --tol-*)",
        "-1");
    args.addOption("ignore",
                   "field names or dotted path prefixes to skip: "
                   "one comma-separated list or repeated flags");
    args.addIntOption("max-diffs", "differences to list before "
                                   "truncating",
                      "100");
    if (!args.parse(argc, argv, std::cerr))
        return usageExit(args);

    const std::vector<std::string> &pos = args.positional();
    if (pos.empty()) {
        std::cerr << "gables report: expected 'show' or 'diff'\n"
                  << args.usage();
        return kExitUsage;
    }
    const std::string &verb = pos.front();
    if (verb == "show") {
        if (pos.size() != 2) {
            std::cerr << "gables report show: expected exactly one "
                         "report path\n"
                      << args.usage();
            return kExitUsage;
        }
        // Malformed JSON escapes as FatalError and exits 1 through
        // the top-level handler, mirroring `gables validate`.
        showReport(pos[1], parseJson(slurpFile(pos[1])));
        return kExitOk;
    }
    if (verb == "diff") {
        if (pos.size() != 3) {
            std::cerr << "gables report diff: expected exactly two "
                         "report paths\n"
                      << args.usage();
            return kExitUsage;
        }
        telemetry::ReportDiffOptions opts;
        opts.tolRel = args.getDouble("tol-rel", 0.0);
        opts.tolAbs = args.getDouble("tol-abs", 0.0);
        opts.minRatio = args.getDouble("min-ratio", -1.0);
        if (opts.tolRel < 0.0 || opts.tolAbs < 0.0) {
            std::cerr << "gables report diff: --tol-rel and "
                         "--tol-abs must be >= 0\n";
            return kExitUsage;
        }
        long max_diffs = args.getInt("max-diffs", 100);
        if (max_diffs < 1 || max_diffs > 1000000) {
            std::cerr << "gables report diff: --max-diffs must be "
                         "in [1, 1000000]\n";
            return kExitUsage;
        }
        opts.maxDiffs = static_cast<size_t>(max_diffs);

        JsonValue a = parseJson(slurpFile(pos[1]));
        JsonValue b = parseJson(slurpFile(pos[2]));
        telemetry::addIgnoreSpecs(opts, args.getStrings("ignore"));

        telemetry::ReportDiffResult result =
            telemetry::diffReports(a, b, opts);
        if (result.identical()) {
            std::cout << pos[1] << " and " << pos[2]
                      << " match within tolerance ("
                      << result.fieldsCompared
                      << " field(s) compared)\n";
            return kExitOk;
        }
        std::cout << pos[1] << " and " << pos[2] << " differ ("
                  << result.diffs.size()
                  << (result.truncated ? "+" : "")
                  << " difference(s), " << result.fieldsCompared
                  << " field(s) compared):\n"
                  << telemetry::formatDiff(result);
        return kExitError;
    }
    std::cerr << "gables report: unknown action '" << verb << "'"
              << didYouMean(verb, {"show", "diff"}) << '\n'
              << args.usage();
    return kExitUsage;
}

int
cmdPipeline(int argc, const char *const *argv)
{
    ArgParser args("gables pipeline",
                   "simulate a catalog usecase dataflow frame by "
                   "frame");
    args.addOption("usecase", "hdr, capture, hfr, playback, lens, "
                              "wifi",
                   "hfr");
    args.addIntOption("frames", "frames to simulate", "96");
    args.addDoubleOption("fps", "source pacing (0 = unpaced)", "0");
    args.addOption("trace",
                   "write a chrome://tracing JSON to this path");
    if (!args.parse(argc, argv, std::cerr))
        return usageExit(args);

    std::string name = args.getString("usecase", "hfr");
    UsecaseEntry entry = UsecaseCatalog::videocaptureHfr();
    if (name == "hdr")
        entry = UsecaseCatalog::hdrPlus();
    else if (name == "capture")
        entry = UsecaseCatalog::videocapture();
    else if (name == "hfr")
        entry = UsecaseCatalog::videocaptureHfr();
    else if (name == "playback")
        entry = UsecaseCatalog::videoplaybackUi();
    else if (name == "lens")
        entry = UsecaseCatalog::googleLens();
    else if (name == "wifi")
        entry = UsecaseCatalog::wifiStreaming();
    else
        fatal("unknown usecase '" + name + "'" +
              didYouMean(name, {"hdr", "capture", "hfr", "playback",
                                "lens", "wifi"}));

    SocSpec soc = SocCatalog::snapdragon835Full();
    sim::PipelineSim sim(soc, entry.graph);
    sim::TraceRecorder trace;
    if (args.has("trace"))
        sim.setTraceRecorder(&trace);
    long frames = args.getInt("frames", 96);
    if (frames < 1 || frames > 1000000)
        fatal("--frames must be in [1, 1000000]");
    sim::PipelineStats stats =
        sim.run(static_cast<int>(frames), args.getDouble("fps", 0.0));
    if (args.has("trace")) {
        std::string path = args.getString("trace");
        std::ofstream out(path);
        if (!out)
            fatal("cannot open '" + path + "'");
        trace.writeChromeTrace(out);
        std::cout << "wrote " << path << " ("
                  << trace.events().size() << " events)\n";
    }
    DataflowAnalysis a = entry.graph.analyze(soc);
    std::cout << entry.graph.name() << ": simulated "
              << formatDouble(stats.steadyFps, 1)
              << " fps (analytic bound "
              << formatDouble(a.maxFps, 1) << ", target "
              << formatDouble(entry.targetFps, 0) << ")\n";
    TextTable t({"resource", "utilization"});
    for (const sim::ResourceStats &r : stats.resources) {
        if (r.utilization > 0.01)
            t.addRow({r.name, formatDouble(r.utilization, 3)});
    }
    std::cout << t.render();
    return 0;
}

int
cmdExplore(int argc, const char *const *argv)
{
    ArgParser args("gables explore",
                   "enumerate designs and print the Pareto frontier");
    args.addOption("usecase", "catalog usecase scoring the designs "
                              "(hdr, capture, hfr, playback, lens, "
                              "wifi, gaming, call, ar)",
                   "capture");
    args.addIntOption("points", "grid points per knob", "5");
    args.addOption("metrics",
                   "write a run-report JSON with the frontier to "
                   "this path");
    args.addFlag("prune",
                 "skip grid regions whose best corner is dominated "
                 "(default; the frontier is identical either way)");
    args.addFlag("no-prune",
                 "evaluate every design in the grid cross product");
    addJobsOption(args);
    if (!args.parse(argc, argv, std::cerr))
        return usageExit(args);
    if (args.has("prune") && args.has("no-prune"))
        fatal("--prune and --no-prune are mutually exclusive");

    SocSpec base = SocCatalog::snapdragon835Full();
    std::string name = args.getString("usecase", "capture");
    std::vector<Usecase> portfolio;
    for (const UsecaseEntry &entry : UsecaseCatalog::extended()) {
        std::string n = entry.graph.name();
        bool match =
            (name == "hdr" && n == "HDR+") ||
            (name == "capture" && n == "Videocapture") ||
            (name == "hfr" && n == "Videocapture (HFR)") ||
            (name == "playback" && n == "Videoplayback UI") ||
            (name == "lens" && n == "Google Lens") ||
            (name == "wifi" && n == "WiFi streaming") ||
            (name == "gaming" && n == "3D gaming") ||
            (name == "call" && n == "Video call") ||
            (name == "ar" && n == "AR navigation");
        if (match)
            portfolio.push_back(entry.graph.toUsecase(base));
    }
    if (portfolio.empty())
        fatal("unknown usecase '" + name + "'" +
              didYouMean(name, {"hdr", "capture", "hfr", "playback",
                                "lens", "wifi", "gaming", "call",
                                "ar"}));

    CostModel cost;
    cost.costPerAcceleration = 1.0;
    cost.costPerBpeak = 0.5e-9;
    DesignExplorer explorer(base, portfolio, cost);
    long points = args.getInt("points", 5);
    if (points < 1 || points > 10000)
        fatal("--points must be in [1, 10000]");
    std::vector<double> bpeaks;
    for (long i = 0; i < points; ++i)
        bpeaks.push_back(15e9 + i * 15e9);
    explorer.sweepBpeak(bpeaks);
    int jobs = resolveJobs(args);
    ExploreOptions opts;
    opts.jobs = jobs;
    opts.prune = !args.has("no-prune");
    ExploreStats estats;
    auto frontier = explorer.exploreFrontier(opts, &estats);

    std::cout << "explored " << explorer.gridSize()
              << " designs for '" << name << "'; frontier:\n";
    TextTable t({"Bpeak", "perf", "cost"});
    for (const Candidate &c : frontier) {
        t.addRow({formatByteRate(c.soc.bpeak()),
                  formatOpsRate(c.minPerf),
                  formatDouble(c.cost, 1)});
    }
    std::cout << t.render();

    if (args.has("metrics")) {
        telemetry::StatsRegistry reg;
        reg.counter("explorer.candidates",
                    "designs in the knob cross product")
            .add(static_cast<double>(explorer.gridSize()));
        reg.counter("explorer.pareto",
                    "designs on the Pareto frontier")
            .add(static_cast<double>(frontier.size()));
        reg.counter("model.evals",
                    "Gables model evaluations performed, including "
                    "subgrid bound probes")
            .add(static_cast<double>(estats.evals));
        reg.counter("model.evals_pruned",
                    "model evaluations skipped via subgrid bounds")
            .add(static_cast<double>(estats.evalsPruned));
        reg.counter("model.subgrids_skipped",
                    "grid regions skipped whole by bound pruning")
            .add(static_cast<double>(estats.subgridsSkipped));
        telemetry::TimeSeries &ts = reg.timeSeries(
            "explorer.frontier.perf_vs_cost",
            "frontier minimum attainable ops/s keyed by design cost");
        for (const Candidate &c : frontier)
            ts.sample(c.cost, c.minPerf);
        recordParallelStats(reg, estats.forStats);

        telemetry::RunReport report("gables explore", base.name());
        report.addConfig("usecase", name);
        report.addConfig("points", points);
        report.addConfig("jobs", static_cast<long>(jobs));
        report.setRegistry(&reg);
        writeReport(report, args.getString("metrics"));
    }
    return 0;
}

int
cmdProvision(int argc, const char *const *argv)
{
    ArgParser args("gables provision",
                   "shrink a SoC to the cheapest design meeting "
                   "every catalog usecase target");
    args.addOption("metrics",
                   "write a run-report JSON with the sufficient "
                   "design to this path");
    if (!args.parse(argc, argv, std::cerr))
        return usageExit(args);

    SocSpec start = SocCatalog::snapdragon835Full();
    std::vector<Requirement> reqs;
    for (const UsecaseEntry &entry : UsecaseCatalog::extended()) {
        Usecase u = entry.graph.toUsecase(start);
        double capability =
            GablesModel::evaluate(start, u).attainable;
        double target =
            entry.graph.opsPerFrame() * entry.targetFps;
        reqs.push_back(
            Requirement{u, std::min(target, capability * 0.999)});
    }
    ProvisionedDesign r = Provisioner::minimize(start, reqs);
    std::cout << (r.feasible ? "feasible" : "INFEASIBLE start")
              << "; sufficient design:\n";
    TextTable t({"knob", "generous", "sufficient"});
    t.addRow({"Bpeak", formatByteRate(start.bpeak()),
              formatByteRate(r.soc.bpeak())});
    for (size_t i = 0; i < start.numIps(); ++i) {
        t.addRow({start.ip(i).name + " Bi",
                  formatByteRate(start.ip(i).bandwidth),
                  formatByteRate(r.soc.ip(i).bandwidth)});
    }
    std::cout << t.render();
    if (args.has("metrics")) {
        telemetry::StatsRegistry reg;
        reg.gauge("provision.feasible",
                  "1 when the generous start met every requirement")
            .set(r.feasible ? 1.0 : 0.0);
        reg.counter("provision.requirements",
                    "catalog usecase targets the design must meet")
            .add(static_cast<double>(reqs.size()));
        reg.gauge("provision.bpeak_start",
                  "Bpeak of the generous starting design (bytes/s)")
            .set(start.bpeak());
        reg.gauge("provision.bpeak_sufficient",
                  "Bpeak of the shrunk sufficient design (bytes/s)")
            .set(r.soc.bpeak());
        telemetry::TimeSeries &bw = reg.timeSeries(
            "provision.ip_bandwidth",
            "sufficient per-IP bandwidth (bytes/s) keyed by IP "
            "index");
        for (size_t i = 0; i < r.soc.numIps(); ++i)
            bw.sample(static_cast<double>(i),
                      r.soc.ip(i).bandwidth);

        telemetry::RunReport report("gables provision",
                                    start.name());
        report.addConfig("requirements",
                         static_cast<long>(reqs.size()));
        report.setRegistry(&reg);
        writeReport(report, args.getString("metrics"));
    }
    return 0;
}

int
cmdGlossary(int argc, const char *const *argv)
{
    // Reproduces the paper's Table II: the Gables parameter glossary.
    ArgParser args("gables glossary",
                   "print the Gables parameter glossary (Table II)");
    if (!args.parse(argc, argv, std::cerr))
        return usageExit(args);
    TextTable t({"Parameter", "Description"});
    t.setAlign(1, TextTable::Align::Left);
    t.addRow({"-- HW inputs --", ""});
    t.addRow({"Ppeak", "Peak performance of CPUs (ops/sec)"});
    t.addRow({"Bpeak", "Peak off-chip bandwidth (bytes/sec)"});
    t.addRow({"Ai", "Peak acceleration of IP[i] (unitless)"});
    t.addRow({"Bi", "Peak bandwidth to/from IP[i] (bytes/sec)"});
    t.addRow({"-- SW inputs --", ""});
    t.addRow({"fi", "Fraction of usecase work at IP[i] (ops)"});
    t.addRow({"Ii",
              "Operational intensity of usecase at IP[i] (ops/byte)"});
    t.addRow({"-- Tmp values --", ""});
    t.addRow({"Ci", "Compute time at IP[i] (sec)"});
    t.addRow({"Di", "Data transferred for IP[i] (bytes)"});
    t.addRow({"TIP[i]", "Time at IP[i] (sec)"});
    t.addRow({"Tmemory", "Time on chip memory interface (sec)"});
    t.addRow({"-- Output --", ""});
    t.addRow({"Pattainable",
              "Upper bound on SoC performance (ops/sec)"});
    std::cout << t.render();
    return 0;
}

int
cmdBalance(int argc, const char *const *argv)
{
    ArgParser args("gables balance",
                   "balance report and sufficient bandwidths");
    args.addOption("soc", "catalog SoC name", "paper-balanced");
    args.addDoubleOption("f", "fraction of work at IP[1]", "0.75");
    args.addDoubleOption("i0", "intensity at IP[0]", "8");
    args.addDoubleOption("i1", "intensity at IP[1]", "8");
    if (!args.parse(argc, argv, std::cerr))
        return usageExit(args);

    SocSpec soc = resolveSoc(args.getString("soc", "paper-balanced"));
    double f = args.getDouble("f", 0.75);
    std::vector<IpWork> work(soc.numIps(), IpWork{0.0, 1.0});
    work[0] = IpWork{1.0 - f, args.getDouble("i0", 8.0)};
    if (soc.numIps() > 1)
        work[1] = IpWork{f, args.getDouble("i1", 8.0)};
    Usecase usecase("cli", work);

    BalanceReport report = Balance::report(soc, usecase);
    std::cout << "Pattainable: " << formatOpsRate(report.attainable)
              << "\nmax slack:   "
              << formatDouble(report.maxSlack * 100.0, 2) << "%\n"
              << "sufficient Bpeak: "
              << formatByteRate(Balance::sufficientBpeak(soc, usecase))
              << " (configured "
              << formatByteRate(soc.bpeak()) << ")\n";
    return 0;
}

int
cmdValidate(int argc, const char *const *argv)
{
    ArgParser args("gables validate",
                   "lint a config file without running anything: "
                   "parse it, check the model invariants, and flag "
                   "suspect values");
    if (!args.parse(argc, argv, std::cerr))
        return usageExit(args);
    if (args.positional().size() != 1) {
        std::cerr << "gables validate: expected exactly one config "
                     "file path\n"
                  << args.usage();
        return kExitUsage;
    }
    const std::string &path = args.positional().front();
    // Parse errors escape as ConfigError ("path:line: message") and
    // exit 1 through the top-level handler.
    SocConfig cfg = loadSocConfig(path);
    int errors = 0;
    int warnings = 0;
    for (const LintFinding &f : lintSocConfig(cfg)) {
        (f.error ? errors : warnings) += 1;
        std::cerr << path << ": "
                  << (f.error ? "error: " : "warning: ") << f.message
                  << '\n';
    }
    if (errors > 0) {
        std::cerr << path << ": invalid (" << errors << " error(s), "
                  << warnings << " warning(s))\n";
        return kExitError;
    }
    std::cout << path << ": ok: SoC '" << cfg.soc.name() << "', "
              << cfg.soc.numIps() << " IP(s), " << cfg.usecases.size()
              << " usecase(s)";
    if (warnings > 0)
        std::cout << ", " << warnings << " warning(s)";
    std::cout << '\n';
    return kExitOk;
}

/**
 * Render one replay outcome on stdout/stderr. Detail goes to stdout
 * (it is the diff listing users pipe and grep), status to stdout as
 * a one-liner.
 */
void
printReplayOutcome(const std::string &path,
                   const replay::ReplayOutcome &outcome)
{
    std::cout << path << ": " << outcome.status;
    if (outcome.fieldsCompared > 0)
        std::cout << " (" << outcome.fieldsCompared
                  << " field(s) compared, " << outcome.diffCount
                  << " difference(s))";
    std::cout << '\n';
    if (!outcome.matched() && !outcome.detail.empty())
        std::cout << outcome.detail
                  << (outcome.detail.back() == '\n' ? "" : "\n");
}

int
cmdReplay(int argc, const char *const *argv)
{
    ArgParser args(
        "gables replay",
        "re-execute a recorded invocation bundle in-process and "
        "diff its fresh RunReport against the recorded one:\n"
        "  gables replay BUNDLE.json\n"
        "  gables replay --all DIR\n"
        "exit codes: 0 replay matched, 1 replay diverged, 2 bundle "
        "unreadable or unsupported schema");
    args.addFlag("all",
                 "treat the path as a directory and replay every "
                 "*.json bundle in it, with a summary table");
    args.addOption("ignore",
                   "extra report fields/paths to skip on top of the "
                   "bundle's tolerance block: one comma-separated "
                   "list or repeated flags");
    args.addOption("save-fresh",
                   "write each fresh RunReport into this directory "
                   "as <bundle>.fresh.json (for offline diffing)");
    args.addOption("out-dir",
                   "directory for artifacts the replayed command "
                   "writes to relative paths (recorded --metrics "
                   "files and the like); pass an empty value to "
                   "write them into the current directory as the "
                   "original run did",
                   "out/replay");
    if (!args.parse(argc, argv, std::cerr))
        return usageExit(args);
    if (args.positional().size() != 1) {
        std::cerr << "gables replay: expected exactly one bundle "
                     "path (or a directory with --all)\n"
                  << args.usage();
        return kExitUsage;
    }

    replay::ReplayOptions opts;
    opts.saveFreshDir = args.getString("save-fresh");
    opts.artifactDir = args.getString("out-dir", "out/replay");
    {
        telemetry::ReportDiffOptions extra;
        telemetry::addIgnoreSpecs(extra, args.getStrings("ignore"));
        opts.extraIgnore = extra.ignore;
    }
    replay::CommandRunner runner =
        [](const std::vector<std::string> &cmd_argv) {
            return runCommand(cmd_argv);
        };

    if (!args.has("all")) {
        replay::ReplayOutcome outcome = replay::replayBundle(
            args.positional().front(), runner, opts);
        printReplayOutcome(args.positional().front(), outcome);
        return outcome.exitCode;
    }

    std::vector<std::string> bundles =
        replay::listBundles(args.positional().front());
    if (bundles.empty())
        fatal("no *.json replay bundles in '" +
              args.positional().front() + "'");
    int worst = kExitOk;
    size_t matched = 0;
    TextTable t({"bundle", "command", "status", "fields", "diffs"});
    for (const std::string &path : bundles) {
        replay::ReplayOutcome outcome =
            replay::replayBundle(path, runner, opts);
        if (outcome.matched())
            ++matched;
        else
            printReplayOutcome(path, outcome);
        worst = std::max(worst, outcome.exitCode);
        std::string stem = path;
        size_t slash = stem.find_last_of('/');
        if (slash != std::string::npos)
            stem = stem.substr(slash + 1);
        t.addRow({stem, outcome.subcommand, outcome.status,
                  std::to_string(outcome.fieldsCompared),
                  std::to_string(outcome.diffCount)});
    }
    std::cout << t.render() << matched << "/" << bundles.size()
              << " bundle(s) replayed clean\n";
    return worst;
}

// Set by the SIGINT/SIGTERM handler; polled by the serve loop so a
// signalled daemon still flushes its stats snapshot before exiting.
std::atomic<bool> g_serve_stop{false};

extern "C" void
serveSignalHandler(int)
{
    g_serve_stop.store(true);
}

int
cmdServe(int argc, const char *const *argv)
{
    ArgParser args(
        "gables serve",
        "run the evaluation daemon: newline-delimited JSON requests "
        "over a unix-domain socket or loopback TCP (docs/SERVE.md):\n"
        "  gables serve --socket /tmp/gables.sock\n"
        "  gables serve --port 0 --stats-out stats.json\n"
        "with --port 0 the bound port is printed on stdout as\n"
        "'gables serve: listening on 127.0.0.1:<port>'");
    args.addOption("socket",
                   "unix-domain socket path to listen on (the file "
                   "is replaced and removed on exit)");
    args.addIntOption("port",
                      "loopback TCP port to listen on (0 = pick an "
                      "ephemeral port); ignored when --socket is set",
                      "-1");
    addJobsOption(args);
    args.addIntOption("cache",
                      "compiled-evaluator LRU cache capacity "
                      "(entries)",
                      "64");
    args.addOption("stats-out",
                   "write the final telemetry RunReport to this path "
                   "on shutdown (atomic temp+rename)");
    args.addOption("record-requests",
                   "tee every handled request/response pair to this "
                   "JSONL file (the serve-side --record)");
    if (!args.parse(argc, argv, std::cerr))
        return usageExit(args);
    if (!args.positional().empty()) {
        std::cerr << "gables serve: unexpected positional argument '"
                  << args.positional().front() << "'\n"
                  << args.usage();
        return kExitUsage;
    }
    std::string socket_path = args.getString("socket");
    long port = args.getInt("port", -1);
    if (socket_path.empty() && port < 0) {
        std::cerr << "gables serve: need --socket PATH or --port N\n"
                  << args.usage();
        return kExitUsage;
    }
    if (socket_path.empty() && port > 65535)
        fatal("--port must be in [0, 65535]");
    long cache = args.getInt("cache", 64);
    if (cache < 1 || cache > 1000000)
        fatal("--cache must be in [1, 1000000]");

    serve::ServeOptions service_opts;
    service_opts.jobs = resolveJobs(args);
    service_opts.cacheCapacity = static_cast<size_t>(cache);
    service_opts.recordPath = args.getString("record-requests");
    serve::ServeService service(service_opts);

    serve::ServerOptions server_opts;
    server_opts.socketPath = socket_path;
    server_opts.port = socket_path.empty()
                           ? static_cast<int>(port)
                           : 0;
    server_opts.statsOutPath = args.getString("stats-out");
    server_opts.stopFlag = &g_serve_stop;
    serve::ServeServer server(service, server_opts);
    server.start();

    // Writes after a peer disconnects must surface as EPIPE errors,
    // not kill the daemon.
    std::signal(SIGPIPE, SIG_IGN);
    std::signal(SIGINT, serveSignalHandler);
    std::signal(SIGTERM, serveSignalHandler);

    if (socket_path.empty())
        std::cout << "gables serve: listening on 127.0.0.1:"
                  << server.port() << std::endl;
    else
        std::cout << "gables serve: listening on " << socket_path
                  << std::endl;

    size_t accepted = server.run();
    std::cout << "gables serve: shut down after " << accepted
              << " connection(s)\n";
    return kExitOk;
}

} // namespace

namespace gables {
namespace cli {

void
usage(std::ostream &out)
{
    out << "usage: gables [--log-level L] [--profile] "
           "[--record PATH] [--no-simd] <command> [options]\n"
           "commands:\n"
           "  eval        evaluate a usecase on a SoC\n"
           "  sweep       mixing sweep over the work fraction\n"
           "  sim         simulate a SoC with telemetry (metrics JSON\n"
           "              + Perfetto trace with counter tracks)\n"
           "  usecases    analyze the catalog usecases\n"
           "  ert         empirical roofline on the simulated chip\n"
           "  balance     balance report and sufficient bandwidths\n"
           "  advise      rank design moves (supports --file configs)\n"
           "  sensitivity parameter elasticities of the bound\n"
           "  robust      Monte-Carlo robustness of an estimate\n"
           "  pipeline    frame-pipeline simulation of a usecase\n"
           "  explore     design-space exploration with Pareto output\n"
           "  provision   shrink-to-fit inverse design for the "
           "catalog\n"
           "  report      show or diff run-report JSON artifacts\n"
           "  replay      re-run a recorded bundle and diff its "
           "RunReport\n"
           "  serve       evaluation daemon speaking JSON lines over\n"
           "              a unix socket or loopback TCP\n"
           "  validate    lint a config file without running anything\n"
           "  glossary    the Gables parameter glossary (Table II)\n"
           "global options:\n"
           "  --log-level L  minimum severity written to stderr:\n"
           "                 debug, info (default), warn, error\n"
           "  --profile      trace the tool's own phases: adds a\n"
           "                 'profile' subtree to --metrics reports,\n"
           "                 span slices to --trace output, and a\n"
           "                 summary table on stderr\n"
           "  --record PATH  record this invocation (argv, config\n"
           "                 files, RunReport) into a replay bundle\n"
           "                 at PATH; outputs are unchanged\n"
           "  --no-simd      evaluate grids one point at a time on\n"
           "                 the scalar reference path (outputs are\n"
           "                 bit-identical; only speed changes)\n"
           "exit codes: 0 success, 1 data/config error, 2 usage "
           "error (see docs/ERRORS.md)\n"
           "run 'gables <command> --help' for per-command options\n";
}

int
runCommand(int argc, const char *const *argv)
{
    if (argc < 2) {
        usage(std::cerr);
        return kExitUsage;
    }
    std::string cmd = argv[1];

    int code = kExitUsage;
    bool known = true;
    try {
        // Root span around the whole command, so the profile's top
        // level reads "gables.<cmd>" and totals track wall time.
        std::string root = "gables." + cmd;
        gables::telemetry::ScopedSpan span(root.c_str());
        if (cmd == "eval")
            code = cmdEval(argc - 1, argv + 1);
        else if (cmd == "sweep")
            code = cmdSweep(argc - 1, argv + 1);
        else if (cmd == "sim")
            code = cmdSim(argc - 1, argv + 1);
        else if (cmd == "usecases")
            code = cmdUsecases(argc - 1, argv + 1);
        else if (cmd == "ert")
            code = cmdErt(argc - 1, argv + 1);
        else if (cmd == "balance")
            code = cmdBalance(argc - 1, argv + 1);
        else if (cmd == "advise")
            code = cmdAdvise(argc - 1, argv + 1);
        else if (cmd == "sensitivity")
            code = cmdSensitivity(argc - 1, argv + 1);
        else if (cmd == "robust")
            code = cmdRobust(argc - 1, argv + 1);
        else if (cmd == "pipeline")
            code = cmdPipeline(argc - 1, argv + 1);
        else if (cmd == "explore")
            code = cmdExplore(argc - 1, argv + 1);
        else if (cmd == "provision")
            code = cmdProvision(argc - 1, argv + 1);
        else if (cmd == "report")
            code = cmdReport(argc - 1, argv + 1);
        else if (cmd == "replay")
            code = cmdReplay(argc - 1, argv + 1);
        else if (cmd == "serve")
            code = cmdServe(argc - 1, argv + 1);
        else if (cmd == "validate")
            code = cmdValidate(argc - 1, argv + 1);
        else if (cmd == "glossary")
            code = cmdGlossary(argc - 1, argv + 1);
        else if (cmd == "--help" || cmd == "help") {
            usage(std::cout);
            code = kExitOk;
        } else
            known = false;
    } catch (const gables::ConfigError &err) {
        // The what() already carries the file:line location.
        std::cerr << "gables: " << err.what() << '\n';
        return kExitError;
    } catch (const gables::FatalError &err) {
        std::cerr << "gables: error: " << err.what() << '\n';
        return kExitError;
    }
    if (!known) {
        std::cerr << "gables: unknown command '" << cmd << "'"
                  << gables::didYouMean(
                         cmd, {"eval", "sweep", "sim", "usecases",
                               "ert", "balance", "advise",
                               "sensitivity", "robust", "pipeline",
                               "explore", "provision", "report",
                               "replay", "serve", "validate",
                               "glossary", "help"})
                  << '\n';
        usage(std::cerr);
        return kExitUsage;
    }
    return code;
}

int
runCommand(const std::vector<std::string> &argv)
{
    std::vector<const char *> raw;
    raw.reserve(argv.size());
    for (const std::string &arg : argv)
        raw.push_back(arg.c_str());
    return runCommand(static_cast<int>(raw.size()), raw.data());
}

} // namespace cli
} // namespace gables
