/**
 * @file
 * The `gables` command driver as a library: subcommand dispatch,
 * per-command implementations, and the documented exit-code mapping
 * live here so they can be invoked both by the thin main() in
 * gables_main.cc and re-entrantly by `gables replay`, which
 * re-executes a recorded invocation in the same process and diffs
 * its RunReport against the recording (src/replay, docs/REPLAY.md).
 */

#ifndef GABLES_CLI_DRIVER_H
#define GABLES_CLI_DRIVER_H

#include <iosfwd>
#include <string>
#include <vector>

namespace gables {
namespace cli {

/**
 * Exit codes of the documented contract (docs/ERRORS.md): 0 success,
 * 1 data/config/runtime error (FatalError), 2 CLI usage error.
 */
constexpr int kExitOk = 0;
constexpr int kExitError = 1;
constexpr int kExitUsage = 2;

/** Print the top-level usage text to @p out. */
void usage(std::ostream &out);

/**
 * Dispatch one invocation: argv[0] is the program name ("gables"),
 * argv[1] the subcommand. Global flags (--log-level, --profile,
 * --record) must already be stripped — main() owns those. Never
 * throws: ConfigError/FatalError map to kExitError, unknown
 * commands and bad options to kExitUsage, exactly as the binary's
 * exit codes document.
 */
int runCommand(int argc, const char *const *argv);

/** Convenience overload for recorded argv vectors. */
int runCommand(const std::vector<std::string> &argv);

} // namespace cli
} // namespace gables

#endif // GABLES_CLI_DRIVER_H
