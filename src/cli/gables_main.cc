/**
 * @file
 * Thin entry point for the `gables` binary: strip the global
 * options valid anywhere on the command line (--log-level,
 * --profile, --record, --no-simd), set up the span tracer and the
 * replay recorder, and forward to the command dispatch in
 * cli/driver.cc.
 * Keeping main() this small lets `gables replay` re-enter the same
 * dispatch in-process through gables::cli::runCommand().
 */

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "cli/driver.h"
#include "core/evaluator.h"
#include "replay/recorder.h"
#include "telemetry/span.h"
#include "util/logging.h"

int
main(int argc, char **argv)
{
    using namespace gables::cli;

    // Strip the global options before command dispatch, so every
    // subcommand honors them without declaring them. --record takes
    // the bundle path; the recorded argv is the filtered one, so
    // bundles carry no host-dependent global flags.
    bool profile = false;
    std::string record_path;
    std::vector<const char *> filtered;
    try {
        for (int i = 0; i < argc; ++i) {
            std::string arg = argv[i];
            if (arg == "--log-level") {
                if (i + 1 >= argc) {
                    std::cerr << "gables: --log-level needs a value\n";
                    return kExitUsage;
                }
                gables::setLogLevel(gables::parseLogLevel(argv[++i]));
            } else if (arg.rfind("--log-level=", 0) == 0) {
                gables::setLogLevel(gables::parseLogLevel(
                    arg.substr(std::string("--log-level=").size())));
            } else if (arg == "--profile") {
                profile = true;
            } else if (arg == "--no-simd") {
                // Force the scalar reference path. Safe to strip
                // from recorded argv: both paths are bit-identical,
                // so replays don't depend on it.
                gables::simd::setEnabled(false);
            } else if (arg == "--record") {
                if (i + 1 >= argc) {
                    std::cerr << "gables: --record needs a bundle "
                                 "path\n";
                    return kExitUsage;
                }
                record_path = argv[++i];
            } else if (arg.rfind("--record=", 0) == 0) {
                record_path =
                    arg.substr(std::string("--record=").size());
            } else {
                filtered.push_back(argv[i]);
            }
        }
    } catch (const gables::FatalError &err) {
        std::cerr << "gables: " << err.what() << '\n';
        return kExitUsage;
    }
    int fargc = static_cast<int>(filtered.size());
    const char *const *fargv = filtered.data();

    if (fargc < 2) {
        usage(std::cerr);
        return kExitUsage;
    }

    // The tracer outlives every span (static), and stays inactive —
    // one never-taken branch per instrumentation site — unless
    // --profile was given.
    static gables::telemetry::SpanTracer tracer;
    if (profile)
        gables::telemetry::SpanTracer::setActive(&tracer);

    // For the daemon, --record means "tee requests", not "capture a
    // replay bundle": a server run has no single RunReport to bundle.
    // Translate it into the serve-side flag and skip the recorder.
    std::vector<std::string> serve_argv;
    if (!record_path.empty() &&
        std::string(fargv[1]) == "serve") {
        serve_argv.assign(filtered.begin(), filtered.end());
        serve_argv.push_back("--record-requests");
        serve_argv.push_back(record_path);
        record_path.clear();
        filtered.clear();
        for (const std::string &arg : serve_argv)
            filtered.push_back(arg.c_str());
        fargc = static_cast<int>(filtered.size());
        fargv = filtered.data();
    }

    // The recorder's capture hooks only copy data on the side, so a
    // run under --record is byte-identical to one without. Recording
    // a replay would nest the hooks confusingly, so it is refused.
    std::unique_ptr<gables::replay::Recorder> recorder;
    if (!record_path.empty()) {
        if (std::string(fargv[1]) == "replay") {
            std::cerr << "gables: --record cannot wrap 'replay' "
                         "(replay bundles must capture a real run)\n";
            return kExitUsage;
        }
        std::vector<std::string> recorded(filtered.begin(),
                                          filtered.end());
        recorder =
            std::make_unique<gables::replay::Recorder>(recorded);
    }

    int code = runCommand(fargc, fargv);

    if (recorder != nullptr) {
        try {
            recorder->writeBundle(record_path, code);
        } catch (const gables::FatalError &err) {
            std::cerr << "gables: error: " << err.what() << '\n';
            return kExitError;
        }
    }
    if (profile)
        std::cerr << tracer.summaryTable();
    return code;
}
