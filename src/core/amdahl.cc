#include "core/amdahl.h"

#include <cmath>
#include <limits>

#include "util/logging.h"

namespace gables {

namespace {

void
checkFraction(double f)
{
    if (!(f >= 0.0 && f <= 1.0))
        fatal("Amdahl fraction must be in [0, 1]");
}

} // namespace

double
AmdahlModel::speedup(double f, double s)
{
    checkFraction(f);
    if (!(s > 0.0))
        fatal("Amdahl speedup factor must be > 0");
    return 1.0 / ((1.0 - f) + f / s);
}

double
AmdahlModel::limit(double f)
{
    checkFraction(f);
    if (f == 1.0)
        return std::numeric_limits<double>::infinity();
    return 1.0 / (1.0 - f);
}

double
AmdahlModel::gustafsonSpeedup(double f, double s)
{
    checkFraction(f);
    if (!(s > 0.0))
        fatal("Gustafson speedup factor must be > 0");
    return (1.0 - f) + f * s;
}

double
AmdahlModel::corePerf(double r)
{
    if (!(r > 0.0))
        fatal("core resources must be > 0");
    return std::sqrt(r);
}

double
AmdahlModel::symmetricSpeedup(double f, double n, double r)
{
    checkFraction(f);
    if (!(n > 0.0) || !(r > 0.0) || r > n)
        fatal("symmetric speedup requires 0 < r <= n");
    double perf = corePerf(r);
    double cores = n / r;
    return 1.0 / ((1.0 - f) / perf + f / (perf * cores));
}

double
AmdahlModel::asymmetricSpeedup(double f, double n, double r)
{
    checkFraction(f);
    if (!(n > 0.0) || !(r > 0.0) || r > n)
        fatal("asymmetric speedup requires 0 < r <= n");
    double perf = corePerf(r);
    return 1.0 / ((1.0 - f) / perf + f / (perf + (n - r)));
}

} // namespace gables
