/**
 * @file
 * Amdahl's Law (1967) baseline: speedup of a computation when a
 * fraction of it is accelerated, plus the multicore-era variants of
 * Hill & Marty (2008) used as comparison points in the paper's
 * related-work discussion. Unlike Gables these ignore data movement
 * entirely, which is exactly the gap Gables closes.
 */

#ifndef GABLES_CORE_AMDAHL_H
#define GABLES_CORE_AMDAHL_H

#include <cstddef>

namespace gables {

/**
 * Classic and multicore Amdahl's-Law bounds.
 */
class AmdahlModel
{
  public:
    /**
     * Classic Amdahl speedup: 1 / ((1-f) + f/s).
     *
     * @param f Fraction of work that is sped up, in [0, 1].
     * @param s Speedup of that fraction, > 0.
     */
    static double speedup(double f, double s);

    /**
     * The asymptotic speedup limit as s -> infinity: 1 / (1-f);
     * +infinity when f == 1.
     */
    static double limit(double f);

    /**
     * Gustafson's scaled speedup (1988): s + (1-f')*(1-s) with f'
     * the parallel fraction measured on the parallel system —
     * expressed here as (1-f) + f*s.
     */
    static double gustafsonSpeedup(double f, double s);

    /**
     * Hill-Marty symmetric multicore speedup: n/r cores of
     * performance perf(r), serial fraction (1-f) runs on one
     * r-resource core.
     *
     * @param f Parallel fraction in [0, 1].
     * @param n Total base-core-equivalent resources.
     * @param r Resources per core (divides n conceptually; real-
     *          valued here).
     */
    static double symmetricSpeedup(double f, double n, double r);

    /**
     * Hill-Marty asymmetric speedup: one big r-resource core plus
     * (n - r) base cores; serial work on the big core, parallel work
     * on everything.
     */
    static double asymmetricSpeedup(double f, double n, double r);

    /**
     * Hill-Marty performance model for a core built from r base-core
     * resources: perf(r) = sqrt(r) (Pollack's rule).
     */
    static double corePerf(double r);
};

} // namespace gables

#endif // GABLES_CORE_AMDAHL_H
