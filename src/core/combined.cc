#include "core/combined.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace gables {

std::string
CombinedResult::bottleneckLabel(const SocSpec &soc,
                                const InterconnectModel *ic) const
{
    switch (bottleneck) {
      case CombinedBottleneck::Ip: {
        const IpSpec &ip = soc.ip(static_cast<size_t>(bottleneckIp));
        const IpTiming &t = ips[static_cast<size_t>(bottleneckIp)];
        return ip.name + (t.computeTime >= t.transferTime
                              ? " compute (Ai*Ppeak)"
                              : " link bandwidth (Bi)");
      }
      case CombinedBottleneck::Bus:
        if (ic != nullptr)
            return "bus '" +
                   ic->buses()[static_cast<size_t>(bottleneckBus)]
                       .name +
                   "'";
        return "bus " + std::to_string(bottleneckBus);
      case CombinedBottleneck::Memory:
        return "memory interface (Bpeak, post-SRAM)";
    }
    return "unknown";
}

void
CombinedModel::setMemSide(MemSideMemory memside)
{
    memside_ = std::move(memside);
}

void
CombinedModel::setInterconnect(InterconnectModel interconnect)
{
    interconnect_ = std::move(interconnect);
}

CombinedResult
CombinedModel::evaluate(const SocSpec &soc, const Usecase &usecase) const
{
    GablesResult base = GablesModel::evaluate(soc, usecase);

    CombinedResult result;
    result.ips = base.ips;

    // Memory interface sees filtered traffic (Eq. 15); buses see the
    // full Di (the SRAM is on the memory side of the interconnect).
    if (memside_ && memside_->missRatios().size() != soc.numIps())
        fatal("combined model: memside/SoC IP count mismatch");
    double filtered = 0.0;
    for (size_t i = 0; i < base.ips.size(); ++i) {
        double m = memside_ ? memside_->missRatio(i) : 1.0;
        filtered += m * base.ips[i].dataBytes;
    }
    result.filteredBytes = filtered;
    result.memoryTime = filtered / soc.bpeak();

    // Bus terms (Eq. 16) over unfiltered traffic.
    if (interconnect_) {
        result.busTimes.assign(interconnect_->numBuses(), 0.0);
        for (size_t j = 0; j < interconnect_->numBuses(); ++j) {
            double bytes = 0.0;
            for (size_t i = 0; i < soc.numIps(); ++i) {
                if (interconnect_->uses(i, j))
                    bytes += base.ips[i].dataBytes;
            }
            result.busTimes[j] =
                bytes / interconnect_->buses()[j].bandwidth;
        }
    }

    // Bottleneck analysis over all terms.
    double max_time = result.memoryTime;
    result.bottleneck = CombinedBottleneck::Memory;
    for (size_t i = 0; i < result.ips.size(); ++i) {
        if (result.ips[i].time > max_time) {
            max_time = result.ips[i].time;
            result.bottleneck = CombinedBottleneck::Ip;
            result.bottleneckIp = static_cast<int>(i);
            result.bottleneckBus = -1;
        }
    }
    for (size_t j = 0; j < result.busTimes.size(); ++j) {
        if (result.busTimes[j] > max_time) {
            max_time = result.busTimes[j];
            result.bottleneck = CombinedBottleneck::Bus;
            result.bottleneckBus = static_cast<int>(j);
            result.bottleneckIp = -1;
        }
    }
    GABLES_ASSERT(max_time > 0.0, "combined model: zero total time");
    result.attainable = 1.0 / max_time;
    return result;
}

} // namespace gables
