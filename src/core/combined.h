/**
 * @file
 * A combined evaluator for the paper's extensions applied together,
 * honouring their topological interplay (Figures 10 and 11): the
 * memory-side SRAM sits between the interconnect and DRAM, so the
 * buses carry each IP's full traffic Di while the off-chip interface
 * carries only the filtered D'i = mi * Di. The result is one
 * bottleneck analysis over IPs, buses, and the (filtered) memory
 * interface.
 */

#ifndef GABLES_CORE_COMBINED_H
#define GABLES_CORE_COMBINED_H

#include <optional>
#include <string>
#include <vector>

#include "core/gables.h"
#include "core/interconnect.h"
#include "core/memside.h"

namespace gables {

/** Which resource class binds a combined evaluation. */
enum class CombinedBottleneck {
    /** An IP's compute or link (see the base result for which). */
    Ip,
    /** One of the interconnect buses. */
    Bus,
    /** The off-chip memory interface (post-SRAM traffic). */
    Memory,
};

/** Result of a combined evaluation. */
struct CombinedResult {
    /** Upper bound on SoC performance (ops/s). */
    double attainable = 0.0;
    /** The base per-IP timing detail (Di, Ci, TIP). */
    std::vector<IpTiming> ips;
    /** Per-bus times (empty if no interconnect configured). */
    std::vector<double> busTimes;
    /** Time at the memory interface with filtered traffic. */
    double memoryTime = 0.0;
    /** Off-chip bytes per unit op after SRAM filtering. */
    double filteredBytes = 0.0;
    /** What binds. */
    CombinedBottleneck bottleneck = CombinedBottleneck::Memory;
    /** Binding IP index (bottleneck == Ip), else -1. */
    int bottleneckIp = -1;
    /** Binding bus index (bottleneck == Bus), else -1. */
    int bottleneckBus = -1;

    /** @return A display label for the bottleneck. */
    std::string bottleneckLabel(const SocSpec &soc,
                                const InterconnectModel *ic) const;
};

/**
 * The combined model: base Gables plus any subset of {memory-side
 * SRAM, interconnect topology}.
 *
 * With neither configured it reduces exactly to GablesModel; with
 * only one it reduces to that extension (verified by tests).
 */
class CombinedModel
{
  public:
    CombinedModel() = default;

    /** Attach a memory-side SRAM (per-IP miss ratios). */
    void setMemSide(MemSideMemory memside);

    /** Attach an interconnect topology. */
    void setInterconnect(InterconnectModel interconnect);

    /** @return The attached interconnect, if any. */
    const InterconnectModel *interconnect() const
    {
        return interconnect_ ? &*interconnect_ : nullptr;
    }

    /** Evaluate a usecase on a SoC under the attached extensions. */
    CombinedResult evaluate(const SocSpec &soc,
                            const Usecase &usecase) const;

  private:
    std::optional<MemSideMemory> memside_;
    std::optional<InterconnectModel> interconnect_;
};

} // namespace gables

#endif // GABLES_CORE_COMBINED_H
