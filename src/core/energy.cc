#include "core/energy.h"

#include <cmath>
#include <limits>

#include "util/logging.h"

namespace gables {

EnergyModel::EnergyModel(std::vector<double> energy_per_op,
                         double energy_per_byte, double static_power)
    : energyPerOp_(std::move(energy_per_op)),
      energyPerByte_(energy_per_byte), staticPower_(static_power)
{
    if (energyPerOp_.empty())
        fatal("energy model needs at least one IP coefficient");
    for (size_t i = 0; i < energyPerOp_.size(); ++i) {
        if (!(energyPerOp_[i] > 0.0))
            fatal("energy per op e[" + std::to_string(i) +
                  "] must be > 0");
    }
    if (!(energy_per_byte >= 0.0))
        fatal("energy per byte must be >= 0");
    if (!(static_power >= 0.0))
        fatal("static power must be >= 0");
}

double
EnergyModel::energyPerOp(size_t i) const
{
    if (i >= energyPerOp_.size())
        fatal("energy model IP index out of range");
    return energyPerOp_[i];
}

double
EnergyModel::usecaseEnergyPerOp(const Usecase &usecase) const
{
    if (usecase.numIps() != energyPerOp_.size())
        fatal("energy model has " +
              std::to_string(energyPerOp_.size()) +
              " IPs but usecase has " +
              std::to_string(usecase.numIps()));
    double e = 0.0;
    for (size_t i = 0; i < usecase.numIps(); ++i)
        e += usecase.fraction(i) * energyPerOp_[i];
    e += usecase.bytesPerOp() * energyPerByte_;
    return e;
}

EnergyResult
EnergyModel::evaluate(const SocSpec &soc, const Usecase &usecase,
                      double tdp_watts) const
{
    if (!(tdp_watts > staticPower_))
        fatal("TDP must exceed the static power");

    EnergyResult result;
    result.attainable = GablesModel::evaluate(soc, usecase).attainable;
    result.energyPerOp = usecaseEnergyPerOp(usecase);
    result.tdpBound =
        result.energyPerOp > 0.0
            ? (tdp_watts - staticPower_) / result.energyPerOp
            : std::numeric_limits<double>::infinity();
    result.constrained = std::min(result.attainable, result.tdpBound);
    result.power =
        result.constrained * result.energyPerOp + staticPower_;
    result.thermallyLimited = result.tdpBound < result.attainable;
    return result;
}

double
EnergyModel::energyForWork(const SocSpec &soc, const Usecase &usecase,
                           double tdp_watts, double total_ops) const
{
    if (!(total_ops > 0.0))
        fatal("total ops must be > 0");
    EnergyResult r = evaluate(soc, usecase, tdp_watts);
    double duration = total_ops / r.constrained;
    return total_ops * r.energyPerOp + duration * staticPower_;
}

} // namespace gables
