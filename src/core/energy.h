/**
 * @file
 * An energy/power extension of Gables. The paper's motivation is
 * explicitly power-constrained ("a tight 3 Watt thermal design
 * point", all-day battery life, accelerators an order of magnitude
 * more efficient than the AP) but the base model bounds performance
 * only; this extension closes that gap in the same bottleneck-
 * analysis spirit:
 *
 *   power(P) = P * (sum_i fi * e_i  +  bytesPerOp * e_mem) + P_static
 *
 * where e_i is IP[i]'s energy per operation, e_mem the energy per
 * off-chip byte, and P the achieved ops/s. A TDP cap then adds one
 * more roofline: P_tdp = (TDP - P_static) / energyPerOp, and the
 * power-constrained bound is min(Pattainable, P_tdp).
 */

#ifndef GABLES_CORE_ENERGY_H
#define GABLES_CORE_ENERGY_H

#include <vector>

#include "core/gables.h"

namespace gables {

/** Result of a power-aware evaluation. */
struct EnergyResult {
    /** The base performance bound (ops/s). */
    double attainable = 0.0;
    /** The TDP-imposed bound (ops/s); +inf if no cap binds. */
    double tdpBound = 0.0;
    /** min(attainable, tdpBound) (ops/s). */
    double constrained = 0.0;
    /** Energy per operation of the usecase (J/op). */
    double energyPerOp = 0.0;
    /** Power drawn when running at `constrained` (W). */
    double power = 0.0;
    /** True when the TDP, not the hardware rooflines, binds. */
    bool thermallyLimited = false;
};

/**
 * Per-IP and memory energy coefficients.
 */
class EnergyModel
{
  public:
    /**
     * @param energy_per_op   e_i per IP (J/op), index-aligned with
     *                        the SoC; accelerators typically have
     *                        much smaller e_i than the AP.
     * @param energy_per_byte Off-chip DRAM energy (J/byte).
     * @param static_power    Always-on power (W).
     */
    EnergyModel(std::vector<double> energy_per_op,
                double energy_per_byte, double static_power);

    /** @return e_i for IP @p i (bounds-checked). */
    double energyPerOp(size_t i) const;

    /** @return DRAM energy per byte (J/byte). */
    double energyPerByte() const { return energyPerByte_; }

    /** @return Static power (W). */
    double staticPower() const { return staticPower_; }

    /**
     * Energy per operation of a usecase: sum(fi * e_i) plus DRAM
     * energy for its per-op traffic.
     */
    double usecaseEnergyPerOp(const Usecase &usecase) const;

    /**
     * Evaluate a usecase under a thermal design power cap.
     *
     * @param soc     Hardware description.
     * @param usecase Software description.
     * @param tdp_watts Power cap (W); must exceed static power.
     */
    EnergyResult evaluate(const SocSpec &soc, const Usecase &usecase,
                          double tdp_watts) const;

    /**
     * Energy to execute @p total_ops operations of the usecase at
     * the TDP-constrained operating point, including static energy
     * for the duration (J). The battery-life currency.
     */
    double energyForWork(const SocSpec &soc, const Usecase &usecase,
                         double tdp_watts, double total_ops) const;

  private:
    std::vector<double> energyPerOp_;
    double energyPerByte_;
    double staticPower_;
};

} // namespace gables

#endif // GABLES_CORE_ENERGY_H
