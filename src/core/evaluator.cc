#include "core/evaluator.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "telemetry/span.h"
#include "util/logging.h"

namespace gables {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

} // namespace

GablesEvaluator::GablesEvaluator(const SocSpec &soc,
                                 const Usecase &usecase)
{
    // Per-construction only; attainable() stays uninstrumented — at
    // tens of millions of evals per second even a disabled span's
    // atomic load would show up in the grid benchmarks.
    GABLES_SPAN("evaluator.compile");
    // The same pair check every GablesModel entry point performs,
    // paid once at compile time instead of per grid point.
    soc.validate();
    usecase.validate();
    if (usecase.numIps() != soc.numIps())
        fatal("usecase '" + usecase.name() + "' has " +
              std::to_string(usecase.numIps()) +
              " IP entries but SoC '" + soc.name() + "' has " +
              std::to_string(soc.numIps()) + " IPs");

    n_ = soc.numIps();
    ppeak_ = soc.ppeak();
    bpeak_ = soc.bpeak();
    accel_.resize(n_);
    bandwidth_.resize(n_);
    fraction_.resize(n_);
    intensity_.resize(n_);
    peak_.resize(n_);
    computeTime_.resize(n_);
    dataBytes_.resize(n_);
    transferTime_.resize(n_);
    time_.resize(n_);
    perfBound_.resize(n_);

    for (size_t i = 0; i < n_; ++i) {
        const IpSpec &ip = soc.ip(i);
        const IpWork &w = usecase.at(i);
        accel_[i] = ip.acceleration;
        bandwidth_[i] = ip.bandwidth;
        fraction_[i] = w.fraction;
        intensity_[i] = w.intensity;
        peak_[i] = ip.acceleration * ppeak_;
        recomputeLane(i);
    }
}

void
GablesEvaluator::checkIp(size_t i) const
{
    if (i >= n_)
        fatal("evaluator: IP index " + std::to_string(i) +
              " out of range (N=" + std::to_string(n_) + ")");
}

void
GablesEvaluator::recomputeLane(size_t i)
{
    // Exactly the arithmetic of GablesModel::evaluate(): same
    // operands, same operations, so the cached lane is bit-identical
    // to what a from-scratch evaluation would compute.
    double f = fraction_[i];
    if (f > 0.0) {
        computeTime_[i] = f / peak_[i];
        dataBytes_[i] =
            std::isinf(intensity_[i]) ? 0.0 : f / intensity_[i];
        transferTime_[i] = dataBytes_[i] / bandwidth_[i];
        time_[i] = std::max(transferTime_[i], computeTime_[i]);
        perfBound_[i] = 1.0 / time_[i];
    } else {
        // No work at this IP: no time, no traffic, unbounded scaled
        // roofline.
        computeTime_[i] = 0.0;
        dataBytes_[i] = 0.0;
        transferTime_[i] = 0.0;
        time_[i] = 0.0;
        perfBound_[i] = kInf;
    }
    totalsDirty_ = true;
}

void
GablesEvaluator::refresh()
{
    if (!totalsDirty_)
        return;
    // Reduce in index order: the sum visits the same operands in the
    // same order as the legacy loop, so the bits match.
    double total = 0.0;
    double max_time = 0.0;
    for (size_t i = 0; i < n_; ++i) {
        total += dataBytes_[i];
        max_time = std::max(max_time, time_[i]);
    }
    totalBytes_ = total;
    maxIpTime_ = max_time;
    totalsDirty_ = false;
}

void
GablesEvaluator::setPpeak(double ppeak)
{
    if (!(ppeak > 0.0) || std::isinf(ppeak))
        fatal("evaluator: Ppeak must be positive and finite");
    ppeak_ = ppeak;
    for (size_t i = 0; i < n_; ++i) {
        peak_[i] = accel_[i] * ppeak_;
        recomputeLane(i);
    }
}

void
GablesEvaluator::setBpeak(double bpeak)
{
    if (!(bpeak > 0.0) || std::isinf(bpeak))
        fatal("evaluator: Bpeak must be positive and finite");
    // The memory time is derived from bpeak_ at evaluation, so no
    // lane changes.
    bpeak_ = bpeak;
}

void
GablesEvaluator::setAcceleration(size_t i, double acceleration)
{
    checkIp(i);
    if (!(acceleration > 0.0) || std::isinf(acceleration))
        fatal("evaluator: IP[" + std::to_string(i) +
              "] acceleration must be positive and finite");
    if (i == 0 && acceleration != 1.0)
        fatal("evaluator: IP[0] acceleration A0 must be 1 "
              "(paper Section III-D)");
    accel_[i] = acceleration;
    peak_[i] = acceleration * ppeak_;
    recomputeLane(i);
}

void
GablesEvaluator::setIpBandwidth(size_t i, double bandwidth)
{
    checkIp(i);
    if (!(bandwidth > 0.0) || std::isinf(bandwidth))
        fatal("evaluator: IP[" + std::to_string(i) +
              "] bandwidth must be positive and finite");
    bandwidth_[i] = bandwidth;
    recomputeLane(i);
}

void
GablesEvaluator::setFraction(size_t i, double fraction)
{
    checkIp(i);
    if (!(fraction >= 0.0) || std::isinf(fraction))
        fatal("evaluator: fraction f[" + std::to_string(i) +
              "] must be in [0, 1]");
    if (fraction > 0.0 && !(intensity_[i] > 0.0))
        fatal("evaluator: intensity I[" + std::to_string(i) +
              "] must be > 0 where work is assigned");
    fraction_[i] = fraction;
    recomputeLane(i);
}

void
GablesEvaluator::setIntensity(size_t i, double intensity)
{
    checkIp(i);
    if (fraction_[i] > 0.0 && !(intensity > 0.0))
        fatal("evaluator: intensity I[" + std::to_string(i) +
              "] must be > 0 where work is assigned");
    intensity_[i] = intensity;
    recomputeLane(i);
}

void
GablesEvaluator::setWork(size_t i, double fraction, double intensity)
{
    checkIp(i);
    if (!(fraction >= 0.0) || std::isinf(fraction))
        fatal("evaluator: fraction f[" + std::to_string(i) +
              "] must be in [0, 1]");
    if (fraction > 0.0 && !(intensity > 0.0))
        fatal("evaluator: intensity I[" + std::to_string(i) +
              "] must be > 0 where work is assigned");
    fraction_[i] = fraction;
    intensity_[i] = intensity;
    recomputeLane(i);
}

double
GablesEvaluator::criticalTime()
{
    refresh();
    double max_time = std::max(maxIpTime_, totalBytes_ / bpeak_);
    GABLES_ASSERT(max_time > 0.0,
                  "usecase produced zero total time; Ppeak infinite?");
    return max_time;
}

double
GablesEvaluator::attainable()
{
    ++evals_;
    return 1.0 / criticalTime();
}

void
GablesEvaluator::evaluate(GablesResult &out)
{
    GABLES_SPAN("evaluator.evaluate");
    ++evals_;
    refresh();

    out.ips.resize(n_);
    for (size_t i = 0; i < n_; ++i) {
        IpTiming &t = out.ips[i];
        t.computeTime = computeTime_[i];
        t.dataBytes = dataBytes_[i];
        t.transferTime = transferTime_[i];
        t.time = time_[i];
        t.perfBound = perfBound_[i];
    }

    out.totalDataBytes = totalBytes_;
    out.memoryTime = totalBytes_ / bpeak_;
    // totalBytes_ carries the same bits as Usecase::bytesPerOp()
    // (adding the +0.0 of inactive lanes is exact), so this matches
    // usecase.averageIntensity().
    out.averageIntensity = totalBytes_ == 0.0 ? kInf : 1.0 / totalBytes_;
    out.memoryPerfBound =
        out.memoryTime > 0.0 ? 1.0 / out.memoryTime : kInf;

    double max_time = std::max(maxIpTime_, out.memoryTime);
    GABLES_ASSERT(max_time > 0.0,
                  "usecase produced zero total time; Ppeak infinite?");
    out.attainable = 1.0 / max_time;

    // Bottleneck attribution: memory wins ties, then lowest IP index
    // — the same deterministic contract as GablesModel::evaluate().
    if (out.memoryTime >= max_time) {
        out.bottleneckIp = -1;
        out.bottleneck = BottleneckKind::Memory;
    } else {
        for (size_t i = 0; i < n_; ++i) {
            if (time_[i] >= max_time) {
                out.bottleneckIp = static_cast<int>(i);
                out.bottleneck = computeTime_[i] >= transferTime_[i]
                                     ? BottleneckKind::IpCompute
                                     : BottleneckKind::IpBandwidth;
                break;
            }
        }
    }
}

GablesResult
GablesEvaluator::evaluate()
{
    GablesResult out;
    evaluate(out);
    return out;
}

} // namespace gables
