#include "core/evaluator.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>

#include "telemetry/span.h"
#include "util/logging.h"

namespace gables {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

} // namespace

GablesEvaluator::GablesEvaluator(const SocSpec &soc,
                                 const Usecase &usecase)
{
    // Per-construction only; attainable() stays uninstrumented — at
    // tens of millions of evals per second even a disabled span's
    // atomic load would show up in the grid benchmarks.
    GABLES_SPAN("evaluator.compile");
    // The same pair check every GablesModel entry point performs,
    // paid once at compile time instead of per grid point.
    soc.validate();
    usecase.validate();
    if (usecase.numIps() != soc.numIps())
        fatal("usecase '" + usecase.name() + "' has " +
              std::to_string(usecase.numIps()) +
              " IP entries but SoC '" + soc.name() + "' has " +
              std::to_string(soc.numIps()) + " IPs");

    n_ = soc.numIps();
    ppeak_ = soc.ppeak();
    bpeak_ = soc.bpeak();
    accel_.resize(n_);
    bandwidth_.resize(n_);
    fraction_.resize(n_);
    intensity_.resize(n_);
    peak_.resize(n_);
    computeTime_.resize(n_);
    dataBytes_.resize(n_);
    transferTime_.resize(n_);
    time_.resize(n_);
    perfBound_.resize(n_);

    for (size_t i = 0; i < n_; ++i) {
        const IpSpec &ip = soc.ip(i);
        const IpWork &w = usecase.at(i);
        accel_[i] = ip.acceleration;
        bandwidth_[i] = ip.bandwidth;
        fraction_[i] = w.fraction;
        intensity_[i] = w.intensity;
        peak_[i] = ip.acceleration * ppeak_;
        recomputeLane(i);
    }
}

void
GablesEvaluator::checkIp(size_t i) const
{
    if (i >= n_)
        fatal("evaluator: IP index " + std::to_string(i) +
              " out of range (N=" + std::to_string(n_) + ")");
}

void
GablesEvaluator::recomputeLane(size_t i)
{
    // Exactly the arithmetic of GablesModel::evaluate(): same
    // operands, same operations, so the cached lane is bit-identical
    // to what a from-scratch evaluation would compute.
    double f = fraction_[i];
    if (f > 0.0) {
        computeTime_[i] = f / peak_[i];
        dataBytes_[i] =
            std::isinf(intensity_[i]) ? 0.0 : f / intensity_[i];
        transferTime_[i] = dataBytes_[i] / bandwidth_[i];
        time_[i] = std::max(transferTime_[i], computeTime_[i]);
        perfBound_[i] = 1.0 / time_[i];
    } else {
        // No work at this IP: no time, no traffic, unbounded scaled
        // roofline.
        computeTime_[i] = 0.0;
        dataBytes_[i] = 0.0;
        transferTime_[i] = 0.0;
        time_[i] = 0.0;
        perfBound_[i] = kInf;
    }
    totalsDirty_ = true;
}

void
GablesEvaluator::refresh()
{
    if (!totalsDirty_)
        return;
    // Reduce in index order: the sum visits the same operands in the
    // same order as the legacy loop, so the bits match.
    double total = 0.0;
    double max_time = 0.0;
    for (size_t i = 0; i < n_; ++i) {
        total += dataBytes_[i];
        max_time = std::max(max_time, time_[i]);
    }
    totalBytes_ = total;
    maxIpTime_ = max_time;
    totalsDirty_ = false;
}

void
GablesEvaluator::setPpeak(double ppeak)
{
    if (!(ppeak > 0.0) || std::isinf(ppeak))
        fatal("evaluator: Ppeak must be positive and finite");
    ppeak_ = ppeak;
    for (size_t i = 0; i < n_; ++i) {
        peak_[i] = accel_[i] * ppeak_;
        recomputeLane(i);
    }
}

void
GablesEvaluator::setBpeak(double bpeak)
{
    if (!(bpeak > 0.0) || std::isinf(bpeak))
        fatal("evaluator: Bpeak must be positive and finite");
    // The memory time is derived from bpeak_ at evaluation, so no
    // lane changes.
    bpeak_ = bpeak;
}

void
GablesEvaluator::setAcceleration(size_t i, double acceleration)
{
    checkIp(i);
    if (!(acceleration > 0.0) || std::isinf(acceleration))
        fatal("evaluator: IP[" + std::to_string(i) +
              "] acceleration must be positive and finite");
    if (i == 0 && acceleration != 1.0)
        fatal("evaluator: IP[0] acceleration A0 must be 1 "
              "(paper Section III-D)");
    accel_[i] = acceleration;
    peak_[i] = acceleration * ppeak_;
    recomputeLane(i);
}

void
GablesEvaluator::setIpBandwidth(size_t i, double bandwidth)
{
    checkIp(i);
    if (!(bandwidth > 0.0) || std::isinf(bandwidth))
        fatal("evaluator: IP[" + std::to_string(i) +
              "] bandwidth must be positive and finite");
    bandwidth_[i] = bandwidth;
    recomputeLane(i);
}

void
GablesEvaluator::setFraction(size_t i, double fraction)
{
    checkIp(i);
    if (!(fraction >= 0.0) || std::isinf(fraction))
        fatal("evaluator: fraction f[" + std::to_string(i) +
              "] must be in [0, 1]");
    if (fraction > 0.0 && !(intensity_[i] > 0.0))
        fatal("evaluator: intensity I[" + std::to_string(i) +
              "] must be > 0 where work is assigned");
    fraction_[i] = fraction;
    recomputeLane(i);
}

void
GablesEvaluator::setIntensity(size_t i, double intensity)
{
    checkIp(i);
    if (fraction_[i] > 0.0 && !(intensity > 0.0))
        fatal("evaluator: intensity I[" + std::to_string(i) +
              "] must be > 0 where work is assigned");
    intensity_[i] = intensity;
    recomputeLane(i);
}

void
GablesEvaluator::setWork(size_t i, double fraction, double intensity)
{
    checkIp(i);
    if (!(fraction >= 0.0) || std::isinf(fraction))
        fatal("evaluator: fraction f[" + std::to_string(i) +
              "] must be in [0, 1]");
    if (fraction > 0.0 && !(intensity > 0.0))
        fatal("evaluator: intensity I[" + std::to_string(i) +
              "] must be > 0 where work is assigned");
    fraction_[i] = fraction;
    intensity_[i] = intensity;
    recomputeLane(i);
}

double
GablesEvaluator::criticalTime()
{
    refresh();
    double max_time = std::max(maxIpTime_, totalBytes_ / bpeak_);
    GABLES_ASSERT(max_time > 0.0,
                  "usecase produced zero total time; Ppeak infinite?");
    return max_time;
}

double
GablesEvaluator::attainable()
{
    ++evals_;
    return 1.0 / criticalTime();
}

void
GablesEvaluator::evaluate(GablesResult &out)
{
    GABLES_SPAN("evaluator.evaluate");
    ++evals_;
    refresh();

    out.ips.resize(n_);
    for (size_t i = 0; i < n_; ++i) {
        IpTiming &t = out.ips[i];
        t.computeTime = computeTime_[i];
        t.dataBytes = dataBytes_[i];
        t.transferTime = transferTime_[i];
        t.time = time_[i];
        t.perfBound = perfBound_[i];
    }

    out.totalDataBytes = totalBytes_;
    out.memoryTime = totalBytes_ / bpeak_;
    // totalBytes_ carries the same bits as Usecase::bytesPerOp()
    // (adding the +0.0 of inactive lanes is exact), so this matches
    // usecase.averageIntensity().
    out.averageIntensity = totalBytes_ == 0.0 ? kInf : 1.0 / totalBytes_;
    out.memoryPerfBound =
        out.memoryTime > 0.0 ? 1.0 / out.memoryTime : kInf;

    double max_time = std::max(maxIpTime_, out.memoryTime);
    GABLES_ASSERT(max_time > 0.0,
                  "usecase produced zero total time; Ppeak infinite?");
    out.attainable = 1.0 / max_time;

    // Bottleneck attribution: memory wins ties, then lowest IP index
    // — the same deterministic contract as GablesModel::evaluate().
    if (out.memoryTime >= max_time) {
        out.bottleneckIp = -1;
        out.bottleneck = BottleneckKind::Memory;
    } else {
        for (size_t i = 0; i < n_; ++i) {
            if (time_[i] >= max_time) {
                out.bottleneckIp = static_cast<int>(i);
                out.bottleneck = computeTime_[i] >= transferTime_[i]
                                     ? BottleneckKind::IpCompute
                                     : BottleneckKind::IpBandwidth;
                break;
            }
        }
    }
}

GablesResult
GablesEvaluator::evaluate()
{
    GablesResult out;
    evaluate(out);
    return out;
}

namespace simd {

namespace {

#ifndef GABLES_DISABLE_SIMD
// Relaxed is enough: the flag is set once at process startup (or by a
// scoped guard on one thread); drivers only read it to pick a path,
// and both paths produce identical bits anyway.
std::atomic<bool> g_enabled{true};
#endif

} // namespace

bool
enabled()
{
#ifdef GABLES_DISABLE_SIMD
    return false;
#else
    return g_enabled.load(std::memory_order_relaxed);
#endif
}

bool
setEnabled(bool on)
{
#ifdef GABLES_DISABLE_SIMD
    (void)on;
    return false;
#else
    return g_enabled.exchange(on, std::memory_order_relaxed);
#endif
}

} // namespace simd

GablesEvalPack::GablesEvalPack(const GablesEvaluator &base)
{
    broadcast(base);
}

void
GablesEvalPack::broadcast(const GablesEvaluator &base)
{
    n_ = base.numIps();
    const size_t rows = n_ * kWidth;
    accel_.resize(rows);
    bandwidth_.resize(rows);
    fraction_.resize(rows);
    intensity_.resize(rows);
    intensityEff_.resize(rows);
    dataBytes_.resize(rows);
    time_.resize(rows);
    rowDirty_.assign(n_, 1);
    anyDirty_ = true;

    ppeak_.fill(base.ppeak());
    bpeak_.fill(base.bpeak());
    for (size_t i = 0; i < n_; ++i) {
        const size_t o = i * kWidth;
        const double a = base.acceleration(i);
        const double b = base.ipBandwidth(i);
        const double f = base.fraction(i);
        const double in = base.intensity(i);
        const double eff = f > 0.0 ? in : 1.0;
        for (size_t w = 0; w < kWidth; ++w) {
            accel_[o + w] = a;
            bandwidth_[o + w] = b;
            fraction_[o + w] = f;
            intensity_[o + w] = in;
            intensityEff_[o + w] = eff;
        }
    }
    // evals_ deliberately survives broadcast(): a worker's pack is
    // re-broadcast per chunk, and its lifetime count feeds the same
    // model.evals totals a per-worker scalar evaluator would.
}

// The bulk row setters live here (not inline in the header) so they
// compile under the evaluator vector flags: validation runs as a
// scalar lane-order loop (same first-failure message as the per-lane
// mutators), then the stores vectorize.

void
GablesEvalPack::setFractionRow(size_t i, const double *fractions,
                               size_t cnt)
{
    checkIp(i);
    checkCount(cnt);
    const size_t o = i * kWidth;
    for (size_t w = 0; w < cnt; ++w) {
        const double f = fractions[w];
        if (!(f >= 0.0) || std::isinf(f))
            fatal("evaluator: fraction f[" + std::to_string(i) +
                  "] must be in [0, 1]");
        if (f > 0.0 && !(intensity_[o + w] > 0.0))
            fatal("evaluator: intensity I[" + std::to_string(i) +
                  "] must be > 0 where work is assigned");
    }
    double *__restrict__ fr = fraction_.data() + o;
    double *__restrict__ ie = intensityEff_.data() + o;
    const double *__restrict__ in = intensity_.data() + o;
#pragma omp simd
    for (size_t w = 0; w < cnt; ++w) {
        fr[w] = fractions[w];
        ie[w] = fractions[w] > 0.0 ? in[w] : 1.0;
    }
    rowDirty_[i] = 1;
    anyDirty_ = true;
}

void
GablesEvalPack::setIntensityRow(size_t i, const double *intensities,
                                size_t cnt)
{
    checkIp(i);
    checkCount(cnt);
    const size_t o = i * kWidth;
    for (size_t w = 0; w < cnt; ++w) {
        if (fraction_[o + w] > 0.0 && !(intensities[w] > 0.0))
            fatal("evaluator: intensity I[" + std::to_string(i) +
                  "] must be > 0 where work is assigned");
    }
    double *__restrict__ in = intensity_.data() + o;
    double *__restrict__ ie = intensityEff_.data() + o;
    const double *__restrict__ fr = fraction_.data() + o;
#pragma omp simd
    for (size_t w = 0; w < cnt; ++w) {
        in[w] = intensities[w];
        ie[w] = fr[w] > 0.0 ? intensities[w] : 1.0;
    }
    rowDirty_[i] = 1;
    anyDirty_ = true;
}

void
GablesEvalPack::setAccelerationRow(size_t i,
                                   const double *accelerations,
                                   size_t cnt)
{
    checkIp(i);
    checkCount(cnt);
    for (size_t w = 0; w < cnt; ++w) {
        const double a = accelerations[w];
        if (!(a > 0.0) || std::isinf(a))
            fatal("evaluator: IP[" + std::to_string(i) +
                  "] acceleration must be positive and finite");
        if (i == 0 && a != 1.0)
            fatal("evaluator: IP[0] acceleration A0 must be 1 "
                  "(paper Section III-D)");
    }
    double *__restrict__ ac = accel_.data() + i * kWidth;
    for (size_t w = 0; w < cnt; ++w)
        ac[w] = accelerations[w];
    rowDirty_[i] = 1;
    anyDirty_ = true;
}

void
GablesEvalPack::setIpBandwidthRow(size_t i, const double *bandwidths,
                                  size_t cnt)
{
    checkIp(i);
    checkCount(cnt);
    for (size_t w = 0; w < cnt; ++w) {
        if (!(bandwidths[w] > 0.0) || std::isinf(bandwidths[w]))
            fatal("evaluator: IP[" + std::to_string(i) +
                  "] bandwidth must be positive and finite");
    }
    double *__restrict__ bw = bandwidth_.data() + i * kWidth;
    for (size_t w = 0; w < cnt; ++w)
        bw[w] = bandwidths[w];
    rowDirty_[i] = 1;
    anyDirty_ = true;
}

void
GablesEvalPack::setBpeakLanes(const double *bpeaks, size_t cnt)
{
    checkCount(cnt);
    for (size_t w = 0; w < cnt; ++w) {
        if (!(bpeaks[w] > 0.0) || std::isinf(bpeaks[w]))
            fatal("evaluator: Bpeak must be positive and finite");
    }
    // Memory time is derived at run(), so no row dirtying.
    for (size_t w = 0; w < cnt; ++w)
        bpeak_[w] = bpeaks[w];
}

void
GablesEvalPack::run(size_t activeLanes)
{
    GABLES_ASSERT(activeLanes <= kWidth,
                  "pack run() with more active lanes than the width");

    // Phase 1: recompute rows a mutation touched. Each row is the
    // scalar recomputeLane() arithmetic replicated across lanes,
    // with no branch or select at all — the mutators pre-sanitize
    // the divisor (intensityEff_) so that plain division reproduces
    // the scalar path's branches bit-for-bit:
    //  - f == 0: eff is pinned to 1.0, so db = 0/1 = +0.0, the
    //    scalar path's literal 0.0 (dividing by a raw idle-lane
    //    intensity <= 0 would give -0.0 or NaN); ct = 0/peak = +0,
    //    tt = 0/b = +0, time = +0.
    //  - Ii = inf with f > 0: db = f/inf = +0.0, exactly the scalar
    //    isinf() special case.
    // Keeping the body straight-line arithmetic is what lets the
    // compiler turn a row into a handful of vector ops; a select
    // over a division defeats GCC's vectorizer at -O3 (the
    // fully-unrolled loop is never if-converted). The __restrict__
    // locals matter just as much: without them GCC cannot prove the
    // derived-row stores don't alias the parameter-row loads, and
    // SLP on the unrolled body silently falls back to 8 scalar
    // divisions per row.
    if (anyDirty_) {
        const double *__restrict__ fr = fraction_.data();
        const double *__restrict__ ac = accel_.data();
        const double *__restrict__ ie = intensityEff_.data();
        const double *__restrict__ bw = bandwidth_.data();
        double *__restrict__ db_row = dataBytes_.data();
        double *__restrict__ t_row = time_.data();
        for (size_t i = 0; i < n_; ++i) {
            if (!rowDirty_[i])
                continue;
            rowDirty_[i] = 0;
            const size_t o = i * kWidth;
            // The pragma (a no-op unless built with -fopenmp-simd)
            // keeps the loop in loop form for the vectorizer; GCC's
            // early complete unrolling otherwise leaves straight-
            // line code the SLP pass refuses to vectorize.
#pragma omp simd
            for (size_t w = 0; w < kWidth; ++w) {
                const double f = fr[o + w];
                // Same product SocSpec::ipPeakPerf() evaluates, so
                // the quotient matches the scalar peak_[i] path.
                const double ct = f / (ac[o + w] * ppeak_[w]);
                const double db = f / ie[o + w];
                const double tt = db / bw[o + w];
                db_row[o + w] = db;
                t_row[o + w] = std::max(tt, ct);
            }
        }

        // Phase 2: reductions, cached until the next row mutation —
        // the pack analogue of the scalar totalsDirty_ cache, so a
        // Bpeak-only grid (whose mutations dirty no row) skips both
        // phases exactly like the scalar refresh() no-ops. i outer /
        // w inner keeps every lane's chain in IP index order —
        // identical operands in identical order to the scalar
        // refresh(), vectorized across lanes only.
        std::array<double, kWidth> total{};
        std::array<double, kWidth> maxt{};
        for (size_t i = 0; i < n_; ++i) {
            const size_t o = i * kWidth;
#pragma omp simd
            for (size_t w = 0; w < kWidth; ++w)
                total[w] += db_row[o + w];
#pragma omp simd
            for (size_t w = 0; w < kWidth; ++w)
                maxt[w] = std::max(maxt[w], t_row[o + w]);
        }
        totalBytes_ = total;
        maxIpTime_ = maxt;
        anyDirty_ = false;
    }

    // Finalization: the only terms that depend on Bpeak, recomputed
    // every run() from the cached reductions.
#pragma omp simd
    for (size_t w = 0; w < kWidth; ++w) {
        memTime_[w] = totalBytes_[w] / bpeak_[w];
        att_[w] = 1.0 / std::max(maxIpTime_[w], memTime_[w]);
    }
    for (size_t w = 0; w < activeLanes; ++w)
        GABLES_ASSERT(std::max(maxIpTime_[w], memTime_[w]) > 0.0,
                      "usecase produced zero total time; "
                      "Ppeak infinite?");

    evals_ += activeLanes;
}

void
GablesEvalPack::paramSums(double *accelSums, double *bwSums) const
{
    const double *__restrict__ ac = accel_.data();
    const double *__restrict__ bw = bandwidth_.data();
    double *__restrict__ sa = accelSums;
    double *__restrict__ sb = bwSums;
#pragma omp simd
    for (size_t w = 0; w < kWidth; ++w) {
        sa[w] = 0.0;
        sb[w] = 0.0;
    }
    for (size_t i = 0; i < n_; ++i) {
        const size_t o = i * kWidth;
#pragma omp simd
        for (size_t w = 0; w < kWidth; ++w) {
            sa[w] += ac[o + w];
            sb[w] += bw[o + w];
        }
    }
}

int
GablesEvalPack::bottleneckIp(size_t lane) const
{
    checkLane(lane);
    // Same deterministic contract as GablesEvaluator::evaluate():
    // memory wins ties, then the lowest IP index.
    const double max_time = std::max(maxIpTime_[lane], memTime_[lane]);
    if (memTime_[lane] >= max_time)
        return -1;
    for (size_t i = 0; i < n_; ++i) {
        if (time_[i * kWidth + lane] >= max_time)
            return static_cast<int>(i);
    }
    return -1; // Unreachable: max_time is one of the IP times.
}

} // namespace gables
