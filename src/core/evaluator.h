/**
 * @file
 * Compiled evaluation of the base Gables model for grid-scale
 * workloads (sweeps, design-space exploration, sensitivity and
 * robustness sampling, advisor bisection).
 *
 * GablesModel::evaluate() re-validates its inputs, re-derives every
 * per-IP term, and heap-allocates a GablesResult on every call; the
 * callers above additionally rebuild a SocSpec or Usecase copy per
 * grid point just to change one number. GablesEvaluator precompiles
 * a (SocSpec, Usecase) pair once into flat structure-of-arrays
 * state, caches the per-IP timing lanes, and exposes
 * single-parameter mutators so a grid axis updates one term instead
 * of rebuilding the pair. Evaluation then reduces the cached lanes
 * — zero allocations in steady state, and every number is
 * bit-identical to the legacy path because each lane is computed
 * with exactly the same expressions and the reductions run in the
 * same index order (verified exhaustively by property tests).
 *
 * Thread-safety: an evaluator is mutable state; use one instance per
 * worker (the parallel drivers build one per pool worker).
 */

#ifndef GABLES_CORE_EVALUATOR_H
#define GABLES_CORE_EVALUATOR_H

#include <array>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/gables.h"
#include "util/logging.h"

namespace gables {

/**
 * Build/runtime switches for the packed (SIMD-batched) evaluation
 * path. The packed path is bit-identical to the scalar path, so the
 * toggle exists for verification (A/B in tests and benches) and as an
 * escape hatch, not because results differ.
 */
namespace simd {

/** Lanes per evaluation pack (grid points evaluated per pass). */
#ifdef GABLES_PACK_WIDTH
inline constexpr size_t kPackWidth = GABLES_PACK_WIDTH;
#else
inline constexpr size_t kPackWidth = 8;
#endif
static_assert(kPackWidth >= 2 && (kPackWidth & (kPackWidth - 1)) == 0,
              "pack width must be a power of two >= 2");

/** False when built with -DGABLES_DISABLE_SIMD=ON. */
#ifdef GABLES_DISABLE_SIMD
inline constexpr bool kCompiledIn = false;
#else
inline constexpr bool kCompiledIn = true;
#endif

/**
 * @return Whether grid drivers should dispatch to the packed path.
 * Always false when the path is compiled out.
 */
bool enabled();

/**
 * Toggle the packed path at runtime (the `--no-simd` global CLI
 * flag). Ignored — pinned false — when compiled out.
 *
 * @return The previous setting.
 */
bool setEnabled(bool on);

/** RAII toggle for A/B measurement in tests and benches. */
class ScopedEnable
{
  public:
    explicit ScopedEnable(bool on) : prev_(setEnabled(on)) {}
    ~ScopedEnable() { setEnabled(prev_); }
    ScopedEnable(const ScopedEnable &) = delete;
    ScopedEnable &operator=(const ScopedEnable &) = delete;

  private:
    bool prev_;
};

} // namespace simd

/**
 * A precompiled (SocSpec, Usecase) pair with cheap single-parameter
 * mutators and allocation-free evaluation.
 */
class GablesEvaluator
{
  public:
    /**
     * Compile the pair. Validates both once (the same checks every
     * GablesModel::evaluate() call performs) and caches all per-IP
     * timing lanes.
     *
     * @throws FatalError on mismatched sizes or invalid specs.
     */
    GablesEvaluator(const SocSpec &soc, const Usecase &usecase);

    /** @return Number of IPs N. */
    size_t numIps() const { return n_; }

    /** @name Current parameter values (for save/restore patterns). */
    /** @{ */
    double ppeak() const { return ppeak_; }
    double bpeak() const { return bpeak_; }
    double acceleration(size_t i) const { return accel_.at(i); }
    double ipBandwidth(size_t i) const { return bandwidth_.at(i); }
    double fraction(size_t i) const { return fraction_.at(i); }
    double intensity(size_t i) const { return intensity_.at(i); }
    /** @} */

    /**
     * @name Single-parameter mutators
     *
     * Each updates one model term and recomputes only the affected
     * timing lane(s). Values are checked with the same invariants the
     * SocSpec/Usecase constructors enforce (positive finite hardware
     * parameters, non-negative fractions, positive intensity wherever
     * work is assigned); the fractions-sum-to-one invariant is the
     * caller's contract, since grid drivers set several fractions in
     * sequence.
     */
    /** @{ */
    /** Replace the baseline peak performance Ppeak (rescales every
     * IP's compute roof). */
    void setPpeak(double ppeak);
    /** Replace the off-chip bandwidth Bpeak. */
    void setBpeak(double bpeak);
    /** Replace IP @p i's acceleration Ai (A0 must stay 1). */
    void setAcceleration(size_t i, double acceleration);
    /** Replace IP @p i's link bandwidth Bi. */
    void setIpBandwidth(size_t i, double bandwidth);
    /** Replace the work fraction fi at IP @p i. */
    void setFraction(size_t i, double fraction);
    /** Replace the operational intensity Ii at IP @p i. */
    void setIntensity(size_t i, double intensity);
    /** Replace both work terms of IP @p i in one lane recompute. */
    void setWork(size_t i, double fraction, double intensity);
    /** @} */

    /**
     * Scalar fast path: attainable performance only (paper Eq. 11),
     * without bottleneck attribution or per-IP detail.
     * Bit-identical to GablesModel::evaluate(...).attainable.
     */
    double attainable();

    /**
     * Full evaluation into a caller-owned scratch result. Reusing
     * the same scratch across grid points performs no allocations
     * after the first call. Every field matches
     * GablesModel::evaluate() bit-for-bit.
     */
    void evaluate(GablesResult &out);

    /** Convenience overload allocating a fresh result. */
    GablesResult evaluate();

    /**
     * @return Number of attainable()/evaluate() calls served, for
     * the model.evals telemetry counters (sum per-worker counts; the
     * total is scheduling-independent).
     */
    uint64_t evalCount() const { return evals_; }

  private:
    /** Recompute the cached timing lane of IP @p i with the exact
     * legacy expressions. */
    void recomputeLane(size_t i);
    /** Re-reduce totalBytes_ / maxIpTime_ if a lane changed. */
    void refresh();
    /** @return max over IP times and the memory time — the critical
     * time 1/Pattainable. */
    double criticalTime();
    void checkIp(size_t i) const;

    size_t n_ = 0;
    double ppeak_ = 0.0;
    double bpeak_ = 0.0;

    // Hardware and software inputs, index-aligned with the IPs.
    std::vector<double> accel_;
    std::vector<double> bandwidth_;
    std::vector<double> fraction_;
    std::vector<double> intensity_;

    // Hoisted invariants: peak_[i] = Ai * Ppeak, computed with the
    // same product SocSpec::ipPeakPerf() evaluates.
    std::vector<double> peak_;

    // Cached per-IP timing lanes (the IpTiming fields).
    std::vector<double> computeTime_;
    std::vector<double> dataBytes_;
    std::vector<double> transferTime_;
    std::vector<double> time_;
    std::vector<double> perfBound_;

    // Cached reductions over the lanes.
    double totalBytes_ = 0.0;
    double maxIpTime_ = 0.0;
    bool totalsDirty_ = true;

    uint64_t evals_ = 0;
};

/**
 * A pack of simd::kPackWidth independent model evaluations batched
 * for auto-vectorization.
 *
 * Where GablesEvaluator lays out one grid point as per-IP arrays,
 * the pack transposes W points into structure-of-arrays rows of W
 * lanes each (row-major [ip][lane]), so the per-IP recompute and the
 * min/bottleneck reductions of paper Eqs. 5-8 and 12-14 run as plain
 * fixed-trip-count inner loops over contiguous doubles — exactly the
 * shape `-O3` auto-vectorizes with no intrinsics.
 *
 * Bit-identity contract: every lane produces the same bits as a
 * GablesEvaluator fed the same mutation sequence. Two rules make
 * that hold:
 *  - per-lane arithmetic uses the same expressions and operand order
 *    as GablesEvaluator::recomputeLane() (the one scalar branch,
 *    f > 0, is replaced by a select that is value- and bit-exact in
 *    all cases, including Ii = inf and idle lanes);
 *  - reductions keep each lane's chain in IP index order — the
 *    vectorized loops batch *across* lanes (w) and never reassociate
 *    *within* a lane (i).
 * The property-fuzz suite enforces this bitwise.
 *
 * Thread-safety: mutable state; one pack per worker, like the scalar
 * evaluator.
 */
class GablesEvalPack
{
  public:
    /** Lanes per pack. */
    static constexpr size_t kWidth = simd::kPackWidth;

    /** Compile a pack with every lane a copy of @p base. */
    explicit GablesEvalPack(const GablesEvaluator &base);

    /** Reset every lane to a copy of @p base (no allocation when the
     * IP count is unchanged). */
    void broadcast(const GablesEvaluator &base);

    /** @return Number of IPs N (identical in every lane). */
    size_t numIps() const { return n_; }

    /**
     * @name Per-lane single-parameter mutators
     *
     * Same contracts and validation messages as the scalar
     * GablesEvaluator mutators; @p lane < kWidth selects the grid
     * point. Mutations are buffered — run() recomputes only rows a
     * mutation touched. Defined inline: drivers stage one mutation
     * per lane per grid point, so the call itself is on the packed
     * path's critical path.
     */
    /** @{ */
    void setPpeak(size_t lane, double ppeak)
    {
        checkLane(lane);
        if (!(ppeak > 0.0) || std::isinf(ppeak))
            fatal("evaluator: Ppeak must be positive and finite");
        ppeak_[lane] = ppeak;
        // Ppeak scales every IP's compute roof.
        for (size_t i = 0; i < n_; ++i)
            rowDirty_[i] = 1;
        anyDirty_ = true;
    }

    void setBpeak(size_t lane, double bpeak)
    {
        checkLane(lane);
        if (!(bpeak > 0.0) || std::isinf(bpeak))
            fatal("evaluator: Bpeak must be positive and finite");
        // Memory time is derived at run(), so no row changes.
        bpeak_[lane] = bpeak;
    }

    void setAcceleration(size_t lane, size_t i, double acceleration)
    {
        checkLane(lane);
        checkIp(i);
        if (!(acceleration > 0.0) || std::isinf(acceleration))
            fatal("evaluator: IP[" + std::to_string(i) +
                  "] acceleration must be positive and finite");
        if (i == 0 && acceleration != 1.0)
            fatal("evaluator: IP[0] acceleration A0 must be 1 "
                  "(paper Section III-D)");
        accel_[i * kWidth + lane] = acceleration;
        rowDirty_[i] = 1;
        anyDirty_ = true;
    }

    void setIpBandwidth(size_t lane, size_t i, double bandwidth)
    {
        checkLane(lane);
        checkIp(i);
        if (!(bandwidth > 0.0) || std::isinf(bandwidth))
            fatal("evaluator: IP[" + std::to_string(i) +
                  "] bandwidth must be positive and finite");
        bandwidth_[i * kWidth + lane] = bandwidth;
        rowDirty_[i] = 1;
        anyDirty_ = true;
    }

    void setFraction(size_t lane, size_t i, double fraction)
    {
        checkLane(lane);
        checkIp(i);
        if (!(fraction >= 0.0) || std::isinf(fraction))
            fatal("evaluator: fraction f[" + std::to_string(i) +
                  "] must be in [0, 1]");
        const size_t r = i * kWidth + lane;
        if (fraction > 0.0 && !(intensity_[r] > 0.0))
            fatal("evaluator: intensity I[" + std::to_string(i) +
                  "] must be > 0 where work is assigned");
        fraction_[r] = fraction;
        intensityEff_[r] = fraction > 0.0 ? intensity_[r] : 1.0;
        rowDirty_[i] = 1;
        anyDirty_ = true;
    }

    void setIntensity(size_t lane, size_t i, double intensity)
    {
        checkLane(lane);
        checkIp(i);
        const size_t r = i * kWidth + lane;
        if (fraction_[r] > 0.0 && !(intensity > 0.0))
            fatal("evaluator: intensity I[" + std::to_string(i) +
                  "] must be > 0 where work is assigned");
        intensity_[r] = intensity;
        intensityEff_[r] = fraction_[r] > 0.0 ? intensity : 1.0;
        rowDirty_[i] = 1;
        anyDirty_ = true;
    }

    void setWork(size_t lane, size_t i, double fraction,
                 double intensity)
    {
        checkLane(lane);
        checkIp(i);
        if (!(fraction >= 0.0) || std::isinf(fraction))
            fatal("evaluator: fraction f[" + std::to_string(i) +
                  "] must be in [0, 1]");
        if (fraction > 0.0 && !(intensity > 0.0))
            fatal("evaluator: intensity I[" + std::to_string(i) +
                  "] must be > 0 where work is assigned");
        const size_t r = i * kWidth + lane;
        fraction_[r] = fraction;
        intensity_[r] = intensity;
        intensityEff_[r] = fraction > 0.0 ? intensity : 1.0;
        rowDirty_[i] = 1;
        anyDirty_ = true;
    }
    /** @} */

    /**
     * @name Bulk row staging
     *
     * Set one parameter across the first @p cnt lanes from an array
     * — one call stages a whole grid-point batch, which is how the
     * sweep drivers feed packs. Validation is identical to the
     * per-lane mutators, applied in lane order (the first invalid
     * lane produces the same fatal() the scalar sweep would hit at
     * that grid point). Lanes >= cnt keep their previous values.
     */
    /** @{ */
    void setFractionRow(size_t i, const double *fractions,
                        size_t cnt);
    void setIntensityRow(size_t i, const double *intensities,
                         size_t cnt);
    void setAccelerationRow(size_t i, const double *accelerations,
                            size_t cnt);
    void setIpBandwidthRow(size_t i, const double *bandwidths,
                           size_t cnt);
    /** Per-lane Bpeak from an array (no row recompute needed). */
    void setBpeakLanes(const double *bpeaks, size_t cnt);
    /** @} */

    /**
     * Evaluate all lanes: recompute dirty rows, reduce, and cache
     * per-lane attainable performance. Lanes past @p activeLanes are
     * still computed (they hold stale-but-valid parameters) but are
     * not counted.
     *
     * @param activeLanes Number of lanes carrying real grid points;
     *        added to evalCount() so telemetry totals match the
     *        scalar path exactly.
     */
    void run(size_t activeLanes);

    /** @return Attainable performance of @p lane from the last
     * run(); bit-identical to GablesEvaluator::attainable(). */
    double attainable(size_t lane) const { return att_.at(lane); }

    /** @return Lane @p lane's current off-chip bandwidth Bpeak. */
    double bpeak(size_t lane) const { return bpeak_.at(lane); }

    /**
     * Per-lane sums of the acceleration and link-bandwidth rows,
     * each accumulated in IP index order — the order
     * CostModel::cost() visits the IPs, so a linear cost computed
     * from these sums matches the scalar loop bit-for-bit. Reads the
     * staged parameters directly (no run() required).
     *
     * @param accelSums Out: kWidth sums of Ai per lane.
     * @param bwSums    Out: kWidth sums of Bi per lane.
     */
    void paramSums(double *accelSums, double *bwSums) const;

    /** @return Bottleneck attribution of @p lane from the last
     * run(): -1 for memory, else the lowest bottleneck IP index —
     * the same tie-break contract as GablesEvaluator::evaluate(). */
    int bottleneckIp(size_t lane) const;

    /** @return Evaluations served (active lanes across run() calls),
     * for the model.evals telemetry counters. */
    uint64_t evalCount() const { return evals_; }

  private:
    void checkLane(size_t lane) const
    {
        if (lane >= kWidth)
            fatal("evaluator: pack lane " + std::to_string(lane) +
                  " out of range (W=" + std::to_string(kWidth) +
                  ")");
    }

    void checkIp(size_t i) const
    {
        if (i >= n_)
            fatal("evaluator: IP index " + std::to_string(i) +
                  " out of range (N=" + std::to_string(n_) + ")");
    }

    static void checkCount(size_t cnt)
    {
        if (cnt > kWidth)
            fatal("evaluator: bulk lane count " +
                  std::to_string(cnt) + " exceeds pack width W=" +
                  std::to_string(kWidth));
    }

    size_t n_ = 0;

    // Per-lane scalars.
    std::array<double, kWidth> ppeak_{};
    std::array<double, kWidth> bpeak_{};

    // SoA rows, row-major [i * kWidth + lane].
    std::vector<double> accel_;
    std::vector<double> bandwidth_;
    std::vector<double> fraction_;
    std::vector<double> intensity_;
    // The divisor run() actually uses for dataBytes: the raw
    // intensity where fraction > 0, and a harmless 1.0 on idle lanes
    // (where the raw value may legally be <= 0 and f/I would produce
    // -0.0 or NaN instead of the scalar path's literal 0.0; 0/1
    // yields the identical +0.0 bits). Maintained at mutation time
    // so run()'s inner loop is pure branch-free arithmetic — the
    // whole point of the pack — while intensity_ keeps the raw value
    // for validation parity with the scalar mutators.
    std::vector<double> intensityEff_;

    // Derived rows (only the terms the reductions consume).
    std::vector<double> dataBytes_;
    std::vector<double> time_;

    // Per-lane reductions over the rows, cached across run() calls
    // until a mutation dirties a row (the scalar totalsDirty_
    // analogue — Bpeak-only grids never recompute them).
    std::array<double, kWidth> totalBytes_{};
    std::array<double, kWidth> maxIpTime_{};

    // Per-lane results of the last run().
    std::array<double, kWidth> memTime_{};
    std::array<double, kWidth> att_{};

    // Rows touched by a mutation since the last run(). rowDirty_[i]
    // covers all lanes of row i: recomputing a clean lane reproduces
    // identical bits, so over-recompute is harmless and keeps the
    // inner loops branch-free.
    std::vector<uint8_t> rowDirty_;
    bool anyDirty_ = true;

    uint64_t evals_ = 0;
};

} // namespace gables

#endif // GABLES_CORE_EVALUATOR_H
