/**
 * @file
 * Compiled evaluation of the base Gables model for grid-scale
 * workloads (sweeps, design-space exploration, sensitivity and
 * robustness sampling, advisor bisection).
 *
 * GablesModel::evaluate() re-validates its inputs, re-derives every
 * per-IP term, and heap-allocates a GablesResult on every call; the
 * callers above additionally rebuild a SocSpec or Usecase copy per
 * grid point just to change one number. GablesEvaluator precompiles
 * a (SocSpec, Usecase) pair once into flat structure-of-arrays
 * state, caches the per-IP timing lanes, and exposes
 * single-parameter mutators so a grid axis updates one term instead
 * of rebuilding the pair. Evaluation then reduces the cached lanes
 * — zero allocations in steady state, and every number is
 * bit-identical to the legacy path because each lane is computed
 * with exactly the same expressions and the reductions run in the
 * same index order (verified exhaustively by property tests).
 *
 * Thread-safety: an evaluator is mutable state; use one instance per
 * worker (the parallel drivers build one per pool worker).
 */

#ifndef GABLES_CORE_EVALUATOR_H
#define GABLES_CORE_EVALUATOR_H

#include <cstdint>
#include <vector>

#include "core/gables.h"

namespace gables {

/**
 * A precompiled (SocSpec, Usecase) pair with cheap single-parameter
 * mutators and allocation-free evaluation.
 */
class GablesEvaluator
{
  public:
    /**
     * Compile the pair. Validates both once (the same checks every
     * GablesModel::evaluate() call performs) and caches all per-IP
     * timing lanes.
     *
     * @throws FatalError on mismatched sizes or invalid specs.
     */
    GablesEvaluator(const SocSpec &soc, const Usecase &usecase);

    /** @return Number of IPs N. */
    size_t numIps() const { return n_; }

    /** @name Current parameter values (for save/restore patterns). */
    /** @{ */
    double ppeak() const { return ppeak_; }
    double bpeak() const { return bpeak_; }
    double acceleration(size_t i) const { return accel_.at(i); }
    double ipBandwidth(size_t i) const { return bandwidth_.at(i); }
    double fraction(size_t i) const { return fraction_.at(i); }
    double intensity(size_t i) const { return intensity_.at(i); }
    /** @} */

    /**
     * @name Single-parameter mutators
     *
     * Each updates one model term and recomputes only the affected
     * timing lane(s). Values are checked with the same invariants the
     * SocSpec/Usecase constructors enforce (positive finite hardware
     * parameters, non-negative fractions, positive intensity wherever
     * work is assigned); the fractions-sum-to-one invariant is the
     * caller's contract, since grid drivers set several fractions in
     * sequence.
     */
    /** @{ */
    /** Replace the baseline peak performance Ppeak (rescales every
     * IP's compute roof). */
    void setPpeak(double ppeak);
    /** Replace the off-chip bandwidth Bpeak. */
    void setBpeak(double bpeak);
    /** Replace IP @p i's acceleration Ai (A0 must stay 1). */
    void setAcceleration(size_t i, double acceleration);
    /** Replace IP @p i's link bandwidth Bi. */
    void setIpBandwidth(size_t i, double bandwidth);
    /** Replace the work fraction fi at IP @p i. */
    void setFraction(size_t i, double fraction);
    /** Replace the operational intensity Ii at IP @p i. */
    void setIntensity(size_t i, double intensity);
    /** Replace both work terms of IP @p i in one lane recompute. */
    void setWork(size_t i, double fraction, double intensity);
    /** @} */

    /**
     * Scalar fast path: attainable performance only (paper Eq. 11),
     * without bottleneck attribution or per-IP detail.
     * Bit-identical to GablesModel::evaluate(...).attainable.
     */
    double attainable();

    /**
     * Full evaluation into a caller-owned scratch result. Reusing
     * the same scratch across grid points performs no allocations
     * after the first call. Every field matches
     * GablesModel::evaluate() bit-for-bit.
     */
    void evaluate(GablesResult &out);

    /** Convenience overload allocating a fresh result. */
    GablesResult evaluate();

    /**
     * @return Number of attainable()/evaluate() calls served, for
     * the model.evals telemetry counters (sum per-worker counts; the
     * total is scheduling-independent).
     */
    uint64_t evalCount() const { return evals_; }

  private:
    /** Recompute the cached timing lane of IP @p i with the exact
     * legacy expressions. */
    void recomputeLane(size_t i);
    /** Re-reduce totalBytes_ / maxIpTime_ if a lane changed. */
    void refresh();
    /** @return max over IP times and the memory time — the critical
     * time 1/Pattainable. */
    double criticalTime();
    void checkIp(size_t i) const;

    size_t n_ = 0;
    double ppeak_ = 0.0;
    double bpeak_ = 0.0;

    // Hardware and software inputs, index-aligned with the IPs.
    std::vector<double> accel_;
    std::vector<double> bandwidth_;
    std::vector<double> fraction_;
    std::vector<double> intensity_;

    // Hoisted invariants: peak_[i] = Ai * Ppeak, computed with the
    // same product SocSpec::ipPeakPerf() evaluates.
    std::vector<double> peak_;

    // Cached per-IP timing lanes (the IpTiming fields).
    std::vector<double> computeTime_;
    std::vector<double> dataBytes_;
    std::vector<double> transferTime_;
    std::vector<double> time_;
    std::vector<double> perfBound_;

    // Cached reductions over the lanes.
    double totalBytes_ = 0.0;
    double maxIpTime_ = 0.0;
    bool totalsDirty_ = true;

    uint64_t evals_ = 0;
};

} // namespace gables

#endif // GABLES_CORE_EVALUATOR_H
