#include "core/gables.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"

namespace gables {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/**
 * Check that the usecase is index-aligned with the SoC and both are
 * internally valid.
 */
void
checkPair(const SocSpec &soc, const Usecase &usecase)
{
    soc.validate();
    usecase.validate();
    if (usecase.numIps() != soc.numIps())
        fatal("usecase '" + usecase.name() + "' has " +
              std::to_string(usecase.numIps()) +
              " IP entries but SoC '" + soc.name() + "' has " +
              std::to_string(soc.numIps()) + " IPs");
}

} // namespace

std::string
toString(BottleneckKind kind)
{
    switch (kind) {
      case BottleneckKind::IpCompute:
        return "IP compute";
      case BottleneckKind::IpBandwidth:
        return "IP bandwidth";
      case BottleneckKind::Memory:
        return "memory interface";
    }
    return "unknown";
}

std::string
GablesResult::bottleneckLabel(const SocSpec &soc) const
{
    if (bottleneckIp < 0)
        return "memory interface (Bpeak)";
    const IpSpec &ip = soc.ip(static_cast<size_t>(bottleneckIp));
    std::string who = ip.name.empty()
                          ? "IP[" + std::to_string(bottleneckIp) + "]"
                          : ip.name;
    return who + (bottleneck == BottleneckKind::IpCompute
                      ? " compute (Ai*Ppeak)"
                      : " link bandwidth (Bi)");
}

GablesResult
GablesModel::evaluate(const SocSpec &soc, const Usecase &usecase)
{
    checkPair(soc, usecase);

    GablesResult result;
    const size_t n = soc.numIps();
    result.ips.resize(n);

    double max_time = 0.0;
    double total_bytes = 0.0;

    for (size_t i = 0; i < n; ++i) {
        const IpWork &w = usecase.at(i);
        IpTiming &t = result.ips[i];
        if (w.fraction > 0.0) {
            t.computeTime = w.fraction / soc.ipPeakPerf(i);
            t.dataBytes =
                std::isinf(w.intensity) ? 0.0 : w.fraction / w.intensity;
            t.transferTime = t.dataBytes / soc.ip(i).bandwidth;
            t.time = std::max(t.transferTime, t.computeTime);
            t.perfBound = 1.0 / t.time;
        } else {
            // No work at this IP: it contributes no time and no
            // traffic, and its scaled roofline is unbounded.
            t.perfBound = kInf;
        }
        total_bytes += t.dataBytes;
        max_time = std::max(max_time, t.time);
    }

    result.totalDataBytes = total_bytes;
    result.memoryTime = total_bytes / soc.bpeak();
    result.averageIntensity = usecase.averageIntensity();
    result.memoryPerfBound = result.memoryTime > 0.0
                                 ? 1.0 / result.memoryTime
                                 : kInf;

    max_time = std::max(max_time, result.memoryTime);
    GABLES_ASSERT(max_time > 0.0,
                  "usecase produced zero total time; Ppeak infinite?");
    result.attainable = 1.0 / max_time;

    // Bottleneck attribution: memory wins ties, then lowest IP index.
    if (result.memoryTime >= max_time) {
        result.bottleneckIp = -1;
        result.bottleneck = BottleneckKind::Memory;
    } else {
        for (size_t i = 0; i < n; ++i) {
            if (result.ips[i].time >= max_time) {
                result.bottleneckIp = static_cast<int>(i);
                result.bottleneck =
                    result.ips[i].computeTime >= result.ips[i].transferTime
                        ? BottleneckKind::IpCompute
                        : BottleneckKind::IpBandwidth;
                break;
            }
        }
    }
    return result;
}

double
GablesModel::attainablePerfForm(const SocSpec &soc, const Usecase &usecase)
{
    checkPair(soc, usecase);

    double bound = kInf;
    for (size_t i = 0; i < soc.numIps(); ++i) {
        const IpWork &w = usecase.at(i);
        if (w.fraction == 0.0)
            continue; // omit the term to avoid divide-by-zero
        double roof = std::isinf(w.intensity)
                          ? soc.ipPeakPerf(i)
                          : std::min(soc.ip(i).bandwidth * w.intensity,
                                     soc.ipPeakPerf(i));
        bound = std::min(bound, roof / w.fraction);
    }

    double iavg = usecase.averageIntensity();
    if (!std::isinf(iavg))
        bound = std::min(bound, soc.bpeak() * iavg);

    GABLES_ASSERT(std::isfinite(bound),
                  "performance-form bound is not finite");
    return bound;
}

double
GablesModel::scaledIpRoofline(const SocSpec &soc, const Usecase &usecase,
                              size_t i, double intensity)
{
    checkPair(soc, usecase);
    double f = usecase.fraction(i);
    if (f == 0.0)
        return kInf;
    return std::min(soc.ip(i).bandwidth * intensity, soc.ipPeakPerf(i)) /
           f;
}

double
GablesModel::memoryRoofline(const SocSpec &soc, double intensity)
{
    return soc.bpeak() * intensity;
}

} // namespace gables
