/**
 * @file
 * The base Gables model (paper Section III): bottleneck analysis of
 * an N-IP SoC whose IPs operate concurrently and share off-chip
 * memory bandwidth.
 *
 * Work is normalized so the whole usecase is 1 operation; all times
 * below are therefore seconds-per-op and the attainable performance
 * Pattainable = 1 / max(times) is in ops/s (paper Eqs. 9-11). The
 * dual performance-form equations (Eqs. 12-14) are also provided and
 * are verified against the time form by property tests.
 */

#ifndef GABLES_CORE_GABLES_H
#define GABLES_CORE_GABLES_H

#include <string>
#include <vector>

#include "core/soc_spec.h"
#include "core/usecase.h"

namespace gables {

/** Which resource bounds the usecase. */
enum class BottleneckKind {
    /** An IP's computation rate (Ci dominates at the critical IP). */
    IpCompute,
    /** An IP's link bandwidth (Di/Bi dominates at the critical IP). */
    IpBandwidth,
    /** The shared off-chip memory interface (Tmemory dominates). */
    Memory,
};

/** @return A short display string for a bottleneck kind. */
std::string toString(BottleneckKind kind);

/** Per-IP timing detail of a Gables evaluation. */
struct IpTiming {
    /** Compute time Ci = fi / (Ai * Ppeak), seconds per unit op. */
    double computeTime = 0.0;
    /** Data moved Di = fi / Ii, bytes per unit op. */
    double dataBytes = 0.0;
    /** Link transfer time Di / Bi, seconds per unit op. */
    double transferTime = 0.0;
    /** TIP[i] = max(Di/Bi, Ci) (paper Eq. 9). */
    double time = 0.0;
    /**
     * The IP's scaled roofline bound 1/TIP[i] =
     * min(Bi*Ii, Ai*Ppeak)/fi (paper Eq. 12); +inf when fi == 0.
     */
    double perfBound = 0.0;
};

/** Complete result of evaluating a usecase on a SoC. */
struct GablesResult {
    /** Upper bound on SoC performance (ops/s), paper Eq. 11/14. */
    double attainable = 0.0;
    /** Time on the chip's memory interface (s per unit op), Eq. 10. */
    double memoryTime = 0.0;
    /** Memory roofline bound 1/Tmemory = Bpeak * Iavg (Eq. 13). */
    double memoryPerfBound = 0.0;
    /** Weighted harmonic-mean intensity Iavg (ops/byte). */
    double averageIntensity = 0.0;
    /** Total off-chip data demand sum(Di) (bytes per unit op). */
    double totalDataBytes = 0.0;
    /** Per-IP timing details, index-aligned with the SoC's IPs. */
    std::vector<IpTiming> ips;
    /**
     * Index of the bottleneck IP, or -1 when the memory interface is
     * the bottleneck. Ties break toward the memory interface, then
     * the lowest IP index (deterministic attribution).
     */
    int bottleneckIp = -1;
    /** The kind of resource that limits performance. */
    BottleneckKind bottleneck = BottleneckKind::Memory;

    /** @return A short, human-readable bottleneck description. */
    std::string bottleneckLabel(const SocSpec &soc) const;
};

/**
 * Evaluator for the base Gables model.
 *
 * Stateless; all methods are static. Extensions (memory-side cache,
 * interconnect, serialized work) live in their own headers and reuse
 * these primitives.
 */
class GablesModel
{
  public:
    /**
     * Evaluate a usecase on a SoC with the time-form equations
     * (Eqs. 9-11).
     *
     * @param soc     Hardware description; validated.
     * @param usecase Software description; must have exactly as many
     *                entries as the SoC has IPs.
     * @return Full result with per-IP details and bottleneck
     *         attribution.
     * @throws FatalError on mismatched sizes or invalid specs.
     */
    static GablesResult evaluate(const SocSpec &soc,
                                 const Usecase &usecase);

    /**
     * Attainable performance via the dual performance-form equations
     * (Eqs. 12-14): the minimum over scaled IP rooflines and the
     * memory roofline, with fi == 0 terms omitted.
     *
     * Equal to evaluate().attainable up to floating-point rounding;
     * kept separate because it is the form the multi-roofline plots
     * visualize.
     */
    static double attainablePerfForm(const SocSpec &soc,
                                     const Usecase &usecase);

    /**
     * The scaled roofline of IP @p i under @p usecase as a function
     * of a free intensity variable x (paper Section III-C):
     * min(Bi * x, Ai * Ppeak) / fi.
     *
     * @return The bound in ops/s; +inf if fi == 0.
     */
    static double scaledIpRoofline(const SocSpec &soc,
                                   const Usecase &usecase, size_t i,
                                   double intensity);

    /**
     * The memory roofline as a function of a free intensity variable
     * x: Bpeak * x (slanted only, no flat part).
     */
    static double memoryRoofline(const SocSpec &soc, double intensity);
};

} // namespace gables

#endif // GABLES_CORE_GABLES_H
