#include "core/interconnect.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace gables {

InterconnectModel::InterconnectModel(std::vector<BusSpec> buses,
                                     std::vector<std::vector<bool>> use)
    : buses_(std::move(buses)), use_(std::move(use))
{
    if (buses_.empty())
        fatal("interconnect model needs at least one bus");
    for (size_t j = 0; j < buses_.size(); ++j) {
        if (!(buses_[j].bandwidth > 0.0))
            fatal("bus '" + buses_[j].name +
                  "' bandwidth must be positive");
    }
    for (size_t i = 0; i < use_.size(); ++i) {
        if (use_[i].size() != buses_.size())
            fatal("use matrix row " + std::to_string(i) + " has " +
                  std::to_string(use_[i].size()) + " entries, expected " +
                  std::to_string(buses_.size()));
    }
}

InterconnectModel
InterconnectModel::hierarchy(const std::vector<std::string> &leaf_names,
                             const std::vector<double> &leaf_bw,
                             const std::vector<size_t> &ip_to_leaf,
                             double system_bw)
{
    if (leaf_names.size() != leaf_bw.size())
        fatal("hierarchy: leaf names/bandwidths size mismatch");
    std::vector<BusSpec> buses;
    buses.reserve(leaf_names.size() + 1);
    for (size_t j = 0; j < leaf_names.size(); ++j)
        buses.push_back({leaf_names[j], leaf_bw[j]});
    bool has_system = system_bw > 0.0;
    if (has_system)
        buses.push_back({"system fabric", system_bw});

    std::vector<std::vector<bool>> use;
    use.reserve(ip_to_leaf.size());
    for (size_t leaf : ip_to_leaf) {
        if (leaf >= leaf_names.size())
            fatal("hierarchy: IP mapped to nonexistent leaf fabric");
        std::vector<bool> row(buses.size(), false);
        row[leaf] = true;
        if (has_system)
            row.back() = true;
        use.push_back(std::move(row));
    }
    return InterconnectModel(std::move(buses), std::move(use));
}

bool
InterconnectModel::uses(size_t i, size_t j) const
{
    if (i >= use_.size() || j >= buses_.size())
        fatal("use matrix index out of range");
    return use_[i][j];
}

InterconnectResult
InterconnectModel::evaluate(const SocSpec &soc,
                            const Usecase &usecase) const
{
    if (use_.size() != soc.numIps())
        fatal("interconnect use matrix has " +
              std::to_string(use_.size()) + " rows but SoC has " +
              std::to_string(soc.numIps()) + " IPs");

    InterconnectResult result;
    result.base = GablesModel::evaluate(soc, usecase);
    result.busTimes.assign(buses_.size(), 0.0);

    for (size_t j = 0; j < buses_.size(); ++j) {
        double bytes = 0.0;
        for (size_t i = 0; i < soc.numIps(); ++i) {
            if (use_[i][j])
                bytes += result.base.ips[i].dataBytes;
        }
        result.busTimes[j] = bytes / buses_[j].bandwidth;
    }

    double max_time = 1.0 / result.base.attainable;
    double max_bus_time = 0.0;
    int worst_bus = -1;
    for (size_t j = 0; j < buses_.size(); ++j) {
        if (result.busTimes[j] > max_bus_time) {
            max_bus_time = result.busTimes[j];
            worst_bus = static_cast<int>(j);
        }
    }

    if (max_bus_time > max_time) {
        // A bus is the new bottleneck (paper Eq. 17).
        result.bottleneckBus = worst_bus;
        result.base.attainable = 1.0 / max_bus_time;
        result.base.bottleneckIp = -1;
        // Classify as an interconnect-bandwidth bound; the nearest
        // base-model category is IP bandwidth (a data-movement limit).
        result.base.bottleneck = BottleneckKind::IpBandwidth;
    }
    return result;
}

} // namespace gables
