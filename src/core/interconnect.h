/**
 * @file
 * Gables extension V-B: model the on-chip interconnect as Q buses,
 * each a slanted-only roofline with bandwidth Bbus[j]. A Use(i,j)
 * matrix records which buses lie on IP[i]'s (single) path to memory.
 * Each bus adds a potential bottleneck term
 * TBus[j] = sum_i(Di * Use(i,j)) / Bbus[j] (paper Eqs. 16-17).
 */

#ifndef GABLES_CORE_INTERCONNECT_H
#define GABLES_CORE_INTERCONNECT_H

#include <string>
#include <vector>

#include "core/gables.h"

namespace gables {

/** One interconnection network (colloquially, a bus). */
struct BusSpec {
    /** Display name, e.g. "multimedia fabric". */
    std::string name;
    /** Bandwidth Bbus[j] (bytes/s). */
    double bandwidth = 0.0;
};

/** Result of an interconnect-extended evaluation. */
struct InterconnectResult {
    /** The base result (re-attributed if a bus is the bottleneck). */
    GablesResult base;
    /** Per-bus times TBus[j] (s per unit op). */
    std::vector<double> busTimes;
    /**
     * Index of the bottleneck bus, or -1 if an IP or the memory
     * interface limits performance instead.
     */
    int bottleneckBus = -1;
};

/**
 * Bus topology for the interconnect extension.
 */
class InterconnectModel
{
  public:
    /**
     * @param buses Bus descriptors.
     * @param use   use[i][j] is true when IP[i]'s path to memory
     *              traverses Bus[j]; dimensions N x Q.
     */
    InterconnectModel(std::vector<BusSpec> buses,
                      std::vector<std::vector<bool>> use);

    /**
     * Build the common hierarchical topology of Figure 3: a set of
     * leaf fabrics, each serving a contiguous group of IPs, all
     * funneling into one system fabric that connects to the memory
     * controller.
     *
     * @param leaf_names  One name per leaf fabric.
     * @param leaf_bw     One bandwidth per leaf fabric (bytes/s).
     * @param ip_to_leaf  For each IP, the index of its leaf fabric.
     * @param system_bw   Bandwidth of the shared system fabric; pass
     *                    0 to omit the system fabric level.
     */
    static InterconnectModel hierarchy(
        const std::vector<std::string> &leaf_names,
        const std::vector<double> &leaf_bw,
        const std::vector<size_t> &ip_to_leaf, double system_bw);

    /** @return Number of buses Q. */
    size_t numBuses() const { return buses_.size(); }

    /** @return Bus descriptors. */
    const std::vector<BusSpec> &buses() const { return buses_; }

    /** @return True if IP @p i uses bus @p j. */
    bool uses(size_t i, size_t j) const;

    /**
     * Evaluate with bus bottlenecks added (Eq. 17). With a single bus
     * used by every IP whose bandwidth is >= the total demand rate,
     * the result reduces to the base model.
     */
    InterconnectResult evaluate(const SocSpec &soc,
                                const Usecase &usecase) const;

  private:
    std::vector<BusSpec> buses_;
    std::vector<std::vector<bool>> use_;
};

} // namespace gables

#endif // GABLES_CORE_INTERCONNECT_H
