#include "core/logca.h"

#include <cmath>
#include <limits>

#include "util/logging.h"

namespace gables {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

} // namespace

LogCAModel::LogCAModel(const Params &params) : params_(params)
{
    if (!(params.latency >= 0.0))
        fatal("LogCA latency must be >= 0");
    if (!(params.overhead >= 0.0))
        fatal("LogCA overhead must be >= 0");
    if (!(params.computePerItem > 0.0))
        fatal("LogCA compute-per-item must be > 0");
    if (!(params.acceleration > 0.0))
        fatal("LogCA acceleration must be > 0");
    if (!(params.beta > 0.0))
        fatal("LogCA beta must be > 0");
    if (params.eta != 0.0 && params.eta != 1.0)
        fatal("LogCA eta must be 0 or 1");
}

double
LogCAModel::hostTime(double g) const
{
    GABLES_ASSERT(g > 0.0, "granularity must be > 0");
    return params_.computePerItem * std::pow(g, params_.beta);
}

double
LogCAModel::accelTime(double g) const
{
    GABLES_ASSERT(g > 0.0, "granularity must be > 0");
    double latency_term =
        params_.eta == 0.0 ? params_.latency : params_.latency * g;
    return params_.overhead + latency_term +
           hostTime(g) / params_.acceleration;
}

double
LogCAModel::speedup(double g) const
{
    return hostTime(g) / accelTime(g);
}

double
LogCAModel::asymptoticSpeedup() const
{
    if (params_.eta == 0.0 || params_.latency == 0.0)
        return params_.acceleration;
    if (params_.beta > 1.0)
        return params_.acceleration; // compute outgrows transfer
    if (params_.beta < 1.0)
        return 0.0; // transfer outgrows compute: offload dies
    // beta == 1: T/Ta -> C / (L + C/A).
    return params_.computePerItem /
           (params_.latency + params_.computePerItem /
                                  params_.acceleration);
}

double
LogCAModel::granularityWhereSpeedupReaches(double target) const
{
    if (speedup(1e-9) >= target)
        return 0.0;
    if (asymptoticSpeedup() <= target &&
        speedup(1e18) < target)
        return kInf;
    // speedup(g) is monotone nondecreasing for our parameterization
    // (overheads amortize with g); bisect in log space.
    double lo = 1e-9;
    double hi = 1e18;
    for (int iter = 0; iter < 200; ++iter) {
        double mid = std::sqrt(lo * hi);
        if (speedup(mid) >= target)
            hi = mid;
        else
            lo = mid;
    }
    return hi;
}

double
LogCAModel::breakEvenGranularity() const
{
    return granularityWhereSpeedupReaches(1.0);
}

double
LogCAModel::halfSpeedupGranularity() const
{
    return granularityWhereSpeedupReaches(params_.acceleration / 2.0);
}

} // namespace gables
