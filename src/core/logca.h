/**
 * @file
 * LogCA baseline (Altaf & Wood, ISCA 2017), the accelerator model
 * the paper cites as a candidate sub-model for IP interaction
 * overheads (Section VI). LogCA describes an offload of granularity
 * g (work items per invocation) with five parameters:
 *
 *   L — per-invocation latency to reach the accelerator,
 *   o — host-side overhead per invocation (setup/dispatch),
 *   g — granularity (work per invocation),
 *   C — host compute time per work item (so T_host = C * g^beta),
 *   A — the accelerator's peak speedup over the host.
 *
 *   T_host(g)  = C * g^beta
 *   T_accel(g) = o + L * g^eta + C * g^beta / A
 *   speedup(g) = T_host / T_accel
 *
 * with beta the algorithmic complexity exponent (1 for linear work)
 * and eta in {0, 1}: eta = 0 models a latency that does not scale
 * with granularity (fixed-size descriptor), eta = 1 models
 * granularity-proportional transfer (the common DMA case).
 *
 * LogCA answers "how big must an offload be to pay off?" — the same
 * question Gables answers via operational intensity; the ablation
 * bench sets the two side by side.
 */

#ifndef GABLES_CORE_LOGCA_H
#define GABLES_CORE_LOGCA_H

namespace gables {

/**
 * A LogCA accelerator description.
 */
class LogCAModel
{
  public:
    /** Parameter bundle. */
    struct Params {
        /** Per-invocation latency (s), >= 0. */
        double latency = 0.0;
        /** Host overhead per invocation (s), >= 0. */
        double overhead = 0.0;
        /** Host compute time per work item (s), > 0. */
        double computePerItem = 0.0;
        /** Peak acceleration A (unitless), > 0. */
        double acceleration = 1.0;
        /** Complexity exponent beta, > 0 (1 = linear). */
        double beta = 1.0;
        /** Latency exponent eta: 0 (fixed) or 1 (proportional). */
        double eta = 1.0;
    };

    /** @param params Model parameters; validated. */
    explicit LogCAModel(const Params &params);

    /** @return Host execution time for granularity @p g (s). */
    double hostTime(double g) const;

    /** @return Accelerated execution time for granularity @p g. */
    double accelTime(double g) const;

    /** @return speedup(g) = hostTime / accelTime. */
    double speedup(double g) const;

    /**
     * The break-even granularity g1: the smallest g with
     * speedup(g) >= 1 (found by bisection on the monotone speedup
     * curve); +infinity if offload never pays, 0 if it always does.
     */
    double breakEvenGranularity() const;

    /**
     * g(A/2): the granularity achieving half the peak speedup — the
     * LogCA paper's headline "how far from peak are you" metric.
     * +infinity if A/2 is unreachable.
     */
    double halfSpeedupGranularity() const;

    /**
     * The asymptotic speedup as g -> infinity: A when eta = 0 (the
     * compute term dominates), less when eta = 1 (transfer scales
     * with work and caps the win).
     */
    double asymptoticSpeedup() const;

    /** @return The parameters. */
    const Params &params() const { return params_; }

  private:
    double granularityWhereSpeedupReaches(double target) const;

    Params params_;
};

} // namespace gables

#endif // GABLES_CORE_LOGCA_H
