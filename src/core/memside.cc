#include "core/memside.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"

namespace gables {

MemSideMemory::MemSideMemory(std::vector<double> miss_ratios)
    : missRatios_(std::move(miss_ratios))
{
    for (size_t i = 0; i < missRatios_.size(); ++i) {
        double m = missRatios_[i];
        if (!(m >= 0.0 && m <= 1.0))
            fatal("memory-side miss ratio m[" + std::to_string(i) +
                  "] must be in [0, 1]");
    }
}

MemSideMemory
MemSideMemory::uniform(size_t n, double miss_ratio)
{
    return MemSideMemory(std::vector<double>(n, miss_ratio));
}

double
MemSideMemory::missRatio(size_t i) const
{
    if (i >= missRatios_.size())
        fatal("miss ratio index out of range");
    return missRatios_[i];
}

GablesResult
MemSideMemory::evaluate(const SocSpec &soc, const Usecase &usecase) const
{
    if (missRatios_.size() != soc.numIps())
        fatal("memory-side extension has " +
              std::to_string(missRatios_.size()) +
              " miss ratios but SoC has " + std::to_string(soc.numIps()) +
              " IPs");

    // Start from the base evaluation, then re-derive the memory term
    // with filtered off-chip demand (paper Eq. 15) and re-attribute
    // the bottleneck.
    GablesResult result = GablesModel::evaluate(soc, usecase);

    double filtered_bytes = 0.0;
    for (size_t i = 0; i < soc.numIps(); ++i)
        filtered_bytes += missRatios_[i] * result.ips[i].dataBytes;

    result.totalDataBytes = filtered_bytes;
    result.memoryTime = filtered_bytes / soc.bpeak();
    result.memoryPerfBound =
        result.memoryTime > 0.0 ? 1.0 / result.memoryTime
                                : std::numeric_limits<double>::infinity();
    // Iavg as seen by the memory interface after filtering.
    result.averageIntensity = filtered_bytes > 0.0
                                  ? 1.0 / filtered_bytes
                                  : std::numeric_limits<double>::infinity();

    double max_time = result.memoryTime;
    for (const IpTiming &t : result.ips)
        max_time = std::max(max_time, t.time);
    GABLES_ASSERT(max_time > 0.0, "zero total time in memside evaluate");
    result.attainable = 1.0 / max_time;

    if (result.memoryTime >= max_time) {
        result.bottleneckIp = -1;
        result.bottleneck = BottleneckKind::Memory;
    } else {
        for (size_t i = 0; i < result.ips.size(); ++i) {
            if (result.ips[i].time >= max_time) {
                result.bottleneckIp = static_cast<int>(i);
                result.bottleneck =
                    result.ips[i].computeTime >=
                            result.ips[i].transferTime
                        ? BottleneckKind::IpCompute
                        : BottleneckKind::IpBandwidth;
                break;
            }
        }
    }
    return result;
}

double
fractionalFitMissRatio(double working_set_bytes, double capacity_bytes)
{
    if (!(working_set_bytes >= 0.0) || !(capacity_bytes >= 0.0))
        fatal("fractionalFitMissRatio: sizes must be non-negative");
    if (working_set_bytes == 0.0)
        return 0.0;
    double miss = 1.0 - capacity_bytes / working_set_bytes;
    return std::clamp(miss, 0.0, 1.0);
}

} // namespace gables
