/**
 * @file
 * Gables extension V-A: a memory-side SRAM (scratchpad or cache, on
 * chip or in package) that filters off-chip traffic. IP[i]'s
 * references miss to DRAM with probability mi and hit the new memory
 * with probability (1 - mi), shrinking off-chip demand to
 * D'i = mi * Di (paper Eq. 15). IP link traffic Di over Bi is
 * unchanged: the SRAM sits on the memory side of the interconnect.
 */

#ifndef GABLES_CORE_MEMSIDE_H
#define GABLES_CORE_MEMSIDE_H

#include <vector>

#include "core/gables.h"

namespace gables {

/**
 * Configuration of the memory-side memory extension: one miss ratio
 * per IP.
 */
class MemSideMemory
{
  public:
    /**
     * @param miss_ratios mi per IP, each in [0, 1]; 1 means the IP
     *                    gets no reuse from the new memory (base
     *                    model behaviour), 0 means all of its traffic
     *                    is absorbed on chip.
     */
    explicit MemSideMemory(std::vector<double> miss_ratios);

    /**
     * Uniform miss ratio for every one of @p n IPs.
     */
    static MemSideMemory uniform(size_t n, double miss_ratio);

    /** @return The per-IP miss ratios. */
    const std::vector<double> &missRatios() const { return missRatios_; }

    /** @return mi for IP @p i (bounds-checked). */
    double missRatio(size_t i) const;

    /**
     * Evaluate the usecase with off-chip demand filtered by this
     * memory: identical to the base model except
     * Tmemory = sum(mi * Di) / Bpeak.
     *
     * With all mi == 1 the result equals GablesModel::evaluate().
     */
    GablesResult evaluate(const SocSpec &soc,
                          const Usecase &usecase) const;

  private:
    std::vector<double> missRatios_;
};

/**
 * Estimate a miss ratio from footprint and capacity with a simple
 * fractional-fit model: the fraction of the working set that does not
 * fit must come from DRAM on each reuse pass.
 *
 * @param working_set_bytes The IP's working set.
 * @param capacity_bytes    Memory-side SRAM capacity apportioned to
 *                          the IP.
 * @return min(1, max(0, 1 - capacity/working_set)); 0 when the set
 *         fits entirely.
 */
double fractionalFitMissRatio(double working_set_bytes,
                              double capacity_bytes);

} // namespace gables

#endif // GABLES_CORE_MEMSIDE_H
