#include "core/multiamdahl.h"

#include <cmath>
#include <numeric>

#include "util/logging.h"

namespace gables {

MultiAmdahlModel::MultiAmdahlModel(std::vector<MultiAmdahlTask> tasks,
                                   double area_budget)
    : tasks_(std::move(tasks)), areaBudget_(area_budget)
{
    if (tasks_.empty())
        fatal("MultiAmdahl needs at least one task");
    if (!(area_budget > 0.0))
        fatal("MultiAmdahl area budget must be > 0");
    double sum = 0.0;
    for (const MultiAmdahlTask &t : tasks_) {
        if (!(t.timeShare >= 0.0))
            fatal("MultiAmdahl task '" + t.name +
                  "' has negative time share");
        if (!(t.efficiency > 0.0))
            fatal("MultiAmdahl task '" + t.name +
                  "' efficiency must be > 0");
        if (!(t.perfExponent > 0.0 && t.perfExponent <= 1.0))
            fatal("MultiAmdahl task '" + t.name +
                  "' exponent must be in (0, 1]");
        sum += t.timeShare;
    }
    if (std::fabs(sum - 1.0) > 1e-9)
        fatal("MultiAmdahl time shares must sum to 1");
}

double
MultiAmdahlModel::timeFor(const std::vector<double> &areas) const
{
    GABLES_ASSERT(areas.size() == tasks_.size(),
                  "allocation size mismatch");
    double time = 0.0;
    for (size_t i = 0; i < tasks_.size(); ++i) {
        const MultiAmdahlTask &t = tasks_[i];
        if (t.timeShare == 0.0)
            continue;
        GABLES_ASSERT(areas[i] > 0.0,
                      "task with work must receive positive area");
        double perf = t.efficiency * std::pow(areas[i], t.perfExponent);
        time += t.timeShare / perf;
    }
    return time;
}

MultiAmdahlResult
MultiAmdahlModel::optimize() const
{
    const size_t n = tasks_.size();
    MultiAmdahlResult result;
    result.areas.assign(n, 0.0);

    // Tasks with zero work get zero area. With the power-law
    // performance curve perf_i(a) = e_i * a^p_i, the KKT condition
    // equates marginal returns:
    //   t_i * p_i / (e_i * a_i^(p_i + 1)) = lambda for all active i.
    // Solve for lambda by bisection on the total-area constraint.
    std::vector<size_t> active;
    for (size_t i = 0; i < n; ++i) {
        if (tasks_[i].timeShare > 0.0)
            active.push_back(i);
    }
    if (active.empty())
        fatal("MultiAmdahl: all tasks have zero work");

    auto area_for_lambda = [&](double lambda, size_t i) {
        const MultiAmdahlTask &t = tasks_[i];
        double num = t.timeShare * t.perfExponent / (t.efficiency * lambda);
        return std::pow(num, 1.0 / (t.perfExponent + 1.0));
    };
    auto total_area = [&](double lambda) {
        double sum = 0.0;
        for (size_t i : active)
            sum += area_for_lambda(lambda, i);
        return sum;
    };

    // Bracket lambda: large lambda -> tiny areas, small -> huge.
    double lo = 1e-30;
    double hi = 1e30;
    // Tighten the bracket multiplicatively first for robustness.
    while (total_area(lo) < areaBudget_ && lo > 1e-300)
        lo *= 0.1;
    while (total_area(hi) > areaBudget_ && hi < 1e300)
        hi *= 10.0;

    for (int iter = 0; iter < 200; ++iter) {
        double mid = std::sqrt(lo * hi); // geometric midpoint
        if (total_area(mid) > areaBudget_)
            lo = mid;
        else
            hi = mid;
    }
    double lambda = std::sqrt(lo * hi);

    double used = 0.0;
    for (size_t i : active) {
        result.areas[i] = area_for_lambda(lambda, i);
        used += result.areas[i];
    }
    // Normalize out residual bisection error so areas sum exactly.
    double scale = areaBudget_ / used;
    for (size_t i : active)
        result.areas[i] *= scale;

    result.time = timeFor(result.areas);
    result.performance = 1.0 / result.time;
    return result;
}

MultiAmdahlModel
multiAmdahlFromGables(const SocSpec &soc, const Usecase &usecase,
                      double area_budget)
{
    soc.validate();
    usecase.validate();
    if (usecase.numIps() != soc.numIps())
        fatal("multiAmdahlFromGables: usecase/SoC IP count mismatch");

    std::vector<MultiAmdahlTask> tasks;
    tasks.reserve(soc.numIps());
    for (size_t i = 0; i < soc.numIps(); ++i) {
        MultiAmdahlTask t;
        t.name = soc.ip(i).name;
        t.timeShare = usecase.fraction(i);
        // An IP with acceleration Ai is modeled as Ai-times more
        // efficient use of resources at the reference design point.
        t.efficiency = soc.ip(i).acceleration;
        t.perfExponent = 0.5;
        tasks.push_back(std::move(t));
    }
    return MultiAmdahlModel(std::move(tasks), area_budget);
}

} // namespace gables
