/**
 * @file
 * MultiAmdahl baseline (Keslassy, Weiser, Zidenberg, CAL 2012) — the
 * model the paper identifies as closest to Gables (Section VI).
 * MultiAmdahl models an N-IP SoC where work is divided sequentially
 * among IPs, each IP's performance is a function of the chip
 * resources (area) allotted to it, and the design question is the
 * optimal resource allocation. It ignores bandwidth, which is the
 * key difference from Gables.
 */

#ifndef GABLES_CORE_MULTIAMDAHL_H
#define GABLES_CORE_MULTIAMDAHL_H

#include <functional>
#include <string>
#include <vector>

#include "core/soc_spec.h"
#include "core/usecase.h"

namespace gables {

/** One task of a MultiAmdahl workload. */
struct MultiAmdahlTask {
    /** Display name of the IP executing this task. */
    std::string name;
    /** Fraction ti of sequential work in this task (sums to 1). */
    double timeShare = 0.0;
    /**
     * Performance of the task's IP per unit Ppeak when given
     * resource a: perf(a) = efficiency * sqrt(a) by default
     * (Pollack's rule), expressed through perfExponent and
     * efficiency as perf(a) = efficiency * a^perfExponent.
     */
    double efficiency = 1.0;
    /** Exponent of the resource-performance curve, in (0, 1]. */
    double perfExponent = 0.5;
};

/** Result of a MultiAmdahl optimization. */
struct MultiAmdahlResult {
    /** Optimal area allocated to each task's IP (sums to budget). */
    std::vector<double> areas;
    /** Execution time per unit of work at the optimum. */
    double time = 0.0;
    /** Performance 1/time (ops/s given Ppeak scaling of 1). */
    double performance = 0.0;
};

/**
 * The MultiAmdahl optimizer: minimize sum_i(ti / perf_i(a_i))
 * subject to sum_i(a_i) = area budget, a_i >= 0.
 *
 * With perf_i(a) = e_i * a^p, the Lagrange condition gives
 * a_i proportional to (ti / e_i)^(1/(1+p)); we solve generally by
 * projected multiplicative updates so arbitrary exponents per task
 * work too.
 */
class MultiAmdahlModel
{
  public:
    /**
     * @param tasks       Sequential tasks with resource curves.
     * @param area_budget Total chip resources to divide, > 0.
     */
    MultiAmdahlModel(std::vector<MultiAmdahlTask> tasks,
                     double area_budget);

    /** @return The tasks. */
    const std::vector<MultiAmdahlTask> &tasks() const { return tasks_; }

    /** @return The optimal allocation and resulting performance. */
    MultiAmdahlResult optimize() const;

    /**
     * Evaluate execution time for a given (not necessarily optimal)
     * allocation; exposed so tests can verify optimality by probing
     * perturbations.
     */
    double timeFor(const std::vector<double> &areas) const;

  private:
    std::vector<MultiAmdahlTask> tasks_;
    double areaBudget_;
};

/**
 * Convert a Gables SoC + usecase into the nearest MultiAmdahl
 * problem: task shares from the usecase's serialized times at
 * unit area, efficiencies from IP accelerations. Used by the
 * serialized-work comparison bench.
 *
 * @param soc     SoC description.
 * @param usecase Usecase whose fractions become time shares.
 * @param area_budget Total area to divide.
 */
MultiAmdahlModel multiAmdahlFromGables(const SocSpec &soc,
                                       const Usecase &usecase,
                                       double area_budget);

} // namespace gables

#endif // GABLES_CORE_MULTIAMDAHL_H
