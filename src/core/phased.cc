#include "core/phased.h"

#include <cmath>

#include "util/logging.h"

namespace gables {

namespace {

constexpr double kShareSumTol = 1e-9;

} // namespace

PhasedUsecase::PhasedUsecase(std::string name, std::vector<Phase> phases)
    : name_(std::move(name)), phases_(std::move(phases))
{
    if (phases_.empty())
        fatal("phased usecase '" + name_ + "': needs at least one phase");
    double sum = 0.0;
    for (const Phase &p : phases_) {
        if (!(p.workShare >= 0.0))
            fatal("phased usecase '" + name_ + "': phase '" + p.name +
                  "' has negative work share");
        p.usecase.validate();
        sum += p.workShare;
    }
    if (std::fabs(sum - 1.0) > kShareSumTol)
        fatal("phased usecase '" + name_ + "': phase work shares sum to " +
              std::to_string(sum) + ", expected 1");
}

PhasedResult
PhasedUsecase::evaluate(const SocSpec &soc) const
{
    PhasedResult result;
    result.phasePerf.reserve(phases_.size());

    double total_time = 0.0;
    std::vector<double> times;
    times.reserve(phases_.size());
    for (const Phase &p : phases_) {
        double perf;
        if (p.mode == PhaseMode::Concurrent)
            perf = GablesModel::evaluate(soc, p.usecase).attainable;
        else
            perf = SerializedModel::evaluate(soc, p.usecase).attainable;
        result.phasePerf.push_back(perf);
        double t = p.workShare > 0.0 ? p.workShare / perf : 0.0;
        times.push_back(t);
        total_time += t;
    }
    GABLES_ASSERT(total_time > 0.0, "phased usecase has zero total time");
    result.attainable = 1.0 / total_time;

    result.timeShare.reserve(times.size());
    double worst = -1.0;
    for (size_t i = 0; i < times.size(); ++i) {
        double share = times[i] / total_time;
        result.timeShare.push_back(share);
        if (times[i] > worst) {
            worst = times[i];
            result.dominantPhase = static_cast<int>(i);
        }
    }
    return result;
}

} // namespace gables
