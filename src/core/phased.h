/**
 * @file
 * A composition layer the paper sketches at the end of Section V-C
 * ("more complex combinations of parallel and serialized work are
 * possible"): a usecase made of weighted phases, each evaluated
 * either with the concurrent base model or with the serialized
 * extension, with total time the sum of phase times.
 *
 * This models real mobile pipelines such as camera HDR+, where a
 * burst-capture phase exercises ISP+IPU concurrently but a final
 * merge/encode phase serializes on one IP.
 */

#ifndef GABLES_CORE_PHASED_H
#define GABLES_CORE_PHASED_H

#include <string>
#include <vector>

#include "core/gables.h"
#include "core/serialized.h"

namespace gables {

/** How the IPs in a phase execute relative to each other. */
enum class PhaseMode {
    /** All IPs active at once, sharing Bpeak (base Gables). */
    Concurrent,
    /** One IP at a time (extension V-C). */
    Exclusive,
};

/** One phase of a phased usecase. */
struct Phase {
    /** Display name (e.g. "capture", "merge"). */
    std::string name;
    /** Fraction of the whole usecase's operations done in this
     * phase; phase weights must sum to 1. */
    double workShare = 0.0;
    /** Execution mode of this phase. */
    PhaseMode mode = PhaseMode::Concurrent;
    /**
     * Work split and intensities *within* the phase (fractions sum
     * to 1 across IPs, as in a standalone usecase).
     */
    Usecase usecase;
};

/** Result of a phased evaluation. */
struct PhasedResult {
    /** Overall upper bound (ops/s). */
    double attainable = 0.0;
    /** Per-phase attainable performance (ops/s of phase work). */
    std::vector<double> phasePerf;
    /** Per-phase share of total time. */
    std::vector<double> timeShare;
    /** Index of the phase consuming the most time. */
    int dominantPhase = 0;
};

/**
 * A usecase broken into serial phases, each internally concurrent or
 * exclusive.
 */
class PhasedUsecase
{
  public:
    /**
     * @param name   Display name.
     * @param phases Phase list; workShares must be non-negative and
     *               sum to 1, and every phase's usecase must be valid.
     */
    PhasedUsecase(std::string name, std::vector<Phase> phases);

    /** @return Display name. */
    const std::string &name() const { return name_; }

    /** @return The phases. */
    const std::vector<Phase> &phases() const { return phases_; }

    /**
     * Evaluate: total time is sum over phases of
     * workShare / Pattainable(phase); overall bound is its inverse.
     */
    PhasedResult evaluate(const SocSpec &soc) const;

  private:
    std::string name_;
    std::vector<Phase> phases_;
};

} // namespace gables

#endif // GABLES_CORE_PHASED_H
