#include "core/roofline.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"

namespace gables {

Roofline::Roofline(double peak_perf, double peak_bw, std::string name)
    : peakPerf_(peak_perf), peakBw_(peak_bw), name_(std::move(name))
{
    if (!(peak_perf > 0.0))
        fatal("roofline '" + name_ + "': peak performance must be > 0");
    if (!(peak_bw > 0.0))
        fatal("roofline '" + name_ + "': peak bandwidth must be > 0");
}

void
Roofline::addComputeCeiling(const std::string &label, double ops_per_sec)
{
    if (!(ops_per_sec > 0.0) || ops_per_sec > peakPerf_)
        fatal("compute ceiling '" + label + "' must be in (0, peak]");
    computeCeilings_.push_back({label, ops_per_sec});
    std::sort(computeCeilings_.begin(), computeCeilings_.end(),
              [](const Ceiling &a, const Ceiling &b) {
                  return a.value > b.value;
              });
}

void
Roofline::addBandwidthCeiling(const std::string &label,
                              double bytes_per_sec)
{
    if (!(bytes_per_sec > 0.0) || bytes_per_sec > peakBw_)
        fatal("bandwidth ceiling '" + label + "' must be in (0, peak]");
    bandwidthCeilings_.push_back({label, bytes_per_sec});
    std::sort(bandwidthCeilings_.begin(), bandwidthCeilings_.end(),
              [](const Ceiling &a, const Ceiling &b) {
                  return a.value > b.value;
              });
}

double
Roofline::attainable(double intensity) const
{
    if (intensity < 0.0)
        fatal("operational intensity must be >= 0");
    if (std::isinf(intensity))
        return peakPerf_;
    return std::min(peakPerf_, peakBw_ * intensity);
}

double
Roofline::attainableWithCeilings(double intensity) const
{
    if (intensity < 0.0)
        fatal("operational intensity must be >= 0");
    double perf = computeCeilings_.empty() ? peakPerf_
                                           : computeCeilings_.back().value;
    double bw = bandwidthCeilings_.empty()
                    ? peakBw_
                    : bandwidthCeilings_.back().value;
    if (std::isinf(intensity))
        return perf;
    return std::min(perf, bw * intensity);
}

} // namespace gables
