/**
 * @file
 * The classic single-processor Roofline model (Williams, Waterman,
 * Patterson, CACM 2009) that Gables builds on: attainable performance
 * is bounded by peak compute (the flat roof) and by peak memory
 * bandwidth times operational intensity (the slanted roof), with
 * optional lesser ceilings for restricted execution modes (e.g.
 * no-SIMD) or restricted memory streams.
 */

#ifndef GABLES_CORE_ROOFLINE_H
#define GABLES_CORE_ROOFLINE_H

#include <string>
#include <vector>

namespace gables {

/**
 * A named lesser bound below the roof: either a compute ceiling
 * (ops/s) such as "without SIMD", or a bandwidth ceiling (bytes/s)
 * such as "without prefetch".
 */
struct Ceiling {
    /** Human-readable label for plots. */
    std::string label;
    /** Ceiling value: ops/s for compute, bytes/s for bandwidth. */
    double value;
};

/**
 * Single-IP roofline: peak performance, peak bandwidth, and optional
 * ceilings.
 *
 * All rates are in base units (ops/s, bytes/s); operational intensity
 * is in ops/byte.
 */
class Roofline
{
  public:
    /**
     * @param peak_perf Peak computation rate (ops/s), > 0.
     * @param peak_bw   Peak bandwidth to data (bytes/s), > 0.
     * @param name      Label used in plots and reports.
     * @throws FatalError on non-positive inputs.
     */
    Roofline(double peak_perf, double peak_bw,
             std::string name = "roofline");

    /** @return Peak compute rate (ops/s). */
    double peakPerf() const { return peakPerf_; }

    /** @return Peak bandwidth (bytes/s). */
    double peakBw() const { return peakBw_; }

    /** @return Display name. */
    const std::string &name() const { return name_; }

    /**
     * Add a compute ceiling strictly below the roof.
     *
     * @param label Display label.
     * @param ops_per_sec Ceiling value in ops/s, in (0, peakPerf].
     */
    void addComputeCeiling(const std::string &label, double ops_per_sec);

    /**
     * Add a bandwidth ceiling strictly below the peak bandwidth.
     *
     * @param label Display label.
     * @param bytes_per_sec Ceiling value in bytes/s, in (0, peakBw].
     */
    void addBandwidthCeiling(const std::string &label,
                             double bytes_per_sec);

    /** @return Compute ceilings, sorted descending by value. */
    const std::vector<Ceiling> &computeCeilings() const
    {
        return computeCeilings_;
    }

    /** @return Bandwidth ceilings, sorted descending by value. */
    const std::vector<Ceiling> &bandwidthCeilings() const
    {
        return bandwidthCeilings_;
    }

    /**
     * Attainable performance at operational intensity @p intensity,
     * against the full roof (ceilings ignored):
     * min(peakPerf, peakBw * I).
     *
     * @param intensity Operational intensity in ops/byte, >= 0.
     *                  Infinity means no memory traffic and returns
     *                  peakPerf.
     */
    double attainable(double intensity) const;

    /**
     * Attainable performance under the lowest applicable ceilings:
     * min over (lowest compute ceiling or roof,
     *           (lowest bandwidth ceiling or peak bw) * I).
     */
    double attainableWithCeilings(double intensity) const;

    /**
     * The ridge point: the operational intensity at which the slanted
     * and flat roofs meet (peakPerf / peakBw). Software with
     * intensity above this is compute-bound; below, bandwidth-bound.
     */
    double ridgePoint() const { return peakPerf_ / peakBw_; }

    /** @return True if intensity @p i puts software in the
     * compute-bound region (i >= ridge point). */
    bool computeBound(double intensity) const
    {
        return intensity >= ridgePoint();
    }

  private:
    double peakPerf_;
    double peakBw_;
    std::string name_;
    std::vector<Ceiling> computeCeilings_;
    std::vector<Ceiling> bandwidthCeilings_;
};

} // namespace gables

#endif // GABLES_CORE_ROOFLINE_H
