#include "core/serialize.h"

#include "util/json_writer.h"

namespace gables {

namespace {

void
writeSocBody(JsonWriter &json, const SocSpec &soc)
{
    json.kv("name", soc.name());
    json.kv("ppeak_ops_per_sec", soc.ppeak());
    json.kv("bpeak_bytes_per_sec", soc.bpeak());
    json.key("ips");
    json.beginArray();
    for (const IpSpec &ip : soc.ips()) {
        json.beginObject();
        json.kv("name", ip.name);
        json.kv("acceleration", ip.acceleration);
        json.kv("bandwidth_bytes_per_sec", ip.bandwidth);
        json.endObject();
    }
    json.endArray();
}

void
writeUsecaseBody(JsonWriter &json, const Usecase &usecase)
{
    json.kv("name", usecase.name());
    json.key("work");
    json.beginArray();
    for (const IpWork &w : usecase.work()) {
        json.beginObject();
        json.kv("fraction", w.fraction);
        json.kv("intensity_ops_per_byte", w.intensity);
        json.endObject();
    }
    json.endArray();
    json.kv("average_intensity", usecase.averageIntensity());
}

void
writeResultBody(JsonWriter &json, const SocSpec &soc,
                const GablesResult &result)
{
    json.kv("attainable_ops_per_sec", result.attainable);
    json.kv("memory_time", result.memoryTime);
    json.kv("memory_perf_bound", result.memoryPerfBound);
    json.kv("total_data_bytes_per_op", result.totalDataBytes);
    json.kv("bottleneck", toString(result.bottleneck));
    json.kv("bottleneck_ip", result.bottleneckIp);
    json.kv("bottleneck_label", result.bottleneckLabel(soc));
    json.key("ips");
    json.beginArray();
    for (const IpTiming &t : result.ips) {
        json.beginObject();
        json.kv("compute_time", t.computeTime);
        json.kv("data_bytes", t.dataBytes);
        json.kv("transfer_time", t.transferTime);
        json.kv("time", t.time);
        json.kv("perf_bound", t.perfBound);
        json.endObject();
    }
    json.endArray();
}

} // namespace

void
writeJson(std::ostream &out, const SocSpec &soc)
{
    JsonWriter json(out);
    json.beginObject();
    writeSocBody(json, soc);
    json.endObject();
}

void
writeJson(std::ostream &out, const Usecase &usecase)
{
    JsonWriter json(out);
    json.beginObject();
    writeUsecaseBody(json, usecase);
    json.endObject();
}

void
writeJson(std::ostream &out, const SocSpec &soc, const Usecase &usecase,
          const GablesResult &result)
{
    JsonWriter json(out);
    json.beginObject();
    json.key("soc");
    json.beginObject();
    writeSocBody(json, soc);
    json.endObject();
    json.key("usecase");
    json.beginObject();
    writeUsecaseBody(json, usecase);
    json.endObject();
    json.key("result");
    json.beginObject();
    writeResultBody(json, soc, result);
    json.endObject();
    json.endObject();
}

} // namespace gables
