/**
 * @file
 * JSON serialization of model inputs and results — the machine-
 * readable interface the paper's interactive visualizer and Android
 * app expose; our CLI emits the same structures.
 */

#ifndef GABLES_CORE_SERIALIZE_H
#define GABLES_CORE_SERIALIZE_H

#include <ostream>

#include "core/gables.h"
#include "core/soc_spec.h"
#include "core/usecase.h"

namespace gables {

/** Write a SocSpec as a JSON object to @p out. */
void writeJson(std::ostream &out, const SocSpec &soc);

/** Write a Usecase as a JSON object to @p out. */
void writeJson(std::ostream &out, const Usecase &usecase);

/**
 * Write a full evaluation (inputs echoed plus the GablesResult) as a
 * JSON object to @p out.
 */
void writeJson(std::ostream &out, const SocSpec &soc,
               const Usecase &usecase, const GablesResult &result);

} // namespace gables

#endif // GABLES_CORE_SERIALIZE_H
