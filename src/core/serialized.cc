#include "core/serialized.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace gables {

SerializedResult
SerializedModel::evaluate(const SocSpec &soc, const Usecase &usecase)
{
    soc.validate();
    usecase.validate();
    if (usecase.numIps() != soc.numIps())
        fatal("serialized model: usecase/SoC IP count mismatch");

    SerializedResult result;
    result.ipTimes.assign(soc.numIps(), 0.0);

    double total = 0.0;
    for (size_t i = 0; i < soc.numIps(); ++i) {
        const IpWork &w = usecase.at(i);
        if (w.fraction == 0.0)
            continue;
        double ci = w.fraction / soc.ipPeakPerf(i);
        double di =
            std::isinf(w.intensity) ? 0.0 : w.fraction / w.intensity;
        double t = std::max({di / soc.bpeak(), di / soc.ip(i).bandwidth,
                             ci});
        result.ipTimes[i] = t;
        total += t;
    }
    GABLES_ASSERT(total > 0.0, "serialized usecase has zero total time");
    result.attainable = 1.0 / total;

    double worst = -1.0;
    for (size_t i = 0; i < result.ipTimes.size(); ++i) {
        if (result.ipTimes[i] > worst) {
            worst = result.ipTimes[i];
            result.dominantIp = static_cast<int>(i);
        }
    }
    result.dominantShare = worst / total;
    return result;
}

double
SerializedModel::concurrencySpeedup(const SocSpec &soc,
                                    const Usecase &usecase)
{
    double concurrent = GablesModel::evaluate(soc, usecase).attainable;
    double serialized = evaluate(soc, usecase).attainable;
    return concurrent / serialized;
}

} // namespace gables
