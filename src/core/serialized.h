/**
 * @file
 * Gables extension V-C: exclusive/serialized work, where only one IP
 * is active at a time (the computational assumption of Amdahl's Law
 * and MultiAmdahl). Each IP still overlaps its own data transfer with
 * its execution, and off-chip transfer joins the per-IP max:
 * T'IP[i] = max(Di/Bpeak, Di/Bi, Ci) (paper Eq. 18); the usecase time
 * is the SUM of the T'IP[i] and Tmemory is omitted (paper Eq. 19).
 */

#ifndef GABLES_CORE_SERIALIZED_H
#define GABLES_CORE_SERIALIZED_H

#include <vector>

#include "core/gables.h"

namespace gables {

/** Result of a serialized-work evaluation. */
struct SerializedResult {
    /** Upper bound on performance (ops/s), paper Eq. 19. */
    double attainable = 0.0;
    /** Per-IP serialized times T'IP[i] (s per unit op). */
    std::vector<double> ipTimes;
    /** Index of the IP contributing the largest time share. */
    int dominantIp = 0;
    /** Fraction of total time spent at the dominant IP. */
    double dominantShare = 0.0;
};

/**
 * Evaluator for the exclusive/serialized-work extension.
 */
class SerializedModel
{
  public:
    /**
     * Evaluate a usecase with work serialized among IPs.
     *
     * @param soc     Hardware description.
     * @param usecase Work fractions now represent the serial order's
     *                shares (non-negative, summing to 1), as in
     *                Amdahl's Law.
     */
    static SerializedResult evaluate(const SocSpec &soc,
                                     const Usecase &usecase);

    /**
     * Speedup of concurrent (base Gables) over serialized execution
     * for the same usecase — always >= 1 up to rounding, since
     * summing times can never beat taking their max.
     */
    static double concurrencySpeedup(const SocSpec &soc,
                                     const Usecase &usecase);
};

} // namespace gables

#endif // GABLES_CORE_SERIALIZED_H
