#include "core/soc_spec.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace gables {

SocSpec::SocSpec(std::string name, double ppeak, double bpeak,
                 std::vector<IpSpec> ips)
    : name_(std::move(name)), ppeak_(ppeak), bpeak_(bpeak),
      ips_(std::move(ips))
{
    validate();
}

void
SocSpec::validate() const
{
    if (!(ppeak_ > 0.0) || std::isinf(ppeak_))
        fatal("SoC '" + name_ + "': Ppeak must be positive and finite");
    if (!(bpeak_ > 0.0) || std::isinf(bpeak_))
        fatal("SoC '" + name_ + "': Bpeak must be positive and finite");
    if (ips_.empty())
        fatal("SoC '" + name_ + "': needs at least one IP (IP[0])");
    if (ips_[0].acceleration != 1.0)
        fatal("SoC '" + name_ +
              "': IP[0] acceleration A0 must be 1 (paper Section III-D)");
    for (size_t i = 0; i < ips_.size(); ++i) {
        const IpSpec &ip = ips_[i];
        if (!(ip.acceleration > 0.0) || std::isinf(ip.acceleration))
            fatal("SoC '" + name_ + "': IP[" + std::to_string(i) +
                  "] acceleration must be positive and finite");
        if (!(ip.bandwidth > 0.0) || std::isinf(ip.bandwidth))
            fatal("SoC '" + name_ + "': IP[" + std::to_string(i) +
                  "] bandwidth must be positive and finite");
    }
}

const IpSpec &
SocSpec::ip(size_t i) const
{
    if (i >= ips_.size())
        fatal("SoC '" + name_ + "': IP index " + std::to_string(i) +
              " out of range (N=" + std::to_string(ips_.size()) + ")");
    return ips_[i];
}

double
SocSpec::ipPeakPerf(size_t i) const
{
    return ip(i).acceleration * ppeak_;
}

Roofline
SocSpec::ipRoofline(size_t i) const
{
    const IpSpec &spec = ip(i);
    return Roofline(spec.acceleration * ppeak_,
                    std::min(spec.bandwidth, bpeak_),
                    spec.name.empty() ? ("IP[" + std::to_string(i) + "]")
                                      : spec.name);
}

size_t
SocSpec::ipIndex(const std::string &name) const
{
    for (size_t i = 0; i < ips_.size(); ++i) {
        if (ips_[i].name == name)
            return i;
    }
    fatal("SoC '" + name_ + "': no IP named '" + name + "'");
}

SocSpec
SocSpec::withBpeak(double bpeak) const
{
    return SocSpec(name_, ppeak_, bpeak, ips_);
}

SocSpec
SocSpec::withIpBandwidth(size_t i, double bandwidth) const
{
    std::vector<IpSpec> ips = ips_;
    if (i >= ips.size())
        fatal("withIpBandwidth: IP index out of range");
    ips[i].bandwidth = bandwidth;
    return SocSpec(name_, ppeak_, bpeak_, std::move(ips));
}

SocSpec
SocSpec::withIpAcceleration(size_t i, double acceleration) const
{
    std::vector<IpSpec> ips = ips_;
    if (i >= ips.size())
        fatal("withIpAcceleration: IP index out of range");
    ips[i].acceleration = acceleration;
    return SocSpec(name_, ppeak_, bpeak_, std::move(ips));
}

SocSpec
SocSpec::withIp(IpSpec ip_spec) const
{
    std::vector<IpSpec> ips = ips_;
    ips.push_back(std::move(ip_spec));
    return SocSpec(name_, ppeak_, bpeak_, std::move(ips));
}

} // namespace gables
