/**
 * @file
 * Hardware-side parameters of the Gables model (paper Table II, HW
 * inputs): the SoC's baseline peak performance Ppeak, shared off-chip
 * bandwidth Bpeak, and per-IP acceleration Ai and link bandwidth Bi.
 */

#ifndef GABLES_CORE_SOC_SPEC_H
#define GABLES_CORE_SOC_SPEC_H

#include <cstddef>
#include <string>
#include <vector>

#include "core/roofline.h"

namespace gables {

/**
 * One IP block of an N-IP SoC: its acceleration relative to the
 * baseline IP[0] and its bandwidth to the on-chip interconnect.
 */
struct IpSpec {
    /** Display name (e.g. "CPU", "GPU", "ISP"). */
    std::string name;
    /**
     * Peak acceleration Ai (unitless): the IP's peak performance is
     * Ai * Ppeak. The paper requires A0 == 1.
     */
    double acceleration = 1.0;
    /** Peak bandwidth Bi to/from the IP (bytes/s). */
    double bandwidth = 0.0;
};

/**
 * Hardware description of an N-IP SoC for the Gables model.
 *
 * Invariants (enforced by validate(), which every model entry point
 * calls): Ppeak > 0, Bpeak > 0, at least one IP, IP[0].acceleration
 * == 1, all accelerations > 0 and bandwidths > 0.
 */
class SocSpec
{
  public:
    /**
     * @param name  Display name of the SoC.
     * @param ppeak Peak performance of the baseline IP[0] (ops/s).
     * @param bpeak Peak off-chip memory bandwidth (bytes/s).
     * @param ips   IP blocks, IP[0] first.
     */
    SocSpec(std::string name, double ppeak, double bpeak,
            std::vector<IpSpec> ips);

    /** @return Display name. */
    const std::string &name() const { return name_; }

    /** @return Baseline peak performance Ppeak (ops/s). */
    double ppeak() const { return ppeak_; }

    /** @return Off-chip memory bandwidth Bpeak (bytes/s). */
    double bpeak() const { return bpeak_; }

    /** @return Number of IP blocks N. */
    size_t numIps() const { return ips_.size(); }

    /** @return The IP descriptors, IP[0] first. */
    const std::vector<IpSpec> &ips() const { return ips_; }

    /** @return IP descriptor @p i (bounds-checked). */
    const IpSpec &ip(size_t i) const;

    /** @return Peak performance of IP @p i: Ai * Ppeak (ops/s). */
    double ipPeakPerf(size_t i) const;

    /**
     * @return The isolated roofline of IP @p i: flat roof Ai * Ppeak,
     * slanted roof min(Bi, Bpeak) — an IP cannot stream faster than
     * either its own link or the chip's memory interface when running
     * alone.
     */
    Roofline ipRoofline(size_t i) const;

    /**
     * @return Index of the IP named @p name.
     * @throws FatalError if no IP has that name.
     */
    size_t ipIndex(const std::string &name) const;

    /** @return A copy with off-chip bandwidth replaced by @p bpeak. */
    SocSpec withBpeak(double bpeak) const;

    /** @return A copy with IP @p i's bandwidth replaced. */
    SocSpec withIpBandwidth(size_t i, double bandwidth) const;

    /** @return A copy with IP @p i's acceleration replaced. */
    SocSpec withIpAcceleration(size_t i, double acceleration) const;

    /** @return A copy with an extra IP appended. */
    SocSpec withIp(IpSpec ip) const;

    /**
     * Check all invariants.
     * @throws FatalError describing the first violated invariant.
     */
    void validate() const;

  private:
    std::string name_;
    double ppeak_;
    double bpeak_;
    std::vector<IpSpec> ips_;
};

} // namespace gables

#endif // GABLES_CORE_SOC_SPEC_H
