#include "core/usecase.h"

#include <cmath>
#include <limits>

#include "util/logging.h"

namespace gables {

namespace {

/// Tolerance for the sum-to-one check on work fractions.
constexpr double kFractionSumTol = 1e-9;

} // namespace

Usecase::Usecase(std::string name, std::vector<IpWork> work)
    : name_(std::move(name)), work_(std::move(work))
{
    validate();
}

Usecase
Usecase::twoIp(std::string name, double f, double i0, double i1)
{
    return Usecase(std::move(name),
                   {IpWork{1.0 - f, i0}, IpWork{f, i1}});
}

void
Usecase::validate() const
{
    if (work_.empty())
        fatal("usecase '" + name_ + "': needs at least one IP entry");
    double sum = 0.0;
    for (size_t i = 0; i < work_.size(); ++i) {
        const IpWork &w = work_[i];
        if (!(w.fraction >= 0.0) || std::isinf(w.fraction))
            fatal("usecase '" + name_ + "': fraction f[" +
                  std::to_string(i) + "] must be in [0, 1]");
        if (w.fraction > 0.0 && !(w.intensity > 0.0))
            fatal("usecase '" + name_ + "': intensity I[" +
                  std::to_string(i) +
                  "] must be > 0 where work is assigned");
        sum += w.fraction;
    }
    if (std::fabs(sum - 1.0) > kFractionSumTol)
        fatal("usecase '" + name_ + "': work fractions sum to " +
              std::to_string(sum) + ", expected 1");
}

const IpWork &
Usecase::at(size_t i) const
{
    if (i >= work_.size())
        fatal("usecase '" + name_ + "': IP index " + std::to_string(i) +
              " out of range");
    return work_[i];
}

double
Usecase::bytesPerOp() const
{
    double bytes = 0.0;
    for (const IpWork &w : work_) {
        if (w.fraction == 0.0 || std::isinf(w.intensity))
            continue;
        bytes += w.fraction / w.intensity;
    }
    return bytes;
}

double
Usecase::averageIntensity() const
{
    double bytes = bytesPerOp();
    if (bytes == 0.0)
        return std::numeric_limits<double>::infinity();
    return 1.0 / bytes;
}

Usecase
Usecase::withWork(size_t i, IpWork work) const
{
    std::vector<IpWork> w = work_;
    if (i >= w.size())
        fatal("withWork: IP index out of range");
    w[i] = work;
    return Usecase(name_, std::move(w));
}

Usecase
Usecase::renamed(std::string name) const
{
    return Usecase(std::move(name), work_);
}

} // namespace gables
