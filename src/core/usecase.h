/**
 * @file
 * Software-side parameters of the Gables model (paper Table II, SW
 * inputs): for each IP, the fraction of usecase work fi assigned to
 * it and the operational intensity Ii of that work.
 */

#ifndef GABLES_CORE_USECASE_H
#define GABLES_CORE_USECASE_H

#include <cstddef>
#include <string>
#include <vector>

namespace gables {

/**
 * Work assigned to one IP: a fraction of the usecase's total
 * operations and the operational intensity at which that fraction
 * executes.
 */
struct IpWork {
    /** Fraction fi of total work (unitless, >= 0; all fi sum to 1). */
    double fraction = 0.0;
    /**
     * Operational intensity Ii (ops/byte) of the work at this IP.
     * May be +infinity to model work with no off-IP data traffic.
     * Ignored (may be anything positive) when fraction == 0.
     */
    double intensity = 1.0;
};

/**
 * A Gables usecase: concurrent non-negative work fractions summing
 * to 1, with a per-IP operational intensity.
 */
class Usecase
{
  public:
    /**
     * @param name Display name (e.g. "HDR+", "Videocapture HFR").
     * @param work Per-IP work assignments, index-aligned with the
     *             SocSpec's IPs.
     */
    Usecase(std::string name, std::vector<IpWork> work);

    /**
     * Convenience constructor for the two-IP primer of paper Section
     * III-B: (1-f) work at IP[0] with intensity i0, f at IP[1] with
     * intensity i1.
     */
    static Usecase twoIp(std::string name, double f, double i0,
                         double i1);

    /** @return Display name. */
    const std::string &name() const { return name_; }

    /** @return Number of per-IP work entries. */
    size_t numIps() const { return work_.size(); }

    /** @return All work entries. */
    const std::vector<IpWork> &work() const { return work_; }

    /** @return Work entry @p i (bounds-checked). */
    const IpWork &at(size_t i) const;

    /** @return Fraction fi for IP @p i. */
    double fraction(size_t i) const { return at(i).fraction; }

    /** @return Intensity Ii for IP @p i. */
    double intensity(size_t i) const { return at(i).intensity; }

    /**
     * @return The usecase's average intensity Iavg: the harmonic mean
     * of the Ii weighted by fi (paper Eq. 7/13). IPs with fi == 0 are
     * skipped; an IP with infinite intensity contributes no traffic.
     */
    double averageIntensity() const;

    /** @return Total bytes per unit op: sum(fi / Ii). Zero if all
     * active intensities are infinite. */
    double bytesPerOp() const;

    /** @return A copy with entry @p i replaced. */
    Usecase withWork(size_t i, IpWork work) const;

    /** @return A copy renamed to @p name. */
    Usecase renamed(std::string name) const;

    /**
     * Check invariants: at least one entry, fractions non-negative
     * and summing to 1 within tolerance, intensity positive wherever
     * fraction is positive.
     * @throws FatalError on violation.
     */
    void validate() const;

  private:
    std::string name_;
    std::vector<IpWork> work_;
};

} // namespace gables

#endif // GABLES_CORE_USECASE_H
