#include "ert/ert.h"

#include <cmath>

#include "util/logging.h"

namespace gables {

std::vector<double>
ErtConfig::defaultIntensities()
{
    std::vector<double> out;
    for (int k = -6; k <= 10; ++k)
        out.push_back(std::pow(2.0, k));
    return out;
}

std::vector<ErtSample>
ErtSweep::run(sim::SimSoc &soc, const std::string &engine_name,
              const ErtConfig &config)
{
    if (config.intensities.empty())
        fatal("ERT sweep needs at least one intensity");

    std::vector<ErtSample> samples;
    samples.reserve(config.intensities.size());
    for (double intensity : config.intensities) {
        sim::KernelJob job;
        job.workingSetBytes = config.workingSetBytes;
        job.totalBytes = config.totalBytes;
        job.opsPerByte = intensity;
        job.coordinationTime = config.coordinationTime;

        sim::SocRunStats stats = soc.run({{engine_name, job}});
        const sim::EngineRunStats &e = stats.engine(engine_name);

        ErtSample sample;
        sample.opsPerByte = intensity;
        sample.workingSetBytes = config.workingSetBytes;
        sample.opsRate = e.achievedOpsRate();
        sample.byteRate = e.achievedByteRate();
        sample.missByteRate = e.achievedMissRate();
        samples.push_back(sample);
    }
    return samples;
}

std::vector<ErtSample>
ErtSweep::workingSetSweep(sim::SimSoc &soc,
                          const std::string &engine_name,
                          const std::vector<double> &working_sets,
                          double intensity, double bytes_per_point)
{
    if (working_sets.empty())
        fatal("working-set sweep needs at least one size");

    std::vector<ErtSample> samples;
    samples.reserve(working_sets.size());
    for (double set_bytes : working_sets) {
        sim::KernelJob job;
        job.workingSetBytes = set_bytes;
        job.totalBytes = std::max(bytes_per_point, set_bytes);
        job.opsPerByte = intensity;

        sim::SocRunStats stats = soc.run({{engine_name, job}});
        const sim::EngineRunStats &e = stats.engine(engine_name);

        ErtSample sample;
        sample.opsPerByte = intensity;
        sample.workingSetBytes = set_bytes;
        sample.opsRate = e.achievedOpsRate();
        sample.byteRate = e.achievedByteRate();
        sample.missByteRate = e.achievedMissRate();
        samples.push_back(sample);
    }
    return samples;
}

} // namespace gables
