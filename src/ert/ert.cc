#include "ert/ert.h"

#include <algorithm>
#include <cmath>

#include "telemetry/span.h"
#include "util/logging.h"

namespace gables {

namespace {

/** One trial: run the kernel job and package the measured rates. */
ErtSample
measure(sim::SimSoc &soc, const std::string &engine_name,
        const sim::KernelJob &job)
{
    GABLES_SPAN("ert.trial");
    sim::SocRunStats stats = soc.run({{engine_name, job}});
    const sim::EngineRunStats &e = stats.engine(engine_name);

    ErtSample sample;
    sample.opsPerByte = job.opsPerByte;
    sample.workingSetBytes = job.workingSetBytes;
    sample.opsRate = e.achievedOpsRate();
    sample.byteRate = e.achievedByteRate();
    sample.missByteRate = e.achievedMissRate();
    return sample;
}

/**
 * Run one trial per job on per-worker simulators built by
 * @p make_soc; samples land in job-order slots.
 */
std::vector<ErtSample>
runBatch(const ErtSweep::SocFactory &make_soc,
         const std::string &engine_name,
         const std::vector<sim::KernelJob> &jobs, int pool_jobs,
         parallel::ForStats *stats)
{
    std::vector<ErtSample> samples(jobs.size());
    // Sized up front for the widest pool parallelFor may use; each
    // worker lazily builds its simulator on first use and is the
    // only thread that ever touches its slot.
    std::vector<std::unique_ptr<sim::SimSoc>> socs(
        static_cast<size_t>(std::max(parallel::defaultJobs(),
                                     std::max(pool_jobs, 1))));
    parallel::ForOptions opts;
    opts.jobs = pool_jobs;
    parallel::ForStats st = parallel::parallelFor(
        jobs.size(),
        [&](size_t i, int worker) {
            std::unique_ptr<sim::SimSoc> &soc =
                socs[static_cast<size_t>(worker)];
            if (!soc) {
                soc = make_soc();
                if (!soc)
                    fatal("ERT sweep: the SoC factory returned null");
            }
            samples[i] = measure(*soc, engine_name, jobs[i]);
        },
        opts);
    if (stats)
        *stats = st;
    return samples;
}

} // namespace

std::vector<double>
ErtConfig::defaultIntensities()
{
    std::vector<double> out;
    for (int k = -6; k <= 10; ++k)
        out.push_back(std::pow(2.0, k));
    return out;
}

std::vector<ErtSample>
ErtSweep::run(sim::SimSoc &soc, const std::string &engine_name,
              const ErtConfig &config)
{
    if (config.intensities.empty())
        fatal("ERT sweep needs at least one intensity");

    std::vector<ErtSample> samples;
    samples.reserve(config.intensities.size());
    for (double intensity : config.intensities) {
        sim::KernelJob job;
        job.workingSetBytes = config.workingSetBytes;
        job.totalBytes = config.totalBytes;
        job.opsPerByte = intensity;
        job.coordinationTime = config.coordinationTime;
        samples.push_back(measure(soc, engine_name, job));
    }
    return samples;
}

std::vector<ErtSample>
ErtSweep::run(const SocFactory &make_soc,
              const std::string &engine_name, const ErtConfig &config,
              int jobs, parallel::ForStats *stats)
{
    if (config.intensities.empty())
        fatal("ERT sweep needs at least one intensity");

    std::vector<sim::KernelJob> batch;
    batch.reserve(config.intensities.size());
    for (double intensity : config.intensities) {
        sim::KernelJob job;
        job.workingSetBytes = config.workingSetBytes;
        job.totalBytes = config.totalBytes;
        job.opsPerByte = intensity;
        job.coordinationTime = config.coordinationTime;
        batch.push_back(job);
    }
    return runBatch(make_soc, engine_name, batch, jobs, stats);
}

std::vector<ErtSample>
ErtSweep::workingSetSweep(sim::SimSoc &soc,
                          const std::string &engine_name,
                          const std::vector<double> &working_sets,
                          double intensity, double bytes_per_point)
{
    if (working_sets.empty())
        fatal("working-set sweep needs at least one size");

    std::vector<ErtSample> samples;
    samples.reserve(working_sets.size());
    for (double set_bytes : working_sets) {
        sim::KernelJob job;
        job.workingSetBytes = set_bytes;
        job.totalBytes = std::max(bytes_per_point, set_bytes);
        job.opsPerByte = intensity;
        samples.push_back(measure(soc, engine_name, job));
    }
    return samples;
}

std::vector<ErtSample>
ErtSweep::workingSetSweep(const SocFactory &make_soc,
                          const std::string &engine_name,
                          const std::vector<double> &working_sets,
                          double intensity, double bytes_per_point,
                          int jobs, parallel::ForStats *stats)
{
    if (working_sets.empty())
        fatal("working-set sweep needs at least one size");

    std::vector<sim::KernelJob> batch;
    batch.reserve(working_sets.size());
    for (double set_bytes : working_sets) {
        sim::KernelJob job;
        job.workingSetBytes = set_bytes;
        job.totalBytes = std::max(bytes_per_point, set_bytes);
        job.opsPerByte = intensity;
        batch.push_back(job);
    }
    return runBatch(make_soc, engine_name, batch, jobs, stats);
}

} // namespace gables
