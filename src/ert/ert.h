/**
 * @file
 * An Empirical-Roofline-Toolkit-style harness (paper Section IV-A,
 * after Lo et al.): run the Algorithm-1 kernel on a simulated IP at
 * a sweep of operational intensities (and optionally working-set
 * sizes), and collect achieved compute and data rates from which a
 * roofline can be fitted.
 */

#ifndef GABLES_ERT_ERT_H
#define GABLES_ERT_ERT_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "parallel/parallel_for.h"
#include "sim/soc.h"

namespace gables {

/** One measured operating point of the micro-benchmark. */
struct ErtSample {
    /** The configured FLOPS_PER_BYTE of the kernel. */
    double opsPerByte = 0.0;
    /** Working-set size used (bytes). */
    double workingSetBytes = 0.0;
    /** Achieved computation rate (ops/s). */
    double opsRate = 0.0;
    /** Achieved total data rate, hits plus misses (bytes/s). */
    double byteRate = 0.0;
    /** Achieved off-IP (DRAM-side) data rate (bytes/s). */
    double missByteRate = 0.0;
};

/** Sweep configuration. */
struct ErtConfig {
    /** Intensities to probe (ops/byte). */
    std::vector<double> intensities;
    /** Working-set size (bytes); large sets defeat local memories. */
    double workingSetBytes = 64.0 * 1024 * 1024;
    /** Total bytes streamed per point (more = less startup skew). */
    double totalBytes = 256.0 * 1024 * 1024;
    /**
     * Per-request coordination time (s) charged on the engine's
     * coordinator; 0 for isolated roofline runs.
     */
    double coordinationTime = 0.0;

    /** @return The paper's default intensity ladder: powers of two
     * from 2^-6 to 2^10 ops/byte. */
    static std::vector<double> defaultIntensities();
};

/**
 * ERT sweep driver.
 *
 * A SimSoc is single-threaded state, so the parallel overloads take
 * a factory instead of a live simulator: each worker of the pool
 * builds (lazily, once) its own SimSoc and runs a share of the trial
 * batch on it. Every trial resets the simulator, so samples are
 * byte-identical for any job count.
 */
class ErtSweep
{
  public:
    /** Builds one private simulator instance per pool worker. */
    using SocFactory =
        std::function<std::unique_ptr<sim::SimSoc>()>;

    /**
     * Run the kernel on engine @p engine_name of @p soc, alone on
     * the chip, once per intensity in @p config (serial path).
     */
    static std::vector<ErtSample> run(sim::SimSoc &soc,
                                      const std::string &engine_name,
                                      const ErtConfig &config);

    /**
     * Parallel trial batch: like run(soc, ...) but with @p jobs pool
     * workers, each running trials on its own @p make_soc instance.
     *
     * @param jobs  Worker count (1 = serial, 0 = hardware).
     * @param stats Optional out: worker count and busy time.
     */
    static std::vector<ErtSample> run(const SocFactory &make_soc,
                                      const std::string &engine_name,
                                      const ErtConfig &config,
                                      int jobs = 1,
                                      parallel::ForStats *stats = nullptr);

    /**
     * Sweep working-set size at fixed intensity to expose local-
     * memory bandwidth tiers (the paper's note that smaller arrays
     * hit in L1/L2 and see higher bandwidth).
     *
     * @param working_sets Working-set sizes (bytes) to probe.
     * @param intensity    Fixed kernel intensity (ops/byte).
     */
    static std::vector<ErtSample> workingSetSweep(
        sim::SimSoc &soc, const std::string &engine_name,
        const std::vector<double> &working_sets, double intensity,
        double bytes_per_point = 256.0 * 1024 * 1024);

    /** Parallel working-set sweep over per-worker simulators. */
    static std::vector<ErtSample> workingSetSweep(
        const SocFactory &make_soc, const std::string &engine_name,
        const std::vector<double> &working_sets, double intensity,
        double bytes_per_point = 256.0 * 1024 * 1024, int jobs = 1,
        parallel::ForStats *stats = nullptr);
};

} // namespace gables

#endif // GABLES_ERT_ERT_H
