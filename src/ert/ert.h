/**
 * @file
 * An Empirical-Roofline-Toolkit-style harness (paper Section IV-A,
 * after Lo et al.): run the Algorithm-1 kernel on a simulated IP at
 * a sweep of operational intensities (and optionally working-set
 * sizes), and collect achieved compute and data rates from which a
 * roofline can be fitted.
 */

#ifndef GABLES_ERT_ERT_H
#define GABLES_ERT_ERT_H

#include <string>
#include <vector>

#include "sim/soc.h"

namespace gables {

/** One measured operating point of the micro-benchmark. */
struct ErtSample {
    /** The configured FLOPS_PER_BYTE of the kernel. */
    double opsPerByte = 0.0;
    /** Working-set size used (bytes). */
    double workingSetBytes = 0.0;
    /** Achieved computation rate (ops/s). */
    double opsRate = 0.0;
    /** Achieved total data rate, hits plus misses (bytes/s). */
    double byteRate = 0.0;
    /** Achieved off-IP (DRAM-side) data rate (bytes/s). */
    double missByteRate = 0.0;
};

/** Sweep configuration. */
struct ErtConfig {
    /** Intensities to probe (ops/byte). */
    std::vector<double> intensities;
    /** Working-set size (bytes); large sets defeat local memories. */
    double workingSetBytes = 64.0 * 1024 * 1024;
    /** Total bytes streamed per point (more = less startup skew). */
    double totalBytes = 256.0 * 1024 * 1024;
    /**
     * Per-request coordination time (s) charged on the engine's
     * coordinator; 0 for isolated roofline runs.
     */
    double coordinationTime = 0.0;

    /** @return The paper's default intensity ladder: powers of two
     * from 2^-6 to 2^10 ops/byte. */
    static std::vector<double> defaultIntensities();
};

/**
 * ERT sweep driver.
 */
class ErtSweep
{
  public:
    /**
     * Run the kernel on engine @p engine_name of @p soc, alone on
     * the chip, once per intensity in @p config.
     */
    static std::vector<ErtSample> run(sim::SimSoc &soc,
                                      const std::string &engine_name,
                                      const ErtConfig &config);

    /**
     * Sweep working-set size at fixed intensity to expose local-
     * memory bandwidth tiers (the paper's note that smaller arrays
     * hit in L1/L2 and see higher bandwidth).
     *
     * @param working_sets Working-set sizes (bytes) to probe.
     * @param intensity    Fixed kernel intensity (ops/byte).
     */
    static std::vector<ErtSample> workingSetSweep(
        sim::SimSoc &soc, const std::string &engine_name,
        const std::vector<double> &working_sets, double intensity,
        double bytes_per_point = 256.0 * 1024 * 1024);
};

} // namespace gables

#endif // GABLES_ERT_ERT_H
