#include "ert/fitter.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace gables {

Roofline
RooflineFit::roofline(const std::string &name) const
{
    return Roofline(peakOps, peakBw, name);
}

RooflineFit
RooflineFitter::fit(const std::vector<ErtSample> &samples,
                    bool use_miss_rate)
{
    if (samples.empty())
        fatal("roofline fit needs at least one sample");

    RooflineFit result;
    for (const ErtSample &s : samples) {
        result.peakOps = std::max(result.peakOps, s.opsRate);
        double rate = use_miss_rate ? s.missByteRate : s.byteRate;
        result.peakBw = std::max(result.peakBw, rate);
    }
    if (!(result.peakOps > 0.0) || !(result.peakBw > 0.0))
        fatal("roofline fit: samples contain no positive rates");
    result.ridge = result.peakOps / result.peakBw;

    for (const ErtSample &s : samples) {
        double predicted =
            std::min(result.peakOps, result.peakBw * s.opsPerByte);
        double residual =
            std::fabs(s.opsRate - predicted) / predicted;
        result.maxRelResidual = std::max(result.maxRelResidual,
                                         residual);
    }
    return result;
}

RooflineFit
RooflineFitter::fitDram(const std::vector<ErtSample> &samples)
{
    return fit(samples, true);
}

RooflineFit
RooflineFitter::fitTotal(const std::vector<ErtSample> &samples)
{
    return fit(samples, false);
}

} // namespace gables
