/**
 * @file
 * Roofline fitting: turn ERT samples into the pessimistic
 * ("achievable ceiling") roofline estimate the paper uses in Section
 * IV — peak compute from the intensity-saturated samples, peak
 * bandwidth from the bandwidth-bound samples — plus goodness-of-fit
 * diagnostics.
 */

#ifndef GABLES_ERT_FITTER_H
#define GABLES_ERT_FITTER_H

#include <vector>

#include "core/roofline.h"
#include "ert/ert.h"

namespace gables {

/** A fitted roofline plus fit diagnostics. */
struct RooflineFit {
    /** Estimated peak compute rate (ops/s). */
    double peakOps = 0.0;
    /** Estimated peak data bandwidth (bytes/s). */
    double peakBw = 0.0;
    /** Ridge point peakOps / peakBw (ops/byte). */
    double ridge = 0.0;
    /**
     * Largest relative deviation of any sample from the fitted
     * min(peakOps, peakBw * I) curve; small values mean the samples
     * really do trace a roofline.
     */
    double maxRelResidual = 0.0;

    /** @return The fit as a Roofline object. */
    Roofline roofline(const std::string &name) const;
};

/**
 * Fits rooflines to ERT samples.
 */
class RooflineFitter
{
  public:
    /**
     * Fit against the off-IP (DRAM-side) data rate — the paper's
     * DRAM rooflines of Figures 7 and 9.
     */
    static RooflineFit fitDram(const std::vector<ErtSample> &samples);

    /**
     * Fit against the total data rate (hits + misses) — appropriate
     * for small working sets served by a local memory.
     */
    static RooflineFit fitTotal(const std::vector<ErtSample> &samples);

  private:
    static RooflineFit fit(const std::vector<ErtSample> &samples,
                           bool use_miss_rate);
};

} // namespace gables

#endif // GABLES_ERT_FITTER_H
