#include "parallel/parallel_for.h"

#include <algorithm>
#include <chrono>
#include <limits>

#include "telemetry/span.h"
#include "util/logging.h"

namespace gables {
namespace parallel {

namespace {

// True while the current thread is executing a loop body; nested
// parallel loops then run inline instead of waiting on a pool that
// may itself be waiting on them.
thread_local bool tls_inside_loop = false;

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

int
defaultJobs()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int workers)
    : workers_(std::max(1, workers)), busy_(workers_, 0.0),
      errors_(workers_)
{
    threads_.reserve(static_cast<size_t>(workers_ - 1));
    for (int w = 1; w < workers_; ++w)
        threads_.emplace_back([this, w] { workerLoop(w); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

void
ThreadPool::workerLoop(int worker)
{
    uint64_t seen = 0;
    while (true) {
        {
            // The idle span closes before the busy one opens, so the
            // profile cleanly splits a worker's life into wait vs
            // work time.
            telemetry::ScopedSpan idle("parallel.idle");
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [&] {
                return stopping_ || generation_ != seen;
            });
            if (stopping_)
                return;
            seen = generation_;
        }
        runWorker(worker);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --pending_;
        }
        done_.notify_one();
    }
}

void
ThreadPool::runWorker(int worker)
{
    GABLES_SPAN("parallel.worker");
    auto start = std::chrono::steady_clock::now();
    tls_inside_loop = true;
    // Claim chunks in monotonically increasing order. After any
    // failure, workers finish the chunk they hold but claim no new
    // ones; combined with in-order scanning inside each chunk this
    // guarantees every index below the lowest recorded failure was
    // evaluated, so the rethrown exception matches the serial path.
    while (!failed_.load(std::memory_order_acquire)) {
        size_t begin = next_.fetch_add(chunk_, std::memory_order_relaxed);
        if (begin >= n_)
            break;
        size_t end = std::min(n_, begin + chunk_);
        for (size_t i = begin; i < end; ++i) {
            try {
                (*body_)(i, worker);
            } catch (...) {
                WorkerError &err = errors_[static_cast<size_t>(worker)];
                if (i < err.index) {
                    err.index = i;
                    err.exception = std::current_exception();
                }
                failed_.store(true, std::memory_order_release);
                break; // indices after i in this chunk are > i
            }
        }
    }
    tls_inside_loop = false;
    busy_[static_cast<size_t>(worker)] = secondsSince(start);
}

void
ThreadPool::runInline(size_t n,
                      const std::function<void(size_t, int)> &body)
{
    busy_.assign(static_cast<size_t>(workers_), 0.0);
    auto start = std::chrono::steady_clock::now();
    bool was_inside = tls_inside_loop;
    tls_inside_loop = true;
    try {
        for (size_t i = 0; i < n; ++i)
            body(i, 0);
    } catch (...) {
        tls_inside_loop = was_inside;
        busy_[0] = secondsSince(start);
        throw;
    }
    tls_inside_loop = was_inside;
    busy_[0] = secondsSince(start);
}

void
ThreadPool::forEach(size_t n,
                    const std::function<void(size_t, int)> &body,
                    size_t min_chunk)
{
    if (workers_ == 1 || n <= 1 || tls_inside_loop) {
        runInline(n, body);
        return;
    }

    for (WorkerError &err : errors_) {
        err.index = std::numeric_limits<size_t>::max();
        err.exception = nullptr;
    }
    busy_.assign(static_cast<size_t>(workers_), 0.0);

    // Chunk for load balance: enough chunks that a slow index cannot
    // stall the loop, but never below the caller's floor.
    size_t chunk =
        std::max<size_t>(1, n / (static_cast<size_t>(workers_) * 8));
    chunk = std::max(chunk, min_chunk);

    {
        std::lock_guard<std::mutex> lock(mutex_);
        n_ = n;
        chunk_ = chunk;
        body_ = &body;
        next_.store(0, std::memory_order_relaxed);
        failed_.store(false, std::memory_order_relaxed);
        pending_ = workers_ - 1;
        ++generation_;
    }
    wake_.notify_all();

    runWorker(0);

    {
        std::unique_lock<std::mutex> lock(mutex_);
        done_.wait(lock, [&] { return pending_ == 0; });
        body_ = nullptr;
    }

    // Rethrow the failure of the lowest index, as a serial
    // left-to-right loop would have.
    const WorkerError *first = nullptr;
    for (const WorkerError &err : errors_) {
        if (err.exception && (!first || err.index < first->index))
            first = &err;
    }
    if (first)
        std::rethrow_exception(first->exception);
}

int
plannedWorkers(size_t n, const ForOptions &opts)
{
    if (opts.jobs < 0)
        fatal("parallelFor: jobs must be >= 0 (0 = hardware "
              "concurrency)");
    int jobs = opts.jobs == 0 ? defaultJobs() : opts.jobs;
    jobs = static_cast<int>(
        std::min<size_t>(static_cast<size_t>(jobs), std::max<size_t>(n, 1)));
    // A loop launched from inside another loop's body runs inline on
    // the calling worker; don't spawn a pool that would sit idle.
    if (tls_inside_loop)
        jobs = 1;
    return jobs;
}

ForStats
parallelFor(size_t n, const std::function<void(size_t, int)> &body,
            const ForOptions &opts)
{
    int jobs = plannedWorkers(n, opts);

    ThreadPool pool(jobs);
    pool.forEach(n, body, opts.minChunk);

    ForStats stats;
    stats.workers = pool.workers();
    stats.busySeconds = pool.busySeconds();
    return stats;
}

ForStats
parallelFor(size_t n, const std::function<void(size_t)> &body,
            const ForOptions &opts)
{
    return parallelFor(
        n, [&body](size_t i, int) { body(i); }, opts);
}

} // namespace parallel
} // namespace gables
