/**
 * @file
 * A small worker-pool / parallel_for layer for the embarrassingly
 * parallel grids that dominate the repo's data-producing paths: the
 * Figure-8 mixing sweeps, the design-space explorer's candidate
 * cross product, ERT trial batches, and the sim-vs-model comparison
 * driver.
 *
 * Design rules that make parallel runs byte-identical to the serial
 * path:
 *
 *  - Bodies write results into pre-sized output slots indexed by the
 *    loop index, so result ordering never depends on scheduling.
 *  - Work is handed out as chunked index ranges claimed in
 *    monotonically increasing order; chunk boundaries affect only
 *    load balance, never values.
 *  - Exceptions are captured per worker as std::exception_ptr and
 *    the one thrown by the lowest failing index is rethrown — the
 *    same exception a serial left-to-right loop would surface.
 *  - jobs = 1 runs inline on the calling thread and never spawns a
 *    thread; nested parallel loops degrade to inline execution
 *    instead of deadlocking the pool.
 */

#ifndef GABLES_PARALLEL_PARALLEL_FOR_H
#define GABLES_PARALLEL_PARALLEL_FOR_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gables {
namespace parallel {

/** @return max(1, std::thread::hardware_concurrency()). */
int defaultJobs();

struct ForOptions;

/**
 * The worker count parallelFor(n, ..., opts) will actually use,
 * including the clamp to n and the nested-loop inline fallback.
 * Callers that keep per-worker state (e.g. one model evaluator per
 * worker) size their state arrays with this before dispatching; the
 * worker index passed to the body is always below it.
 */
int plannedWorkers(size_t n, const ForOptions &opts);

/** Tuning knobs for a parallel loop. */
struct ForOptions {
    /** Worker count: 0 = defaultJobs(), 1 = legacy serial path. */
    int jobs = 0;
    /** Minimum indices per dispatched chunk. */
    size_t minChunk = 1;
};

/** Measured footprint of one loop, for telemetry RunReports. */
struct ForStats {
    /** Workers used; 1 means the calling thread ran the loop alone. */
    int workers = 1;
    /** Wall-clock seconds each worker spent inside the body. */
    std::vector<double> busySeconds;
};

/**
 * A fixed-size worker pool. Worker 0 is the thread that calls
 * forEach(); workers-1 threads are spawned at construction and wait
 * for dispatched index ranges. A pool with one worker spawns no
 * threads at all.
 */
class ThreadPool
{
  public:
    /** @param workers Total workers including the caller; >= 1. */
    explicit ThreadPool(int workers);

    /** Joins all spawned workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** @return Total worker count including the calling thread. */
    int workers() const { return workers_; }

    /**
     * Run body(index, worker) for every index in [0, n), blocking
     * until all indices finish. The worker argument is in
     * [0, workers()) and is stable for the duration of one call, so
     * bodies may keep worker-local state (e.g. one simulator
     * instance per worker).
     *
     * @throws Whatever the body threw for the lowest failing index.
     */
    void forEach(size_t n, const std::function<void(size_t, int)> &body,
                 size_t min_chunk = 1);

    /** @return Per-worker busy seconds of the last forEach() call. */
    const std::vector<double> &busySeconds() const { return busy_; }

  private:
    struct WorkerError {
        size_t index;
        std::exception_ptr exception;
    };

    void workerLoop(int worker);
    void runWorker(int worker);
    void runInline(size_t n,
                   const std::function<void(size_t, int)> &body);

    int workers_;
    std::vector<std::thread> threads_;
    std::vector<double> busy_;
    std::vector<WorkerError> errors_;

    // Dispatch state for the current forEach() call.
    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;
    uint64_t generation_ = 0;
    int pending_ = 0;
    bool stopping_ = false;
    size_t n_ = 0;
    size_t chunk_ = 1;
    const std::function<void(size_t, int)> *body_ = nullptr;
    std::atomic<size_t> next_{0};
    std::atomic<bool> failed_{false};
};

/**
 * Run body(index, worker) for index in [0, n) on a transient pool of
 * opts.jobs workers (0 = hardware concurrency). Deterministic: see
 * the file comment. @return worker count and per-worker busy time.
 */
ForStats parallelFor(size_t n,
                     const std::function<void(size_t, int)> &body,
                     const ForOptions &opts = {});

/** Convenience overload for bodies that ignore the worker index. */
ForStats parallelFor(size_t n, const std::function<void(size_t)> &body,
                     const ForOptions &opts);

} // namespace parallel
} // namespace gables

#endif // GABLES_PARALLEL_PARALLEL_FOR_H
