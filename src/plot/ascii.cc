#include "plot/ascii.h"

#include <cstdlib>

#include "util/logging.h"

namespace gables {

AsciiCanvas::AsciiCanvas(size_t cols, size_t rows)
    : cols_(cols), rows_(rows),
      grid_(rows, std::string(cols, ' '))
{
    if (cols == 0 || rows == 0)
        fatal("ASCII canvas dimensions must be positive");
}

void
AsciiCanvas::put(long col, long row, char c)
{
    if (col < 0 || row < 0 || col >= static_cast<long>(cols_) ||
        row >= static_cast<long>(rows_))
        return;
    grid_[static_cast<size_t>(row)][static_cast<size_t>(col)] = c;
}

void
AsciiCanvas::write(long col, long row, const std::string &s)
{
    for (size_t i = 0; i < s.size(); ++i)
        put(col + static_cast<long>(i), row, s[i]);
}

void
AsciiCanvas::line(long c1, long r1, long c2, long r2, char c)
{
    long dc = std::labs(c2 - c1);
    long dr = -std::labs(r2 - r1);
    long sc = c1 < c2 ? 1 : -1;
    long sr = r1 < r2 ? 1 : -1;
    long err = dc + dr;
    while (true) {
        put(c1, r1, c);
        if (c1 == c2 && r1 == r2)
            break;
        long e2 = 2 * err;
        if (e2 >= dr) {
            err += dr;
            c1 += sc;
        }
        if (e2 <= dc) {
            err += dc;
            r1 += sr;
        }
    }
}

std::string
AsciiCanvas::render() const
{
    std::string out;
    out.reserve((cols_ + 1) * rows_);
    for (const std::string &row : grid_) {
        out += row;
        out += '\n';
    }
    return out;
}

} // namespace gables
