/**
 * @file
 * ASCII-art plotting backend for terminal output — the CLI's quick
 * look at rooflines and sweeps without leaving the shell.
 */

#ifndef GABLES_PLOT_ASCII_H
#define GABLES_PLOT_ASCII_H

#include <string>
#include <vector>

namespace gables {

/**
 * A character-cell canvas with (0,0) at the top-left.
 */
class AsciiCanvas
{
  public:
    /**
     * @param cols Canvas width in characters.
     * @param rows Canvas height in characters.
     */
    AsciiCanvas(size_t cols, size_t rows);

    /** @return Width in characters. */
    size_t cols() const { return cols_; }

    /** @return Height in characters. */
    size_t rows() const { return rows_; }

    /** Set one cell; out-of-range coordinates are ignored. */
    void put(long col, long row, char c);

    /** Write a string starting at (col, row), clipped to the canvas. */
    void write(long col, long row, const std::string &s);

    /**
     * Draw a line from (c1, r1) to (c2, r2) with Bresenham's
     * algorithm using character @p c.
     */
    void line(long c1, long r1, long c2, long r2, char c);

    /** @return The canvas as newline-joined rows. */
    std::string render() const;

  private:
    size_t cols_;
    size_t rows_;
    std::vector<std::string> grid_;
};

} // namespace gables

#endif // GABLES_PLOT_ASCII_H
