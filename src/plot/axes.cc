#include "plot/axes.h"

#include <cmath>
#include <sstream>

#include "util/logging.h"
#include "util/math_util.h"
#include "util/strings.h"

namespace gables {

Axis::Axis(Scale scale, double lo, double hi, double px_lo, double px_hi)
    : scale_(scale), lo_(lo), hi_(hi), pxLo_(px_lo), pxHi_(px_hi)
{
    if (!(hi > lo))
        fatal("axis requires hi > lo");
    if (scale == Scale::Log && !(lo > 0.0))
        fatal("log axis requires positive bounds");
    if (px_lo == px_hi)
        fatal("axis pixel interval is empty");
}

double
Axis::toPixel(double v) const
{
    double t;
    if (scale_ == Scale::Log) {
        double clamped = clamp(v, lo_, hi_);
        t = (std::log(clamped) - std::log(lo_)) /
            (std::log(hi_) - std::log(lo_));
    } else {
        t = (clamp(v, lo_, hi_) - lo_) / (hi_ - lo_);
    }
    return pxLo_ + t * (pxHi_ - pxLo_);
}

std::vector<double>
Axis::ticks() const
{
    if (scale_ == Scale::Log) {
        std::vector<double> out;
        for (double t : logTicks(lo_, hi_)) {
            if (t >= lo_ * (1.0 - 1e-12) && t <= hi_ * (1.0 + 1e-12))
                out.push_back(t);
        }
        return out;
    }
    // Linear: choose a step of 1/2/5 x 10^k giving 4-10 ticks.
    double span = hi_ - lo_;
    double raw = span / 6.0;
    double mag = std::pow(10.0, std::floor(std::log10(raw)));
    double step = mag;
    for (double m : {1.0, 2.0, 5.0, 10.0}) {
        if (mag * m >= raw) {
            step = mag * m;
            break;
        }
    }
    std::vector<double> out;
    double first = std::ceil(lo_ / step) * step;
    for (double v = first; v <= hi_ + step * 1e-9; v += step)
        out.push_back(v);
    return out;
}

std::string
Axis::formatTick(double v)
{
    if (v == 0.0)
        return "0";
    double mag = std::fabs(v);
    if (mag >= 1e5 || mag < 1e-3) {
        std::ostringstream oss;
        oss.precision(3);
        oss << v;
        return oss.str();
    }
    return formatDouble(v, 4);
}

} // namespace gables
