/**
 * @file
 * Axis mapping for plots: linear or logarithmic data-to-pixel
 * transforms with margin handling and tick generation.
 */

#ifndef GABLES_PLOT_AXES_H
#define GABLES_PLOT_AXES_H

#include <string>
#include <vector>

namespace gables {

/** Axis scale type. */
enum class Scale { Linear, Log };

/**
 * One axis: data range, scale, and mapping onto a pixel interval.
 */
class Axis
{
  public:
    /**
     * @param scale Linear or Log (log requires positive bounds).
     * @param lo    Data value at the low pixel end.
     * @param hi    Data value at the high pixel end, > lo.
     * @param px_lo Pixel coordinate of lo.
     * @param px_hi Pixel coordinate of hi (may be < px_lo for the
     *              flipped y axis of SVG).
     */
    Axis(Scale scale, double lo, double hi, double px_lo, double px_hi);

    /** @return Pixel coordinate of data value @p v (clamped to the
     * data range). */
    double toPixel(double v) const;

    /** @return Data low bound. */
    double lo() const { return lo_; }

    /** @return Data high bound. */
    double hi() const { return hi_; }

    /** @return The axis scale. */
    Scale scale() const { return scale_; }

    /**
     * Tick positions: powers of ten within range for log axes; a
     * "nice" step subdivision for linear axes.
     */
    std::vector<double> ticks() const;

    /** Format a tick value compactly ("0.01", "1", "100", "1e6"). */
    static std::string formatTick(double v);

  private:
    Scale scale_;
    double lo_;
    double hi_;
    double pxLo_;
    double pxHi_;
};

} // namespace gables

#endif // GABLES_PLOT_AXES_H
