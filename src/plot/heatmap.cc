#include "plot/heatmap.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "plot/svg.h"
#include "util/logging.h"
#include "util/strings.h"

namespace gables {

HeatmapPlot::HeatmapPlot(std::string title, std::string x_label,
                         std::string y_label)
    : title_(std::move(title)), xLabel_(std::move(x_label)),
      yLabel_(std::move(y_label))
{}

void
HeatmapPlot::setGrid(std::vector<std::string> x_ticks,
                     std::vector<std::string> y_ticks,
                     std::vector<std::vector<double>> values)
{
    if (values.empty() || x_ticks.empty() || y_ticks.empty())
        fatal("heatmap grid must be non-empty");
    if (values.size() != y_ticks.size())
        fatal("heatmap has " + std::to_string(values.size()) +
              " rows but " + std::to_string(y_ticks.size()) +
              " row labels");
    for (const auto &row : values) {
        if (row.size() != x_ticks.size())
            fatal("heatmap row width mismatch");
    }
    xTicks_ = std::move(x_ticks);
    yTicks_ = std::move(y_ticks);
    values_ = std::move(values);
}

void
HeatmapPlot::range(double &lo, double &hi) const
{
    lo = std::numeric_limits<double>::infinity();
    hi = -std::numeric_limits<double>::infinity();
    for (const auto &row : values_) {
        for (double v : row) {
            if (logScale_ && !(v > 0.0))
                continue;
            lo = std::min(lo, v);
            hi = std::max(hi, v);
        }
    }
    if (!(hi > lo)) {
        lo = logScale_ ? lo / 2.0 : lo - 0.5;
        hi = logScale_ ? hi * 2.0 : hi + 0.5;
    }
}

double
HeatmapPlot::normalized(double v, double lo, double hi) const
{
    if (logScale_) {
        if (!(v > 0.0))
            return 0.0;
        return (std::log(v) - std::log(lo)) /
               (std::log(hi) - std::log(lo));
    }
    return (v - lo) / (hi - lo);
}

namespace {

/** Sequential ramp: deep blue -> white-ish -> warm red. */
std::string
rampColor(double t)
{
    t = std::clamp(t, 0.0, 1.0);
    // Two-segment linear ramp through near-white at t = 0.5.
    double r, g, b;
    if (t < 0.5) {
        double u = t / 0.5;
        r = 33 + u * (247 - 33);
        g = 102 + u * (247 - 102);
        b = 172 + u * (247 - 172);
    } else {
        double u = (t - 0.5) / 0.5;
        r = 247 + u * (178 - 247);
        g = 247 + u * (24 - 247);
        b = 247 + u * (43 - 247);
    }
    char buf[8];
    std::snprintf(buf, sizeof(buf), "#%02x%02x%02x",
                  static_cast<int>(r), static_cast<int>(g),
                  static_cast<int>(b));
    return buf;
}

} // namespace

std::string
HeatmapPlot::renderSvg(double cell) const
{
    if (values_.empty())
        fatal("heatmap has no grid");
    const double ml = 80.0, mt = 40.0, mb = 50.0, mr = 20.0;
    const size_t cols = xTicks_.size();
    const size_t rows = yTicks_.size();
    SvgCanvas svg(ml + cols * cell + mr, mt + rows * cell + mb);

    double lo, hi;
    range(lo, hi);

    svg.text((ml + cols * cell + mr) / 2, 22, title_, 14,
             TextAnchor::Middle);
    for (size_t r = 0; r < rows; ++r) {
        // Row 0 at the bottom.
        double y = mt + (rows - 1 - r) * cell;
        svg.text(ml - 8, y + cell / 2 + 4, yTicks_[r], 11,
                 TextAnchor::End);
        for (size_t c = 0; c < cols; ++c) {
            double x = ml + c * cell;
            double v = values_[r][c];
            svg.rect(x, y, cell, cell, "#cccccc",
                     rampColor(normalized(v, lo, hi)));
            svg.text(x + cell / 2, y + cell / 2 + 4,
                     formatDouble(v, v < 10 ? 2 : 1), 10,
                     TextAnchor::Middle,
                     normalized(v, lo, hi) > 0.75 ? "#ffffff"
                                                  : "#222222");
        }
    }
    for (size_t c = 0; c < cols; ++c) {
        svg.text(ml + c * cell + cell / 2, mt + rows * cell + 16,
                 xTicks_[c], 11, TextAnchor::Middle);
    }
    svg.text(ml + cols * cell / 2, mt + rows * cell + 34, xLabel_, 12,
             TextAnchor::Middle);
    svg.text(20, mt + rows * cell / 2, yLabel_, 12, TextAnchor::Middle,
             "#222222", -90.0);
    return svg.render();
}

std::string
HeatmapPlot::renderAscii() const
{
    if (values_.empty())
        fatal("heatmap has no grid");
    static const char shades[] = {' ', '.', ':', '-', '=',
                                  '+', '*', '#', '%', '@'};
    double lo, hi;
    range(lo, hi);

    std::string out = title_ + "\n";
    size_t label_width = 0;
    for (const std::string &t : yTicks_)
        label_width = std::max(label_width, t.size());
    for (size_t r = yTicks_.size(); r-- > 0;) {
        out += padLeft(yTicks_[r], label_width) + " |";
        for (double v : values_[r]) {
            int idx = static_cast<int>(normalized(v, lo, hi) * 9.999);
            idx = std::clamp(idx, 0, 9);
            out += shades[idx];
            out += shades[idx];
        }
        out += "|\n";
    }
    out += std::string(label_width + 2, ' ');
    for (const std::string &t : xTicks_)
        out += (t.substr(0, 1) + " ");
    out += " <- " + xLabel_ + " (rows: " + yLabel_ + ")\n";
    return out;
}

} // namespace gables
