/**
 * @file
 * Heatmap charts: 2D parameter maps such as attainable performance
 * over (work fraction, operational intensity) — the whole Figure 8
 * family in one picture. SVG cells use a perceptually-ordered
 * sequential ramp; ASCII uses shade characters.
 */

#ifndef GABLES_PLOT_HEATMAP_H
#define GABLES_PLOT_HEATMAP_H

#include <string>
#include <vector>

namespace gables {

/**
 * Builder for heatmaps over a rectangular grid.
 */
class HeatmapPlot
{
  public:
    /**
     * @param title   Chart title.
     * @param x_label X-axis label (columns).
     * @param y_label Y-axis label (rows).
     */
    HeatmapPlot(std::string title, std::string x_label,
                std::string y_label);

    /**
     * Provide the grid. Values are arranged values[row][col]; rows
     * render bottom-up (row 0 at the bottom), matching plot
     * convention.
     *
     * @param x_ticks Column labels, one per column.
     * @param y_ticks Row labels, one per row.
     * @param values  values[row][col]; all rows must have
     *                x_ticks.size() entries.
     */
    void setGrid(std::vector<std::string> x_ticks,
                 std::vector<std::string> y_ticks,
                 std::vector<std::vector<double>> values);

    /**
     * Use a logarithmic color scale (appropriate when values span
     * orders of magnitude, as mixing speedups do).
     */
    void setLogScale(bool log_scale) { logScale_ = log_scale; }

    /** @return The SVG document. */
    std::string renderSvg(double cell = 48.0) const;

    /** @return An ASCII rendering using shade characters. */
    std::string renderAscii() const;

  private:
    double normalized(double v, double lo, double hi) const;
    void range(double &lo, double &hi) const;

    std::string title_;
    std::string xLabel_;
    std::string yLabel_;
    std::vector<std::string> xTicks_;
    std::vector<std::string> yTicks_;
    std::vector<std::vector<double>> values_;
    bool logScale_ = false;
};

} // namespace gables

#endif // GABLES_PLOT_HEATMAP_H
