#include "plot/roofline_plot.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "plot/ascii.h"
#include "plot/axes.h"
#include "plot/svg.h"
#include "util/logging.h"
#include "util/math_util.h"
#include "util/strings.h"
#include "util/units.h"

namespace gables {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

const char *kPalette[] = {
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd",
    "#ff7f0e", "#8c564b", "#17becf", "#7f7f7f",
};

const char *
color(size_t i)
{
    return kPalette[i % (sizeof(kPalette) / sizeof(kPalette[0]))];
}

} // namespace

RooflinePlot::RooflinePlot(std::string title, double x_lo, double x_hi)
    : title_(std::move(title)), xLo_(x_lo), xHi_(x_hi)
{
    if (!(x_lo > 0.0) || !(x_hi > x_lo))
        fatal("roofline plot needs 0 < x_lo < x_hi");
}

void
RooflinePlot::addRoofline(const Roofline &roofline)
{
    curves_.push_back(Curve{roofline.name(), roofline.peakBw(),
                            roofline.peakPerf(), 1.0});
}

void
RooflinePlot::addGables(const SocSpec &soc, const Usecase &usecase)
{
    GablesResult result = GablesModel::evaluate(soc, usecase);

    for (size_t i = 0; i < soc.numIps(); ++i) {
        double f = usecase.fraction(i);
        if (f == 0.0)
            continue; // unused IPs are omitted, as in the paper
        const IpSpec &ip = soc.ip(i);
        std::string label = (ip.name.empty()
                                 ? "IP[" + std::to_string(i) + "]"
                                 : ip.name) +
                            " (f=" + formatDouble(f, 3) + ")";
        curves_.push_back(
            Curve{label, ip.bandwidth, soc.ipPeakPerf(i), f});
        if (!std::isinf(usecase.intensity(i))) {
            double x = usecase.intensity(i);
            addDropLine(x, curveValue(curves_.back(), x),
                        "I" + std::to_string(i));
        }
    }

    curves_.push_back(Curve{"memory", soc.bpeak(), kInf, 1.0});
    double iavg = result.averageIntensity;
    if (!std::isinf(iavg))
        addDropLine(iavg, soc.bpeak() * iavg, "Iavg");
}

void
RooflinePlot::addDropLine(double x, double y, const std::string &label)
{
    drops_.push_back(Drop{x, y, label});
}

double
RooflinePlot::curveValue(const Curve &c, double x) const
{
    return std::min(c.slope * x, c.flat) / c.divisor;
}

double
RooflinePlot::maxCurveValue() const
{
    double top = 0.0;
    for (const Curve &c : curves_)
        top = std::max(top, curveValue(c, xHi_));
    for (const Drop &d : drops_)
        top = std::max(top, d.y);
    return top;
}

std::string
RooflinePlot::renderSvg(double width, double height) const
{
    if (curves_.empty())
        fatal("roofline plot has no curves");

    const double ml = 70.0, mr = 20.0, mt = 40.0, mb = 50.0;
    SvgCanvas svg(width, height);

    double y_hi = maxCurveValue() * 2.0;
    double y_lo = y_hi / 1e6;
    // Keep the lowest visible curve point on screen.
    for (const Curve &c : curves_)
        y_lo = std::min(y_lo, curveValue(c, xLo_) / 2.0);
    if (!(y_lo > 0.0))
        y_lo = y_hi / 1e9;

    Axis xaxis(Scale::Log, xLo_, xHi_, ml, width - mr);
    Axis yaxis(Scale::Log, y_lo, y_hi, height - mb, mt);

    // Frame and ticks.
    svg.rect(ml, mt, width - ml - mr, height - mt - mb, "#888888");
    for (double t : xaxis.ticks()) {
        double px = xaxis.toPixel(t);
        svg.line(px, height - mb, px, height - mb + 4, "#888888");
        svg.text(px, height - mb + 18, Axis::formatTick(t), 11,
                 TextAnchor::Middle);
    }
    for (double t : yaxis.ticks()) {
        double py = yaxis.toPixel(t);
        svg.line(ml - 4, py, ml, py, "#888888");
        svg.text(ml - 8, py + 4, Axis::formatTick(t / kGiga), 11,
                 TextAnchor::End);
    }
    svg.text(width / 2, height - 12, "operational intensity (ops/byte)",
             12, TextAnchor::Middle);
    svg.text(18, height / 2, "attainable Gops/s", 12, TextAnchor::Middle,
             "#222222", -90.0);
    svg.text(width / 2, 22, title_, 14, TextAnchor::Middle);

    // Curves: sample densely in log space to keep the knee sharp.
    for (size_t ci = 0; ci < curves_.size(); ++ci) {
        const Curve &c = curves_[ci];
        std::vector<std::pair<double, double>> pts;
        for (double x : logspace(xLo_, xHi_, 128)) {
            double y = curveValue(c, x);
            pts.emplace_back(xaxis.toPixel(x), yaxis.toPixel(y));
        }
        bool dashed = std::isinf(c.flat); // memory roofline
        svg.polyline(pts, color(ci), 2.0, dashed);
        // Label near the right end of the curve.
        double label_y = yaxis.toPixel(curveValue(c, xHi_));
        svg.text(width - mr - 4, label_y - 5, c.label, 11,
                 TextAnchor::End, color(ci));
    }

    // Drop lines and markers.
    for (const Drop &d : drops_) {
        double px = xaxis.toPixel(d.x);
        svg.line(px, yaxis.toPixel(y_lo), px, yaxis.toPixel(d.y),
                 "#555555", 1.0, true);
        svg.circle(px, yaxis.toPixel(d.y), 3.5, "#000000");
        svg.text(px + 4, yaxis.toPixel(d.y) - 6, d.label, 10);
    }
    return svg.render();
}

std::string
RooflinePlot::renderAscii(size_t cols, size_t rows) const
{
    if (curves_.empty())
        fatal("roofline plot has no curves");

    const long ml = 9, mb = 2, mt = 1;
    AsciiCanvas canvas(cols, rows);

    double y_hi = maxCurveValue() * 2.0;
    double y_lo = y_hi;
    for (const Curve &c : curves_)
        y_lo = std::min(y_lo, curveValue(c, xLo_));
    y_lo = std::max(y_lo / 2.0, y_hi / 1e9);

    Axis xaxis(Scale::Log, xLo_, xHi_, ml + 1,
               static_cast<double>(cols) - 2);
    Axis yaxis(Scale::Log, y_lo, y_hi,
               static_cast<double>(rows) - mb - 1, mt);

    // Axes.
    for (long r = mt; r < static_cast<long>(rows) - mb; ++r)
        canvas.put(ml, r, '|');
    for (long c = ml; c < static_cast<long>(cols) - 1; ++c)
        canvas.put(c, static_cast<long>(rows) - mb, '-');
    canvas.put(ml, static_cast<long>(rows) - mb, '+');
    canvas.write(0, 0, title_.substr(0, cols));

    // Y labels at top and bottom (Gops/s).
    canvas.write(0, mt, padLeft(Axis::formatTick(y_hi / kGiga), 8));
    canvas.write(0, static_cast<long>(rows) - mb - 1,
                 padLeft(Axis::formatTick(y_lo / kGiga), 8));
    canvas.write(ml, static_cast<long>(rows) - 1,
                 Axis::formatTick(xLo_) + " .. I (ops/B) .. " +
                     Axis::formatTick(xHi_));

    // Curves.
    const char glyphs[] = {'*', 'o', '#', '%', '@', '+', 'x', '='};
    for (size_t ci = 0; ci < curves_.size(); ++ci) {
        const Curve &c = curves_[ci];
        char glyph = glyphs[ci % sizeof(glyphs)];
        for (double x : logspace(xLo_, xHi_, cols * 2)) {
            double y = curveValue(c, x);
            if (y < y_lo || y > y_hi)
                continue;
            canvas.put(static_cast<long>(std::lround(xaxis.toPixel(x))),
                       static_cast<long>(std::lround(yaxis.toPixel(y))),
                       glyph);
        }
    }

    // Drop markers.
    for (const Drop &d : drops_) {
        long px = static_cast<long>(std::lround(xaxis.toPixel(d.x)));
        long py = static_cast<long>(std::lround(yaxis.toPixel(d.y)));
        for (long r = py + 1; r < static_cast<long>(rows) - mb; ++r)
            canvas.put(px, r, ':');
        canvas.put(px, py, 'V');
    }

    std::string out = canvas.render();
    // Legend.
    for (size_t ci = 0; ci < curves_.size(); ++ci) {
        out += "  ";
        out += glyphs[ci % sizeof(glyphs)];
        out += " " + curves_[ci].label + "\n";
    }
    return out;
}

} // namespace gables
