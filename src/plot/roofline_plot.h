/**
 * @file
 * Roofline and multi-roofline (Gables) charts on log-log axes —
 * Figure 1, Figures 7/9, and the scaled-roofline visualization of
 * paper Section III-C with drop lines at the operating intensities.
 */

#ifndef GABLES_PLOT_ROOFLINE_PLOT_H
#define GABLES_PLOT_ROOFLINE_PLOT_H

#include <string>
#include <vector>

#include "core/gables.h"
#include "core/roofline.h"

namespace gables {

/**
 * Builder for roofline charts. Add plain rooflines (classic view) or
 * a whole Gables SoC/usecase (scaled view), then render to SVG or
 * ASCII.
 */
class RooflinePlot
{
  public:
    /**
     * @param title  Chart title.
     * @param x_lo   Lowest intensity shown (ops/byte), > 0.
     * @param x_hi   Highest intensity shown.
     */
    RooflinePlot(std::string title, double x_lo = 0.01,
                 double x_hi = 100.0);

    /**
     * Add a classic roofline: flat roof at peakPerf, slanted roof at
     * peakBw * x.
     */
    void addRoofline(const Roofline &roofline);

    /**
     * Add the scaled-roofline family of a Gables evaluation: one
     * scaled roofline per IP with work (min(Bi x, Ai Ppeak) / fi), the
     * memory roofline (Bpeak x), a drop line at each operating
     * intensity (Ii, Iavg), and a marker at the attainable bound.
     */
    void addGables(const SocSpec &soc, const Usecase &usecase);

    /**
     * Add a free-standing drop line at intensity @p x up to value
     * @p y with label.
     */
    void addDropLine(double x, double y, const std::string &label);

    /** @return The SVG document. */
    std::string renderSvg(double width = 720.0,
                          double height = 480.0) const;

    /** @return An ASCII rendering (for the CLI). */
    std::string renderAscii(size_t cols = 76, size_t rows = 24) const;

  private:
    struct Curve {
        std::string label;
        // Piecewise description: y = min(slope * x, flat) / divisor;
        // flat may be +inf for slanted-only (memory) curves.
        double slope;
        double flat;
        double divisor;
    };
    struct Drop {
        double x;
        double y;
        std::string label;
    };

    double curveValue(const Curve &c, double x) const;
    double maxCurveValue() const;

    std::string title_;
    double xLo_;
    double xHi_;
    std::vector<Curve> curves_;
    std::vector<Drop> drops_;
};

} // namespace gables

#endif // GABLES_PLOT_ROOFLINE_PLOT_H
