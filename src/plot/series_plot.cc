#include "plot/series_plot.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "plot/ascii.h"
#include "plot/svg.h"
#include "util/logging.h"

namespace gables {

namespace {

const char *kPalette[] = {
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd",
    "#ff7f0e", "#8c564b", "#17becf", "#7f7f7f",
};

const char *
color(size_t i)
{
    return kPalette[i % (sizeof(kPalette) / sizeof(kPalette[0]))];
}

} // namespace

SeriesPlot::SeriesPlot(std::string title, std::string x_label,
                       std::string y_label)
    : title_(std::move(title)), xLabel_(std::move(x_label)),
      yLabel_(std::move(y_label))
{}

void
SeriesPlot::setScales(Scale x_scale, Scale y_scale)
{
    xScale_ = x_scale;
    yScale_ = y_scale;
}

void
SeriesPlot::addSeries(const Series &series)
{
    if (series.x.size() != series.y.size())
        fatal("series '" + series.label + "' has mismatched x/y sizes");
    if (series.x.empty())
        fatal("series '" + series.label + "' is empty");
    series_.push_back(series);
}

void
SeriesPlot::dataRange(double &x_lo, double &x_hi, double &y_lo,
                      double &y_hi) const
{
    x_lo = y_lo = std::numeric_limits<double>::infinity();
    x_hi = y_hi = -std::numeric_limits<double>::infinity();
    for (const Series &s : series_) {
        for (size_t i = 0; i < s.x.size(); ++i) {
            // Skip points a log axis cannot show.
            if (xScale_ == Scale::Log && !(s.x[i] > 0.0))
                continue;
            if (yScale_ == Scale::Log && !(s.y[i] > 0.0))
                continue;
            x_lo = std::min(x_lo, s.x[i]);
            x_hi = std::max(x_hi, s.x[i]);
            y_lo = std::min(y_lo, s.y[i]);
            y_hi = std::max(y_hi, s.y[i]);
        }
    }
    if (!(x_hi > x_lo)) {
        x_lo -= 0.5;
        x_hi += 0.5;
    }
    if (!(y_hi > y_lo)) {
        double pad = yScale_ == Scale::Log ? 0.0 : 0.5;
        y_lo = yScale_ == Scale::Log ? y_lo / 2.0 : y_lo - pad;
        y_hi = yScale_ == Scale::Log ? y_hi * 2.0 : y_hi + pad;
    } else if (yScale_ == Scale::Log) {
        y_lo /= 1.5;
        y_hi *= 1.5;
    } else {
        double pad = (y_hi - y_lo) * 0.08;
        y_lo -= pad;
        y_hi += pad;
    }
}

std::string
SeriesPlot::renderSvg(double width, double height) const
{
    if (series_.empty())
        fatal("series plot has no data");

    const double ml = 70.0, mr = 20.0, mt = 40.0, mb = 50.0;
    SvgCanvas svg(width, height);

    double x_lo, x_hi, y_lo, y_hi;
    dataRange(x_lo, x_hi, y_lo, y_hi);
    Axis xaxis(xScale_, x_lo, x_hi, ml, width - mr);
    Axis yaxis(yScale_, y_lo, y_hi, height - mb, mt);

    svg.rect(ml, mt, width - ml - mr, height - mt - mb, "#888888");
    for (double t : xaxis.ticks()) {
        double px = xaxis.toPixel(t);
        svg.line(px, height - mb, px, height - mb + 4, "#888888");
        svg.text(px, height - mb + 18, Axis::formatTick(t), 11,
                 TextAnchor::Middle);
    }
    for (double t : yaxis.ticks()) {
        double py = yaxis.toPixel(t);
        svg.line(ml - 4, py, ml, py, "#888888");
        svg.text(ml - 8, py + 4, Axis::formatTick(t), 11,
                 TextAnchor::End);
    }
    svg.text(width / 2, height - 12, xLabel_, 12, TextAnchor::Middle);
    svg.text(18, height / 2, yLabel_, 12, TextAnchor::Middle, "#222222",
             -90.0);
    svg.text(width / 2, 22, title_, 14, TextAnchor::Middle);

    for (size_t si = 0; si < series_.size(); ++si) {
        const Series &s = series_[si];
        std::vector<std::pair<double, double>> pts;
        for (size_t i = 0; i < s.x.size(); ++i) {
            if (xScale_ == Scale::Log && !(s.x[i] > 0.0))
                continue;
            if (yScale_ == Scale::Log && !(s.y[i] > 0.0))
                continue;
            pts.emplace_back(xaxis.toPixel(s.x[i]),
                             yaxis.toPixel(s.y[i]));
        }
        svg.polyline(pts, color(si), 2.0);
        for (const auto &[px, py] : pts)
            svg.circle(px, py, 2.5, color(si));
        // Legend entry.
        double ly = mt + 16.0 * (si + 1);
        svg.line(ml + 8, ly, ml + 28, ly, color(si), 2.0);
        svg.text(ml + 34, ly + 4, s.label, 11, TextAnchor::Start,
                 color(si));
    }
    return svg.render();
}

std::string
SeriesPlot::renderAscii(size_t cols, size_t rows) const
{
    if (series_.empty())
        fatal("series plot has no data");

    const long ml = 9, mb = 2, mt = 1;
    AsciiCanvas canvas(cols, rows);

    double x_lo, x_hi, y_lo, y_hi;
    dataRange(x_lo, x_hi, y_lo, y_hi);
    Axis xaxis(xScale_, x_lo, x_hi, ml + 1,
               static_cast<double>(cols) - 2);
    Axis yaxis(yScale_, y_lo, y_hi,
               static_cast<double>(rows) - mb - 1, mt);

    for (long r = mt; r < static_cast<long>(rows) - mb; ++r)
        canvas.put(ml, r, '|');
    for (long c = ml; c < static_cast<long>(cols) - 1; ++c)
        canvas.put(c, static_cast<long>(rows) - mb, '-');
    canvas.put(ml, static_cast<long>(rows) - mb, '+');
    canvas.write(0, 0, title_.substr(0, cols));
    canvas.write(0, mt, Axis::formatTick(y_hi).substr(0, 8));
    canvas.write(0, static_cast<long>(rows) - mb - 1,
                 Axis::formatTick(y_lo).substr(0, 8));
    canvas.write(ml, static_cast<long>(rows) - 1,
                 Axis::formatTick(x_lo) + " .. " + xLabel_ + " .. " +
                     Axis::formatTick(x_hi));

    const char glyphs[] = {'*', 'o', '#', '%', '@', '+', 'x', '='};
    for (size_t si = 0; si < series_.size(); ++si) {
        const Series &s = series_[si];
        char glyph = glyphs[si % sizeof(glyphs)];
        long prev_c = -1, prev_r = -1;
        for (size_t i = 0; i < s.x.size(); ++i) {
            if (xScale_ == Scale::Log && !(s.x[i] > 0.0))
                continue;
            if (yScale_ == Scale::Log && !(s.y[i] > 0.0))
                continue;
            long c = static_cast<long>(
                std::lround(xaxis.toPixel(s.x[i])));
            long r = static_cast<long>(
                std::lround(yaxis.toPixel(s.y[i])));
            if (prev_c >= 0)
                canvas.line(prev_c, prev_r, c, r, glyph);
            else
                canvas.put(c, r, glyph);
            prev_c = c;
            prev_r = r;
        }
    }

    std::string out = canvas.render();
    for (size_t si = 0; si < series_.size(); ++si) {
        out += "  ";
        out += glyphs[si % sizeof(glyphs)];
        out += " " + series_[si].label + "\n";
    }
    return out;
}

} // namespace gables
