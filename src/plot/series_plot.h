/**
 * @file
 * Multi-series line charts (Figure 8's mixing curves, Figure 2's
 * market trends, sweep outputs) with selectable linear/log axes,
 * rendered to SVG or ASCII.
 */

#ifndef GABLES_PLOT_SERIES_PLOT_H
#define GABLES_PLOT_SERIES_PLOT_H

#include <string>
#include <vector>

#include "analysis/sweep.h"
#include "plot/axes.h"

namespace gables {

/**
 * Builder for line charts over Series data.
 */
class SeriesPlot
{
  public:
    /**
     * @param title   Chart title.
     * @param x_label X-axis label.
     * @param y_label Y-axis label.
     */
    SeriesPlot(std::string title, std::string x_label,
               std::string y_label);

    /** Select axis scales (default: both linear). */
    void setScales(Scale x_scale, Scale y_scale);

    /** Add a data series. */
    void addSeries(const Series &series);

    /** @return The SVG document. */
    std::string renderSvg(double width = 720.0,
                          double height = 480.0) const;

    /** @return An ASCII rendering. */
    std::string renderAscii(size_t cols = 76, size_t rows = 24) const;

  private:
    void dataRange(double &x_lo, double &x_hi, double &y_lo,
                   double &y_hi) const;

    std::string title_;
    std::string xLabel_;
    std::string yLabel_;
    Scale xScale_ = Scale::Linear;
    Scale yScale_ = Scale::Linear;
    std::vector<Series> series_;
};

} // namespace gables

#endif // GABLES_PLOT_SERIES_PLOT_H
