#include "plot/svg.h"

#include <fstream>

#include "util/logging.h"

namespace gables {

SvgCanvas::SvgCanvas(double width, double height)
    : width_(width), height_(height)
{
    if (!(width > 0.0) || !(height > 0.0))
        fatal("SVG canvas dimensions must be positive");
}

std::string
SvgCanvas::escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '&': out += "&amp;"; break;
          case '<': out += "&lt;"; break;
          case '>': out += "&gt;"; break;
          case '"': out += "&quot;"; break;
          default: out += c;
        }
    }
    return out;
}

void
SvgCanvas::line(double x1, double y1, double x2, double y2,
                const std::string &stroke, double stroke_width,
                bool dashed)
{
    body_ << "<line x1=\"" << x1 << "\" y1=\"" << y1 << "\" x2=\"" << x2
          << "\" y2=\"" << y2 << "\" stroke=\"" << stroke
          << "\" stroke-width=\"" << stroke_width << "\"";
    if (dashed)
        body_ << " stroke-dasharray=\"5,4\"";
    body_ << "/>\n";
}

void
SvgCanvas::polyline(const std::vector<std::pair<double, double>> &points,
                    const std::string &stroke, double stroke_width,
                    bool dashed)
{
    if (points.size() < 2)
        return;
    body_ << "<polyline fill=\"none\" stroke=\"" << stroke
          << "\" stroke-width=\"" << stroke_width << "\"";
    if (dashed)
        body_ << " stroke-dasharray=\"5,4\"";
    body_ << " points=\"";
    for (const auto &[x, y] : points)
        body_ << x << ',' << y << ' ';
    body_ << "\"/>\n";
}

void
SvgCanvas::rect(double x, double y, double w, double h,
                const std::string &stroke, const std::string &fill)
{
    body_ << "<rect x=\"" << x << "\" y=\"" << y << "\" width=\"" << w
          << "\" height=\"" << h << "\" stroke=\"" << stroke
          << "\" fill=\"" << fill << "\"/>\n";
}

void
SvgCanvas::circle(double cx, double cy, double r, const std::string &fill)
{
    body_ << "<circle cx=\"" << cx << "\" cy=\"" << cy << "\" r=\"" << r
          << "\" fill=\"" << fill << "\"/>\n";
}

void
SvgCanvas::text(double x, double y, const std::string &content,
                double size, TextAnchor anchor, const std::string &fill,
                double rotate)
{
    const char *anchor_name = "start";
    if (anchor == TextAnchor::Middle)
        anchor_name = "middle";
    else if (anchor == TextAnchor::End)
        anchor_name = "end";
    body_ << "<text x=\"" << x << "\" y=\"" << y << "\" font-size=\""
          << size << "\" font-family=\"sans-serif\" text-anchor=\""
          << anchor_name << "\" fill=\"" << fill << "\"";
    if (rotate != 0.0)
        body_ << " transform=\"rotate(" << rotate << ' ' << x << ' ' << y
              << ")\"";
    body_ << '>' << escape(content) << "</text>\n";
}

std::string
SvgCanvas::render() const
{
    std::ostringstream oss;
    oss << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
        << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width_
        << "\" height=\"" << height_ << "\" viewBox=\"0 0 " << width_
        << ' ' << height_ << "\">\n"
        << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n"
        << body_.str() << "</svg>\n";
    return oss.str();
}

void
SvgCanvas::save(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open '" + path + "' for writing");
    out << render();
    if (!out)
        fatal("failed writing SVG to '" + path + "'");
}

} // namespace gables
