/**
 * @file
 * A minimal SVG drawing backend: primitives with inline styling,
 * accumulated into a standalone SVG document. Enough to render the
 * paper's roofline and series figures without external dependencies.
 */

#ifndef GABLES_PLOT_SVG_H
#define GABLES_PLOT_SVG_H

#include <sstream>
#include <string>
#include <vector>

namespace gables {

/** Text anchor positions, matching the SVG attribute. */
enum class TextAnchor { Start, Middle, End };

/**
 * An SVG document builder. Coordinates are in pixels with the origin
 * at the top-left (standard SVG convention); plot classes handle the
 * y-flip from data space.
 */
class SvgCanvas
{
  public:
    /**
     * @param width  Document width in pixels.
     * @param height Document height in pixels.
     */
    SvgCanvas(double width, double height);

    /** @return Document width. */
    double width() const { return width_; }

    /** @return Document height. */
    double height() const { return height_; }

    /** Draw a line segment. */
    void line(double x1, double y1, double x2, double y2,
              const std::string &stroke = "#222222",
              double stroke_width = 1.0, bool dashed = false);

    /** Draw a polyline through the given points. */
    void polyline(const std::vector<std::pair<double, double>> &points,
                  const std::string &stroke = "#222222",
                  double stroke_width = 1.5, bool dashed = false);

    /** Draw an axis-aligned rectangle (outline + optional fill). */
    void rect(double x, double y, double w, double h,
              const std::string &stroke = "#222222",
              const std::string &fill = "none");

    /** Draw a filled circle. */
    void circle(double cx, double cy, double r,
                const std::string &fill = "#222222");

    /**
     * Draw text.
     *
     * @param rotate Degrees of rotation about the text origin (e.g.
     *               -90 for a vertical y-axis label).
     */
    void text(double x, double y, const std::string &content,
              double size = 12.0, TextAnchor anchor = TextAnchor::Start,
              const std::string &fill = "#222222", double rotate = 0.0);

    /** @return The complete SVG document. */
    std::string render() const;

    /**
     * Write the document to @p path.
     * @throws FatalError on I/O failure.
     */
    void save(const std::string &path) const;

  private:
    static std::string escape(const std::string &s);

    double width_;
    double height_;
    std::ostringstream body_;
};

} // namespace gables

#endif // GABLES_PLOT_SVG_H
