#include "plot/viz_export.h"

#include <cmath>

#include "util/json_writer.h"
#include "util/math_util.h"
#include "util/strings.h"

namespace gables {

void
writeVisualizationJson(std::ostream &out, const SocSpec &soc,
                       const Usecase &usecase, double x_lo, double x_hi,
                       size_t samples)
{
    GablesResult result = GablesModel::evaluate(soc, usecase);
    std::vector<double> xs = logspace(x_lo, x_hi, samples);

    JsonWriter json(out);
    json.beginObject();
    json.kv("soc", soc.name());
    json.kv("usecase", usecase.name());
    json.numberArray("x", xs);

    json.key("curves");
    json.beginArray();
    for (size_t i = 0; i < soc.numIps(); ++i) {
        if (usecase.fraction(i) == 0.0)
            continue; // omitted, as in the paper's plots
        json.beginObject();
        json.kv("label", soc.ip(i).name + " (f=" +
                             formatDouble(usecase.fraction(i), 3) +
                             ")");
        json.kv("kind", "ip");
        json.kv("ip", static_cast<int>(i));
        std::vector<double> ys;
        ys.reserve(xs.size());
        for (double x : xs)
            ys.push_back(
                GablesModel::scaledIpRoofline(soc, usecase, i, x));
        json.numberArray("y", ys);
        json.endObject();
    }
    {
        json.beginObject();
        json.kv("label", "memory");
        json.kv("kind", "memory");
        std::vector<double> ys;
        ys.reserve(xs.size());
        for (double x : xs)
            ys.push_back(GablesModel::memoryRoofline(soc, x));
        json.numberArray("y", ys);
        json.endObject();
    }
    json.endArray();

    json.key("drops");
    json.beginArray();
    for (size_t i = 0; i < soc.numIps(); ++i) {
        double f = usecase.fraction(i);
        double intensity = usecase.intensity(i);
        if (f == 0.0 || std::isinf(intensity))
            continue;
        json.beginObject();
        json.kv("label", "I" + std::to_string(i));
        json.kv("x", intensity);
        json.kv("y", GablesModel::scaledIpRoofline(soc, usecase, i,
                                                   intensity));
        json.endObject();
    }
    if (!std::isinf(result.averageIntensity)) {
        json.beginObject();
        json.kv("label", "Iavg");
        json.kv("x", result.averageIntensity);
        json.kv("y", GablesModel::memoryRoofline(
                         soc, result.averageIntensity));
        json.endObject();
    }
    json.endArray();

    json.kv("attainable", result.attainable);
    json.kv("bottleneck", result.bottleneckLabel(soc));
    json.endObject();
}

} // namespace gables
