/**
 * @file
 * Machine-readable export of the scaled-roofline visualization (the
 * interface behind the paper's interactive web tool [10]): for a
 * SoC/usecase pair, emit the curve of every active IP's scaled
 * roofline, the memory roofline, the drop points at the operating
 * intensities, and the attainable bound as one JSON document a
 * front-end can plot directly.
 */

#ifndef GABLES_PLOT_VIZ_EXPORT_H
#define GABLES_PLOT_VIZ_EXPORT_H

#include <ostream>

#include "core/gables.h"

namespace gables {

/**
 * Write the visualization JSON for @p usecase on @p soc to @p out.
 *
 * Document shape:
 * @code
 * {
 *   "soc": "...", "usecase": "...",
 *   "x": [intensities...],          // shared log-spaced abscissae
 *   "curves": [
 *     {"label": "CPU (f=0.25)", "kind": "ip", "ip": 0,
 *      "y": [...]},
 *     {"label": "memory", "kind": "memory", "y": [...]}
 *   ],
 *   "drops": [{"label": "I0", "x": 8, "y": 1.6e11}, ...],
 *   "attainable": 1.6e11,
 *   "bottleneck": "memory interface (Bpeak)"
 * }
 * @endcode
 *
 * @param samples Points per curve (log-spaced over [x_lo, x_hi]).
 */
void writeVisualizationJson(std::ostream &out, const SocSpec &soc,
                            const Usecase &usecase, double x_lo = 0.01,
                            double x_hi = 100.0, size_t samples = 64);

} // namespace gables

#endif // GABLES_PLOT_VIZ_EXPORT_H
