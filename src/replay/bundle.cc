#include "replay/bundle.h"

#include "util/json_writer.h"
#include "util/logging.h"
#include "util/parse.h"
#include "util/strings.h"

namespace gables {
namespace replay {

void
writeJsonValue(JsonWriter &json, const JsonValue &value)
{
    switch (value.type()) {
      case JsonValue::Type::Null:
        json.valueNull();
        break;
      case JsonValue::Type::Bool:
        json.value(value.asBool());
        break;
      case JsonValue::Type::Number:
        json.value(value.asNumber());
        break;
      case JsonValue::Type::String:
        json.value(value.asString());
        break;
      case JsonValue::Type::Array:
        json.beginArray();
        for (const JsonValue &item : value.items())
            writeJsonValue(json, item);
        json.endArray();
        break;
      case JsonValue::Type::Object:
        json.beginObject();
        for (const auto &m : value.members()) {
            json.key(m.first);
            writeJsonValue(json, m.second);
        }
        json.endObject();
        break;
    }
}

void
writeBundle(std::ostream &out, const ReplayBundle &bundle)
{
    JsonWriter json(out, true);
    json.beginObject();

    json.key("schema");
    json.beginObject();
    json.kv("name", ReplayBundle::kSchemaName);
    json.kv("version", bundle.schemaVersion);
    json.endObject();

    json.key("command");
    json.beginObject();
    json.kv("subcommand", bundle.subcommand());
    json.key("argv");
    json.beginArray();
    for (const std::string &arg : bundle.argv)
        json.value(arg);
    json.endArray();
    json.endObject();

    json.key("config_files");
    json.beginObject();
    for (const auto &[path, contents] : bundle.configFiles)
        json.kv(path, contents);
    json.endObject();

    json.kv("exit_code", bundle.exitCode);

    json.key("tolerance");
    json.beginObject();
    json.kv("tol_rel", bundle.tolerance.tolRel);
    json.kv("tol_abs", bundle.tolerance.tolAbs);
    json.key("ignore");
    json.beginArray();
    for (const std::string &ig : bundle.tolerance.ignore)
        json.value(ig);
    json.endArray();
    json.endObject();

    if (bundle.hasReport) {
        json.key("report");
        writeJsonValue(json, bundle.report);
    }

    json.endObject();
    out << '\n';
}

namespace {

/** Fail bundle decoding with a "source: message" ConfigError. */
[[noreturn]] void
badBundle(const std::string &source, const std::string &msg)
{
    throw ConfigError(SourceLoc{source, 0}, msg);
}

} // namespace

ReplayBundle
parseBundle(const JsonValue &doc, const std::string &source)
{
    if (!doc.isObject())
        badBundle(source, "replay bundle root must be an object");
    if (!doc.has("schema") || !doc.at("schema").isObject())
        badBundle(source, "replay bundle has no schema header");
    const JsonValue &schema = doc.at("schema");
    if (!schema.has("name") || !schema.at("name").isString() ||
        schema.at("name").asString() != ReplayBundle::kSchemaName)
        badBundle(source, "not a replay bundle (schema name is not '" +
                              std::string(ReplayBundle::kSchemaName) +
                              "')");
    if (!schema.has("version") || !schema.at("version").isNumber())
        badBundle(source, "replay bundle schema has no version");
    double version = schema.at("version").asNumber();
    if (version != ReplayBundle::kSchemaVersion)
        badBundle(source,
                  "unsupported replay bundle schema version " +
                      formatDouble(version, 0) + " (this build reads "
                      "version " +
                      std::to_string(ReplayBundle::kSchemaVersion) +
                      ")");

    ReplayBundle bundle;
    bundle.schemaVersion = ReplayBundle::kSchemaVersion;

    if (!doc.has("command") || !doc.at("command").isObject() ||
        !doc.at("command").has("argv") ||
        !doc.at("command").at("argv").isArray())
        badBundle(source, "replay bundle has no command.argv array");
    for (const JsonValue &arg : doc.at("command").at("argv").items()) {
        if (!arg.isString())
            badBundle(source, "command.argv entries must be strings");
        bundle.argv.push_back(arg.asString());
    }
    if (bundle.argv.size() < 2)
        badBundle(source, "command.argv must name a subcommand");

    if (doc.has("config_files")) {
        if (!doc.at("config_files").isObject())
            badBundle(source, "config_files must be an object");
        for (const auto &m : doc.at("config_files").members()) {
            if (!m.second.isString())
                badBundle(source, "config_files values must be the "
                                  "file contents as strings");
            bundle.configFiles[m.first] = m.second.asString();
        }
    }

    if (!doc.has("exit_code") || !doc.at("exit_code").isNumber())
        badBundle(source, "replay bundle has no exit_code");
    bundle.exitCode =
        static_cast<int>(doc.at("exit_code").asNumber());

    if (doc.has("tolerance")) {
        const JsonValue &tol = doc.at("tolerance");
        if (!tol.isObject())
            badBundle(source, "tolerance must be an object");
        if (tol.has("tol_rel"))
            bundle.tolerance.tolRel = tol.at("tol_rel").asNumber();
        if (tol.has("tol_abs"))
            bundle.tolerance.tolAbs = tol.at("tol_abs").asNumber();
        if (bundle.tolerance.tolRel < 0.0 ||
            bundle.tolerance.tolAbs < 0.0)
            badBundle(source, "tolerance values must be >= 0");
        if (tol.has("ignore")) {
            if (!tol.at("ignore").isArray())
                badBundle(source, "tolerance.ignore must be an array");
            for (const JsonValue &ig : tol.at("ignore").items()) {
                if (!ig.isString())
                    badBundle(source, "tolerance.ignore entries must "
                                      "be strings");
                bundle.tolerance.ignore.push_back(ig.asString());
            }
        }
    }

    if (doc.has("report")) {
        if (!doc.at("report").isObject())
            badBundle(source, "report must be an object");
        bundle.hasReport = true;
        bundle.report = doc.at("report");
    }
    return bundle;
}

} // namespace replay
} // namespace gables
