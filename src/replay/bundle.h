/**
 * @file
 * The replay bundle: a schema-versioned JSON artifact capturing one
 * complete `gables` CLI invocation — the argv, every config file it
 * read (contents inlined, so the bundle stays valid when the tree
 * changes), the exit code, a per-bundle diff tolerance block, and
 * the RunReport the run produced. Bundles are the durable form of
 * the repo's determinism claims: `gables replay` re-executes the
 * captured invocation in-process and diffs the fresh RunReport
 * against the recorded one (docs/REPLAY.md).
 */

#ifndef GABLES_REPLAY_BUNDLE_H
#define GABLES_REPLAY_BUNDLE_H

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "util/json_reader.h"

namespace gables {

class JsonWriter;

namespace replay {

/**
 * Per-bundle diff tolerances, applied when the replayed RunReport is
 * compared against the recorded one. The report's "schema" subtree
 * is always compared exactly regardless of these knobs (the diff
 * engine enforces that), so a report-schema bump can never hide
 * inside a tolerance.
 */
struct ReplayTolerance {
    /** Relative tolerance for numeric report fields. */
    double tolRel = 0.0;
    /** Absolute tolerance for numeric report fields. */
    double tolAbs = 0.0;
    /**
     * Report fields to skip, in ReportDiffOptions::ignore syntax
     * (whole member keys or dotted-path prefixes). Recorded bundles
     * default to the host-dependent fields: the "profile" subtree
     * and per-worker wall-clock times.
     */
    std::vector<std::string> ignore;
};

/** One recorded invocation, ready to serialize or re-execute. */
struct ReplayBundle {
    /** Bump when the bundle JSON layout changes incompatibly. */
    static constexpr int kSchemaVersion = 1;
    /** The schema identifier emitted under "schema"."name". */
    static constexpr const char *kSchemaName = "gables-replay-bundle";

    /**
     * Schema version this bundle claims; parseBundle() rejects any
     * value other than kSchemaVersion with a ConfigError, which the
     * replayer maps to the usage exit code (2).
     */
    int schemaVersion = kSchemaVersion;

    /**
     * The captured command line after global-flag stripping:
     * argv[0] is "gables", argv[1] the subcommand. Host-dependent
     * global flags (--log-level, --profile, --record itself) are
     * never recorded, so a bundle replays under the replay
     * invocation's own settings.
     */
    std::vector<std::string> argv;

    /**
     * Every config file the run read, path -> full contents. On
     * replay these are installed as loadSocConfig() overrides, so
     * the captured bytes win over whatever is on disk.
     */
    std::map<std::string, std::string> configFiles;

    /** Exit code of the recorded run (0/1/2 contract). */
    int exitCode = 0;

    /** Diff tolerances for the report comparison. */
    ReplayTolerance tolerance;

    /** True when the recorded run wrote a RunReport. */
    bool hasReport = false;

    /** The recorded RunReport document (Null when !hasReport). */
    JsonValue report;

    /** @return argv[1], or "" for a (malformed) short argv. */
    std::string subcommand() const
    {
        return argv.size() > 1 ? argv[1] : std::string();
    }
};

/** Serialize @p bundle as pretty-printed JSON to @p out. */
void writeBundle(std::ostream &out, const ReplayBundle &bundle);

/**
 * Re-emit a parsed JSON value through a writer (used to embed the
 * recorded report inside the bundle; numbers round-trip exactly
 * because both sides speak shortest-faithful doubles).
 */
void writeJsonValue(JsonWriter &json, const JsonValue &value);

/**
 * Parse a bundle document.
 *
 * @param doc    The parsed JSON root.
 * @param source Input name for diagnostics (the bundle path).
 * @return The decoded bundle.
 * @throws ConfigError when the document is not a replay bundle, the
 *         schema name/version do not match, or a section has the
 *         wrong shape. The replayer maps this to exit code 2.
 */
ReplayBundle parseBundle(const JsonValue &doc,
                         const std::string &source);

} // namespace replay
} // namespace gables

#endif // GABLES_REPLAY_BUNDLE_H
