#include "replay/recorder.h"

#include <sstream>

#include "telemetry/report.h"
#include "util/atomic_file.h"
#include "util/json_reader.h"
#include "util/logging.h"

namespace gables {
namespace replay {

Recorder::Recorder(std::vector<std::string> argv)
    : argv_(std::move(argv))
{
    // argv[0] is whatever path launched the binary — normalize it so
    // bundles do not embed host-dependent build-tree paths.
    if (!argv_.empty())
        argv_[0] = "gables";
    observer_ = [this](const std::string &path,
                       const std::string &contents) {
        configFiles_[path] = contents;
    };
    prevSink_ = telemetry::RunReport::setCaptureSink(&reportJson_);
    prevObserver_ = setConfigFileObserver(&observer_);
}

Recorder::~Recorder()
{
    telemetry::RunReport::setCaptureSink(prevSink_);
    setConfigFileObserver(prevObserver_);
}

ReplayBundle
Recorder::bundle(int exit_code) const
{
    ReplayBundle b;
    b.argv = argv_;
    b.configFiles = configFiles_;
    b.exitCode = exit_code;
    // Default tolerance: exact everywhere except the host-dependent
    // subtrees — the self-profiling tree (--profile wall times) and
    // the per-worker busy-time distribution the determinism contract
    // already excludes from byte-identity.
    b.tolerance.ignore = {"profile", "parallel.worker_busy_s"};
    if (!reportJson_.empty()) {
        b.hasReport = true;
        b.report = parseJson(reportJson_);
    }
    return b;
}

void
Recorder::writeBundle(const std::string &path, int exit_code) const
{
    // Atomic write: an interrupted --record run must never leave a
    // truncated bundle for the corpus or the daemon to trip over.
    std::ostringstream out;
    gables::replay::writeBundle(out, bundle(exit_code));
    writeFileAtomic(path, out.str());
    debug("recorded replay bundle " + path);
}

} // namespace replay
} // namespace gables
