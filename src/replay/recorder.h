/**
 * @file
 * Recording side of record/replay: an RAII Recorder that, while
 * alive, captures everything a CLI invocation needs to be replayed —
 * the RunReport it writes (via the telemetry capture sink) and every
 * config file it loads (via the soc/config file observer) — and
 * assembles a ReplayBundle when the run finishes. Recording is
 * byte-transparent: the hooks only copy data on the side, so a run
 * under `--record` produces exactly the same stdout/stderr/files as
 * one without.
 */

#ifndef GABLES_REPLAY_RECORDER_H
#define GABLES_REPLAY_RECORDER_H

#include <map>
#include <string>
#include <vector>

#include "replay/bundle.h"
#include "soc/config.h"

namespace gables {
namespace replay {

/**
 * Captures one invocation. Construct before dispatching the command
 * (installs the capture hooks), run the command, then call bundle()
 * or writeBundle() with the command's exit code. The destructor
 * restores whatever hooks were active before, so recorders nest
 * safely with the replayer's own hooks.
 */
class Recorder
{
  public:
    /**
     * @param argv The invocation to record, after global-flag
     *             stripping: argv[0] "gables", argv[1] the
     *             subcommand.
     */
    explicit Recorder(std::vector<std::string> argv);
    ~Recorder();

    Recorder(const Recorder &) = delete;
    Recorder &operator=(const Recorder &) = delete;

    /**
     * Assemble the bundle from everything captured so far.
     *
     * @param exit_code The recorded command's exit code.
     */
    ReplayBundle bundle(int exit_code) const;

    /**
     * Serialize bundle(@p exit_code) to @p path.
     * @throws FatalError when the file cannot be written.
     */
    void writeBundle(const std::string &path, int exit_code) const;

  private:
    std::vector<std::string> argv_;
    /** Latest RunReport JSON written by the run ("" = none yet). */
    std::string reportJson_;
    /** Config files the run loaded, path -> contents. */
    std::map<std::string, std::string> configFiles_;
    /** The observer registered with setConfigFileObserver(). */
    ConfigFileObserver observer_;

    /** Hooks active before this recorder, restored on destruction. */
    std::string *prevSink_ = nullptr;
    ConfigFileObserver *prevObserver_ = nullptr;
};

} // namespace replay
} // namespace gables

#endif // GABLES_REPLAY_RECORDER_H
