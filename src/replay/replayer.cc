#include "replay/replayer.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "soc/config.h"
#include "telemetry/report.h"
#include "telemetry/report_diff.h"
#include "util/atomic_file.h"
#include "util/logging.h"
#include "util/parse.h"

namespace gables {
namespace replay {

namespace {

/** Read a whole file, fataling with the path on failure. */
std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open replay bundle '" + path + "'");
    std::ostringstream oss;
    oss << in.rdbuf();
    return oss.str();
}

/**
 * Scoped installation of the replay hooks: the bundle's config-file
 * overrides, a fresh-report capture sink, and the artifact-dir
 * redirect for relative output paths baked into the recorded argv.
 * Restores the previous hooks on destruction so replays nest under
 * an active recorder.
 */
class ReplayHooks
{
  public:
    ReplayHooks(const ReplayBundle &bundle,
                const std::string &artifact_dir)
        : overrides_(bundle.configFiles), artifactDir_(artifact_dir)
    {
        prevOverrides_ = setConfigFileOverrides(&overrides_);
        prevSink_ =
            telemetry::RunReport::setCaptureSink(&freshReport_);
        prevArtifactDir_ = setArtifactDirOverride(&artifactDir_);
    }

    ~ReplayHooks()
    {
        setConfigFileOverrides(prevOverrides_);
        telemetry::RunReport::setCaptureSink(prevSink_);
        setArtifactDirOverride(prevArtifactDir_);
    }

    ReplayHooks(const ReplayHooks &) = delete;
    ReplayHooks &operator=(const ReplayHooks &) = delete;

    /** @return The fresh RunReport JSON text ("" = none written). */
    const std::string &freshReport() const { return freshReport_; }

  private:
    std::map<std::string, std::string> overrides_;
    std::string artifactDir_;
    std::string freshReport_;
    const std::map<std::string, std::string> *prevOverrides_ =
        nullptr;
    std::string *prevSink_ = nullptr;
    const std::string *prevArtifactDir_ = nullptr;
};

/** Write the fresh report next to the recorded ones for offline
 * diffing (CI uploads the directory as an artifact on mismatch). */
void
saveFreshReport(const std::string &bundle_path,
                const std::string &dir, const std::string &fresh)
{
    if (dir.empty() || fresh.empty())
        return;
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    std::string stem =
        std::filesystem::path(bundle_path).stem().string();
    std::string out_path =
        (std::filesystem::path(dir) / (stem + ".fresh.json"))
            .string();
    try {
        writeFileAtomic(out_path, fresh);
    } catch (const FatalError &err) {
        // Fresh reports are CI artifacts, not the verdict; a failed
        // save must not mask the replay result.
        warn("cannot write fresh report '" + out_path +
             "': " + err.what());
    }
}

ReplayOutcome
fail(int code, const std::string &status, const std::string &detail)
{
    ReplayOutcome outcome;
    outcome.exitCode = code;
    outcome.status = status;
    outcome.detail = detail;
    return outcome;
}

} // namespace

ReplayOutcome
replayBundle(const std::string &path, const CommandRunner &run,
             const ReplayOptions &opts)
{
    // Bundle decoding errors are exit 2 (the artifact is unusable),
    // mirroring how the CLI treats malformed command lines.
    ReplayBundle bundle;
    try {
        bundle = parseBundle(parseJson(slurp(path)), path);
    } catch (const ConfigError &err) {
        return fail(2, "bad-bundle", err.what());
    } catch (const FatalError &err) {
        return fail(2, "bad-bundle", err.what());
    }
    if (bundle.subcommand() == "replay")
        return fail(2, "bad-bundle",
                    path + ": refusing to replay a nested 'replay' "
                           "invocation");

    ReplayOutcome outcome;
    outcome.subcommand = bundle.subcommand();

    int fresh_code = 0;
    std::string fresh_json;
    {
        ReplayHooks hooks(bundle, opts.artifactDir);
        fresh_code = run(bundle.argv);
        fresh_json = hooks.freshReport();
    }
    saveFreshReport(path, opts.saveFreshDir, fresh_json);

    if (fresh_code != bundle.exitCode) {
        outcome.exitCode = 1;
        outcome.status = "exit-code-mismatch";
        outcome.detail = "recorded exit code " +
                         std::to_string(bundle.exitCode) +
                         ", replay exited " +
                         std::to_string(fresh_code);
        return outcome;
    }

    if (!bundle.hasReport) {
        if (!fresh_json.empty()) {
            outcome.exitCode = 1;
            outcome.status = "report-mismatch";
            outcome.detail = "recorded run wrote no RunReport but "
                             "the replay produced one";
            return outcome;
        }
        outcome.status = "match";
        return outcome;
    }
    if (fresh_json.empty()) {
        outcome.exitCode = 1;
        outcome.status = "report-mismatch";
        outcome.detail = "recorded run wrote a RunReport but the "
                         "replay produced none";
        return outcome;
    }

    telemetry::ReportDiffOptions diff_opts;
    diff_opts.tolRel = bundle.tolerance.tolRel;
    diff_opts.tolAbs = bundle.tolerance.tolAbs;
    diff_opts.ignore = bundle.tolerance.ignore;
    diff_opts.ignore.insert(diff_opts.ignore.end(),
                            opts.extraIgnore.begin(),
                            opts.extraIgnore.end());
    JsonValue fresh;
    try {
        fresh = parseJson(fresh_json);
    } catch (const FatalError &err) {
        outcome.exitCode = 1;
        outcome.status = "report-mismatch";
        outcome.detail =
            std::string("fresh RunReport is unparseable: ") +
            err.what();
        return outcome;
    }
    telemetry::ReportDiffResult diff =
        telemetry::diffReports(bundle.report, fresh, diff_opts);
    outcome.fieldsCompared = diff.fieldsCompared;
    outcome.diffCount = diff.diffs.size();
    if (!diff.identical()) {
        outcome.exitCode = 1;
        outcome.status = "report-mismatch";
        outcome.detail = telemetry::formatDiff(diff);
        return outcome;
    }
    outcome.status = "match";
    return outcome;
}

std::vector<std::string>
listBundles(const std::string &dir)
{
    std::error_code ec;
    std::filesystem::directory_iterator it(dir, ec);
    if (ec)
        fatal("cannot list replay corpus directory '" + dir +
              "': " + ec.message());
    std::vector<std::string> paths;
    for (const std::filesystem::directory_entry &entry : it) {
        if (entry.is_regular_file() &&
            entry.path().extension() == ".json")
            paths.push_back(entry.path().string());
    }
    std::sort(paths.begin(), paths.end());
    return paths;
}

} // namespace replay
} // namespace gables
