/**
 * @file
 * Replay side of record/replay: re-execute a recorded bundle
 * in-process (through a caller-supplied command runner, so the
 * library never depends on the CLI driver) and diff the fresh
 * RunReport against the recorded one with the bundle's tolerance
 * block. The outcome follows the validate-style exit contract:
 * 0 = replay matched, 1 = the replayed run diverged (exit code or
 * report fields), 2 = the bundle itself is unreadable or carries an
 * unsupported schema.
 */

#ifndef GABLES_REPLAY_REPLAYER_H
#define GABLES_REPLAY_REPLAYER_H

#include <functional>
#include <string>
#include <vector>

#include "replay/bundle.h"

namespace gables {
namespace replay {

/**
 * Executes one recorded argv and returns its exit code. The CLI
 * driver passes its own dispatch function; tests can substitute
 * anything with the same shape.
 */
using CommandRunner =
    std::function<int(const std::vector<std::string> &argv)>;

/** Knobs for a replay run. */
struct ReplayOptions {
    /**
     * Extra report fields/paths to skip, appended to the bundle's
     * own tolerance.ignore list (for host-dependent fields a bundle
     * predates, e.g. timings added by a newer build).
     */
    std::vector<std::string> extraIgnore;
    /**
     * When non-empty, write the fresh RunReport of every replayed
     * bundle into this directory as "<bundle-stem>.fresh.json" —
     * CI uploads these next to the recorded bundles on mismatch so
     * regressions can be diffed offline.
     */
    std::string saveFreshDir;
    /**
     * Directory that relative-path artifacts written by the replayed
     * command (e.g. a recorded `--metrics replay-out.json`) are
     * redirected into, so replays don't litter the caller's working
     * directory with the recording's output files. Empty disables
     * the redirect (artifacts land relative to the CWD, as the
     * original run wrote them). Absolute recorded paths are never
     * redirected.
     */
    std::string artifactDir = "out/replay";
};

/** What happened when one bundle was replayed. */
struct ReplayOutcome {
    /** 0 match, 1 divergence, 2 bad bundle (exit contract). */
    int exitCode = 0;
    /** One-word status for summary tables: "match",
     * "report-mismatch", "exit-code-mismatch", "bad-bundle", ... */
    std::string status;
    /** Human-readable detail (diff listing, error message). */
    std::string detail;
    /** The replayed subcommand ("-" when the bundle is unreadable). */
    std::string subcommand = "-";
    /** Report leaf fields compared (0 for report-less bundles). */
    size_t fieldsCompared = 0;
    /** Report fields that differed beyond tolerance. */
    size_t diffCount = 0;

    /** @return True when the replay matched the recording. */
    bool matched() const { return exitCode == 0; }
};

/**
 * Replay the bundle at @p path: parse it, install its inlined config
 * files as loadSocConfig() overrides, re-run the recorded argv
 * through @p run while capturing the fresh RunReport, then compare
 * exit codes and diff the reports. Never throws; failures are
 * reported through the outcome.
 */
ReplayOutcome replayBundle(const std::string &path,
                           const CommandRunner &run,
                           const ReplayOptions &opts = {});

/**
 * @return Sorted paths of every "*.json" file directly inside
 *         @p dir — the batch-mode work list for `replay --all`.
 * @throws FatalError when @p dir cannot be listed.
 */
std::vector<std::string> listBundles(const std::string &dir);

} // namespace replay
} // namespace gables

#endif // GABLES_REPLAY_REPLAYER_H
