#include "serve/cache.h"

#include <cstring>

#include "util/logging.h"

namespace gables {
namespace serve {

namespace {

void
appendRaw(std::string &key, double v)
{
    char raw[sizeof(double)];
    std::memcpy(raw, &v, sizeof(double));
    key.append(raw, sizeof(double));
}

void
appendName(std::string &key, const std::string &name)
{
    key += name;
    key += '\0';
}

} // namespace

std::string
cacheKey(const SocSpec &soc, const Usecase &usecase)
{
    // An exact structural encoding: names NUL-terminated, doubles as
    // raw bytes, so two pairs share a key iff every name matches and
    // every parameter is bit-identical. Packing bytes instead of
    // serializing JSON keeps key construction off the per-request
    // critical path (~50x cheaper than a round-trip format).
    std::string key;
    key.reserve(64 + 24 * (soc.numIps() + usecase.numIps()));
    appendName(key, soc.name());
    appendRaw(key, soc.ppeak());
    appendRaw(key, soc.bpeak());
    for (const IpSpec &ip : soc.ips()) {
        appendName(key, ip.name);
        appendRaw(key, ip.acceleration);
        appendRaw(key, ip.bandwidth);
    }
    key += '\n';
    appendName(key, usecase.name());
    for (const IpWork &w : usecase.work()) {
        appendRaw(key, w.fraction);
        appendRaw(key, w.intensity);
    }
    return key;
}

EvaluatorCache::EvaluatorCache(size_t capacity)
    : capacity_(capacity)
{
    GABLES_ASSERT(capacity >= 1, "cache capacity must be >= 1");
}

size_t
EvaluatorCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return lru_.size();
}

std::shared_ptr<EvaluatorCache::Entry>
EvaluatorCache::acquire(const SocSpec &soc, const Usecase &usecase,
                        bool *hit)
{
    std::string key = cacheKey(soc, usecase);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = index_.find(key);
        if (it != index_.end()) {
            lru_.splice(lru_.begin(), lru_, it->second);
            hits_.fetch_add(1);
            if (hit)
                *hit = true;
            return lru_.front().entry;
        }
    }
    // Compile outside the cache lock: validation may throw and
    // compilation of large specs should not stall concurrent hits.
    auto entry = std::make_shared<Entry>(soc, usecase);
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it != index_.end()) {
        // A concurrent miss on the same pair beat us; use theirs so
        // repeat requests keep sharing one entry.
        lru_.splice(lru_.begin(), lru_, it->second);
        hits_.fetch_add(1);
        if (hit)
            *hit = true;
        return lru_.front().entry;
    }
    misses_.fetch_add(1);
    if (hit)
        *hit = false;
    lru_.push_front(Slot{key, entry});
    index_[key] = lru_.begin();
    while (lru_.size() > capacity_) {
        index_.erase(lru_.back().key);
        lru_.pop_back();
        evictions_.fetch_add(1);
    }
    return entry;
}

} // namespace serve
} // namespace gables
