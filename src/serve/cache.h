/**
 * @file
 * LRU cache of compiled GablesEvaluator instances for the daemon.
 *
 * Compiling a (SocSpec, Usecase) pair validates both specs and
 * derives every per-IP timing lane; at serving rates that cost — and
 * the allocations behind it — dominates a cached evaluation. The
 * cache keys entries by a canonical JSON serialization of the pair
 * (the same writers the CLI uses, so the key is locale-independent
 * and insensitive to how the request spelled its numbers only insofar
 * as they parse to the same doubles), and evicts least-recently-used
 * entries beyond a fixed capacity.
 *
 * Thread-safety: acquire() is safe from any thread. A GablesEvaluator
 * is mutable per-evaluation state, so each entry carries its own
 * mutex; callers lock it for the duration of their evaluation
 * (Entry::lock()). Entries are handed out as shared_ptr so an evicted
 * entry stays alive for requests still using it.
 */

#ifndef GABLES_SERVE_CACHE_H
#define GABLES_SERVE_CACHE_H

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/evaluator.h"
#include "core/soc_spec.h"
#include "core/usecase.h"

namespace gables {
namespace serve {

/** @return The canonical cache key of a (SocSpec, Usecase) pair. */
std::string cacheKey(const SocSpec &soc, const Usecase &usecase);

/**
 * A fixed-capacity LRU cache of compiled evaluators.
 */
class EvaluatorCache
{
  public:
    /** One cached compilation. */
    struct Entry {
        Entry(const SocSpec &s, const Usecase &u)
            : soc(s), usecase(u), evaluator(s, u)
        {}

        const SocSpec soc;
        const Usecase usecase;
        GablesEvaluator evaluator;

        /** Serializes evaluations on this entry's mutable state. */
        std::mutex mutex;
    };

    /** @param capacity Maximum resident entries; >= 1. */
    explicit EvaluatorCache(size_t capacity);

    /**
     * Fetch the compiled evaluator for the pair, compiling and
     * inserting (with LRU eviction) on miss.
     *
     * @param soc     Hardware inputs (validated on compile).
     * @param usecase Software inputs (validated on compile).
     * @param hit     Optional out: true when served from cache.
     * @return The shared entry; lock entry->mutex while evaluating.
     * @throws FatalError when the pair fails validation (nothing is
     *         inserted).
     */
    std::shared_ptr<Entry> acquire(const SocSpec &soc,
                                   const Usecase &usecase,
                                   bool *hit = nullptr);

    /** @return Maximum resident entries. */
    size_t capacity() const { return capacity_; }

    /** @return Current resident entries. */
    size_t size() const;

    /** @name Lifetime counters (monotonic). */
    /** @{ */
    uint64_t hits() const { return hits_.load(); }
    uint64_t misses() const { return misses_.load(); }
    uint64_t evictions() const { return evictions_.load(); }
    /** @} */

  private:
    struct Slot {
        std::string key;
        std::shared_ptr<Entry> entry;
    };

    const size_t capacity_;

    mutable std::mutex mutex_;
    // Front = most recently used.
    std::list<Slot> lru_;
    std::unordered_map<std::string, std::list<Slot>::iterator> index_;

    std::atomic<uint64_t> hits_{0};
    std::atomic<uint64_t> misses_{0};
    std::atomic<uint64_t> evictions_{0};
};

} // namespace serve
} // namespace gables

#endif // GABLES_SERVE_CACHE_H
