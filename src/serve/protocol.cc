#include "serve/protocol.h"

#include <sstream>

#include "util/json_reader.h"
#include "util/json_writer.h"
#include "util/logging.h"

namespace gables {
namespace serve {

std::string
toString(ErrorKind kind)
{
    switch (kind) {
      case ErrorKind::BadRequest: return "bad-request";
      case ErrorKind::Config: return "config";
      case ErrorKind::Deadline: return "deadline";
      case ErrorKind::Internal: return "internal";
    }
    return "internal";
}

int
errorCode(ErrorKind kind)
{
    // Mirrors the CLI exit-code contract: 2 for requests the server
    // cannot understand (usage errors), 1 for requests it understood
    // but could not satisfy.
    return kind == ErrorKind::BadRequest ? 2 : 1;
}

std::string
renderId(const JsonValue *id)
{
    if (id == nullptr)
        return "null";
    std::ostringstream out;
    JsonWriter json(out, false);
    switch (id->type()) {
      case JsonValue::Type::String:
        json.value(id->asString());
        break;
      case JsonValue::Type::Number:
        json.value(id->asNumber());
        break;
      case JsonValue::Type::Bool:
        json.value(id->asBool());
        break;
      default:
        return "null";
    }
    return out.str();
}

std::string
errorResponse(const std::string &id_json, const ServeError &error)
{
    std::ostringstream out;
    out << "{\"id\": " << id_json << ", \"ok\": false, \"error\": ";
    {
        JsonWriter json(out, false);
        json.beginObject();
        json.kv("code", errorCode(error.kind));
        json.kv("kind", toString(error.kind));
        json.kv("message", error.message);
        json.endObject();
    }
    out << "}";
    return out.str();
}

std::string
okResponse(const std::string &id_json, const std::string &result_json)
{
    std::ostringstream out;
    out << "{\"id\": " << id_json << ", \"ok\": true, \"result\": "
        << result_json << "}";
    return out.str();
}

} // namespace serve
} // namespace gables
