/**
 * @file
 * Wire protocol of the `gables serve` evaluation daemon.
 *
 * The protocol is newline-delimited JSON: each request is one JSON
 * object on one line, each response is one JSON object on one line,
 * in request order. Requests carry an "op" (ping / eval / sweep /
 * explore / advise / stats / shutdown) and an optional "id" echoed
 * back verbatim so pipelined clients can match responses.
 *
 * Responses are either
 *
 *   {"id": ..., "ok": true, "result": {...}}
 *
 * or
 *
 *   {"id": ..., "ok": false,
 *    "error": {"code": C, "kind": K, "message": M}}
 *
 * where "code" follows the CLI exit-code contract (docs/ERRORS.md):
 * 1 for evaluation/config errors and expired deadlines, 2 for
 * malformed or unintelligible requests. "kind" is a stable
 * machine-readable discriminator; "message" is the same located
 * diagnostic the CLI prints.
 */

#ifndef GABLES_SERVE_PROTOCOL_H
#define GABLES_SERVE_PROTOCOL_H

#include <string>

namespace gables {

class JsonValue;

namespace serve {

/** Machine-readable error discriminators. */
enum class ErrorKind {
    /** Malformed JSON, missing/unknown op, bad field types (code 2). */
    BadRequest,
    /** Invalid model input: SocSpec/Usecase/config errors (code 1). */
    Config,
    /** The request's deadline expired before completion (code 1). */
    Deadline,
    /** Unexpected server-side failure (code 1). */
    Internal,
};

/** @return The stable wire string for @p kind ("bad-request", ...). */
std::string toString(ErrorKind kind);

/** @return The CLI-contract numeric code for @p kind (1 or 2). */
int errorCode(ErrorKind kind);

/**
 * A structured error destined for a response line.
 */
struct ServeError {
    ErrorKind kind = ErrorKind::Internal;
    std::string message;
};

/**
 * Render a request "id" value for echoing. Only scalar ids make
 * sense on the wire; strings, numbers, bools and null round-trip,
 * anything else (and an absent id) echoes as null.
 */
std::string renderId(const JsonValue *id);

/**
 * Build a complete error response line (no trailing newline).
 *
 * @param id_json The echoed id, already rendered (renderId()).
 * @param error   The error payload.
 */
std::string errorResponse(const std::string &id_json,
                          const ServeError &error);

/**
 * Build a success response line (no trailing newline).
 *
 * @param id_json     The echoed id, already rendered (renderId()).
 * @param result_json The "result" payload, a rendered JSON value.
 */
std::string okResponse(const std::string &id_json,
                       const std::string &result_json);

} // namespace serve
} // namespace gables

#endif // GABLES_SERVE_PROTOCOL_H
