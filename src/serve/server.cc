#include "serve/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/atomic_file.h"
#include "util/logging.h"

namespace gables {
namespace serve {

namespace {

void
closeFd(int &fd)
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

void
setNonBlocking(int fd)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0)
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

} // namespace

ServeServer::ServeServer(ServeService &service,
                         const ServerOptions &options)
    : service_(service), options_(options)
{
}

ServeServer::~ServeServer()
{
    closeAll();
    closeFd(listenFd_);
    if (!options_.socketPath.empty())
        std::remove(options_.socketPath.c_str());
}

void
ServeServer::start()
{
    if (!options_.socketPath.empty()) {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (options_.socketPath.size() >= sizeof(addr.sun_path))
            fatal("socket path too long: " + options_.socketPath);
        std::strncpy(addr.sun_path, options_.socketPath.c_str(),
                     sizeof(addr.sun_path) - 1);
        listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (listenFd_ < 0)
            fatal(std::string("cannot create unix socket: ") +
                  std::strerror(errno));
        // A stale socket file from a previous run blocks bind().
        std::remove(options_.socketPath.c_str());
        if (::bind(listenFd_,
                   reinterpret_cast<const sockaddr *>(&addr),
                   sizeof(addr)) != 0)
            fatal("cannot bind '" + options_.socketPath +
                  "': " + std::strerror(errno));
    } else {
        listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        if (listenFd_ < 0)
            fatal(std::string("cannot create TCP socket: ") +
                  std::strerror(errno));
        int one = 1;
        ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        // Loopback only: the daemon speaks an unauthenticated
        // protocol and must not be reachable from the network.
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port =
            htons(static_cast<uint16_t>(options_.port));
        if (::bind(listenFd_,
                   reinterpret_cast<const sockaddr *>(&addr),
                   sizeof(addr)) != 0)
            fatal("cannot bind 127.0.0.1:" +
                  std::to_string(options_.port) + ": " +
                  std::strerror(errno));
        sockaddr_in bound{};
        socklen_t len = sizeof(bound);
        if (::getsockname(listenFd_,
                          reinterpret_cast<sockaddr *>(&bound),
                          &len) == 0)
            port_ = ntohs(bound.sin_port);
    }
    setNonBlocking(listenFd_);
    if (::listen(listenFd_, 64) != 0)
        fatal(std::string("cannot listen: ") + std::strerror(errno));
}

bool
ServeServer::stopRequested() const
{
    return stop_.load() || service_.shutdownRequested() ||
           (options_.stopFlag != nullptr && options_.stopFlag->load());
}

void
ServeServer::acceptPending()
{
    for (;;) {
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            return;
        setNonBlocking(fd);
        ++accepted_;
        Connection conn;
        conn.fd = fd;
        connections_.push_back(std::move(conn));
    }
}

bool
ServeServer::readAndDispatch(Connection &conn)
{
    char buf[65536];
    ssize_t got = ::recv(conn.fd, buf, sizeof(buf), MSG_DONTWAIT);
    if (got == 0)
        return !conn.outbuf.empty(); // peer closed; flush then drop
    if (got < 0)
        return errno == EAGAIN || errno == EWOULDBLOCK ||
               errno == EINTR;
    conn.inbuf.append(buf, static_cast<size_t>(got));

    // Frame complete lines; everything after the last newline stays
    // buffered for the next read.
    std::vector<std::string> lines;
    size_t start = 0;
    for (;;) {
        size_t nl = conn.inbuf.find('\n', start);
        if (nl == std::string::npos)
            break;
        size_t len = nl - start;
        // Tolerate CRLF clients.
        if (len > 0 && conn.inbuf[start + len - 1] == '\r')
            --len;
        if (len > 0)
            lines.push_back(conn.inbuf.substr(start, len));
        start = nl + 1;
    }
    conn.inbuf.erase(0, start);
    if (conn.inbuf.size() > options_.maxLineBytes) {
        warn("serve: dropping connection with oversized request "
             "line (" +
             std::to_string(conn.inbuf.size()) + " bytes)");
        return false;
    }
    if (lines.empty())
        return true;

    std::vector<std::string> responses = service_.handleBatch(lines);
    for (const std::string &response : responses) {
        conn.outbuf += response;
        conn.outbuf += '\n';
    }
    return flushWrites(conn);
}

bool
ServeServer::flushWrites(Connection &conn)
{
    while (!conn.outbuf.empty()) {
        ssize_t sent =
            ::send(conn.fd, conn.outbuf.data(), conn.outbuf.size(),
                   MSG_DONTWAIT | MSG_NOSIGNAL);
        if (sent < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK ||
                errno == EINTR)
                return true; // poll for POLLOUT
            return false;
        }
        conn.outbuf.erase(0, static_cast<size_t>(sent));
    }
    return true;
}

void
ServeServer::closeAll()
{
    for (Connection &conn : connections_)
        closeFd(conn.fd);
    connections_.clear();
}

void
ServeServer::writeStatsSnapshot()
{
    if (options_.statsOutPath.empty())
        return;
    try {
        writeFileAtomic(options_.statsOutPath,
                        service_.statsReportJson());
    } catch (const FatalError &err) {
        warn(std::string("serve: cannot write stats snapshot: ") +
             err.what());
    }
}

size_t
ServeServer::run()
{
    GABLES_ASSERT(listenFd_ >= 0, "run() before start()");
    while (!stopRequested()) {
        std::vector<pollfd> fds;
        fds.push_back(pollfd{listenFd_, POLLIN, 0});
        for (const Connection &conn : connections_) {
            short events = POLLIN;
            if (!conn.outbuf.empty())
                events |= POLLOUT;
            fds.push_back(pollfd{conn.fd, events, 0});
        }
        // A finite timeout keeps stop flags responsive even when the
        // daemon is idle.
        int ready = ::poll(fds.data(),
                           static_cast<nfds_t>(fds.size()), 100);
        if (ready < 0 && errno != EINTR)
            fatal(std::string("poll failed: ") +
                  std::strerror(errno));
        if (ready <= 0)
            continue;
        if (fds[0].revents & POLLIN)
            acceptPending();
        std::vector<Connection> alive;
        alive.reserve(connections_.size());
        size_t visited = 0;
        for (size_t i = 0; i < connections_.size(); ++i) {
            Connection &conn = connections_[i];
            short revents = fds[i + 1].revents;
            bool keep = true;
            if (revents & (POLLERR | POLLNVAL))
                keep = false;
            if (keep && (revents & POLLOUT))
                keep = flushWrites(conn);
            if (keep && (revents & (POLLIN | POLLHUP)))
                keep = readAndDispatch(conn);
            // A peer that half-closed after its requests still gets
            // its buffered responses; drop once drained.
            if (keep && (revents & POLLHUP) && conn.outbuf.empty())
                keep = false;
            if (keep) {
                alive.push_back(std::move(conn));
            } else {
                closeFd(conn.fd);
            }
            visited = i + 1;
            if (service_.shutdownRequested())
                break;
        }
        // Preserve connections not visited before a shutdown break.
        for (size_t i = visited; i < connections_.size(); ++i)
            alive.push_back(std::move(connections_[i]));
        connections_ = std::move(alive);
    }
    // Flush responses already queued (e.g. the shutdown ack) with a
    // short grace period, then snapshot telemetry.
    for (Connection &conn : connections_)
        flushWrites(conn);
    closeAll();
    writeStatsSnapshot();
    return accepted_;
}

} // namespace serve
} // namespace gables
