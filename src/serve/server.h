/**
 * @file
 * Socket transport for the `gables serve` daemon: a single-threaded
 * poll(2) loop accepting connections on a unix-domain socket or a
 * loopback TCP port, framing newline-delimited requests, and handing
 * complete batches to the ServeService (which fans them onto its
 * worker pool). Responses stream back in request order.
 *
 * The loop exits when the service has handled a "shutdown" request,
 * when stop() is called, or when the configured stop flag (typically
 * set by a SIGINT/SIGTERM handler) becomes true; on exit the final
 * telemetry snapshot is written atomically to the configured stats
 * path, so a killed daemon never leaves truncated JSON behind.
 */

#ifndef GABLES_SERVE_SERVER_H
#define GABLES_SERVE_SERVER_H

#include <atomic>
#include <cstddef>
#include <string>
#include <vector>

#include "serve/service.h"

namespace gables {
namespace serve {

/** Transport configuration. */
struct ServerOptions {
    /** Unix-domain socket path ("" = use TCP). */
    std::string socketPath;
    /** Loopback TCP port (0 = ephemeral; resolved port() after
     * start()). Ignored when socketPath is set. */
    int port = 0;
    /** Atomic RunReport snapshot written on exit ("" = off). */
    std::string statsOutPath;
    /** Upper bound on one request line; longer requests drop the
     * connection (guards the daemon against unbounded buffering). */
    size_t maxLineBytes = 1 << 20;
    /** External stop flag polled by run() (e.g. set from a signal
     * handler); nullptr = none. */
    const std::atomic<bool> *stopFlag = nullptr;
};

/**
 * The daemon's accept/read/dispatch/write loop.
 */
class ServeServer
{
  public:
    /**
     * @param service The request processor (not owned).
     * @param options Transport configuration.
     */
    ServeServer(ServeService &service, const ServerOptions &options);

    /** Closes the listener and any remaining connections. */
    ~ServeServer();

    ServeServer(const ServeServer &) = delete;
    ServeServer &operator=(const ServeServer &) = delete;

    /**
     * Bind and listen.
     * @throws FatalError when the socket cannot be created or bound.
     */
    void start();

    /** @return The bound TCP port (after start(); 0 for unix). */
    int port() const { return port_; }

    /**
     * Serve until shutdown is requested. Returns the number of
     * connections accepted over the server's lifetime.
     */
    size_t run();

    /** Ask a running run() loop to exit (safe from other threads). */
    void stop() { stop_.store(true); }

  private:
    struct Connection {
        int fd = -1;
        std::string inbuf;
        std::string outbuf;
        bool closing = false;
    };

    bool stopRequested() const;
    void acceptPending();
    /** @return False when the connection must be dropped. */
    bool readAndDispatch(Connection &conn);
    /** @return False when the connection must be dropped. */
    bool flushWrites(Connection &conn);
    void closeAll();
    void writeStatsSnapshot();

    ServeService &service_;
    const ServerOptions options_;

    int listenFd_ = -1;
    int port_ = 0;
    std::vector<Connection> connections_;
    std::atomic<bool> stop_{false};
    size_t accepted_ = 0;
};

} // namespace serve
} // namespace gables

#endif // GABLES_SERVE_SERVER_H
