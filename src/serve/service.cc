#include "serve/service.h"

#include <chrono>
#include <limits>
#include <sstream>
#include <utility>

#include "analysis/advisor.h"
#include "analysis/explorer.h"
#include "core/gables.h"
#include "parallel/parallel_for.h"
#include "replay/bundle.h"
#include "serve/protocol.h"
#include "soc/config.h"
#include "telemetry/report.h"
#include "util/json_reader.h"
#include "util/json_writer.h"
#include "util/logging.h"
#include "util/parse.h"

namespace gables {
namespace serve {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** A tagged protocol error; process() turns it into a response. */
struct RequestError {
    ServeError error;
};

[[noreturn]] void
badRequest(const std::string &message)
{
    throw RequestError{ServeError{ErrorKind::BadRequest, message}};
}

/** Per-request deadline: "deadline_ms" 0 is instantly expired. */
class Deadline
{
  public:
    Deadline(const JsonValue &req, Clock::time_point start)
        : start_(start)
    {
        if (!req.has("deadline_ms"))
            return;
        const JsonValue &v = req.at("deadline_ms");
        if (!v.isNumber() || v.asNumber() < 0)
            badRequest(
                "\"deadline_ms\" must be a non-negative number");
        ms_ = v.asNumber();
    }

    bool expired() const
    {
        return ms_ >= 0 &&
               secondsSince(start_) * 1000.0 >= ms_;
    }

  private:
    Clock::time_point start_;
    double ms_ = -1.0;
};

/** @return Object member @p key, shape-checked as a number. */
double
numberField(const JsonValue &obj, const std::string &key)
{
    if (!obj.has(key) || !obj.at(key).isNumber())
        badRequest("missing or non-numeric \"" + key + "\"");
    return obj.at(key).asNumber();
}

/** @return Optional string member @p key, or @p fallback. */
std::string
stringField(const JsonValue &obj, const std::string &key,
            const std::string &fallback)
{
    if (!obj.has(key))
        return fallback;
    if (!obj.at(key).isString())
        badRequest("\"" + key + "\" must be a string");
    return obj.at(key).asString();
}

/** Parse an inline SoC in the shape core/serialize.h emits. */
SocSpec
socFromJson(const JsonValue &v)
{
    if (!v.isObject())
        badRequest("\"soc\" must be an object");
    double ppeak = numberField(v, "ppeak_ops_per_sec");
    double bpeak = numberField(v, "bpeak_bytes_per_sec");
    if (!v.has("ips") || !v.at("ips").isArray() ||
        v.at("ips").size() == 0)
        badRequest("\"soc\" needs a non-empty \"ips\" array");
    std::vector<IpSpec> ips;
    for (const JsonValue &ip : v.at("ips").items()) {
        if (!ip.isObject())
            badRequest("each \"ips\" entry must be an object");
        IpSpec spec;
        spec.name = stringField(
            ip, "name", "IP" + std::to_string(ips.size()));
        spec.acceleration = numberField(ip, "acceleration");
        spec.bandwidth = numberField(ip, "bandwidth_bytes_per_sec");
        ips.push_back(std::move(spec));
    }
    return SocSpec(stringField(v, "name", "request"), ppeak, bpeak,
                   std::move(ips));
}

/** Parse an inline usecase in the shape core/serialize.h emits;
 * a null intensity means +infinity (no off-IP traffic). */
Usecase
usecaseFromJson(const JsonValue &v)
{
    if (!v.isObject())
        badRequest("\"usecase\" must be an object");
    if (!v.has("work") || !v.at("work").isArray() ||
        v.at("work").size() == 0)
        badRequest("\"usecase\" needs a non-empty \"work\" array");
    std::vector<IpWork> work;
    for (const JsonValue &w : v.at("work").items()) {
        if (!w.isObject())
            badRequest("each \"work\" entry must be an object");
        IpWork item;
        item.fraction = numberField(w, "fraction");
        if (w.has("intensity_ops_per_byte") &&
            w.at("intensity_ops_per_byte").isNull()) {
            item.intensity = std::numeric_limits<double>::infinity();
        } else {
            item.intensity =
                numberField(w, "intensity_ops_per_byte");
        }
        work.push_back(item);
    }
    return Usecase(stringField(v, "name", "request"),
                   std::move(work));
}

/**
 * Resolve the request's model inputs: inline "soc"+"usecase"
 * objects, or "config" (server-side file path) with an optional
 * "usecase" name.
 */
std::pair<SocSpec, Usecase>
resolvePair(const JsonValue &req)
{
    if (req.has("config")) {
        if (!req.at("config").isString())
            badRequest("\"config\" must be a file-path string");
        SocConfig cfg = loadSocConfig(req.at("config").asString());
        if (cfg.usecases.empty())
            throw RequestError{ServeError{
                ErrorKind::Config,
                "config file declares no usecases"}};
        if (req.has("usecase")) {
            if (!req.at("usecase").isString())
                badRequest("with \"config\", \"usecase\" must be a "
                           "usecase name");
            return {cfg.soc,
                    cfg.usecase(req.at("usecase").asString())};
        }
        return {cfg.soc, cfg.usecases.front()};
    }
    if (!req.has("soc") || !req.has("usecase"))
        badRequest("request needs inline \"soc\" and \"usecase\" "
                   "objects or a \"config\" path");
    return {socFromJson(req.at("soc")),
            usecaseFromJson(req.at("usecase"))};
}

/** Resolve a sweep/advise "ip" field (index or name) to an index. */
size_t
resolveIp(const JsonValue &req, const SocSpec &soc)
{
    if (!req.has("ip"))
        badRequest("missing \"ip\" (index or IP name)");
    const JsonValue &v = req.at("ip");
    if (v.isNumber()) {
        double d = v.asNumber();
        if (d < 0 || d >= static_cast<double>(soc.numIps()) ||
            d != static_cast<double>(static_cast<size_t>(d)))
            badRequest("\"ip\" index out of range");
        return static_cast<size_t>(d);
    }
    if (v.isString())
        return soc.ipIndex(v.asString());
    badRequest("\"ip\" must be an index or an IP name");
}

/** Re-render a JSON document compactly onto one line. */
std::string
compactJson(const std::string &text)
{
    JsonValue value = parseJson(text);
    std::ostringstream out;
    JsonWriter json(out, false);
    replay::writeJsonValue(json, value);
    return out.str();
}

const std::vector<std::string> &
knownOps()
{
    static const std::vector<std::string> ops = {
        "ping", "eval", "sweep", "explore", "advise", "stats",
        "shutdown"};
    return ops;
}

std::string
handleEval(EvaluatorCache &cache, const JsonValue &req)
{
    auto [soc, usecase] = resolvePair(req);
    bool detail = req.has("detail") && req.at("detail").isBool() &&
                  req.at("detail").asBool();
    bool hit = false;
    std::shared_ptr<EvaluatorCache::Entry> entry =
        cache.acquire(soc, usecase, &hit);
    // Reused across requests on this thread: evaluate() into warm
    // scratch performs no allocations.
    thread_local GablesResult scratch;
    std::ostringstream out;
    {
        std::lock_guard<std::mutex> lock(entry->mutex);
        entry->evaluator.evaluate(scratch);
        JsonWriter json(out, false);
        json.beginObject();
        json.kv("attainable_ops_per_sec", scratch.attainable);
        json.kv("bottleneck", toString(scratch.bottleneck));
        json.kv("bottleneck_label",
                scratch.bottleneckLabel(entry->soc));
        json.kv("cache_hit", hit);
        if (detail) {
            json.kv("memory_time", scratch.memoryTime);
            json.kv("memory_perf_bound", scratch.memoryPerfBound);
            json.kv("average_intensity", scratch.averageIntensity);
            json.kv("total_data_bytes_per_op",
                    scratch.totalDataBytes);
            json.key("ips");
            json.beginArray();
            for (size_t i = 0; i < scratch.ips.size(); ++i) {
                const IpTiming &t = scratch.ips[i];
                json.beginObject();
                json.kv("name", entry->soc.ip(i).name);
                json.kv("compute_time", t.computeTime);
                json.kv("data_bytes", t.dataBytes);
                json.kv("transfer_time", t.transferTime);
                json.kv("time", t.time);
                json.kv("perf_bound", t.perfBound);
                json.endObject();
            }
            json.endArray();
        }
        json.endObject();
    }
    return out.str();
}

/** Batch-dispatch one sweep axis onto a pack: kWidth values per
 * pass. The cached entry's evaluator is only read (broadcast), never
 * mutated, so no restore is needed and a mid-sweep error leaves the
 * entry untouched. Output bits match the scalar per-point loop. */
void
sweepPacked(const GablesEvaluator &base, const std::string &axis,
            size_t ip, const std::vector<double> &values,
            const Deadline &deadline, std::vector<double> &attainable)
{
    constexpr size_t W = GablesEvalPack::kWidth;
    GablesEvalPack pack(base);
    // Same ~1024-point cadence as the scalar loop's (i & 1023) test.
    size_t next_check = 1023;
    for (size_t p0 = 0; p0 < values.size(); p0 += W) {
        if (p0 + W > next_check) {
            if (deadline.expired())
                throw RequestError{ServeError{
                    ErrorKind::Deadline,
                    "deadline expired mid-sweep after " +
                        std::to_string(p0) + " points"}};
            next_check += 1024;
        }
        const size_t cnt = std::min(W, values.size() - p0);
        const double *vs = values.data() + p0;
        if (axis == "intensity")
            pack.setIntensityRow(ip, vs, cnt);
        else if (axis == "fraction")
            pack.setFractionRow(ip, vs, cnt);
        else
            pack.setBpeakLanes(vs, cnt);
        pack.run(cnt);
        for (size_t w = 0; w < cnt; ++w)
            attainable.push_back(pack.attainable(w));
    }
}

std::string
handleSweep(EvaluatorCache &cache, const JsonValue &req,
            const Deadline &deadline, uint64_t *sweep_points)
{
    auto [soc, usecase] = resolvePair(req);
    std::string axis = stringField(req, "axis", "");
    if (axis != "intensity" && axis != "fraction" && axis != "bpeak")
        badRequest("\"axis\" must be \"intensity\", \"fraction\", "
                   "or \"bpeak\"");
    if (!req.has("values") || !req.at("values").isArray() ||
        req.at("values").size() == 0)
        badRequest("missing non-empty \"values\" array");
    std::vector<double> values;
    values.reserve(req.at("values").size());
    for (const JsonValue &v : req.at("values").items()) {
        if (!v.isNumber())
            badRequest("\"values\" entries must be numbers");
        values.push_back(v.asNumber());
    }
    size_t ip = axis == "bpeak" ? 0 : resolveIp(req, soc);

    bool hit = false;
    std::shared_ptr<EvaluatorCache::Entry> entry =
        cache.acquire(soc, usecase, &hit);
    std::vector<double> attainable;
    attainable.reserve(values.size());
    if (simd::enabled()) {
        std::lock_guard<std::mutex> lock(entry->mutex);
        sweepPacked(entry->evaluator, axis, ip, values, deadline,
                    attainable);
    } else {
        std::lock_guard<std::mutex> lock(entry->mutex);
        GablesEvaluator &ev = entry->evaluator;
        double saved = axis == "intensity" ? ev.intensity(ip)
                       : axis == "fraction" ? ev.fraction(ip)
                                            : ev.bpeak();
        auto restore = [&] {
            if (axis == "intensity")
                ev.setIntensity(ip, saved);
            else if (axis == "fraction")
                ev.setFraction(ip, saved);
            else
                ev.setBpeak(saved);
        };
        try {
            for (size_t i = 0; i < values.size(); ++i) {
                if ((i & 1023) == 1023 && deadline.expired())
                    throw RequestError{ServeError{
                        ErrorKind::Deadline,
                        "deadline expired mid-sweep after " +
                            std::to_string(i + 1) + " points"}};
                if (axis == "intensity")
                    ev.setIntensity(ip, values[i]);
                else if (axis == "fraction")
                    ev.setFraction(ip, values[i]);
                else
                    ev.setBpeak(values[i]);
                attainable.push_back(ev.attainable());
            }
        } catch (...) {
            // Restore the cached entry for other requests even when
            // a value is rejected or the deadline expires.
            restore();
            throw;
        }
        restore();
    }
    *sweep_points = attainable.size();

    std::ostringstream out;
    JsonWriter json(out, false);
    json.beginObject();
    json.numberArray("attainable_ops_per_sec", attainable);
    json.kv("points", attainable.size());
    json.kv("cache_hit", hit);
    json.endObject();
    return out.str();
}

std::string
handleExplore(const JsonValue &req, uint64_t *model_evals)
{
    auto [soc, usecase] = resolvePair(req);
    CostModel cost;
    if (req.has("cost")) {
        const JsonValue &c = req.at("cost");
        if (!c.isObject())
            badRequest("\"cost\" must be an object");
        if (c.has("per_acceleration"))
            cost.costPerAcceleration =
                numberField(c, "per_acceleration");
        if (c.has("per_bpeak"))
            cost.costPerBpeak = numberField(c, "per_bpeak");
        if (c.has("per_ip_bandwidth"))
            cost.costPerIpBandwidth =
                numberField(c, "per_ip_bandwidth");
    }
    DesignExplorer explorer(soc, {usecase}, cost);
    if (!req.has("sweep") || !req.at("sweep").isArray() ||
        req.at("sweep").size() == 0)
        badRequest("missing non-empty \"sweep\" array");
    for (const JsonValue &s : req.at("sweep").items()) {
        if (!s.isObject())
            badRequest("each \"sweep\" entry must be an object");
        std::string knob = stringField(s, "knob", "");
        if (!s.has("values") || !s.at("values").isArray() ||
            s.at("values").size() == 0)
            badRequest("sweep entries need a non-empty \"values\" "
                       "array");
        std::vector<double> values;
        for (const JsonValue &v : s.at("values").items()) {
            if (!v.isNumber())
                badRequest("sweep \"values\" must be numbers");
            values.push_back(v.asNumber());
        }
        if (knob == "bpeak") {
            explorer.sweepBpeak(std::move(values));
        } else if (knob == "acceleration") {
            explorer.sweepAcceleration(resolveIp(s, soc),
                                       std::move(values));
        } else if (knob == "ip_bandwidth") {
            explorer.sweepIpBandwidth(resolveIp(s, soc),
                                      std::move(values));
        } else {
            badRequest("sweep \"knob\" must be \"bpeak\", "
                       "\"acceleration\", or \"ip_bandwidth\"" +
                       didYouMean(knob, {"bpeak", "acceleration",
                                         "ip_bandwidth"}));
        }
    }

    // Requests stay serial internally; batch-level parallelism is
    // the daemon's scaling axis.
    ExploreOptions opts;
    opts.jobs = 1;
    ExploreStats stats;
    std::vector<Candidate> frontier =
        explorer.exploreFrontier(opts, &stats);
    *model_evals = stats.evals;

    std::ostringstream out;
    JsonWriter json(out, false);
    json.beginObject();
    json.kv("grid_size", explorer.gridSize());
    json.kv("evals", static_cast<size_t>(stats.evals));
    json.kv("evals_pruned", static_cast<size_t>(stats.evalsPruned));
    json.kv("subgrids_skipped",
            static_cast<size_t>(stats.subgridsSkipped));
    json.key("frontier");
    json.beginArray();
    for (const Candidate &c : frontier) {
        json.beginObject();
        json.kv("bpeak_bytes_per_sec", c.soc.bpeak());
        std::vector<double> accels, bandwidths;
        for (const IpSpec &ip : c.soc.ips()) {
            accels.push_back(ip.acceleration);
            bandwidths.push_back(ip.bandwidth);
        }
        json.numberArray("accelerations", accels);
        json.numberArray("ip_bandwidths_bytes_per_sec", bandwidths);
        json.kv("min_perf_ops_per_sec", c.minPerf);
        json.kv("cost", c.cost);
        json.endObject();
    }
    json.endArray();
    json.endObject();
    return out.str();
}

std::string
handleAdvise(const JsonValue &req)
{
    auto [soc, usecase] = resolvePair(req);
    Advisor::Options options;
    if (req.has("max_scale"))
        options.maxScale = numberField(req, "max_scale");
    if (req.has("min_gain"))
        options.minGain = numberField(req, "min_gain");
    if (req.has("max_intensity_scale"))
        options.maxIntensityScale =
            numberField(req, "max_intensity_scale");
    std::vector<Advice> advice =
        Advisor::advise(soc, usecase, options);

    std::ostringstream out;
    JsonWriter json(out, false);
    json.beginObject();
    json.key("advice");
    json.beginArray();
    for (const Advice &a : advice) {
        json.beginObject();
        json.kv("kind", toString(a.kind));
        json.kv("ip", a.ip);
        json.kv("description", a.description);
        json.kv("before", a.before);
        json.kv("after", a.after);
        json.kv("attainable_ops_per_sec", a.newAttainable);
        json.kv("gain", a.gain);
        json.endObject();
    }
    json.endArray();
    json.endObject();
    return out.str();
}

} // namespace

ServeService::ServeService(const ServeOptions &options)
    : options_(options), cache_(options.cacheCapacity)
{
    GABLES_ASSERT(options.jobs >= 1, "serve jobs must be >= 1");
    if (options_.jobs > 1)
        pool_ = std::make_unique<parallel::ThreadPool>(options_.jobs);
    if (!options_.recordPath.empty()) {
        record_.open(options_.recordPath, std::ios::trunc);
        if (!record_)
            fatal("cannot open request record '" +
                  options_.recordPath + "' for writing");
    }
    stats_.requests =
        &registry_.counter("serve.requests", "requests handled");
    stats_.responsesOk =
        &registry_.counter("serve.responses_ok",
                           "successful responses");
    stats_.responsesError =
        &registry_.counter("serve.responses_error",
                           "error responses");
    stats_.deadlineExpired = &registry_.counter(
        "serve.deadline_expired",
        "requests refused or abandoned past their deadline");
    stats_.sweepPoints = &registry_.counter(
        "serve.sweep_points", "sweep grid points served");
    stats_.modelEvals = &registry_.counter(
        "serve.model_evals",
        "model evaluations performed by request handlers");
    stats_.bytesIn =
        &registry_.counter("serve.bytes_in",
                           "request bytes received");
    stats_.bytesOut =
        &registry_.counter("serve.bytes_out",
                           "response bytes produced");
    stats_.requestSeconds = &registry_.distribution(
        "serve.request_seconds", "wall-clock seconds per request");
    // process() maps every request onto one of these op labels
    // ("unknown" for unrecognized ops, "invalid" for unparseable
    // requests), so commit() never needs to register a counter.
    for (const char *op :
         {"ping", "eval", "sweep", "explore", "advise", "stats",
          "shutdown", "unknown", "invalid"})
        stats_.ops[op] = &registry_.counter(
            std::string("serve.op.") + op,
            std::string("requests with op ") + op);
}

ServeService::~ServeService() = default;

ServeService::Outcome
ServeService::process(const std::string &line)
{
    Outcome outcome;
    Clock::time_point t0 = Clock::now();
    std::string id = "null";
    try {
        JsonValue req;
        try {
            req = parseJson(line);
        } catch (const FatalError &err) {
            badRequest(std::string("malformed request JSON: ") +
                       err.what());
        }
        if (!req.isObject())
            badRequest("request must be a JSON object");
        if (req.has("id"))
            id = renderId(&req.at("id"));
        std::string op = stringField(req, "op", "");
        if (op.empty())
            badRequest("missing \"op\" string");
        bool known = false;
        for (const std::string &cand : knownOps())
            known = known || cand == op;
        outcome.op = known ? op : "unknown";
        if (!known)
            badRequest("unknown op '" + op + "'" +
                       didYouMean(op, knownOps()));

        Deadline deadline(req, t0);
        if (deadline.expired())
            throw RequestError{ServeError{
                ErrorKind::Deadline,
                "deadline expired before processing began"}};

        std::string result;
        if (op == "ping") {
            result = "{\"pong\": true}";
        } else if (op == "eval") {
            result = handleEval(cache_, req);
            outcome.modelEvals = 1;
        } else if (op == "sweep") {
            result = handleSweep(cache_, req, deadline,
                                 &outcome.sweepPoints);
            outcome.modelEvals = outcome.sweepPoints;
        } else if (op == "explore") {
            result = handleExplore(req, &outcome.modelEvals);
        } else if (op == "advise") {
            result = handleAdvise(req);
        } else if (op == "stats") {
            result = compactJson(statsReportJson());
        } else { // shutdown
            outcome.shutdown = true;
            result = "{\"shutting_down\": true}";
        }
        if (deadline.expired())
            throw RequestError{ServeError{
                ErrorKind::Deadline,
                "deadline expired during processing"}};
        outcome.response = okResponse(id, result);
        outcome.ok = true;
    } catch (const RequestError &err) {
        outcome.deadlineExpired =
            err.error.kind == ErrorKind::Deadline;
        outcome.response = errorResponse(id, err.error);
    } catch (const FatalError &err) {
        // Model/config-layer diagnostics: the request was understood
        // but its inputs are invalid.
        outcome.response = errorResponse(
            id, ServeError{ErrorKind::Config, err.what()});
    } catch (const std::exception &err) {
        outcome.response = errorResponse(
            id, ServeError{ErrorKind::Internal, err.what()});
    }
    outcome.seconds = secondsSince(t0);
    return outcome;
}

void
ServeService::commit(const std::string &line, const Outcome &outcome)
{
    std::lock_guard<std::mutex> lock(statsMutex_);
    stats_.requests->add();
    (outcome.ok ? stats_.responsesOk : stats_.responsesError)->add();
    auto op_it = stats_.ops.find(outcome.op);
    if (op_it != stats_.ops.end())
        op_it->second->add();
    else
        registry_
            .counter("serve.op." + outcome.op,
                     "requests with op " + outcome.op)
            .add();
    if (outcome.deadlineExpired)
        stats_.deadlineExpired->add();
    if (outcome.sweepPoints > 0)
        stats_.sweepPoints->add(
            static_cast<double>(outcome.sweepPoints));
    if (outcome.modelEvals > 0)
        stats_.modelEvals->add(
            static_cast<double>(outcome.modelEvals));
    stats_.requestSeconds->sample(outcome.seconds);
    stats_.bytesIn->add(static_cast<double>(line.size()));
    stats_.bytesOut->add(static_cast<double>(outcome.response.size()));
    if (record_.is_open()) {
        JsonWriter json(record_, false);
        json.beginObject();
        json.kv("request", line);
        json.kv("response", outcome.response);
        json.endObject();
        record_ << '\n';
        record_.flush();
    }
    if (outcome.shutdown)
        shutdown_.store(true);
}

std::string
ServeService::handleLine(const std::string &line)
{
    Outcome outcome = process(line);
    std::string response = outcome.response;
    commit(line, outcome);
    return response;
}

std::vector<std::string>
ServeService::handleBatch(const std::vector<std::string> &lines)
{
    std::vector<std::string> responses;
    responses.reserve(lines.size());
    if (pool_ && lines.size() > 1) {
        std::vector<Outcome> outcomes(lines.size());
        pool_->forEach(lines.size(), [&](size_t i, int) {
            outcomes[i] = process(lines[i]);
        });
        // Telemetry and the record tee commit in request order, so a
        // batch is observationally identical to serial handling.
        for (size_t i = 0; i < lines.size(); ++i) {
            commit(lines[i], outcomes[i]);
            responses.push_back(std::move(outcomes[i].response));
        }
        return responses;
    }
    for (const std::string &line : lines)
        responses.push_back(handleLine(line));
    return responses;
}

std::string
ServeService::statsReportJson()
{
    std::lock_guard<std::mutex> lock(statsMutex_);
    registry_
        .gauge("serve.cache_hits", "evaluator-cache hits to date")
        .set(static_cast<double>(cache_.hits()));
    registry_
        .gauge("serve.cache_misses",
               "evaluator-cache compilations to date")
        .set(static_cast<double>(cache_.misses()));
    registry_
        .gauge("serve.cache_evictions",
               "evaluator-cache LRU evictions to date")
        .set(static_cast<double>(cache_.evictions()));
    registry_
        .gauge("serve.cache_size", "evaluator-cache resident entries")
        .set(static_cast<double>(cache_.size()));
    const double lookups =
        static_cast<double>(cache_.hits() + cache_.misses());
    registry_
        .gauge("serve.cache_hit_rate",
               "evaluator-cache hits / lookups (0 before the first "
               "lookup)")
        .set(lookups > 0.0
                 ? static_cast<double>(cache_.hits()) / lookups
                 : 0.0);
    telemetry::RunReport report("gables serve", "service");
    report.addConfig("jobs", static_cast<long>(options_.jobs));
    report.addConfig("cache_capacity",
                     static_cast<long>(options_.cacheCapacity));
    // Loadgen runs read these to confirm the packed path is live:
    // lane width 1 means every handler evaluates scalar.
    report.addConfig("simd_lane_width",
                     static_cast<long>(simd::enabled()
                                           ? GablesEvalPack::kWidth
                                           : 1));
    report.addConfig("simd_compiled",
                     static_cast<long>(simd::kCompiledIn ? 1 : 0));
    report.setRegistry(&registry_);
    std::ostringstream out;
    report.write(out);
    return out.str();
}

} // namespace serve
} // namespace gables
