/**
 * @file
 * Request handling for the `gables serve` daemon, independent of any
 * socket: one JSON request line in, one JSON response line out
 * (protocol.h). The transport layer (server.h) and the tests drive
 * this directly.
 *
 * Supported ops:
 *  - "ping"     liveness probe.
 *  - "eval"     evaluate a (SocSpec, Usecase) pair — served from the
 *               compiled-evaluator LRU cache on repeat pairs.
 *  - "sweep"    sweep one model parameter over a value list on the
 *               cached evaluator (values restored afterwards).
 *  - "explore"  enumerate a design grid and return the Pareto
 *               frontier (DesignExplorer::exploreFrontier).
 *  - "advise"   ranked improvement moves (Advisor::advise).
 *  - "stats"    the service's telemetry as a compact RunReport.
 *  - "shutdown" request daemon shutdown after this response.
 *
 * Model inputs come either inline ("soc" + "usecase" objects in the
 * shape core/serialize.h emits) or from a config file on the server's
 * filesystem ("config" path + optional "usecase" name).
 *
 * Requests may carry "deadline_ms": the server refuses to start (and
 * abandons between phases) work past the deadline and answers with a
 * "deadline" error; "deadline_ms": 0 is deterministically expired,
 * which tests use.
 *
 * Thread-safety: handleLine() may be called from any thread;
 * handleBatch() fans a batch onto the service's worker pool and
 * commits telemetry in request order, so a batch's stats are
 * identical to serial processing.
 */

#ifndef GABLES_SERVE_SERVICE_H
#define GABLES_SERVE_SERVICE_H

#include <atomic>
#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/cache.h"
#include "telemetry/stats.h"

namespace gables {

namespace parallel {
class ThreadPool;
}

namespace serve {

/** Service configuration. */
struct ServeOptions {
    /** Worker threads for request batches (>= 1; 1 = serial). */
    int jobs = 1;
    /** Evaluator-cache capacity (entries). */
    size_t cacheCapacity = 64;
    /** JSONL request/response tee path ("" = off). Each handled
     * request appends {"request": ..., "response": ...}. */
    std::string recordPath;
};

/**
 * The daemon's request processor.
 */
class ServeService
{
  public:
    explicit ServeService(const ServeOptions &options);
    ~ServeService();

    ServeService(const ServeService &) = delete;
    ServeService &operator=(const ServeService &) = delete;

    /**
     * Handle one request line.
     *
     * @param line One JSON request (no trailing newline required).
     * @return The response line (no trailing newline). Never throws:
     *         failures become error responses.
     */
    std::string handleLine(const std::string &line);

    /**
     * Handle a batch of request lines, processing them on the worker
     * pool when one is configured. Responses are in request order
     * and telemetry commits in request order.
     */
    std::vector<std::string>
    handleBatch(const std::vector<std::string> &lines);

    /** @return True once a shutdown request has been handled. */
    bool shutdownRequested() const { return shutdown_.load(); }

    /**
     * @return The service telemetry as a RunReport JSON document
     * (pretty-printed; the "stats" op returns the same document
     * compacted to one line).
     */
    std::string statsReportJson();

    /** @return The evaluator cache (counters for tests/telemetry). */
    const EvaluatorCache &cache() const { return cache_; }

    /** @return The configuration the service was built with. */
    const ServeOptions &options() const { return options_; }

  private:
    struct Outcome {
        std::string response;
        std::string op = "invalid";
        bool ok = false;
        bool deadlineExpired = false;
        bool shutdown = false;
        uint64_t sweepPoints = 0;
        /** Model evaluations the handler performed (eval = 1, sweep
         * = points served, explore = ExploreStats::evals). */
        uint64_t modelEvals = 0;
        double seconds = 0.0;
    };

    /** Process one request without touching the stats registry
     * (safe from pool workers; the cache is internally locked). */
    Outcome process(const std::string &line);

    /** Apply one outcome's telemetry and record tee (serial). */
    void commit(const std::string &line, const Outcome &outcome);

    const ServeOptions options_;
    EvaluatorCache cache_;
    std::unique_ptr<parallel::ThreadPool> pool_;

    std::atomic<bool> shutdown_{false};

    // The registry is not thread-safe; stats_mutex_ guards it and the
    // record stream. commit() runs under it. The references are
    // resolved once in the constructor (registry entries are
    // pointer-stable) so the per-request commit pays no name lookups.
    std::mutex statsMutex_;
    telemetry::StatsRegistry registry_;
    struct StatsRefs {
        telemetry::Counter *requests = nullptr;
        telemetry::Counter *responsesOk = nullptr;
        telemetry::Counter *responsesError = nullptr;
        telemetry::Counter *deadlineExpired = nullptr;
        telemetry::Counter *sweepPoints = nullptr;
        telemetry::Counter *modelEvals = nullptr;
        telemetry::Counter *bytesIn = nullptr;
        telemetry::Counter *bytesOut = nullptr;
        telemetry::Distribution *requestSeconds = nullptr;
        std::map<std::string, telemetry::Counter *> ops;
    };
    StatsRefs stats_;
    std::ofstream record_;
};

} // namespace serve
} // namespace gables

#endif // GABLES_SERVE_SERVICE_H
