#include "sim/event_queue.h"

#include <algorithm>

#include "sim/ip_engine.h"
#include "util/logging.h"

namespace gables {
namespace sim {

namespace {

/** Minimum calendar size: enough buckets that the typical in-flight
 * population (tens of events) spreads to a couple per bucket. */
constexpr size_t kMinBuckets = 128;

/** Cap on the adaptive bucket count; beyond this, buckets simply
 * hold a few more events each (still sorted lazily per bucket). */
constexpr size_t kMaxBuckets = size_t(1) << 16;

} // namespace

EventQueue::EventQueue()
    : buckets_(kMinBuckets), numBuckets_(kMinBuckets),
      cur_(kMinBuckets)
{}

void
EventQueue::insertSorted(std::vector<Event> &bucket, const Event &ev)
{
    if (bucket.size() == bucket.capacity())
        ++allocs_;
    if (bucket.empty() || !earlier(ev, bucket.back())) {
        bucket.push_back(ev);
        return;
    }
    bucket.insert(std::upper_bound(bucket.begin() +
                                       static_cast<ptrdiff_t>(head_),
                                   bucket.end(), ev, earlier),
                  ev);
}

void
EventQueue::schedule(double when, Callback fn)
{
    uint32_t slot;
    if (!freeFnSlots_.empty()) {
        slot = freeFnSlots_.back();
        freeFnSlots_.pop_back();
        fnSlots_[slot] = std::move(fn);
    } else {
        slot = static_cast<uint32_t>(fnSlots_.size());
        fnSlots_.push_back(std::move(fn));
    }
    push(when, EventKind::Callback, nullptr,
         static_cast<double>(slot), false);
}

void
EventQueue::scheduleAfter(double delay, Callback fn)
{
    schedule(now_ + delay, std::move(fn));
}

bool
EventQueue::prepare()
{
    for (;;) {
        if (cur_ < numBuckets_) {
            std::vector<Event> &bucket = buckets_[cur_];
            if (head_ < bucket.size()) {
                if (!curSorted_) {
                    std::sort(bucket.begin(), bucket.end(), earlier);
                    curSorted_ = true;
                }
                return true;
            }
            bucket.clear();
            head_ = 0;
            curSorted_ = false;
            ++cur_;
            // Calendar spent: unmap the epoch so push() sends new
            // events to the overflow tier with a single compare.
            if (cur_ == numBuckets_) {
                width_ = invWidth_ = 0.0;
                epochEnd_ = 0.0;
            }
            continue;
        }
        if (overflow_.empty())
            return false;
        rebase();
    }
}

void
EventQueue::rebase()
{
    double lo = overflow_.front().when;
    double hi = lo;
    for (const Event &ev : overflow_) {
        lo = std::min(lo, ev.when);
        hi = std::max(hi, ev.when);
    }
    // Scale the bucket count to the pending population so this one
    // O(n) partition absorbs the entire overflow: the epoch spans
    // twice the population's time range (the second half catches
    // events scheduled while the first drains), leaving a couple of
    // events per bucket. A fixed bucket count would cover only a
    // sliver of a large population's span and re-walk the remaining
    // overflow every epoch — quadratic for big pre-scheduled batches.
    // Degenerate spans (all events simultaneous, or a width that
    // underflows against the epoch base) collapse to sorted buckets
    // of ties.
    size_t want = overflow_.size();
    want = std::min(std::max(want, kMinBuckets), kMaxBuckets);
    if (buckets_.size() < want)
        buckets_.resize(want);
    numBuckets_ = want;
    double width = 2.0 * (hi - lo) / static_cast<double>(want);
    if (!(width > 0.0) || lo + width == lo)
        width = 1.0;
    base_ = lo;
    width_ = width;
    invWidth_ = 1.0 / width;
    epochEnd_ = lo + width * static_cast<double>(want);
    cur_ = 0;
    head_ = 0;
    curSorted_ = false;

    size_t keep = 0;
    for (const Event &ev : overflow_) {
        if (ev.when < epochEnd_) {
            double off = ev.when - base_;
            size_t idx =
                off > 0.0 ? static_cast<size_t>(off * invWidth_) : 0;
            if (idx >= numBuckets_)
                idx = numBuckets_ - 1;
            buckets_[idx].push_back(ev);
        } else {
            overflow_[keep++] = ev;
        }
    }
    overflow_.resize(keep);
}

void
EventQueue::dispatch(const Event &ev)
{
    switch (kindOf(ev)) {
      case EventKind::Callback: {
          uint32_t slot = static_cast<uint32_t>(ev.a);
          Callback fn = std::move(fnSlots_[slot]);
          fnSlots_[slot] = nullptr;
          freeFnSlots_.push_back(slot);
          fn();
          break;
      }
      case EventKind::DataArrived:
          ev.engine->onDataArrived(ev.a, (ev.meta & 1) != 0);
          break;
      case EventKind::ChunkComputed:
          ev.engine->onChunkComputed(ev.a);
          break;
      case EventKind::BatchDone:
          ev.engine->onBatchDone();
          break;
    }
}

double
EventQueue::run()
{
    while (prepare()) {
        Event ev = buckets_[cur_][head_++];
        now_ = ev.when;
        ++executed_;
        dispatch(ev);
    }
    return now_;
}

double
EventQueue::runUntil(double deadline)
{
    while (prepare() && headWhen() <= deadline) {
        Event ev = buckets_[cur_][head_++];
        now_ = ev.when;
        ++executed_;
        dispatch(ev);
    }
    if (now_ < deadline)
        now_ = deadline;
    return now_;
}

void
EventQueue::reset()
{
    for (std::vector<Event> &bucket : buckets_)
        bucket.clear();
    overflow_.clear();
    fnSlots_.clear();
    freeFnSlots_.clear();
    cur_ = numBuckets_;
    head_ = 0;
    curSorted_ = false;
    base_ = width_ = invWidth_ = epochEnd_ = 0.0;
    now_ = 0.0;
    nextSeq_ = 0;
    executed_ = 0;
    allocs_ = 0;
}

} // namespace sim
} // namespace gables
