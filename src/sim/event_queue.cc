#include "sim/event_queue.h"

#include "util/logging.h"

namespace gables {
namespace sim {

void
EventQueue::schedule(double when, Callback fn)
{
    if (when < now_)
        fatal("cannot schedule an event in the past (when=" +
              std::to_string(when) + ", now=" + std::to_string(now_) +
              ")");
    queue_.push(Event{when, nextSeq_++, std::move(fn)});
}

void
EventQueue::scheduleAfter(double delay, Callback fn)
{
    schedule(now_ + delay, std::move(fn));
}

double
EventQueue::run()
{
    while (!queue_.empty()) {
        // Copy out before pop so the callback may schedule freely.
        Event ev = queue_.top();
        queue_.pop();
        now_ = ev.when;
        ++executed_;
        ev.fn();
    }
    return now_;
}

double
EventQueue::runUntil(double deadline)
{
    while (!queue_.empty() && queue_.top().when <= deadline) {
        Event ev = queue_.top();
        queue_.pop();
        now_ = ev.when;
        ++executed_;
        ev.fn();
    }
    if (now_ < deadline)
        now_ = deadline;
    return now_;
}

void
EventQueue::reset()
{
    queue_ = {};
    now_ = 0.0;
    nextSeq_ = 0;
    executed_ = 0;
}

} // namespace sim
} // namespace gables
