/**
 * @file
 * Discrete-event simulation core: a time-ordered event queue with
 * deterministic tie-breaking (FIFO among same-time events).
 *
 * Time is modeled as double seconds. The simulator is single-
 * threaded and deterministic: identical inputs produce identical
 * schedules on every run and platform.
 *
 * Hot-path design (DESIGN.md section 10): events are small tagged
 * records dispatched by switch, not heap-allocated std::function
 * closures; generic callbacks remain supported through a pooled slot
 * table. Pending events live in a two-level calendar structure — an
 * epoch of equal-width buckets that are sorted lazily as the drain
 * cursor reaches them, plus an unsorted overflow tier for events
 * beyond the epoch. The bucket count adapts to the pending
 * population at each rebase, so one O(n) partition maps the whole
 * overflow into the epoch — giving O(1) amortized schedule/pop while
 * preserving exact (when, seq) FIFO order.
 */

#ifndef GABLES_SIM_EVENT_QUEUE_H
#define GABLES_SIM_EVENT_QUEUE_H

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "util/logging.h"

namespace gables {
namespace sim {

class IpEngine;

/** What a fired event does; see EventQueue::dispatch. */
enum class EventKind : uint8_t {
    /** Run a pooled std::function slot (tests, custom scenarios). */
    Callback,
    /** A memory chunk reached its engine: IpEngine::onDataArrived. */
    DataArrived,
    /** A chunk finished computing: IpEngine::onChunkComputed. */
    ChunkComputed,
    /** A batched run's last chunk completed: IpEngine::onBatchDone. */
    BatchDone,
};

/**
 * The event queue. Components schedule work at absolute times; run()
 * drains events in (time, insertion-order) order.
 */
class EventQueue
{
  public:
    /** Callback type executed when a generic event fires. */
    using Callback = std::function<void()>;

    EventQueue();

    /** @return The current simulated time (seconds). */
    double now() const { return now_; }

    /**
     * Schedule @p fn at absolute time @p when.
     *
     * @param when Absolute simulated time; must be >= now().
     * @param fn   Callback to run.
     */
    void schedule(double when, Callback fn);

    /** Schedule @p fn at now() + @p delay. */
    void scheduleAfter(double delay, Callback fn);

    /** @name Typed hot-path events (no allocation, no closure).
     * Defined inline below so engine code schedules without a call
     * across translation units. */
    /** @{ */
    /** Chunk data arrival: @p bytes with miss flag @p was_miss. */
    void scheduleDataArrived(double when, IpEngine *engine,
                             double bytes, bool was_miss)
    {
        push(when, EventKind::DataArrived, engine, bytes, was_miss);
    }

    /** Chunk compute completion for @p ops operations. */
    void scheduleChunkComputed(double when, IpEngine *engine,
                               double ops)
    {
        push(when, EventKind::ChunkComputed, engine, ops, false);
    }

    /** Completion of an analytically batched engine run. */
    void scheduleBatchDone(double when, IpEngine *engine)
    {
        push(when, EventKind::BatchDone, engine, 0.0, false);
    }
    /** @} */

    /**
     * Run until the queue is empty.
     *
     * @return The time of the last executed event (== now()).
     */
    double run();

    /**
     * Run until the queue empties or simulated time would exceed
     * @p deadline; events scheduled beyond the deadline stay queued.
     */
    double runUntil(double deadline);

    /** @return True if no events are pending. Scans the calendar
     * rather than maintaining a per-event counter; called off the hot
     * path (tests, post-run checks). */
    bool empty() const
    {
        if (!overflow_.empty())
            return false;
        for (size_t i = cur_; i < numBuckets_; ++i) {
            size_t pending = buckets_[i].size();
            if (i == cur_)
                pending -= head_;
            if (pending != 0)
                return false;
        }
        return true;
    }

    /** @return Number of events executed so far. */
    uint64_t eventsExecuted() const { return executed_; }

    /**
     * @return Number of scheduled events whose storage was recycled
     * from pooled bucket capacity rather than freshly allocated
     * (total schedules minus schedules that grew a tier); in steady
     * state this approaches all of them.
     */
    uint64_t eventsPooled() const { return nextSeq_ - allocs_; }

    /** Discard all pending events and reset time to zero. Pooled
     * storage (bucket and slot capacity) is retained, so back-to-back
     * runs schedule without allocating. */
    void reset();

  private:
    /** One pending event: a POD record, 32 bytes (four fit per cache
     * line). `meta` packs seq(48) | kind(8) | flag(1) so tie-breaking
     * compares one word: seq occupies the high bits, so among
     * same-time events meta order equals seq order. The payload
     * double `a` carries bytes (DataArrived), ops (ChunkComputed), or
     * the callback slot index (Callback — doubles hold integers
     * exactly far past the slot range). 48-bit seqs wrap after
     * 2.8e14 schedules — beyond any plausible run. */
    struct Event {
        double when;
        double a;         // bytes, ops, or callback slot index
        IpEngine *engine; // typed-event receiver
        uint64_t meta;    // (seq << 16) | (kind << 8) | flag
    };

    static uint64_t
    packMeta(uint64_t seq, EventKind kind, bool flag)
    {
        return (seq << 16) | (static_cast<uint64_t>(kind) << 8) |
               (flag ? 1u : 0u);
    }

    static EventKind
    kindOf(const Event &ev)
    {
        return static_cast<EventKind>((ev.meta >> 8) & 0xFF);
    }

    static bool
    earlier(const Event &a, const Event &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        return a.meta < b.meta;
    }

    inline void push(double when, EventKind kind, IpEngine *engine,
                     double a, bool flag);
    inline void pushInto(std::vector<Event> &dest, const Event &ev);
    void insertSorted(std::vector<Event> &bucket, const Event &ev);
    /** Advance cursors until the next event is at the drain point.
     * @return False when the queue is empty. */
    bool prepare();
    /** Time of the next event; prepare() must have returned true. */
    double headWhen() const { return buckets_[cur_][head_].when; }
    void dispatch(const Event &ev);
    void rebase();

    // Calendar tier: one epoch of equal-width buckets starting at
    // base_; bucket cur_ is sorted ascending and drains via head_.
    // Only the first numBuckets_ entries of buckets_ belong to the
    // current epoch (the vector keeps its high-water capacity).
    std::vector<std::vector<Event>> buckets_;
    size_t numBuckets_;   // buckets in the current epoch
    size_t cur_;          // current bucket; == numBuckets_ when spent
    size_t head_ = 0;     // drain cursor inside buckets_[cur_]
    bool curSorted_ = false;
    double base_ = 0.0;   // epoch start time
    double width_ = 0.0;  // bucket width (0 = no epoch mapped yet)
    double invWidth_ = 0.0;
    double epochEnd_ = 0.0;
    // Overflow tier: unsorted events beyond the epoch; partitioned
    // into a fresh epoch when the calendar drains.
    std::vector<Event> overflow_;

    // Pooled storage for generic callbacks.
    std::vector<Callback> fnSlots_;
    std::vector<uint32_t> freeFnSlots_;

    double now_ = 0.0;
    uint64_t nextSeq_ = 0;
    uint64_t executed_ = 0;
    uint64_t allocs_ = 0; // schedules that grew a tier's capacity
};

inline void
EventQueue::pushInto(std::vector<Event> &dest, const Event &ev)
{
    if (dest.size() == dest.capacity())
        ++allocs_;
    dest.push_back(ev);
}

inline void
EventQueue::push(double when, EventKind kind, IpEngine *engine,
                 double a, bool flag)
{
    if (when < now_)
        fatal("cannot schedule an event in the past (when=" +
              std::to_string(when) + ", now=" + std::to_string(now_) +
              ")");
    Event ev;
    ev.when = when;
    ev.a = a;
    ev.engine = engine;
    ev.meta = packMeta(nextSeq_++, kind, flag);

    // epochEnd_ is 0 whenever no epoch is mapped or the calendar is
    // spent (event times are never negative), so one compare decides
    // the tier.
    if (when < epochEnd_) {
        double off = when - base_;
        size_t idx =
            off > 0.0 ? static_cast<size_t>(off * invWidth_) : 0;
        if (idx >= numBuckets_)
            idx = numBuckets_ - 1;
        // Events earlier than the drain bucket's range (possible for
        // times in [now, base) right after a rebase) stay correct in
        // the drain bucket: it is sorted before or while draining.
        if (idx < cur_)
            idx = cur_;
        if (idx == cur_ && curSorted_)
            insertSorted(buckets_[cur_], ev);
        else
            pushInto(buckets_[idx], ev);
    } else {
        pushInto(overflow_, ev);
    }
}

} // namespace sim
} // namespace gables

#endif // GABLES_SIM_EVENT_QUEUE_H
