/**
 * @file
 * Discrete-event simulation core: a time-ordered event queue with
 * deterministic tie-breaking (FIFO among same-time events).
 *
 * Time is modeled as double seconds. The simulator is single-
 * threaded and deterministic: identical inputs produce identical
 * schedules on every run and platform.
 */

#ifndef GABLES_SIM_EVENT_QUEUE_H
#define GABLES_SIM_EVENT_QUEUE_H

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace gables {
namespace sim {

/**
 * The event queue. Components schedule callbacks at absolute times;
 * run() drains events in (time, insertion-order) order.
 */
class EventQueue
{
  public:
    /** Callback type executed when an event fires. */
    using Callback = std::function<void()>;

    /** @return The current simulated time (seconds). */
    double now() const { return now_; }

    /**
     * Schedule @p fn at absolute time @p when.
     *
     * @param when Absolute simulated time; must be >= now().
     * @param fn   Callback to run.
     */
    void schedule(double when, Callback fn);

    /** Schedule @p fn at now() + @p delay. */
    void scheduleAfter(double delay, Callback fn);

    /**
     * Run until the queue is empty.
     *
     * @return The time of the last executed event (== now()).
     */
    double run();

    /**
     * Run until the queue empties or simulated time would exceed
     * @p deadline; events scheduled beyond the deadline stay queued.
     */
    double runUntil(double deadline);

    /** @return True if no events are pending. */
    bool empty() const { return queue_.empty(); }

    /** @return Number of events executed so far. */
    uint64_t eventsExecuted() const { return executed_; }

    /** Discard all pending events and reset time to zero. */
    void reset();

  private:
    struct Event {
        double when;
        uint64_t seq;
        Callback fn;
    };

    struct Later {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> queue_;
    double now_ = 0.0;
    uint64_t nextSeq_ = 0;
    uint64_t executed_ = 0;
};

} // namespace sim
} // namespace gables

#endif // GABLES_SIM_EVENT_QUEUE_H
