#include "sim/ip_engine.h"

#include <algorithm>
#include <cmath>

#include "telemetry/stats.h"
#include "util/logging.h"

namespace gables {
namespace sim {

IpEngine::IpEngine(IpEngineConfig config, EventQueue *eq,
                   BandwidthResource *link, MemoryPath path,
                   LocalMemory *local, BandwidthResource *coordinator)
    : config_(std::move(config)), eq_(eq), link_(link),
      path_(std::move(path)), local_(local), coordinator_(coordinator),
      compute_(config_.name + ".compute", config_.opsPerSec)
{
    GABLES_ASSERT(eq_ != nullptr, "engine needs an event queue");
    GABLES_ASSERT(link_ != nullptr, "engine needs a link resource");
    if (!(config_.opsPerSec > 0.0))
        fatal("engine '" + config_.name + "': ops/s must be > 0");
    if (!(config_.requestBytes > 0.0))
        fatal("engine '" + config_.name + "': request size must be > 0");
    if (config_.maxOutstanding < 1)
        fatal("engine '" + config_.name +
              "': need at least one outstanding request");
}

double
IpEngine::chunkBytes(uint64_t index) const
{
    // All chunks are requestBytes except a possibly-short final one.
    if (index + 1 < chunksTotal_)
        return config_.requestBytes;
    double tail = job_.totalBytes -
                  config_.requestBytes * static_cast<double>(index);
    return tail > 0.0 ? tail : config_.requestBytes;
}

void
IpEngine::start(const KernelJob &job,
                std::function<void(const EngineRunStats &)> on_done)
{
    if (running_)
        fatal("engine '" + config_.name + "' is already running a job");
    if (!(job.totalBytes > 0.0) || !(job.workingSetBytes > 0.0))
        fatal("kernel job sizes must be > 0");
    if (!(job.opsPerByte > 0.0))
        fatal("kernel job ops/byte must be > 0");
    if (job.coordinationTime > 0.0 && coordinator_ == nullptr)
        fatal("engine '" + config_.name +
              "': job needs coordination but no coordinator is wired");

    running_ = true;
    job_ = job;
    onDone_ = std::move(on_done);
    chunksTotal_ = static_cast<uint64_t>(
        std::ceil(job.totalBytes / config_.requestBytes));
    GABLES_ASSERT(chunksTotal_ > 0, "job has no chunks");
    chunksIssued_ = 0;
    chunksComputed_ = 0;
    inFlight_ = 0;
    stats_ = EngineRunStats{};
    stats_.name = config_.name;
    stats_.startTime = eq_->now();

    if (local_ != nullptr)
        local_->setWorkingSet(job.workingSetBytes);

    issueRequests();
}

void
IpEngine::issueRequests()
{
    while (running_ && inFlight_ < config_.maxOutstanding &&
           chunksIssued_ < chunksTotal_) {
        double bytes = chunkBytes(chunksIssued_);
        ++chunksIssued_;
        ++inFlight_;

        double now = eq_->now();
        bool hit = local_ != nullptr && local_->nextIsHit();
        if (issuedCount_ != nullptr) {
            issuedCount_->add(1.0);
            (hit ? hitRequests_ : missRequests_)->add(1.0);
        }
        double completion;
        if (hit) {
            completion = local_->resource().acquire(now, bytes);
        } else {
            // Misses traverse the private link then the shared path.
            completion = link_->acquire(now, bytes);
            completion = path_.request(completion, bytes);
            if (job_.coordinationTime > 0.0) {
                // The coordinator must service the request's
                // completion interrupt before the data is usable.
                double coord = coordinator_->acquireService(
                    now, job_.coordinationTime);
                completion = std::max(completion, coord);
                if (coordInterrupts_ != nullptr)
                    coordInterrupts_->add(1.0);
            }
        }
        eq_->schedule(completion, [this, bytes, hit] {
            onDataArrived(bytes, !hit);
        });
    }
}

void
IpEngine::onDataArrived(double chunk_bytes, bool was_miss)
{
    GABLES_ASSERT(inFlight_ > 0, "data arrival with nothing in flight");
    --inFlight_;
    stats_.bytes += chunk_bytes;
    if (was_miss)
        stats_.missBytes += chunk_bytes;

    double ops = chunk_bytes * job_.opsPerByte;
    double done_at = compute_.acquire(eq_->now(), ops);
    eq_->schedule(done_at, [this, ops] {
        stats_.ops += ops;
        onChunkComputed();
    });

    issueRequests();
}

void
IpEngine::attachTelemetry(telemetry::StatsRegistry *registry)
{
    compute_.attachTelemetry(registry);
    if (registry == nullptr) {
        issuedCount_ = computedCount_ = nullptr;
        hitRequests_ = missRequests_ = coordInterrupts_ = nullptr;
        return;
    }
    const std::string &name = config_.name;
    issuedCount_ = &registry->counter(name + ".chunks_issued",
                                      "memory requests issued");
    computedCount_ = &registry->counter(name + ".chunks_computed",
                                        "chunks fully computed");
    hitRequests_ = &registry->counter(name + ".hit_requests",
                                      "requests served by the local "
                                      "memory");
    missRequests_ = &registry->counter(name + ".miss_requests",
                                       "requests sent off-IP");
    coordInterrupts_ = &registry->counter(
        name + ".coord_interrupts",
        "completion interrupts charged on the coordinator");
}

void
IpEngine::onChunkComputed()
{
    ++chunksComputed_;
    if (computedCount_ != nullptr)
        computedCount_->add(1.0);
    if (chunksComputed_ == chunksTotal_) {
        running_ = false;
        stats_.endTime = eq_->now();
        GABLES_ASSERT(stats_.endTime > stats_.startTime,
                      "zero-duration engine run");
        if (onDone_)
            onDone_(stats_);
    }
}

void
IpEngine::reset()
{
    GABLES_ASSERT(!running_, "cannot reset a running engine");
    compute_.reset();
    chunksTotal_ = chunksIssued_ = chunksComputed_ = 0;
    inFlight_ = 0;
    stats_ = EngineRunStats{};
}

} // namespace sim
} // namespace gables
