#include "sim/ip_engine.h"

#include <algorithm>
#include <cmath>

#include "telemetry/stats.h"
#include "util/logging.h"

namespace gables {
namespace sim {

IpEngine::IpEngine(IpEngineConfig config, EventQueue *eq,
                   BandwidthResource *link, MemoryPath path,
                   LocalMemory *local, BandwidthResource *coordinator)
    : config_(std::move(config)), eq_(eq), link_(link),
      path_(std::move(path)), local_(local), coordinator_(coordinator),
      compute_(config_.name + ".compute", config_.opsPerSec)
{
    GABLES_ASSERT(eq_ != nullptr, "engine needs an event queue");
    GABLES_ASSERT(link_ != nullptr, "engine needs a link resource");
    if (!(config_.opsPerSec > 0.0))
        fatal("engine '" + config_.name + "': ops/s must be > 0");
    if (!(config_.requestBytes > 0.0))
        fatal("engine '" + config_.name + "': request size must be > 0");
    if (config_.maxOutstanding < 1)
        fatal("engine '" + config_.name +
              "': need at least one outstanding request");
}

double
IpEngine::chunkBytes(uint64_t index) const
{
    // All chunks are requestBytes except a possibly-short final one.
    if (index + 1 < chunksTotal_)
        return config_.requestBytes;
    double tail = job_.totalBytes -
                  config_.requestBytes * static_cast<double>(index);
    return tail > 0.0 ? tail : config_.requestBytes;
}

void
IpEngine::start(const KernelJob &job,
                std::function<void(const EngineRunStats &)> on_done)
{
    if (running_)
        fatal("engine '" + config_.name + "' is already running a job");
    if (!(job.totalBytes > 0.0) || !(job.workingSetBytes > 0.0))
        fatal("kernel job sizes must be > 0");
    if (!(job.opsPerByte > 0.0))
        fatal("kernel job ops/byte must be > 0");
    if (job.coordinationTime > 0.0 && coordinator_ == nullptr)
        fatal("engine '" + config_.name +
              "': job needs coordination but no coordinator is wired");

    running_ = true;
    job_ = job;
    onDone_ = std::move(on_done);
    chunksTotal_ = static_cast<uint64_t>(
        std::ceil(job.totalBytes / config_.requestBytes));
    GABLES_ASSERT(chunksTotal_ > 0, "job has no chunks");
    chunksIssued_ = 0;
    chunksComputed_ = 0;
    batchedChunks_ = 0;
    inFlight_ = 0;
    stats_ = EngineRunStats{};
    stats_.name = config_.name;
    stats_.startTime = eq_->now();

    if (local_ != nullptr)
        local_->setWorkingSet(job.workingSetBytes);

    if (batchingAllowed_)
        runBatched();
    else
        issueRequests();
}

double
IpEngine::issueOneChunk(double now, double &bytes, bool &was_miss)
{
    bytes = chunkBytes(chunksIssued_);
    ++chunksIssued_;
    ++inFlight_;

    bool hit = local_ != nullptr && local_->nextIsHit();
    was_miss = !hit;
    if (issuedCount_ != nullptr) {
        issuedCount_->add(1.0);
        (hit ? hitRequests_ : missRequests_)->add(1.0);
    }
    double completion;
    if (hit) {
        completion = local_->resource().acquire(now, bytes);
    } else {
        // Misses traverse the private link then the shared path.
        completion = link_->acquire(now, bytes);
        completion = path_.request(completion, bytes);
        if (job_.coordinationTime > 0.0) {
            // The coordinator must service the request's completion
            // interrupt before the data is usable.
            double coord = coordinator_->acquireService(
                now, job_.coordinationTime);
            completion = std::max(completion, coord);
            if (coordInterrupts_ != nullptr)
                coordInterrupts_->add(1.0);
        }
    }
    return completion;
}

void
IpEngine::issueRequests()
{
    // No events fire while this loop runs, so now() is invariant.
    double now = eq_->now();
    while (running_ && inFlight_ < config_.maxOutstanding &&
           chunksIssued_ < chunksTotal_) {
        double bytes;
        bool was_miss;
        double completion = issueOneChunk(now, bytes, was_miss);
        eq_->scheduleDataArrived(completion, this, bytes, was_miss);
    }
}

void
IpEngine::runBatched()
{
    // Replay the event-driven run in a tight loop. Because this
    // engine is the sole requester (see setBatchingAllowed), the only
    // events the queue would process are this engine's own arrivals
    // and compute completions, so their firing order is fully known:
    // arrivals in (completion, issue-index) order — a min-heap over
    // in-flight chunks — and compute completions in arrival order
    // (the compute resource is FIFO, so completion times are
    // monotone and their seqs follow booking order). Compute-done
    // events touch no resources, so folding their bookkeeping into
    // arrival processing leaves every acquire call, stats
    // accumulation, telemetry bump, and trace record in the exact
    // order — and therefore bit pattern — of the unbatched run.
    //
    // Min-heap order: earliest (completion, issue index) first, the
    // order the queue would fire these arrivals (arrival seq order
    // equals issue order).
    auto later_arrival = [](const BatchArrival &a,
                            const BatchArrival &b) {
        if (a.when != b.when)
            return a.when > b.when;
        return a.idx > b.idx;
    };
    batchHeap_.clear();
    double now = stats_.startTime;
    while (inFlight_ < config_.maxOutstanding &&
           chunksIssued_ < chunksTotal_) {
        uint64_t idx = chunksIssued_;
        double bytes;
        bool was_miss;
        double completion = issueOneChunk(now, bytes, was_miss);
        batchHeap_.push_back({completion, idx, bytes, was_miss});
        std::push_heap(batchHeap_.begin(), batchHeap_.end(),
                       later_arrival);
    }

    double last_done = now;
    while (!batchHeap_.empty()) {
        std::pop_heap(batchHeap_.begin(), batchHeap_.end(),
                      later_arrival);
        BatchArrival arr = batchHeap_.back();
        batchHeap_.pop_back();

        --inFlight_;
        stats_.bytes += arr.bytes;
        if (arr.miss)
            stats_.missBytes += arr.bytes;
        double ops = arr.bytes * job_.opsPerByte;
        double done_at = compute_.acquire(arr.when, ops);
        stats_.ops += ops;
        ++chunksComputed_;
        if (computedCount_ != nullptr)
            computedCount_->add(1.0);
        last_done = done_at;

        while (inFlight_ < config_.maxOutstanding &&
               chunksIssued_ < chunksTotal_) {
            uint64_t idx = chunksIssued_;
            double bytes;
            bool was_miss;
            double completion =
                issueOneChunk(arr.when, bytes, was_miss);
            batchHeap_.push_back({completion, idx, bytes, was_miss});
            std::push_heap(batchHeap_.begin(), batchHeap_.end(),
                           later_arrival);
        }
    }
    GABLES_ASSERT(chunksComputed_ == chunksTotal_,
                  "batched replay lost chunks");
    batchedChunks_ = chunksTotal_;
    eq_->scheduleBatchDone(last_done, this);
}

void
IpEngine::onBatchDone()
{
    running_ = false;
    stats_.endTime = eq_->now();
    GABLES_ASSERT(stats_.endTime > stats_.startTime,
                  "zero-duration engine run");
    if (onDone_)
        onDone_(stats_);
}

void
IpEngine::attachTelemetry(telemetry::StatsRegistry *registry)
{
    compute_.attachTelemetry(registry);
    if (registry == nullptr) {
        issuedCount_ = computedCount_ = nullptr;
        hitRequests_ = missRequests_ = coordInterrupts_ = nullptr;
        return;
    }
    const std::string &name = config_.name;
    issuedCount_ = &registry->counter(name + ".chunks_issued",
                                      "memory requests issued");
    computedCount_ = &registry->counter(name + ".chunks_computed",
                                        "chunks fully computed");
    hitRequests_ = &registry->counter(name + ".hit_requests",
                                      "requests served by the local "
                                      "memory");
    missRequests_ = &registry->counter(name + ".miss_requests",
                                       "requests sent off-IP");
    coordInterrupts_ = &registry->counter(
        name + ".coord_interrupts",
        "completion interrupts charged on the coordinator");
}

void
IpEngine::reset()
{
    GABLES_ASSERT(!running_, "cannot reset a running engine");
    compute_.reset();
    chunksTotal_ = chunksIssued_ = chunksComputed_ = 0;
    batchedChunks_ = 0;
    batchingAllowed_ = false;
    inFlight_ = 0;
    stats_ = EngineRunStats{};
}

} // namespace sim
} // namespace gables
