/**
 * @file
 * A simulated IP block running the roofline micro-benchmark kernel
 * (paper Algorithm 1): stream an array through the memory system and
 * perform a configurable number of operations per byte. The engine
 * overlaps data movement (up to a configurable number of outstanding
 * requests) with computation, so its measured throughput traces out
 * a roofline as the flops-per-byte knob varies.
 *
 * The engine also models the paper's third usecase bottleneck
 * (Section II-B): per-request coordination routed through another
 * IP — typically the CPU — which charges a fixed interrupt-handling
 * service time on the coordinator for every off-IP request.
 *
 * Hot path: chunk completions are typed events dispatched by the
 * EventQueue switch (no closures). When the SoC marks the engine as
 * the sole active requester on every hop of its path, start() books
 * the whole job in one analytic batch — the same per-chunk acquire
 * arithmetic replayed in a tight loop, so results stay bit-identical
 * — and schedules a single completion event instead of two events
 * per chunk (DESIGN.md section 10).
 */

#ifndef GABLES_SIM_IP_ENGINE_H
#define GABLES_SIM_IP_ENGINE_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/event_queue.h"
#include "sim/memory_system.h"
#include "sim/resource.h"
#include "telemetry/stats.h"

namespace gables {

namespace telemetry {
class StatsRegistry;
} // namespace telemetry

namespace sim {

/** Static configuration of a simulated IP engine. */
struct IpEngineConfig {
    /** Display name. */
    std::string name;
    /** Peak computation rate (ops/s). */
    double opsPerSec = 1e9;
    /** Bytes per memory request (transfer granularity). */
    double requestBytes = 4096.0;
    /** Maximum outstanding memory requests (memory-level
     * parallelism). */
    int maxOutstanding = 8;
};

/** The micro-benchmark job an engine executes (Algorithm 1). */
struct KernelJob {
    /** Array footprint in bytes (working set; drives local-memory
     * hit ratio). */
    double workingSetBytes = 64.0 * 1024 * 1024;
    /** Total bytes to stream (trials * footprint). */
    double totalBytes = 64.0 * 1024 * 1024;
    /** Operations performed per byte streamed (the intensity knob —
     * FLOPS_PER_BYTE in Algorithm 1). */
    double opsPerByte = 1.0;
    /**
     * Coordination service time charged on the engine's coordinator
     * per miss request (seconds); 0 disables. Models offloaded-work
     * buffer handoff interrupts routed through the CPU (paper
     * Section II-B, third bottleneck). Isolated micro-benchmark runs
     * use 0; offloaded mixing runs use a positive cost.
     */
    double coordinationTime = 0.0;
};

/** Measured results of one engine run. */
struct EngineRunStats {
    /** Engine display name. */
    std::string name;
    /** Simulated start and end times of the run (s). */
    double startTime = 0.0;
    double endTime = 0.0;
    /** Total operations executed. */
    double ops = 0.0;
    /** Total bytes requested (hits + misses). */
    double bytes = 0.0;
    /** Bytes that missed the local memory and went down the path. */
    double missBytes = 0.0;

    /** @return Elapsed simulated time (s). */
    double elapsed() const { return endTime - startTime; }
    /** @return Achieved computation rate (ops/s). */
    double achievedOpsRate() const { return ops / elapsed(); }
    /** @return Achieved total data rate (bytes/s). */
    double achievedByteRate() const { return bytes / elapsed(); }
    /** @return Achieved off-IP (miss) data rate (bytes/s). */
    double achievedMissRate() const { return missBytes / elapsed(); }
};

/**
 * A simulated IP engine. Owned by SimSoc; not copyable (scheduled
 * events reference `this`).
 */
class IpEngine
{
  public:
    /**
     * @param config      Static configuration.
     * @param eq          The SoC's event queue.
     * @param link        The engine's private link resource (its Bi).
     * @param path        Hops beyond the link toward DRAM (fabrics,
     *                    DRAM controller) in traversal order.
     * @param local       Optional local memory (nullptr = none).
     * @param coordinator Optional resource charged coordinationTime
     *                    per miss (nullptr = none).
     */
    IpEngine(IpEngineConfig config, EventQueue *eq,
             BandwidthResource *link, MemoryPath path,
             LocalMemory *local, BandwidthResource *coordinator);

    IpEngine(const IpEngine &) = delete;
    IpEngine &operator=(const IpEngine &) = delete;

    /** @return The configuration. */
    const IpEngineConfig &config() const { return config_; }

    /** @return The engine's compute resource (for stats). */
    const BandwidthResource &computeResource() const { return compute_; }

    /**
     * @return Mutable compute resource, used to wire another engine's
     * coordination traffic onto this engine's cycles.
     */
    BandwidthResource *computeResourcePtr() { return &compute_; }

    /** @return The engine's link resource. */
    BandwidthResource *link() { return link_; }

    /**
     * Begin executing @p job; @p on_done fires (once) with the run's
     * stats when the last chunk completes. The engine must be idle.
     */
    void start(const KernelJob &job,
               std::function<void(const EngineRunStats &)> on_done);

    /** @return True if a job is in flight. */
    bool busy() const { return running_; }

    /**
     * Permit analytic chunk batching for subsequent start() calls.
     * Legality is the caller's contract: between this engine's
     * start() and its completion, no other requester may touch any
     * hop of its path (link, fabrics, DRAM), its local memory, or
     * its coordinator — SimSoc::run grants this exactly when the
     * engine runs the only job of the run. Batched runs replay the
     * identical per-chunk booking arithmetic without per-chunk
     * events, so all stats, telemetry, and traces are bit-identical;
     * only the event count changes. Default off.
     */
    void setBatchingAllowed(bool allowed)
    {
        batchingAllowed_ = allowed;
    }

    /** @return Chunks booked analytically in the latest run (0 when
     * the run was event-driven). */
    uint64_t batchedChunks() const { return batchedChunks_; }

    /**
     * Attach a telemetry registry: registers per-engine issue
     * counters ("<name>.chunks_issued", "<name>.chunks_computed"),
     * hit/miss request counters, and a coordination-interrupt
     * counter, plus the compute resource's standard stats. Pass
     * nullptr to detach.
     */
    void attachTelemetry(telemetry::StatsRegistry *registry);

    /** Reset per-run state (the SoC resets resources separately). */
    void reset();

  private:
    friend class EventQueue; // dispatches the typed events below

    void issueRequests();
    // The two per-chunk handlers are defined inline below the class:
    // the EventQueue dispatch switch folds them into its drain loop.
    inline void onDataArrived(double chunk_bytes, bool was_miss);
    inline void onChunkComputed(double ops);
    void onBatchDone();
    void runBatched();
    double issueOneChunk(double now, double &bytes, bool &was_miss);
    double chunkBytes(uint64_t index) const;

    IpEngineConfig config_;
    EventQueue *eq_;
    BandwidthResource *link_;
    MemoryPath path_;
    LocalMemory *local_;
    BandwidthResource *coordinator_;
    BandwidthResource compute_;

    // Per-run state.
    bool running_ = false;
    bool batchingAllowed_ = false;
    KernelJob job_;
    std::function<void(const EngineRunStats &)> onDone_;
    uint64_t chunksTotal_ = 0;
    uint64_t chunksIssued_ = 0;
    uint64_t chunksComputed_ = 0;
    uint64_t batchedChunks_ = 0;
    int inFlight_ = 0;
    EngineRunStats stats_;

    /** One in-flight arrival in a batched replay, ordered by
     * (when, issue order) exactly as the event queue would fire. */
    struct BatchArrival {
        double when;
        uint64_t idx;
        double bytes;
        bool miss;
    };
    std::vector<BatchArrival> batchHeap_; // reused across runs

    // Telemetry bindings (all null when detached).
    telemetry::Counter *issuedCount_ = nullptr;
    telemetry::Counter *computedCount_ = nullptr;
    telemetry::Counter *hitRequests_ = nullptr;
    telemetry::Counter *missRequests_ = nullptr;
    telemetry::Counter *coordInterrupts_ = nullptr;
};

inline void
IpEngine::onDataArrived(double chunk_bytes, bool was_miss)
{
    GABLES_ASSERT(inFlight_ > 0, "data arrival with nothing in flight");
    --inFlight_;
    stats_.bytes += chunk_bytes;
    if (was_miss)
        stats_.missBytes += chunk_bytes;

    double ops = chunk_bytes * job_.opsPerByte;
    double done_at = compute_.acquire(eq_->now(), ops);
    eq_->scheduleChunkComputed(done_at, this, ops);

    issueRequests();
}

inline void
IpEngine::onChunkComputed(double ops)
{
    stats_.ops += ops;
    ++chunksComputed_;
    if (computedCount_ != nullptr)
        computedCount_->add(1.0);
    if (chunksComputed_ == chunksTotal_) {
        running_ = false;
        stats_.endTime = eq_->now();
        GABLES_ASSERT(stats_.endTime > stats_.startTime,
                      "zero-duration engine run");
        if (onDone_)
            onDone_(stats_);
    }
}

} // namespace sim
} // namespace gables

#endif // GABLES_SIM_IP_ENGINE_H
