#include "sim/memory_system.h"

#include <algorithm>

#include "telemetry/stats.h"
#include "util/logging.h"

namespace gables {
namespace sim {

void
MemoryPath::addHop(BandwidthResource *hop)
{
    GABLES_ASSERT(hop != nullptr, "null hop");
    hops_.push_back(hop);
}

double
MemoryPath::unloadedLatency() const
{
    double lat = 0.0;
    for (const BandwidthResource *hop : hops_)
        lat += hop->latency();
    return lat;
}

LocalMemory::LocalMemory(std::string name, double capacity,
                         double bandwidth, double latency)
    : capacity_(capacity), resource_(std::move(name), bandwidth, latency)
{
    if (!(capacity >= 0.0))
        fatal("local memory capacity must be >= 0");
}

void
LocalMemory::setWorkingSet(double working_set_bytes)
{
    if (!(working_set_bytes > 0.0))
        fatal("working set must be > 0");
    hitRatio_ = std::min(1.0, capacity_ / working_set_bytes);
    accumulator_ = 0.0;
}

bool
LocalMemory::nextIsHit()
{
    accumulator_ += hitRatio_;
    if (accumulator_ >= 1.0 - 1e-12) {
        accumulator_ -= 1.0;
        if (hitCount_ != nullptr)
            hitCount_->add(1.0);
        return true;
    }
    if (missCount_ != nullptr)
        missCount_->add(1.0);
    return false;
}

void
LocalMemory::attachTelemetry(telemetry::StatsRegistry *registry)
{
    resource_.attachTelemetry(registry);
    if (registry == nullptr) {
        hitCount_ = missCount_ = nullptr;
        return;
    }
    const std::string &name = resource_.name();
    hitCount_ = &registry->counter(name + ".hits",
                                   "requests served locally");
    missCount_ = &registry->counter(
        name + ".misses", "requests sent down the memory path");
}

void
LocalMemory::reset()
{
    accumulator_ = 0.0;
    resource_.reset();
}

} // namespace sim
} // namespace gables
