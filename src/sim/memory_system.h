/**
 * @file
 * The simulated memory system: a path of bandwidth resources from an
 * IP's link through fabric hops to the DRAM controller, plus an
 * optional per-IP local memory (cache/scratchpad) that filters
 * requests by working-set fit.
 */

#ifndef GABLES_SIM_MEMORY_SYSTEM_H
#define GABLES_SIM_MEMORY_SYSTEM_H

#include <memory>
#include <string>
#include <vector>

#include "sim/resource.h"

namespace gables {

namespace telemetry {
class Counter;
class StatsRegistry;
} // namespace telemetry

namespace sim {

/**
 * An ordered chain of bandwidth resources a memory request traverses
 * (IP link, one or more fabrics, DRAM controller), store-and-forward.
 */
class MemoryPath
{
  public:
    /** Construct an empty path; append hops with addHop(). */
    MemoryPath() = default;

    /**
     * Append a hop; hops are traversed in insertion order. The path
     * holds a non-owning pointer — the SimSoc owns all resources.
     */
    void addHop(BandwidthResource *hop);

    /** @return The hops in traversal order. */
    const std::vector<BandwidthResource *> &hops() const { return hops_; }

    /**
     * Book a transfer of @p bytes arriving at @p arrival through all
     * hops in order. Inline so the per-hop acquire() bookings fold
     * into the caller's chunk-issue loop.
     *
     * @return Completion time at the last hop.
     */
    double request(double arrival, double bytes) const
    {
        GABLES_ASSERT(!hops_.empty(), "memory path has no hops");
        double t = arrival;
        for (BandwidthResource *hop : hops_)
            t = hop->acquire(t, bytes);
        return t;
    }

    /** @return Sum of per-hop latencies (the unloaded round trip). */
    double unloadedLatency() const;

  private:
    std::vector<BandwidthResource *> hops_;
};

/**
 * A per-IP local memory (cache or scratchpad). Requests whose
 * working set fits are served locally at the local bandwidth; when
 * the working set exceeds capacity, the non-fitting fraction misses
 * to the memory path. Misses are spread deterministically and evenly
 * over the request stream with an error-accumulator (Bresenham
 * style), so simulations are exactly reproducible.
 */
class LocalMemory
{
  public:
    /**
     * @param name      Display name.
     * @param capacity  Capacity in bytes, >= 0 (0 disables hits).
     * @param bandwidth Local service rate (bytes/s).
     * @param latency   Local hit latency (s).
     */
    LocalMemory(std::string name, double capacity, double bandwidth,
                double latency);

    /** @return The hit-side bandwidth resource (for stats). */
    BandwidthResource &resource() { return resource_; }
    const BandwidthResource &resource() const { return resource_; }

    /** @return Capacity in bytes. */
    double capacity() const { return capacity_; }

    /**
     * Set the working-set size of the running kernel; determines the
     * hit ratio via fractional fit: hit = min(1, capacity/set).
     */
    void setWorkingSet(double working_set_bytes);

    /** @return The current hit ratio in [0, 1]. */
    double hitRatio() const { return hitRatio_; }

    /**
     * Classify the next request: true if it hits locally. Uses the
     * deterministic accumulator so exactly hitRatio of a long stream
     * hits.
     */
    bool nextIsHit();

    /**
     * Attach a telemetry registry: registers "<name>.hits" and
     * "<name>.misses" counters bumped by nextIsHit(), and forwards
     * to the hit-side resource. Pass nullptr to detach.
     */
    void attachTelemetry(telemetry::StatsRegistry *registry);

    /** Reset the accumulator and stats. */
    void reset();

  private:
    double capacity_;
    BandwidthResource resource_;
    double hitRatio_ = 0.0;
    double accumulator_ = 0.0;
    telemetry::Counter *hitCount_ = nullptr;
    telemetry::Counter *missCount_ = nullptr;
};

} // namespace sim
} // namespace gables

#endif // GABLES_SIM_MEMORY_SYSTEM_H
