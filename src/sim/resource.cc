#include "sim/resource.h"

#include <algorithm>

#include "sim/trace.h"
#include "util/logging.h"

namespace gables {
namespace sim {

BandwidthResource::BandwidthResource(std::string name, double bandwidth,
                                     double latency)
    : name_(std::move(name)), bandwidth_(bandwidth), latency_(latency)
{
    if (!(bandwidth > 0.0))
        fatal("resource '" + name_ + "': bandwidth must be > 0");
    if (!(latency >= 0.0))
        fatal("resource '" + name_ + "': latency must be >= 0");
}

double
BandwidthResource::acquire(double arrival, double bytes)
{
    GABLES_ASSERT(bytes >= 0.0, "negative transfer size");
    double start = std::max(arrival, busyUntil_);
    double service = bytes / bandwidth_;
    if (tracer_ != nullptr)
        tracer_->record(name_, start, service);
    busyUntil_ = start + service;
    busyTime_ += service;
    bytesServed_ += bytes;
    ++requests_;
    return busyUntil_ + latency_;
}

double
BandwidthResource::acquireService(double arrival, double service_seconds)
{
    GABLES_ASSERT(service_seconds >= 0.0, "negative service time");
    double start = std::max(arrival, busyUntil_);
    if (tracer_ != nullptr)
        tracer_->record(name_, start, service_seconds);
    busyUntil_ = start + service_seconds;
    busyTime_ += service_seconds;
    ++requests_;
    return busyUntil_ + latency_;
}

double
BandwidthResource::utilization(double end_time) const
{
    if (!(end_time > 0.0))
        return 0.0;
    return std::min(1.0, busyTime_ / end_time);
}

void
BandwidthResource::reset()
{
    busyUntil_ = 0.0;
    bytesServed_ = 0.0;
    busyTime_ = 0.0;
    requests_ = 0;
}

} // namespace sim
} // namespace gables
