#include "sim/resource.h"

#include <algorithm>

#include "sim/trace.h"
#include "telemetry/stats.h"
#include "util/logging.h"

namespace gables {
namespace sim {

BandwidthResource::BandwidthResource(std::string name, double bandwidth,
                                     double latency)
    : name_(std::move(name)), bandwidth_(bandwidth), latency_(latency)
{
    if (!(bandwidth > 0.0))
        fatal("resource '" + name_ + "': bandwidth must be > 0");
    if (!(latency >= 0.0))
        fatal("resource '" + name_ + "': latency must be >= 0");
}

double
BandwidthResource::acquireInstrumented(double arrival, double start,
                                       double service, double bytes)
{
    if (tracer_ != nullptr)
        tracer_->record(name_, start, service);
    busyUntil_ = start + service;
    busyTime_ += service;
    bytesServed_ += bytes;
    ++requests_;
    observe(arrival, start, service, bytes);
    return busyUntil_ + latency_;
}

double
BandwidthResource::serviceInstrumented(double arrival, double start,
                                       double service_seconds)
{
    if (tracer_ != nullptr)
        tracer_->record(name_, start, service_seconds);
    busyUntil_ = start + service_seconds;
    busyTime_ += service_seconds;
    ++requests_;
    observe(arrival, start, service_seconds, 0.0);
    return busyUntil_ + latency_;
}

void
BandwidthResource::observe(double arrival, double start, double service,
                           double bytes)
{
    if (registry_ == nullptr && tracer_ == nullptr)
        return;

    // Queue depth at this arrival: booked requests not yet drained,
    // including the one just booked.
    while (!inService_.empty() && inService_.front() <= arrival)
        inService_.pop_front();
    inService_.push_back(start + service);
    double depth = static_cast<double>(inService_.size());

    if (registry_ != nullptr) {
        waitTime_->sample(start - arrival);
        serviceTime_->sample(service);
        queueDepth_->sample(depth);
        queueDepthHist_->sample(depth);
        requestCount_->add(1.0);
        byteCount_->add(bytes);
        serviceLog_.push_back(ServiceInterval{start, service, bytes});
    }
    if (tracer_ != nullptr)
        tracer_->counter(name_ + ".queue", arrival, depth);
}

void
BandwidthResource::attachTelemetry(telemetry::StatsRegistry *registry)
{
    registry_ = registry;
    instrumented_ = tracer_ != nullptr || registry_ != nullptr;
    serviceLog_.clear();
    inService_.clear();
    if (registry == nullptr) {
        waitTime_ = serviceTime_ = queueDepth_ = nullptr;
        queueDepthHist_ = nullptr;
        requestCount_ = byteCount_ = nullptr;
        return;
    }
    waitTime_ = &registry->distribution(
        name_ + ".wait_time",
        "seconds a request waited between arrival and service start");
    serviceTime_ = &registry->distribution(
        name_ + ".service_time", "seconds of service per request");
    queueDepth_ = &registry->distribution(
        name_ + ".queue_depth",
        "requests in service or queued, sampled at each arrival");
    queueDepthHist_ = &registry->histogram(
        name_ + ".queue_depth_hist", 0.0, 64.0, 16,
        "queue-depth-at-arrival histogram");
    requestCount_ =
        &registry->counter(name_ + ".requests", "requests served");
    byteCount_ = &registry->counter(name_ + ".bytes", "bytes served");
}

void
BandwidthResource::reserveLog(size_t expected_entries)
{
    if (registry_ != nullptr)
        serviceLog_.reserve(expected_entries);
}

double
BandwidthResource::utilization(double end_time) const
{
    if (!(end_time > 0.0))
        return 0.0;
    return std::min(1.0, busyTime_ / end_time);
}

void
BandwidthResource::reset()
{
    busyUntil_ = 0.0;
    bytesServed_ = 0.0;
    busyTime_ = 0.0;
    requests_ = 0;
    serviceLog_.clear();
    inService_.clear();
}

} // namespace sim
} // namespace gables
