/**
 * @file
 * Bandwidth-server resources: the building block of the throughput-
 * level SoC simulator. A resource serves requests FIFO at a fixed
 * byte rate with an optional per-request latency; contention between
 * requesters emerges from the shared busy window. Fabrics, the DRAM
 * controller, IP local memories, and the coordination CPU are all
 * instances.
 */

#ifndef GABLES_SIM_RESOURCE_H
#define GABLES_SIM_RESOURCE_H

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace gables {

namespace telemetry {
class Counter;
class Distribution;
class Histogram;
class StatsRegistry;
} // namespace telemetry

namespace sim {

class TraceRecorder;

/**
 * A FIFO bandwidth server.
 *
 * acquire(arrival, bytes) books the next free service slot:
 *   start      = max(arrival, busyUntil)
 *   busyUntil  = start + bytes / bandwidth
 *   completion = busyUntil + latency
 *
 * The model is store-and-forward: a request fully occupies the
 * server for its transfer time, and downstream hops see the
 * completion time as their arrival.
 */
class BandwidthResource
{
  public:
    /**
     * @param name      Display name for stats.
     * @param bandwidth Service rate in bytes/s, > 0.
     * @param latency   Added per-request latency in seconds, >= 0.
     */
    BandwidthResource(std::string name, double bandwidth,
                      double latency = 0.0);

    /** @return Display name. */
    const std::string &name() const { return name_; }

    /** @return Service rate (bytes/s). */
    double bandwidth() const { return bandwidth_; }

    /** @return Per-request latency (s). */
    double latency() const { return latency_; }

    /**
     * Book a transfer of @p bytes arriving at @p arrival.
     *
     * @return Completion time (seconds).
     */
    double acquire(double arrival, double bytes);

    /**
     * Book a fixed service time (e.g. an interrupt-handling cost)
     * instead of a byte transfer.
     *
     * @return Completion time (seconds).
     */
    double acquireService(double arrival, double service_seconds);

    /** @return Time the server next becomes free. */
    double busyUntil() const { return busyUntil_; }

    /** @return Total bytes served so far. */
    double bytesServed() const { return bytesServed_; }

    /** @return Total busy (service) time accumulated so far. */
    double busyTime() const { return busyTime_; }

    /** @return Requests served so far. */
    uint64_t requestsServed() const { return requests_; }

    /**
     * @return Utilization over [0, end_time]: busyTime / end_time.
     */
    double utilization(double end_time) const;

    /** Clear booking state and statistics. */
    void reset();

    /**
     * Attach a trace recorder: every subsequent service interval is
     * recorded under this resource's name, and a "<name>.queue"
     * counter track samples the queue depth at each arrival. Pass
     * nullptr to detach.
     */
    void setTracer(TraceRecorder *tracer) { tracer_ = tracer; }

    /**
     * One booked service interval, kept only while a telemetry
     * registry is attached; feeds post-run epoch sampling.
     */
    struct ServiceInterval {
        double start;
        double duration;
        double bytes;
    };

    /**
     * Attach a telemetry registry: registers (or re-binds to)
     * "<name>.wait_time", "<name>.service_time", "<name>.queue_depth"
     * distributions, a "<name>.queue_depth_hist" histogram, and
     * "<name>.requests" / "<name>.bytes" counters, all updated per
     * acquire. Also turns on the service-interval log. Telemetry is
     * purely observational: booking arithmetic is untouched, so
     * simulation results are bit-identical with it attached or not.
     * Pass nullptr to detach.
     */
    void attachTelemetry(telemetry::StatsRegistry *registry);

    /** @return Booked intervals (empty unless telemetry attached). */
    const std::vector<ServiceInterval> &serviceLog() const
    {
        return serviceLog_;
    }

  private:
    void observe(double arrival, double start, double service,
                 double bytes);

    std::string name_;
    double bandwidth_;
    double latency_;
    TraceRecorder *tracer_ = nullptr;
    double busyUntil_ = 0.0;
    double bytesServed_ = 0.0;
    double busyTime_ = 0.0;
    uint64_t requests_ = 0;

    // Telemetry bindings (all null when detached).
    telemetry::StatsRegistry *registry_ = nullptr;
    telemetry::Distribution *waitTime_ = nullptr;
    telemetry::Distribution *serviceTime_ = nullptr;
    telemetry::Distribution *queueDepth_ = nullptr;
    telemetry::Histogram *queueDepthHist_ = nullptr;
    telemetry::Counter *requestCount_ = nullptr;
    telemetry::Counter *byteCount_ = nullptr;
    std::vector<ServiceInterval> serviceLog_;
    // Completion times of booked requests still in service at the
    // latest arrival; its size is the queue depth sample.
    std::deque<double> inService_;
};

} // namespace sim
} // namespace gables

#endif // GABLES_SIM_RESOURCE_H
