/**
 * @file
 * Bandwidth-server resources: the building block of the throughput-
 * level SoC simulator. A resource serves requests FIFO at a fixed
 * byte rate with an optional per-request latency; contention between
 * requesters emerges from the shared busy window. Fabrics, the DRAM
 * controller, IP local memories, and the coordination CPU are all
 * instances.
 */

#ifndef GABLES_SIM_RESOURCE_H
#define GABLES_SIM_RESOURCE_H

#include <cstdint>
#include <string>

namespace gables {
namespace sim {

class TraceRecorder;

/**
 * A FIFO bandwidth server.
 *
 * acquire(arrival, bytes) books the next free service slot:
 *   start      = max(arrival, busyUntil)
 *   busyUntil  = start + bytes / bandwidth
 *   completion = busyUntil + latency
 *
 * The model is store-and-forward: a request fully occupies the
 * server for its transfer time, and downstream hops see the
 * completion time as their arrival.
 */
class BandwidthResource
{
  public:
    /**
     * @param name      Display name for stats.
     * @param bandwidth Service rate in bytes/s, > 0.
     * @param latency   Added per-request latency in seconds, >= 0.
     */
    BandwidthResource(std::string name, double bandwidth,
                      double latency = 0.0);

    /** @return Display name. */
    const std::string &name() const { return name_; }

    /** @return Service rate (bytes/s). */
    double bandwidth() const { return bandwidth_; }

    /** @return Per-request latency (s). */
    double latency() const { return latency_; }

    /**
     * Book a transfer of @p bytes arriving at @p arrival.
     *
     * @return Completion time (seconds).
     */
    double acquire(double arrival, double bytes);

    /**
     * Book a fixed service time (e.g. an interrupt-handling cost)
     * instead of a byte transfer.
     *
     * @return Completion time (seconds).
     */
    double acquireService(double arrival, double service_seconds);

    /** @return Time the server next becomes free. */
    double busyUntil() const { return busyUntil_; }

    /** @return Total bytes served so far. */
    double bytesServed() const { return bytesServed_; }

    /** @return Total busy (service) time accumulated so far. */
    double busyTime() const { return busyTime_; }

    /** @return Requests served so far. */
    uint64_t requestsServed() const { return requests_; }

    /**
     * @return Utilization over [0, end_time]: busyTime / end_time.
     */
    double utilization(double end_time) const;

    /** Clear booking state and statistics. */
    void reset();

    /**
     * Attach a trace recorder: every subsequent service interval is
     * recorded under this resource's name. Pass nullptr to detach.
     */
    void setTracer(TraceRecorder *tracer) { tracer_ = tracer; }

  private:
    std::string name_;
    double bandwidth_;
    double latency_;
    TraceRecorder *tracer_ = nullptr;
    double busyUntil_ = 0.0;
    double bytesServed_ = 0.0;
    double busyTime_ = 0.0;
    uint64_t requests_ = 0;
};

} // namespace sim
} // namespace gables

#endif // GABLES_SIM_RESOURCE_H
