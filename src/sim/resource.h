/**
 * @file
 * Bandwidth-server resources: the building block of the throughput-
 * level SoC simulator. A resource serves requests FIFO at a fixed
 * byte rate with an optional per-request latency; contention between
 * requesters emerges from the shared busy window. Fabrics, the DRAM
 * controller, IP local memories, and the coordination CPU are all
 * instances.
 */

#ifndef GABLES_SIM_RESOURCE_H
#define GABLES_SIM_RESOURCE_H

#include <algorithm>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "util/logging.h"

namespace gables {

namespace telemetry {
class Counter;
class Distribution;
class Histogram;
class StatsRegistry;
} // namespace telemetry

namespace sim {

class TraceRecorder;

/**
 * A FIFO bandwidth server.
 *
 * acquire(arrival, bytes) books the next free service slot:
 *   start      = max(arrival, busyUntil)
 *   busyUntil  = start + bytes / bandwidth
 *   completion = busyUntil + latency
 *
 * The model is store-and-forward: a request fully occupies the
 * server for its transfer time, and downstream hops see the
 * completion time as their arrival.
 */
class BandwidthResource
{
  public:
    /**
     * @param name      Display name for stats.
     * @param bandwidth Service rate in bytes/s, > 0.
     * @param latency   Added per-request latency in seconds, >= 0.
     */
    BandwidthResource(std::string name, double bandwidth,
                      double latency = 0.0);

    /** @return Display name. */
    const std::string &name() const { return name_; }

    /** @return Service rate (bytes/s). */
    double bandwidth() const { return bandwidth_; }

    /** @return Per-request latency (s). */
    double latency() const { return latency_; }

    /**
     * Book a transfer of @p bytes arriving at @p arrival.
     *
     * Defined inline: the uninstrumented booking (no tracer, no
     * telemetry) is the simulator's innermost loop, and the
     * instrumented path repeats the exact same arithmetic so results
     * are bit-identical either way.
     *
     * @return Completion time (seconds).
     */
    double acquire(double arrival, double bytes)
    {
        GABLES_ASSERT(bytes >= 0.0, "negative transfer size");
        double start = std::max(arrival, busyUntil_);
        // Chunked streams divide the same request size by the same
        // (immutable) bandwidth on every booking; memoizing the
        // quotient takes the divide off the booking dependency chain.
        // IEEE division is deterministic, so the cached quotient is
        // bit-identical to recomputing it.
        double service;
        if (bytes == memoBytes_) {
            service = memoService_;
        } else {
            service = bytes / bandwidth_;
            memoBytes_ = bytes;
            memoService_ = service;
        }
        if (instrumented_)
            return acquireInstrumented(arrival, start, service, bytes);
        busyUntil_ = start + service;
        busyTime_ += service;
        bytesServed_ += bytes;
        ++requests_;
        return busyUntil_ + latency_;
    }

    /**
     * Book a fixed service time (e.g. an interrupt-handling cost)
     * instead of a byte transfer.
     *
     * @return Completion time (seconds).
     */
    double acquireService(double arrival, double service_seconds)
    {
        GABLES_ASSERT(service_seconds >= 0.0, "negative service time");
        double start = std::max(arrival, busyUntil_);
        if (instrumented_)
            return serviceInstrumented(arrival, start, service_seconds);
        busyUntil_ = start + service_seconds;
        busyTime_ += service_seconds;
        ++requests_;
        return busyUntil_ + latency_;
    }

    /** @return Time the server next becomes free. */
    double busyUntil() const { return busyUntil_; }

    /** @return Total bytes served so far. */
    double bytesServed() const { return bytesServed_; }

    /** @return Total busy (service) time accumulated so far. */
    double busyTime() const { return busyTime_; }

    /** @return Requests served so far. */
    uint64_t requestsServed() const { return requests_; }

    /**
     * @return Utilization over [0, end_time]: busyTime / end_time.
     */
    double utilization(double end_time) const;

    /** Clear booking state and statistics. */
    void reset();

    /**
     * Attach a trace recorder: every subsequent service interval is
     * recorded under this resource's name, and a "<name>.queue"
     * counter track samples the queue depth at each arrival. Pass
     * nullptr to detach.
     */
    void setTracer(TraceRecorder *tracer)
    {
        tracer_ = tracer;
        instrumented_ = tracer_ != nullptr || registry_ != nullptr;
    }

    /**
     * One booked service interval, kept only while a telemetry
     * registry is attached; feeds post-run epoch sampling.
     */
    struct ServiceInterval {
        double start;
        double duration;
        double bytes;
    };

    /**
     * Attach a telemetry registry: registers (or re-binds to)
     * "<name>.wait_time", "<name>.service_time", "<name>.queue_depth"
     * distributions, a "<name>.queue_depth_hist" histogram, and
     * "<name>.requests" / "<name>.bytes" counters, all updated per
     * acquire. Also turns on the service-interval log. Telemetry is
     * purely observational: booking arithmetic is untouched, so
     * simulation results are bit-identical with it attached or not.
     * Pass nullptr to detach.
     */
    void attachTelemetry(telemetry::StatsRegistry *registry);

    /** @return Booked intervals (empty unless telemetry attached). */
    const std::vector<ServiceInterval> &serviceLog() const
    {
        return serviceLog_;
    }

    /**
     * Pre-size the service-interval log for an expected number of
     * bookings (no-op when telemetry is detached — the log stays
     * empty then). Avoids reallocation churn mid-run; see
     * docs/OBSERVABILITY.md for the log's memory model.
     */
    void reserveLog(size_t expected_entries);

    /** @return Bytes of memory held by the service-interval log
     * (capacity, not size — reserved space counts). */
    size_t serviceLogCapacityBytes() const
    {
        return serviceLog_.capacity() * sizeof(ServiceInterval);
    }

  private:
    /** Slow path of acquire(): books with the trace record and
     * telemetry observation in the original order. */
    double acquireInstrumented(double arrival, double start,
                               double service, double bytes);
    /** Slow path of acquireService(). */
    double serviceInstrumented(double arrival, double start,
                               double service_seconds);
    void observe(double arrival, double start, double service,
                 double bytes);

    std::string name_;
    double bandwidth_;
    double latency_;
    // True iff a tracer or registry is attached; one flag so the
    // inline acquire fast path tests a single branch.
    bool instrumented_ = false;
    // Last transfer size and its service-time quotient (acquire()).
    double memoBytes_ = -1.0;
    double memoService_ = 0.0;
    TraceRecorder *tracer_ = nullptr;
    double busyUntil_ = 0.0;
    double bytesServed_ = 0.0;
    double busyTime_ = 0.0;
    uint64_t requests_ = 0;

    // Telemetry bindings (all null when detached).
    telemetry::StatsRegistry *registry_ = nullptr;
    telemetry::Distribution *waitTime_ = nullptr;
    telemetry::Distribution *serviceTime_ = nullptr;
    telemetry::Distribution *queueDepth_ = nullptr;
    telemetry::Histogram *queueDepthHist_ = nullptr;
    telemetry::Counter *requestCount_ = nullptr;
    telemetry::Counter *byteCount_ = nullptr;
    std::vector<ServiceInterval> serviceLog_;
    // Completion times of booked requests still in service at the
    // latest arrival; its size is the queue depth sample.
    std::deque<double> inService_;
};

} // namespace sim
} // namespace gables

#endif // GABLES_SIM_RESOURCE_H
