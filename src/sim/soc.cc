#include "sim/soc.h"

#include <algorithm>

#include "util/logging.h"

namespace gables {
namespace sim {

double
SocRunStats::aggregateOpsRate() const
{
    if (!(duration > 0.0))
        return 0.0;
    double ops = 0.0;
    for (const EngineRunStats &e : engines)
        ops += e.ops;
    return ops / duration;
}

const EngineRunStats &
SocRunStats::engine(const std::string &name) const
{
    for (const EngineRunStats &e : engines) {
        if (e.name == name)
            return e;
    }
    fatal("no engine stats named '" + name + "'");
}

SimSoc::SimSoc(std::string name) : name_(std::move(name)) {}

void
SimSoc::setDram(double bandwidth, double latency)
{
    if (dram_)
        fatal("SimSoc '" + name_ + "': DRAM already configured");
    dram_ = std::make_unique<BandwidthResource>("DRAM", bandwidth,
                                                latency);
    dram_->setTracer(tracer_);
}

BandwidthResource *
SimSoc::addFabric(const std::string &fabric_name, double bandwidth,
                  double latency, BandwidthResource *parent)
{
    fabrics_.push_back(std::make_unique<BandwidthResource>(
        fabric_name, bandwidth, latency));
    BandwidthResource *fabric = fabrics_.back().get();
    fabric->setTracer(tracer_);
    if (parent != nullptr) {
        bool known = false;
        for (const auto &f : fabrics_)
            known = known || f.get() == parent;
        if (!known)
            fatal("fabric parent is not a fabric of this SoC");
    }
    fabricParent_[fabric] = parent;
    return fabric;
}

IpEngine *
SimSoc::addEngine(const IpEngineConfig &config,
                  const EngineAttachment &attach)
{
    if (!dram_)
        fatal("SimSoc '" + name_ + "': configure DRAM before engines");
    if (!(attach.linkBandwidth > 0.0))
        fatal("engine '" + config.name + "': link bandwidth must be > 0");
    for (const std::string &existing : engineNames_) {
        if (existing == config.name)
            fatal("duplicate engine name '" + config.name + "'");
    }

    links_.push_back(std::make_unique<BandwidthResource>(
        config.name + ".link", attach.linkBandwidth, attach.linkLatency));
    BandwidthResource *link = links_.back().get();
    link->setTracer(tracer_);

    // Build the shared path: fabric chain (child to parent) then DRAM.
    MemoryPath path;
    BandwidthResource *hop = attach.fabric;
    while (hop != nullptr) {
        path.addHop(hop);
        auto it = fabricParent_.find(hop);
        GABLES_ASSERT(it != fabricParent_.end(), "unknown fabric in path");
        hop = it->second;
    }
    path.addHop(dram_.get());

    LocalMemory *local = nullptr;
    if (attach.localCapacity > 0.0) {
        if (!(attach.localBandwidth > 0.0))
            fatal("engine '" + config.name +
                  "': local memory needs a bandwidth");
        locals_.push_back(std::make_unique<LocalMemory>(
            config.name + ".local", attach.localCapacity,
            attach.localBandwidth, attach.localLatency));
        local = locals_.back().get();
    }

    BandwidthResource *coordinator = nullptr;
    if (!attach.coordinatorEngine.empty())
        coordinator = engine(attach.coordinatorEngine)
                          ->computeResourcePtr();

    engines_.push_back(std::make_unique<IpEngine>(
        config, &eq_, link, std::move(path), local, coordinator));
    engines_.back()->computeResourcePtr()->setTracer(tracer_);
    if (local != nullptr)
        local->resource().setTracer(tracer_);
    engineNames_.push_back(config.name);
    coordinators_.push_back(coordinator);
    return engines_.back().get();
}

IpEngine *
SimSoc::engine(const std::string &engine_name)
{
    for (size_t i = 0; i < engineNames_.size(); ++i) {
        if (engineNames_[i] == engine_name)
            return engines_[i].get();
    }
    fatal("SimSoc '" + name_ + "': no engine named '" + engine_name +
          "'");
}

void
SimSoc::attachTracer(TraceRecorder *tracer)
{
    tracer_ = tracer;
    if (dram_)
        dram_->setTracer(tracer);
    for (auto &f : fabrics_)
        f->setTracer(tracer);
    for (auto &l : links_)
        l->setTracer(tracer);
    for (auto &m : locals_)
        m->resource().setTracer(tracer);
    for (auto &e : engines_)
        e->computeResourcePtr()->setTracer(tracer);
}

void
SimSoc::resetAll()
{
    eq_.reset();
    if (dram_)
        dram_->reset();
    for (auto &f : fabrics_)
        f->reset();
    for (auto &l : links_)
        l->reset();
    for (auto &m : locals_)
        m->reset();
    for (auto &e : engines_)
        e->reset();
}

SocRunStats
SimSoc::run(const std::vector<JobSubmission> &jobs)
{
    if (jobs.empty())
        fatal("SimSoc::run needs at least one job");
    resetAll();

    SocRunStats stats;
    stats.engines.resize(jobs.size());
    size_t remaining = jobs.size();

    for (size_t j = 0; j < jobs.size(); ++j) {
        IpEngine *eng = engine(jobs[j].engineName);
        eng->start(jobs[j].job,
                   [&stats, j, &remaining](const EngineRunStats &s) {
                       stats.engines[j] = s;
                       --remaining;
                   });
    }
    stats.duration = eq_.run();
    GABLES_ASSERT(remaining == 0, "a job never completed");

    auto snapshot = [&](const BandwidthResource &r) {
        stats.resources.push_back(
            ResourceStats{r.name(), r.bytesServed(), r.busyTime(),
                          r.utilization(stats.duration)});
    };
    if (dram_) {
        snapshot(*dram_);
        stats.dramBytes = dram_->bytesServed();
    }
    for (const auto &f : fabrics_)
        snapshot(*f);
    for (const auto &l : links_)
        snapshot(*l);
    for (const auto &e : engines_)
        snapshot(e->computeResource());
    return stats;
}

} // namespace sim
} // namespace gables
