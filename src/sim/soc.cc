#include "sim/soc.h"

#include <algorithm>
#include <cmath>

#include "telemetry/span.h"
#include "telemetry/stats.h"
#include "util/logging.h"

namespace gables {
namespace sim {

double
SocRunStats::aggregateOpsRate() const
{
    if (!(duration > 0.0))
        return 0.0;
    double ops = 0.0;
    for (const EngineRunStats &e : engines)
        ops += e.ops;
    return ops / duration;
}

const EngineRunStats &
SocRunStats::engine(const std::string &name) const
{
    auto it = engineIndex.find(name);
    if (it != engineIndex.end() && it->second < engines.size())
        return engines[it->second];
    for (const EngineRunStats &e : engines) {
        if (e.name == name)
            return e;
    }
    fatal("no engine stats named '" + name + "'");
}

SimSoc::SimSoc(std::string name) : name_(std::move(name)) {}

void
SimSoc::setDram(double bandwidth, double latency)
{
    if (dram_)
        fatal("SimSoc '" + name_ + "': DRAM already configured");
    dram_ = std::make_unique<BandwidthResource>("DRAM", bandwidth,
                                                latency);
    dram_->setTracer(tracer_);
    if (registry_ != nullptr)
        dram_->attachTelemetry(registry_);
}

BandwidthResource *
SimSoc::addFabric(const std::string &fabric_name, double bandwidth,
                  double latency, BandwidthResource *parent)
{
    fabrics_.push_back(std::make_unique<BandwidthResource>(
        fabric_name, bandwidth, latency));
    BandwidthResource *fabric = fabrics_.back().get();
    fabric->setTracer(tracer_);
    if (registry_ != nullptr)
        fabric->attachTelemetry(registry_);
    if (parent != nullptr) {
        bool known = false;
        for (const auto &f : fabrics_)
            known = known || f.get() == parent;
        if (!known)
            fatal("fabric parent is not a fabric of this SoC");
    }
    fabricParent_[fabric] = parent;
    return fabric;
}

IpEngine *
SimSoc::addEngine(const IpEngineConfig &config,
                  const EngineAttachment &attach)
{
    if (!dram_)
        fatal("SimSoc '" + name_ + "': configure DRAM before engines");
    if (!(attach.linkBandwidth > 0.0))
        fatal("engine '" + config.name + "': link bandwidth must be > 0");
    for (const std::string &existing : engineNames_) {
        if (existing == config.name)
            fatal("duplicate engine name '" + config.name + "'");
    }

    links_.push_back(std::make_unique<BandwidthResource>(
        config.name + ".link", attach.linkBandwidth, attach.linkLatency));
    BandwidthResource *link = links_.back().get();
    link->setTracer(tracer_);

    // Build the shared path: fabric chain (child to parent) then DRAM.
    MemoryPath path;
    BandwidthResource *hop = attach.fabric;
    while (hop != nullptr) {
        path.addHop(hop);
        auto it = fabricParent_.find(hop);
        GABLES_ASSERT(it != fabricParent_.end(), "unknown fabric in path");
        hop = it->second;
    }
    path.addHop(dram_.get());

    LocalMemory *local = nullptr;
    if (attach.localCapacity > 0.0) {
        if (!(attach.localBandwidth > 0.0))
            fatal("engine '" + config.name +
                  "': local memory needs a bandwidth");
        locals_.push_back(std::make_unique<LocalMemory>(
            config.name + ".local", attach.localCapacity,
            attach.localBandwidth, attach.localLatency));
        local = locals_.back().get();
    }

    BandwidthResource *coordinator = nullptr;
    if (!attach.coordinatorEngine.empty())
        coordinator = engine(attach.coordinatorEngine)
                          ->computeResourcePtr();

    engines_.push_back(std::make_unique<IpEngine>(
        config, &eq_, link, std::move(path), local, coordinator));
    engines_.back()->computeResourcePtr()->setTracer(tracer_);
    if (local != nullptr)
        local->resource().setTracer(tracer_);
    if (registry_ != nullptr) {
        link->attachTelemetry(registry_);
        engines_.back()->attachTelemetry(registry_);
        if (local != nullptr)
            local->attachTelemetry(registry_);
    }
    engineNames_.push_back(config.name);
    engineIndex_[config.name] = engines_.size() - 1;
    coordinators_.push_back(coordinator);
    return engines_.back().get();
}

IpEngine *
SimSoc::engine(const std::string &engine_name)
{
    auto it = engineIndex_.find(engine_name);
    if (it == engineIndex_.end())
        fatal("SimSoc '" + name_ + "': no engine named '" +
              engine_name + "'");
    return engines_[it->second].get();
}

void
SimSoc::attachTracer(TraceRecorder *tracer)
{
    tracer_ = tracer;
    if (dram_)
        dram_->setTracer(tracer);
    for (auto &f : fabrics_)
        f->setTracer(tracer);
    for (auto &l : links_)
        l->setTracer(tracer);
    for (auto &m : locals_)
        m->resource().setTracer(tracer);
    for (auto &e : engines_)
        e->computeResourcePtr()->setTracer(tracer);
}

void
SimSoc::attachTelemetry(telemetry::StatsRegistry *registry)
{
    registry_ = registry;
    if (dram_)
        dram_->attachTelemetry(registry);
    for (auto &f : fabrics_)
        f->attachTelemetry(registry);
    for (auto &l : links_)
        l->attachTelemetry(registry);
    for (auto &m : locals_)
        m->attachTelemetry(registry);
    for (auto &e : engines_)
        e->attachTelemetry(registry);
}

void
SimSoc::resetAll()
{
    eq_.reset();
    if (registry_ != nullptr)
        registry_->resetValues();
    if (dram_)
        dram_->reset();
    for (auto &f : fabrics_)
        f->reset();
    for (auto &l : links_)
        l->reset();
    for (auto &m : locals_)
        m->reset();
    for (auto &e : engines_)
        e->reset();
}

SocRunStats
SimSoc::run(const std::vector<JobSubmission> &jobs)
{
    return run(jobs, 0);
}

SocRunStats
SimSoc::run(const std::vector<JobSubmission> &jobs, int epochs)
{
    if (jobs.empty())
        fatal("SimSoc::run needs at least one job");
    if (epochs < 0)
        fatal("SimSoc::run: epochs must be >= 0");
    if (epochs > 0 && registry_ == nullptr)
        fatal("SimSoc::run: epoch sampling needs an attached "
              "telemetry registry (attachTelemetry)");
    GABLES_SPAN("sim.run");
    resetAll();
    GABLES_DLOG("SimSoc::run: " + name_ + ", " +
                std::to_string(jobs.size()) + " job(s), " +
                std::to_string(epochs) + " epoch(s)");

    SocRunStats stats;
    stats.engines.resize(jobs.size());
    size_t remaining = jobs.size();

    if (registry_ != nullptr) {
        // Pre-size service logs for the expected booking volume so
        // instrumented runs don't reallocate mid-run. Every resource
        // sees at most one booking per chunk (plus coordination
        // interrupts, also one per chunk).
        double chunks = 0.0;
        for (const JobSubmission &s : jobs) {
            const IpEngineConfig &cfg =
                engine(s.engineName)->config();
            chunks += std::ceil(s.job.totalBytes / cfg.requestBytes);
        }
        size_t expect = static_cast<size_t>(
            std::min(chunks, 65536.0));
        if (dram_)
            dram_->reserveLog(expect);
        for (auto &f : fabrics_)
            f->reserveLog(expect);
        for (auto &l : links_)
            l->reserveLog(expect);
        for (auto &m : locals_)
            m->resource().reserveLog(expect);
        for (auto &e : engines_)
            e->computeResourcePtr()->reserveLog(expect);
    }

    // With a single job the engine is the sole requester on every
    // hop it can touch, so its chunks may be booked analytically.
    const bool batch = chunkBatching_ && jobs.size() == 1;
    for (size_t j = 0; j < jobs.size(); ++j) {
        IpEngine *eng = engine(jobs[j].engineName);
        eng->setBatchingAllowed(batch);
        eng->start(jobs[j].job,
                   [&stats, j, &remaining](const EngineRunStats &s) {
                       stats.engines[j] = s;
                       --remaining;
                   });
    }
    stats.duration = eq_.run();
    GABLES_ASSERT(remaining == 0, "a job never completed");
    for (size_t j = 0; j < jobs.size(); ++j)
        stats.engineIndex[stats.engines[j].name] = j;

    stats.resources.reserve((dram_ ? 1 : 0) + fabrics_.size() +
                            links_.size() + engines_.size());
    auto snapshot = [&](const BandwidthResource &r) {
        stats.resources.push_back(
            ResourceStats{r.name(), r.bytesServed(), r.busyTime(),
                          r.utilization(stats.duration)});
    };
    if (dram_) {
        snapshot(*dram_);
        stats.dramBytes = dram_->bytesServed();
    }
    for (const auto &f : fabrics_)
        snapshot(*f);
    for (const auto &l : links_)
        snapshot(*l);
    for (const auto &e : engines_)
        snapshot(e->computeResource());

    if (registry_ != nullptr) {
        uint64_t batched = 0;
        for (const auto &e : engines_)
            batched += e->batchedChunks();
        registry_
            ->counter("sim.events_executed",
                      "events dispatched by the queue this run")
            .add(static_cast<double>(eq_.eventsExecuted()));
        registry_
            ->counter("sim.events_pooled",
                      "scheduled events whose storage was recycled "
                      "rather than allocated")
            .add(static_cast<double>(eq_.eventsPooled()));
        registry_
            ->counter("sim.batched_chunks",
                      "chunks booked analytically instead of via "
                      "per-chunk events")
            .add(static_cast<double>(batched));
        size_t log_bytes = 0;
        if (dram_)
            log_bytes += dram_->serviceLogCapacityBytes();
        for (const auto &f : fabrics_)
            log_bytes += f->serviceLogCapacityBytes();
        for (const auto &l : links_)
            log_bytes += l->serviceLogCapacityBytes();
        for (const auto &m : locals_)
            log_bytes += m->resource().serviceLogCapacityBytes();
        for (const auto &e : engines_)
            log_bytes += e->computeResource().serviceLogCapacityBytes();
        registry_
            ->gauge("telemetry.service_log_bytes",
                    "memory held by per-resource service-interval "
                    "logs (capacity; grows with run length — see "
                    "docs/OBSERVABILITY.md)")
            .set(static_cast<double>(log_bytes));
    }

    if (epochs > 0) {
        GABLES_SPAN("sim.epochs");
        sampleEpochSeries(stats, epochs);
    }
    return stats;
}

namespace {

/**
 * Spread each booked interval's busy time (and bytes, proportional
 * to time overlap) over fixed-width epoch bins.
 */
void
binIntervals(const std::vector<BandwidthResource::ServiceInterval> &log,
             double dt, std::vector<double> &busy,
             std::vector<double> &bytes)
{
    int epochs = static_cast<int>(busy.size());
    for (const BandwidthResource::ServiceInterval &iv : log) {
        double end = iv.start + iv.duration;
        int k = static_cast<int>(std::floor(iv.start / dt));
        k = std::max(0, std::min(k, epochs - 1));
        if (iv.duration <= 0.0) {
            bytes[k] += iv.bytes;
            continue;
        }
        for (; k < epochs; ++k) {
            double b0 = k * dt;
            double b1 = b0 + dt;
            double overlap =
                std::min(end, b1) - std::max(iv.start, b0);
            if (overlap > 0.0) {
                busy[k] += overlap;
                bytes[k] += iv.bytes * overlap / iv.duration;
            }
            if (end <= b1)
                break;
        }
    }
}

} // namespace

void
SimSoc::sampleEpochSeries(const SocRunStats &stats, int epochs)
{
    if (!(stats.duration > 0.0))
        return;
    double dt = stats.duration / epochs;

    // Utilization series for every resource; the DRAM controller
    // additionally yields a bandwidth series, and each engine's
    // compute resource an ops-rate series (its "bytes" are ops).
    auto sample = [&](const BandwidthResource &r) {
        std::vector<double> busy(epochs, 0.0), bytes(epochs, 0.0);
        binIntervals(r.serviceLog(), dt, busy, bytes);
        telemetry::TimeSeries &util = registry_->timeSeries(
            r.name() + ".utilization", "per-epoch utilization");
        for (int k = 0; k < epochs; ++k) {
            double t0 = k * dt;
            double u = std::min(1.0, busy[k] / dt);
            util.sample(t0 + 0.5 * dt, u);
            if (tracer_ != nullptr)
                tracer_->counter(r.name() + ".util", t0, u);
        }
        return bytes;
    };

    if (dram_) {
        std::vector<double> bytes = sample(*dram_);
        telemetry::TimeSeries &bw = registry_->timeSeries(
            "DRAM.bw_bytes", "per-epoch DRAM bandwidth (bytes/s)");
        for (int k = 0; k < epochs; ++k) {
            bw.sample((k + 0.5) * dt, bytes[k] / dt);
            if (tracer_ != nullptr)
                tracer_->counter("DRAM.bw_gbps", k * dt,
                                 bytes[k] / dt / 1e9);
        }
    }
    for (const auto &f : fabrics_)
        sample(*f);
    for (const auto &l : links_)
        sample(*l);
    for (const auto &m : locals_)
        sample(m->resource());
    for (size_t i = 0; i < engines_.size(); ++i) {
        const BandwidthResource &compute =
            engines_[i]->computeResource();
        std::vector<double> ops = sample(compute);
        telemetry::TimeSeries &rate = registry_->timeSeries(
            engineNames_[i] + ".ops_rate",
            "per-epoch achieved compute rate (ops/s)");
        for (int k = 0; k < epochs; ++k) {
            rate.sample((k + 0.5) * dt, ops[k] / dt);
            if (tracer_ != nullptr)
                tracer_->counter(engineNames_[i] + ".gops", k * dt,
                                 ops[k] / dt / 1e9);
        }
    }
}

} // namespace sim
} // namespace gables
