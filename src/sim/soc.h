/**
 * @file
 * The simulated SoC: owns the event queue, the DRAM controller, a
 * hierarchy of interconnect fabrics, and the IP engines (each with a
 * private link and optional local memory). Mirrors the generic SoC
 * of the paper's Figure 3 / Figure 5.
 */

#ifndef GABLES_SIM_SOC_H
#define GABLES_SIM_SOC_H

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/event_queue.h"
#include "sim/ip_engine.h"
#include "sim/memory_system.h"
#include "sim/resource.h"
#include "sim/trace.h"

namespace gables {

namespace telemetry {
class StatsRegistry;
} // namespace telemetry

namespace sim {

/** Per-resource utilization snapshot after a run. */
struct ResourceStats {
    std::string name;
    double bytesServed = 0.0;
    double busyTime = 0.0;
    double utilization = 0.0;
};

/** Results of one SimSoc::run(). */
struct SocRunStats {
    /** Wall-clock (simulated) duration: last completion time. */
    double duration = 0.0;
    /** Per-engine run results, in job submission order. */
    std::vector<EngineRunStats> engines;
    /** Utilization of DRAM, fabrics, and links. */
    std::vector<ResourceStats> resources;
    /** Total bytes served by the DRAM controller. */
    double dramBytes = 0.0;
    /** Name → index into engines, filled by SimSoc::run so engine()
     * is a map lookup; hand-built stats may leave it empty (engine()
     * then falls back to a linear scan). */
    std::map<std::string, size_t> engineIndex;

    /** @return Aggregate ops/s across all engines over the run. */
    double aggregateOpsRate() const;

    /** @return Stats of the engine named @p name.
     * @throws FatalError if absent. */
    const EngineRunStats &engine(const std::string &name) const;
};

/**
 * Builder + container for a simulated SoC.
 *
 * Construction order: setDram(), then addFabric() (fabrics may chain
 * parent-to-child toward DRAM), then addEngine(). run() executes a
 * set of jobs concurrently and returns measured stats.
 */
class SimSoc
{
  public:
    /** @param name Display name. */
    explicit SimSoc(std::string name);

    /** @return Display name. */
    const std::string &name() const { return name_; }

    /**
     * Configure the DRAM controller (the chip's Bpeak).
     *
     * @param bandwidth Bytes/s.
     * @param latency   Access latency (s).
     */
    void setDram(double bandwidth, double latency);

    /**
     * Add an interconnect fabric.
     *
     * @param fabric_name Display name.
     * @param bandwidth   Bytes/s.
     * @param latency     Per-hop latency (s).
     * @param parent      Fabric this one feeds into, or nullptr to
     *                    connect directly to the DRAM controller.
     * @return Handle for attaching engines or child fabrics.
     */
    BandwidthResource *addFabric(const std::string &fabric_name,
                                 double bandwidth, double latency,
                                 BandwidthResource *parent = nullptr);

    /** Options for an engine's attachment. */
    struct EngineAttachment {
        /** Link bandwidth Bi (bytes/s). */
        double linkBandwidth = 0.0;
        /** Link latency (s). */
        double linkLatency = 0.0;
        /** Fabric the link feeds; nullptr = straight to DRAM. */
        BandwidthResource *fabric = nullptr;
        /** Local memory capacity (bytes); 0 = no local memory. */
        double localCapacity = 0.0;
        /** Local memory bandwidth (bytes/s; required if capacity>0). */
        double localBandwidth = 0.0;
        /** Local memory hit latency (s). */
        double localLatency = 0.0;
        /** Engine whose compute resource coordinates this engine's
         * misses (per IpEngineConfig::coordinationTime); by name,
         * empty = none. The coordinator must already be added. */
        std::string coordinatorEngine;
    };

    /**
     * Add an IP engine.
     *
     * @param config Engine configuration.
     * @param attach How it connects to the memory system.
     * @return Handle to the engine.
     */
    IpEngine *addEngine(const IpEngineConfig &config,
                        const EngineAttachment &attach);

    /** @return Engine by name. @throws FatalError if absent. */
    IpEngine *engine(const std::string &engine_name);

    /** One job submission for run(). */
    struct JobSubmission {
        std::string engineName;
        KernelJob job;
    };

    /**
     * Run all submitted jobs concurrently from time zero and return
     * measured statistics. Resets all resource state first, so runs
     * are independent.
     */
    SocRunStats run(const std::vector<JobSubmission> &jobs);

    /**
     * Like run(jobs), but with @p epochs > 0 the run is divided into
     * that many equal time slices and each resource's utilization is
     * sampled per slice into the attached telemetry registry as a
     * "<resource>.utilization" time series (plus "DRAM.bw_bytes" for
     * the DRAM byte rate and "<engine>.ops_rate" for each engine).
     * When a tracer is also attached, the same series are emitted as
     * Perfetto counter tracks ("<resource>.util", "DRAM.bw_gbps",
     * "<engine>.gops"). Requires attachTelemetry() when epochs > 0.
     */
    SocRunStats run(const std::vector<JobSubmission> &jobs,
                    int epochs);

    /** @return The event queue (for tests and custom scenarios). */
    EventQueue &eventQueue() { return eq_; }

    /**
     * Enable or disable analytic chunk batching (default enabled).
     * When a run has exactly one job, the engine is the sole
     * requester on every resource it touches, so run() lets it book
     * all chunks in one pass instead of two events per chunk —
     * results are bit-identical either way (see
     * IpEngine::setBatchingAllowed); only event counts differ.
     * Disable to force the fully event-driven path, e.g. to
     * cross-check the batched one.
     */
    void setChunkBatching(bool enabled) { chunkBatching_ = enabled; }

    /**
     * Attach a trace recorder to every resource of the SoC (DRAM,
     * fabrics, links, local memories, engine compute units); also
     * applied to engines added later. Pass nullptr to detach.
     */
    void attachTracer(TraceRecorder *tracer);

    /**
     * Attach a telemetry registry to every component of the SoC;
     * also applied to engines added later. Each run() resets the
     * registry's values, so its contents always describe the latest
     * run. Pass nullptr to detach; detached runs are bit-identical.
     */
    void attachTelemetry(telemetry::StatsRegistry *registry);

    /** @return The attached registry, or nullptr. */
    telemetry::StatsRegistry *telemetryRegistry()
    {
        return registry_;
    }

  private:
    void resetAll();
    void sampleEpochSeries(const SocRunStats &stats, int epochs);

    std::string name_;
    EventQueue eq_;
    TraceRecorder *tracer_ = nullptr;
    telemetry::StatsRegistry *registry_ = nullptr;
    std::unique_ptr<BandwidthResource> dram_;
    std::vector<std::unique_ptr<BandwidthResource>> fabrics_;
    // Parent of each fabric (nullptr = DRAM).
    std::map<BandwidthResource *, BandwidthResource *> fabricParent_;
    std::vector<std::unique_ptr<BandwidthResource>> links_;
    std::vector<std::unique_ptr<LocalMemory>> locals_;
    std::vector<std::unique_ptr<IpEngine>> engines_;
    std::vector<std::string> engineNames_;
    // Name → index into engines_, maintained by addEngine.
    std::unordered_map<std::string, size_t> engineIndex_;
    bool chunkBatching_ = true;
    // Per-engine coordination-target compute resources (parallel to
    // engines_; nullptr where none). The coordinator's own compute
    // resource is shared, so interrupt handling steals its cycles.
    std::vector<BandwidthResource *> coordinators_;
};

} // namespace sim
} // namespace gables

#endif // GABLES_SIM_SOC_H
