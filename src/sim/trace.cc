#include "sim/trace.h"

#include <map>

#include "util/json_writer.h"
#include "util/logging.h"

namespace gables {
namespace sim {

void
TraceRecorder::record(const std::string &track, double start,
                      double duration, const std::string &label)
{
    GABLES_ASSERT(duration >= 0.0, "negative trace duration");
    events_.push_back(
        TraceEvent{track, label.empty() ? track : label, start,
                   duration});
}

void
TraceRecorder::counter(const std::string &track, double time,
                       double value)
{
    counters_.push_back(CounterEvent{track, time, value});
}

std::vector<TraceEvent>
TraceRecorder::track(const std::string &name) const
{
    std::vector<TraceEvent> out;
    for (const TraceEvent &e : events_) {
        if (e.track == name)
            out.push_back(e);
    }
    return out;
}

std::vector<CounterEvent>
TraceRecorder::counterTrack(const std::string &name) const
{
    std::vector<CounterEvent> out;
    for (const CounterEvent &e : counters_) {
        if (e.track == name)
            out.push_back(e);
    }
    return out;
}

void
TraceRecorder::writeChromeTrace(std::ostream &out) const
{
    // Stable tid per track, in order of first appearance.
    std::map<std::string, int> tids;
    for (const TraceEvent &e : events_) {
        if (!tids.count(e.track))
            tids[e.track] = static_cast<int>(tids.size()) + 1;
    }

    JsonWriter json(out, false);
    json.beginObject();
    json.key("traceEvents");
    json.beginArray();
    // Name each thread (track) first.
    for (const auto &[name, tid] : tids) {
        json.beginObject();
        json.kv("name", "thread_name");
        json.kv("ph", "M");
        json.kv("pid", 1);
        json.kv("tid", tid);
        json.key("args");
        json.beginObject();
        json.kv("name", name);
        json.endObject();
        json.endObject();
    }
    for (const TraceEvent &e : events_) {
        json.beginObject();
        json.kv("name", e.label);
        json.kv("ph", "X");
        json.kv("pid", 1);
        json.kv("tid", tids[e.track]);
        json.kv("ts", e.start * 1e6);       // microseconds
        json.kv("dur", e.duration * 1e6);
        json.endObject();
    }
    // Counter tracks: Perfetto keys them by (pid, name) and plots
    // the "value" arg as a stepped area chart.
    for (const CounterEvent &c : counters_) {
        json.beginObject();
        json.kv("name", c.track);
        json.kv("ph", "C");
        json.kv("pid", 1);
        json.kv("ts", c.time * 1e6);
        json.key("args");
        json.beginObject();
        json.kv("value", c.value);
        json.endObject();
        json.endObject();
    }
    json.endArray();
    json.kv("displayTimeUnit", "ns");
    json.endObject();
}

} // namespace sim
} // namespace gables
