/**
 * @file
 * Execution tracing for the simulators: every service interval on
 * every bandwidth resource can be recorded and exported in the
 * Chrome Trace Event Format, so a pipeline run can be inspected
 * visually in chrome://tracing or Perfetto — the closest thing to
 * the waveforms SoC performance teams actually stare at.
 */

#ifndef GABLES_SIM_TRACE_H
#define GABLES_SIM_TRACE_H

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace gables {
namespace sim {

/** One recorded service interval. */
struct TraceEvent {
    /** Resource (track) name. */
    std::string track;
    /** Event label (defaults to the track name). */
    std::string label;
    /** Service start time (simulated seconds). */
    double start = 0.0;
    /** Service duration (seconds). */
    double duration = 0.0;
};

/** One sample on a counter track (queue depth, bandwidth, ...). */
struct CounterEvent {
    /** Counter track name. */
    std::string track;
    /** Sample time (simulated seconds). */
    double time = 0.0;
    /** Counter value at that time. */
    double value = 0.0;
};

/**
 * Collects service intervals and counter samples and exports them.
 */
class TraceRecorder
{
  public:
    /** Record one interval. */
    void record(const std::string &track, double start,
                double duration, const std::string &label = "");

    /**
     * Record one counter sample; Perfetto renders each counter track
     * as a stepped area chart alongside the slices.
     */
    void counter(const std::string &track, double time, double value);

    /** @return All events in recording order. */
    const std::vector<TraceEvent> &events() const { return events_; }

    /** @return All counter samples in recording order. */
    const std::vector<CounterEvent> &counterEvents() const
    {
        return counters_;
    }

    /** @return Events on one track, in recording order. */
    std::vector<TraceEvent> track(const std::string &name) const;

    /** @return Counter samples on one track, in recording order. */
    std::vector<CounterEvent>
    counterTrack(const std::string &name) const;

    /** Discard all recorded events and counter samples. */
    void clear()
    {
        events_.clear();
        counters_.clear();
    }

    /**
     * Write the Chrome Trace Event Format JSON: one complete-event
     * ("ph":"X") per interval with one tid per track, plus one
     * counter-event ("ph":"C") per counter sample. Loadable by
     * chrome://tracing and Perfetto.
     */
    void writeChromeTrace(std::ostream &out) const;

  private:
    std::vector<TraceEvent> events_;
    std::vector<CounterEvent> counters_;
};

} // namespace sim
} // namespace gables

#endif // GABLES_SIM_TRACE_H
