#include "soc/catalog.h"

#include "util/units.h"

namespace gables {

SocSpec
SocCatalog::snapdragon835()
{
    // Accelerations are relative to the CPU's measured (non-SIMD)
    // peak, matching the paper's A1 = 349.6 / 7.5 ~ 46.6 estimate.
    return SocSpec(
        "Snapdragon 835", kCpuPeakOps, kChipDramBw,
        {
            IpSpec{"CPU", 1.0, kCpuStreamBw},
            IpSpec{"GPU", kGpuPeakOps / kCpuPeakOps, kGpuStreamBw},
            IpSpec{"DSP", kDspPeakOps / kCpuPeakOps, kDspStreamBw},
        });
}

SocSpec
SocCatalog::snapdragon821()
{
    // Previous generation: ~15% lower CPU throughput, Adreno 530
    // (~407 GFLOPS theoretical, ~250 achieved-scale), LPDDR4 at a
    // slightly lower effective rate.
    const double cpu = 6.4e9;
    return SocSpec("Snapdragon 821", cpu, 28.0e9,
                   {
                       IpSpec{"CPU", 1.0, 14.0e9},
                       IpSpec{"GPU", 250.0e9 / cpu, 22.0e9},
                       IpSpec{"DSP", 2.4e9 / cpu, 5.0e9},
                   });
}

SocSpec
SocCatalog::snapdragon835Full()
{
    // Table I column order. Fixed-function accelerations are
    // spec-sheet-style estimates (ops here are generic "operations",
    // so a 4K60 video decoder that sustains ~50 Gops-equivalent is
    // A ~ 6.7): see DESIGN.md's substitution table.
    const double p = kCpuPeakOps;
    return SocSpec(
        "Snapdragon 835 (full)", p, kChipDramBw,
        {
            IpSpec{"AP", 1.0, kCpuStreamBw},
            IpSpec{"Display", 12.0e9 / p, 8.0e9},
            IpSpec{"G2DS", 20.0e9 / p, 10.0e9},
            IpSpec{"GPU", kGpuPeakOps / p, kGpuStreamBw},
            IpSpec{"ISP", 120.0e9 / p, 25.0e9},
            IpSpec{"JPEG", 15.0e9 / p, 6.0e9},
            IpSpec{"IPU", 180.0e9 / p, 10.0e9},
            IpSpec{"VDEC", 50.0e9 / p, 8.0e9},
            IpSpec{"VENC", 120.0e9 / p, 12.0e9},
            IpSpec{"DSP", kDspPeakOps / p, kDspStreamBw},
        });
}

Roofline
SocCatalog::sd835CpuRooflineWithSimd()
{
    Roofline cpu(40.0e9, kCpuStreamBw, "CPU (NEON roof)");
    cpu.addComputeCeiling("without NEON", kCpuPeakOps);
    return cpu;
}

SocSpec
SocCatalog::paperTwoIp()
{
    return SocSpec("paper two-IP", 40.0e9, 10.0e9,
                   {
                       IpSpec{"CPU", 1.0, 6.0e9},
                       IpSpec{"GPU", 5.0, 15.0e9},
                   });
}

SocSpec
SocCatalog::paperTwoIpBalanced()
{
    return paperTwoIp().withBpeak(20.0e9);
}

namespace {

/**
 * Shared builder for the simulated Snapdragons; parameters are the
 * calibration anchors for each engine.
 */
std::unique_ptr<sim::SimSoc>
buildSnapdragonSim(const std::string &name, double dram_bw,
                   double cpu_ops, double cpu_bw, double gpu_ops,
                   double gpu_bw, double dsp_ops, double dsp_bw)
{
    auto soc = std::make_unique<sim::SimSoc>(name);
    soc->setDram(dram_bw, 100e-9);

    // CPU and GPU share the high-bandwidth fabric; the DSP sits on
    // the slower system fabric (paper Section IV-D attributes its low
    // bandwidth to "a different interconnect fabric").
    sim::BandwidthResource *hb_fabric =
        soc->addFabric("high-bandwidth fabric", 128.0e9, 20e-9);
    sim::BandwidthResource *sys_fabric =
        soc->addFabric("system fabric", 12.5e9, 40e-9);

    {
        sim::IpEngineConfig cfg;
        cfg.name = "CPU";
        cfg.opsPerSec = cpu_ops;
        cfg.requestBytes = 4096.0;
        cfg.maxOutstanding = 8;
        sim::SimSoc::EngineAttachment at;
        at.linkBandwidth = cpu_bw;
        at.linkLatency = 10e-9;
        at.fabric = hb_fabric;
        at.localCapacity = 2.0 * kMiB; // L2
        at.localBandwidth = 60.0e9;
        at.localLatency = 20e-9;
        soc->addEngine(cfg, at);
    }
    {
        sim::IpEngineConfig cfg;
        cfg.name = "GPU";
        cfg.opsPerSec = gpu_ops;
        cfg.requestBytes = 4096.0;
        cfg.maxOutstanding = 16;
        sim::SimSoc::EngineAttachment at;
        at.linkBandwidth = gpu_bw;
        at.linkLatency = 10e-9;
        at.fabric = hb_fabric;
        at.localCapacity = 1.0 * kMiB; // shader-core caches
        at.localBandwidth = 120.0e9;
        at.localLatency = 15e-9;
        at.coordinatorEngine = "CPU";
        soc->addEngine(cfg, at);
    }
    {
        sim::IpEngineConfig cfg;
        cfg.name = "DSP";
        cfg.opsPerSec = dsp_ops;
        cfg.requestBytes = 4096.0;
        cfg.maxOutstanding = 4;
        sim::SimSoc::EngineAttachment at;
        at.linkBandwidth = dsp_bw;
        at.linkLatency = 20e-9;
        at.fabric = sys_fabric;
        at.localCapacity = 512.0 * kKiB; // TCM/SRAM
        at.localBandwidth = 25.0e9;
        at.localLatency = 10e-9;
        at.coordinatorEngine = "CPU";
        soc->addEngine(cfg, at);
    }
    return soc;
}

} // namespace

std::unique_ptr<sim::SimSoc>
SocCatalog::snapdragon835Sim()
{
    return buildSnapdragonSim("Snapdragon 835 (sim)", kChipDramBw,
                              kCpuPeakOps, kCpuStreamBw, kGpuPeakOps,
                              kGpuStreamBw, kDspPeakOps, kDspStreamBw);
}

std::unique_ptr<sim::SimSoc>
SocCatalog::snapdragon821Sim()
{
    return buildSnapdragonSim("Snapdragon 821 (sim)", 28.0e9, 6.4e9,
                              14.0e9, 250.0e9, 22.0e9, 2.4e9, 5.0e9);
}

std::unique_ptr<sim::SimSoc>
SocCatalog::simFromSpec(const SocSpec &spec)
{
    spec.validate();
    auto soc = std::make_unique<sim::SimSoc>(spec.name() + " (sim)");
    soc->setDram(spec.bpeak(), 100e-9);
    // One wide fabric so only the modeled bandwidths (Bi, Bpeak)
    // constrain transfers.
    double fabric_bw = spec.bpeak();
    for (const IpSpec &ip : spec.ips())
        fabric_bw = std::max(fabric_bw, ip.bandwidth);
    sim::BandwidthResource *fabric =
        soc->addFabric("fabric", 8.0 * fabric_bw, 10e-9);

    for (size_t i = 0; i < spec.numIps(); ++i) {
        sim::IpEngineConfig cfg;
        cfg.name = spec.ip(i).name.empty()
                       ? "IP" + std::to_string(i)
                       : spec.ip(i).name;
        cfg.opsPerSec = spec.ipPeakPerf(i);
        cfg.requestBytes = 4096.0;
        cfg.maxOutstanding = 8;
        sim::SimSoc::EngineAttachment at;
        at.linkBandwidth = spec.ip(i).bandwidth;
        at.linkLatency = 10e-9;
        at.fabric = fabric;
        soc->addEngine(cfg, at);
    }
    return soc;
}

std::unique_ptr<sim::SimSoc>
SocCatalog::simpleSim(double ops_per_sec, double link_bw, double dram_bw)
{
    auto soc = std::make_unique<sim::SimSoc>("simple");
    soc->setDram(dram_bw, 100e-9);
    sim::BandwidthResource *fabric =
        soc->addFabric("fabric", 4.0 * dram_bw, 20e-9);

    sim::IpEngineConfig cfg;
    cfg.name = "IP0";
    cfg.opsPerSec = ops_per_sec;
    cfg.requestBytes = 4096.0;
    cfg.maxOutstanding = 8;
    sim::SimSoc::EngineAttachment at;
    at.linkBandwidth = link_bw;
    at.linkLatency = 10e-9;
    at.fabric = fabric;
    soc->addEngine(cfg, at);
    return soc;
}

} // namespace gables
