/**
 * @file
 * Catalog of concrete SoC descriptions used throughout the
 * evaluation:
 *
 *  - Gables SocSpec models of the Qualcomm Snapdragon 835 and 821,
 *    with CPU/GPU/DSP parameters set to the paper's *measured*
 *    (pessimistic/ceiling) rooflines from Section IV, and a "full"
 *    835 variant carrying the ten IPs of Table I with documented
 *    estimates for the non-measured blocks.
 *
 *  - Simulated SimSoc instances calibrated so that running the ERT
 *    micro-benchmark on them reproduces those measured rooflines
 *    (our substitution for the silicon testbed).
 *
 * Measured anchor points (paper Figures 7 and 9):
 *   CPU  7.5 Gops/s peak, 15.1 GB/s DRAM stream
 *   GPU  349.6 Gops/s peak, 24.4 GB/s DRAM stream
 *   DSP  3.0 Gops/s peak (scalar),  5.4 GB/s DRAM stream
 *   chip ~30 GB/s theoretical peak DRAM bandwidth
 */

#ifndef GABLES_SOC_CATALOG_H
#define GABLES_SOC_CATALOG_H

#include <memory>

#include "core/soc_spec.h"
#include "sim/soc.h"

namespace gables {

/** Index constants for the ten-IP "full" SoC, in Table I column
 * order. */
enum FullSocIp : size_t {
    kIpAp = 0,
    kIpDisplay = 1,
    kIpG2ds = 2,
    kIpGpu = 3,
    kIpIsp = 4,
    kIpJpeg = 5,
    kIpIpu = 6,
    kIpVdec = 7,
    kIpVenc = 8,
    kIpDsp = 9,
    kNumFullSocIps = 10,
};

/**
 * Factory functions for catalog SoCs.
 */
class SocCatalog
{
  public:
    /**
     * Snapdragon-835-like three-IP Gables spec (CPU, GPU, DSP) with
     * the paper's measured rooflines.
     */
    static SocSpec snapdragon835();

    /**
     * Snapdragon-821-like three-IP Gables spec; the paper reports
     * its findings hold on both chips, so this carries slightly
     * lower (previous-generation) parameters.
     */
    static SocSpec snapdragon821();

    /**
     * Ten-IP Snapdragon-835-like Gables spec in Table I column
     * order. CPU/GPU/DSP use measured numbers; fixed-function blocks
     * (ISP, IPU, VDEC, ...) use spec-sheet-style estimates
     * documented in DESIGN.md.
     */
    static SocSpec snapdragon835Full();

    /**
     * The didactic two-IP SoC of paper Figure 6a-c: Ppeak = 40
     * Gops/s, Bpeak = 10 GB/s, A1 = 5, B0 = 6 GB/s, B1 = 15 GB/s.
     */
    static SocSpec paperTwoIp();

    /** The Figure 6d balanced variant: Bpeak = 20 GB/s. */
    static SocSpec paperTwoIpBalanced();

    /**
     * Simulated Snapdragon-835-like SoC: CPU + GPU on a high-
     * bandwidth fabric, DSP on a slower system fabric, shared DRAM.
     * Engines carry local memories so working-set sweeps show cache
     * tiers. Calibrated to reproduce the measured rooflines above.
     */
    static std::unique_ptr<sim::SimSoc> snapdragon835Sim();

    /** Simulated Snapdragon-821-like SoC. */
    static std::unique_ptr<sim::SimSoc> snapdragon821Sim();

    /**
     * A small generic simulated SoC (one engine, one fabric) with
     * caller-chosen rates — the workhorse of simulator unit tests.
     *
     * @param ops_per_sec Engine compute rate.
     * @param link_bw     Engine link bandwidth.
     * @param dram_bw     DRAM bandwidth.
     */
    static std::unique_ptr<sim::SimSoc> simpleSim(double ops_per_sec,
                                                  double link_bw,
                                                  double dram_bw);

    /**
     * Build a simulated SoC that realizes an arbitrary Gables
     * SocSpec under the base model's own assumptions: one engine per
     * IP (compute Ai*Ppeak, link Bi), a single wide fabric, shared
     * DRAM at Bpeak, and no local memories (so every byte is
     * off-chip, as the base model counts it). Engine names match the
     * spec's IP names. This is the bridge for model-vs-simulator
     * cross-validation on multi-IP concurrent usecases.
     */
    static std::unique_ptr<sim::SimSoc>
    simFromSpec(const SocSpec &spec);

    /**
     * The measured CPU roofline with vectorization modeled as the
     * paper describes it: the NEON/SIMD roof exceeds 40 Gops/s while
     * the scalar micro-benchmark the paper standardizes on tops out
     * at 7.5 — expressed here as a 40 Gops/s roof with a "non-NEON"
     * compute ceiling at 7.5 (Section IV-B).
     */
    static Roofline sd835CpuRooflineWithSimd();

    /** @name Calibration anchor constants (paper Section IV). */
    /** @{ */
    static constexpr double kCpuPeakOps = 7.5e9;
    static constexpr double kCpuStreamBw = 15.1e9;
    static constexpr double kGpuPeakOps = 349.6e9;
    static constexpr double kGpuStreamBw = 24.4e9;
    static constexpr double kDspPeakOps = 3.0e9;
    static constexpr double kDspStreamBw = 5.4e9;
    static constexpr double kChipDramBw = 29.8e9;
    /** @} */
};

} // namespace gables

#endif // GABLES_SOC_CATALOG_H
