#include "soc/config.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>

#include "util/logging.h"
#include "util/parse.h"
#include "util/strings.h"
#include "util/units.h"

namespace gables {

const Usecase &
SocConfig::usecase(const std::string &name) const
{
    for (const Usecase &u : usecases) {
        if (u.name() == name)
            return u;
    }
    std::vector<std::string> known;
    for (const Usecase &u : usecases)
        known.push_back(u.name());
    fatal("config has no usecase named '" + name + "'" +
          didYouMean(name, known));
}

namespace {

/** Parser state shared by the helpers: the diagnostic source name. */
struct ParseContext {
    std::string source;

    /** Raise a ConfigError pointing at @p line of this document. */
    [[noreturn]] void
    error(int line, const std::string &msg) const
    {
        configError(SourceLoc{source, line}, msg);
    }

    /**
     * Run @p fn (a numeric/unit parse) and re-raise its FatalError as
     * a located ConfigError.
     */
    template <typename Fn>
    auto
    located(int line, Fn &&fn) const -> decltype(fn())
    {
        try {
            return fn();
        } catch (const ConfigError &) {
            throw; // already located
        } catch (const FatalError &err) {
            error(line, err.what());
        }
    }
};

/** Strip comments (# or ;) outside of any quoting (we have none). */
std::string
stripComment(const std::string &line)
{
    size_t pos = line.find_first_of("#;");
    return pos == std::string::npos ? line : line.substr(0, pos);
}

/** Parse "fraction @ intensity"; intensity may be "inf". */
IpWork
parseWork(const ParseContext &ctx, const std::string &value, int line)
{
    size_t at = value.find('@');
    if (at == std::string::npos)
        ctx.error(line, "work value must be 'fraction @ intensity', "
                        "got '" + value + "'");
    std::string frac_text = trim(value.substr(0, at));
    std::string int_text = trim(value.substr(at + 1));
    double fraction = ctx.located(line, [&] {
        return parseDoubleStrict(frac_text, "fraction");
    });
    double intensity;
    if (toLower(int_text) == "inf") {
        intensity = std::numeric_limits<double>::infinity();
    } else {
        intensity = ctx.located(line, [&] {
            return parseDoubleStrict(int_text, "intensity");
        });
    }
    return IpWork{fraction, intensity};
}

struct PendingIp {
    std::string name;
    std::optional<double> accel;
    std::optional<double> bandwidth;
    int line;
};

struct PendingUsecase {
    std::string name;
    std::vector<std::pair<std::string, IpWork>> work;
    int line;
};

} // namespace

SocConfig
parseSocConfig(const std::string &text, const std::string &source)
{
    enum class Section { None, Soc, Ip, Usecase };

    ParseContext ctx{source};
    Section section = Section::None;
    std::string soc_name = "unnamed";
    std::optional<double> ppeak, bpeak;
    bool saw_soc = false;
    int soc_line = 0;
    std::vector<PendingIp> ips;
    std::vector<PendingUsecase> usecases;

    std::istringstream iss(text);
    std::string raw;
    int line_no = 0;
    while (std::getline(iss, raw)) {
        ++line_no;
        std::string line = trim(stripComment(raw));
        if (line.empty())
            continue;

        if (line.front() == '[') {
            if (line.back() != ']')
                ctx.error(line_no, "unterminated section header");
            std::string header = trim(line.substr(1, line.size() - 2));
            if (header == "soc") {
                if (saw_soc)
                    ctx.error(line_no,
                              "duplicate [soc] section (first defined "
                              "at line " + std::to_string(soc_line) +
                              ")");
                saw_soc = true;
                soc_line = line_no;
                section = Section::Soc;
            } else if (header == "ip" || startsWith(header, "ip ")) {
                // Bare "[ip]" (or "[ip ]", which trims to the same
                // header) is a missing name, not an unknown section.
                std::string name =
                    header == "ip" ? "" : trim(header.substr(3));
                if (name.empty())
                    ctx.error(line_no, "[ip] needs a name");
                for (const PendingIp &ip : ips) {
                    if (ip.name == name)
                        ctx.error(line_no,
                                  "duplicate IP '" + name +
                                      "' (first defined at line " +
                                      std::to_string(ip.line) + ")");
                }
                ips.push_back(PendingIp{name, {}, {}, line_no});
                section = Section::Ip;
            } else if (header == "usecase" ||
                       startsWith(header, "usecase ")) {
                std::string name =
                    header == "usecase" ? "" : trim(header.substr(8));
                if (name.empty())
                    ctx.error(line_no, "[usecase] needs a name");
                for (const PendingUsecase &u : usecases) {
                    if (u.name == name)
                        ctx.error(line_no,
                                  "duplicate usecase '" + name +
                                      "' (first defined at line " +
                                      std::to_string(u.line) +
                                      "); later sections would "
                                      "silently shadow earlier ones");
                }
                usecases.push_back(PendingUsecase{name, {}, line_no});
                section = Section::Usecase;
            } else {
                std::string kind = header.substr(0, header.find(' '));
                ctx.error(line_no,
                          "unknown section '[" + header + "]'" +
                              didYouMean(kind,
                                         {"soc", "ip", "usecase"}));
            }
            continue;
        }

        size_t eq = line.find('=');
        if (eq == std::string::npos)
            ctx.error(line_no, "expected 'key = value'");
        std::string key = trim(line.substr(0, eq));
        std::string value = trim(line.substr(eq + 1));
        if (key.empty() || value.empty())
            ctx.error(line_no, "empty key or value");

        switch (section) {
          case Section::None:
            ctx.error(line_no, "key outside any section");
          case Section::Soc:
            if (key == "name") {
                soc_name = value;
            } else if (key == "ppeak") {
                ppeak = ctx.located(line_no,
                                    [&] { return parseRate(value); });
            } else if (key == "bpeak") {
                bpeak = ctx.located(line_no,
                                    [&] { return parseRate(value); });
            } else {
                ctx.error(line_no,
                          "unknown [soc] key '" + key + "'" +
                              didYouMean(key,
                                         {"name", "ppeak", "bpeak"}));
            }
            break;
          case Section::Ip:
            if (key == "accel") {
                ips.back().accel = ctx.located(line_no, [&] {
                    return parseDoubleStrict(value, "accel");
                });
            } else if (key == "bandwidth") {
                ips.back().bandwidth = ctx.located(line_no, [&] {
                    return parseRate(value);
                });
            } else {
                ctx.error(line_no,
                          "unknown [ip] key '" + key + "'" +
                              didYouMean(key,
                                         {"accel", "bandwidth"}));
            }
            break;
          case Section::Usecase:
            for (const auto &[ip, work] : usecases.back().work) {
                if (ip == key)
                    ctx.error(line_no, "duplicate work entry for '" +
                                           key + "'");
            }
            usecases.back().work.emplace_back(
                key, parseWork(ctx, value, line_no));
            break;
        }
    }

    if (!saw_soc)
        ctx.error(1, "config is missing the [soc] section");
    if (!ppeak)
        ctx.error(soc_line, "config [soc] is missing 'ppeak'");
    if (!bpeak)
        ctx.error(soc_line, "config [soc] is missing 'bpeak'");
    if (ips.empty())
        ctx.error(soc_line, "config declares no [ip ...] sections");

    std::vector<IpSpec> specs;
    for (const PendingIp &ip : ips) {
        if (!ip.accel)
            ctx.error(ip.line,
                      "IP '" + ip.name + "' is missing 'accel'");
        if (!ip.bandwidth)
            ctx.error(ip.line,
                      "IP '" + ip.name + "' is missing 'bandwidth'");
        specs.push_back(IpSpec{ip.name, *ip.accel, *ip.bandwidth});
    }
    // SocSpec's constructor enforces the model invariants (positive
    // rates, A0 == 1); point any violation at the [soc] section.
    SocSpec soc = ctx.located(soc_line, [&] {
        return SocSpec(soc_name, *ppeak, *bpeak, std::move(specs));
    });

    std::vector<std::string> ip_names;
    for (size_t i = 0; i < soc.numIps(); ++i)
        ip_names.push_back(soc.ip(i).name);

    std::vector<Usecase> built;
    for (const PendingUsecase &pu : usecases) {
        std::vector<IpWork> work(soc.numIps(), IpWork{0.0, 1.0});
        for (const auto &[ip_name, w] : pu.work) {
            size_t idx;
            try {
                idx = soc.ipIndex(ip_name);
            } catch (const FatalError &) {
                ctx.error(pu.line,
                          "usecase '" + pu.name +
                              "' names unknown IP '" + ip_name + "'" +
                              didYouMean(ip_name, ip_names));
            }
            work[idx] = w;
        }
        // Usecase's constructor enforces fraction/intensity sanity
        // (fractions sum to 1, positive intensity where work lands).
        built.push_back(ctx.located(pu.line, [&] {
            return Usecase(pu.name, std::move(work));
        }));
    }
    return SocConfig{std::move(soc), std::move(built)};
}

namespace {

/** Replay hooks (see config.h): content overrides and an observer. */
const std::map<std::string, std::string> *g_file_overrides = nullptr;
ConfigFileObserver *g_file_observer = nullptr;

} // namespace

const std::map<std::string, std::string> *
setConfigFileOverrides(
    const std::map<std::string, std::string> *overrides)
{
    const std::map<std::string, std::string> *prev = g_file_overrides;
    g_file_overrides = overrides;
    return prev;
}

ConfigFileObserver *
setConfigFileObserver(ConfigFileObserver *observer)
{
    ConfigFileObserver *prev = g_file_observer;
    g_file_observer = observer;
    return prev;
}

SocConfig
loadSocConfig(const std::string &path)
{
    std::string text;
    bool overridden = false;
    if (g_file_overrides != nullptr) {
        auto it = g_file_overrides->find(path);
        if (it != g_file_overrides->end()) {
            text = it->second;
            overridden = true;
        }
    }
    if (!overridden) {
        std::ifstream in(path);
        if (!in)
            fatal("cannot open config file '" + path + "'");
        std::ostringstream oss;
        oss << in.rdbuf();
        text = oss.str();
    }
    if (g_file_observer != nullptr && *g_file_observer)
        (*g_file_observer)(path, text);
    return parseSocConfig(text, path);
}

std::vector<LintFinding>
lintSocConfig(const SocConfig &cfg)
{
    std::vector<LintFinding> findings;
    auto check = [&](bool error, const std::string &msg) {
        findings.push_back(LintFinding{error, msg});
    };

    // Re-run the model invariants defensively: a SocConfig built by
    // hand (not through parseSocConfig) may not have been validated.
    try {
        cfg.soc.validate();
    } catch (const FatalError &err) {
        check(true, err.what());
    }
    for (const Usecase &u : cfg.usecases) {
        try {
            u.validate();
        } catch (const FatalError &err) {
            check(true, err.what());
        }
        if (u.numIps() != cfg.soc.numIps())
            check(true, "usecase '" + u.name() + "' covers " +
                            std::to_string(u.numIps()) +
                            " IPs but the SoC declares " +
                            std::to_string(cfg.soc.numIps()));
    }

    if (cfg.usecases.empty())
        check(false, "config declares no usecases; nothing to "
                     "evaluate");

    // Unreferenced IPs: hardware that no usecase ever sends work to.
    for (size_t i = 0; i < cfg.soc.numIps(); ++i) {
        bool referenced = false;
        for (const Usecase &u : cfg.usecases)
            referenced = referenced ||
                         (i < u.numIps() && u.fraction(i) > 0.0);
        if (!referenced && !cfg.usecases.empty())
            check(false, "IP '" + cfg.soc.ip(i).name +
                             "' is not referenced by any usecase");
    }

    // IP links faster than the off-chip interface are legal (Bpeak
    // caps them) but usually a typo in one of the two rates.
    for (size_t i = 0; i < cfg.soc.numIps(); ++i) {
        if (cfg.soc.ip(i).bandwidth > cfg.soc.bpeak())
            check(false, "IP '" + cfg.soc.ip(i).name +
                             "' bandwidth " +
                             formatByteRate(cfg.soc.ip(i).bandwidth) +
                             " exceeds Bpeak " +
                             formatByteRate(cfg.soc.bpeak()) +
                             "; the off-chip interface caps it");
    }

    // Errors first, then warnings, each in declaration order.
    std::stable_sort(findings.begin(), findings.end(),
                     [](const LintFinding &a, const LintFinding &b) {
                         return a.error && !b.error;
                     });
    return findings;
}

std::string
formatSocConfig(const SocSpec &soc,
                const std::vector<Usecase> &usecases)
{
    std::ostringstream oss;
    oss << "[soc]\n"
        << "name  = " << soc.name() << '\n'
        << "ppeak = " << formatDouble(soc.ppeak(), 6) << '\n'
        << "bpeak = " << formatDouble(soc.bpeak(), 6) << '\n';
    for (const IpSpec &ip : soc.ips()) {
        oss << "\n[ip " << ip.name << "]\n"
            << "accel     = " << formatDouble(ip.acceleration, 9)
            << '\n'
            << "bandwidth = " << formatDouble(ip.bandwidth, 6) << '\n';
    }
    for (const Usecase &u : usecases) {
        if (u.numIps() != soc.numIps())
            fatal("formatSocConfig: usecase '" + u.name() +
                  "' does not match the SoC");
        oss << "\n[usecase " << u.name() << "]\n";
        for (size_t i = 0; i < u.numIps(); ++i) {
            const IpWork &w = u.at(i);
            if (w.fraction == 0.0)
                continue;
            // 12 significant digits so the reparsed fractions still
            // sum to 1 within Usecase's 1e-9 tolerance.
            oss << soc.ip(i).name << " = "
                << formatDouble(w.fraction, 12) << " @ "
                << (std::isinf(w.intensity)
                        ? std::string("inf")
                        : formatDouble(w.intensity, 9))
                << '\n';
        }
    }
    return oss.str();
}

} // namespace gables
