#include "soc/config.h"

#include <cmath>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>

#include "util/logging.h"
#include "util/strings.h"
#include "util/units.h"

namespace gables {

const Usecase &
SocConfig::usecase(const std::string &name) const
{
    for (const Usecase &u : usecases) {
        if (u.name() == name)
            return u;
    }
    fatal("config has no usecase named '" + name + "'");
}

namespace {

/** Parse error helper carrying the line number. */
[[noreturn]] void
parseError(int line, const std::string &msg)
{
    fatal("config line " + std::to_string(line) + ": " + msg);
}

/** Strip comments (# or ;) outside of any quoting (we have none). */
std::string
stripComment(const std::string &line)
{
    size_t pos = line.find_first_of("#;");
    return pos == std::string::npos ? line : line.substr(0, pos);
}

/** Parse "fraction @ intensity"; intensity may be "inf". */
IpWork
parseWork(const std::string &value, int line)
{
    size_t at = value.find('@');
    if (at == std::string::npos)
        parseError(line, "work value must be 'fraction @ intensity', "
                         "got '" + value + "'");
    std::string frac_text = trim(value.substr(0, at));
    std::string int_text = trim(value.substr(at + 1));
    char *end = nullptr;
    double fraction = std::strtod(frac_text.c_str(), &end);
    if (end == frac_text.c_str() || !trim(end).empty())
        parseError(line, "bad fraction '" + frac_text + "'");
    double intensity;
    if (toLower(int_text) == "inf") {
        intensity = std::numeric_limits<double>::infinity();
    } else {
        end = nullptr;
        intensity = std::strtod(int_text.c_str(), &end);
        if (end == int_text.c_str() || !trim(end).empty())
            parseError(line, "bad intensity '" + int_text + "'");
    }
    return IpWork{fraction, intensity};
}

struct PendingIp {
    std::string name;
    std::optional<double> accel;
    std::optional<double> bandwidth;
    int line;
};

struct PendingUsecase {
    std::string name;
    std::vector<std::pair<std::string, IpWork>> work;
    int line;
};

} // namespace

SocConfig
parseSocConfig(const std::string &text)
{
    enum class Section { None, Soc, Ip, Usecase };

    Section section = Section::None;
    std::string soc_name = "unnamed";
    std::optional<double> ppeak, bpeak;
    bool saw_soc = false;
    std::vector<PendingIp> ips;
    std::vector<PendingUsecase> usecases;

    std::istringstream iss(text);
    std::string raw;
    int line_no = 0;
    while (std::getline(iss, raw)) {
        ++line_no;
        std::string line = trim(stripComment(raw));
        if (line.empty())
            continue;

        if (line.front() == '[') {
            if (line.back() != ']')
                parseError(line_no, "unterminated section header");
            std::string header = trim(line.substr(1, line.size() - 2));
            if (header == "soc") {
                if (saw_soc)
                    parseError(line_no, "duplicate [soc] section");
                saw_soc = true;
                section = Section::Soc;
            } else if (startsWith(header, "ip ")) {
                std::string name = trim(header.substr(3));
                if (name.empty())
                    parseError(line_no, "[ip] needs a name");
                for (const PendingIp &ip : ips) {
                    if (ip.name == name)
                        parseError(line_no,
                                   "duplicate IP '" + name + "'");
                }
                ips.push_back(PendingIp{name, {}, {}, line_no});
                section = Section::Ip;
            } else if (startsWith(header, "usecase ")) {
                std::string name = trim(header.substr(8));
                if (name.empty())
                    parseError(line_no, "[usecase] needs a name");
                usecases.push_back(PendingUsecase{name, {}, line_no});
                section = Section::Usecase;
            } else {
                parseError(line_no,
                           "unknown section '[" + header + "]'");
            }
            continue;
        }

        size_t eq = line.find('=');
        if (eq == std::string::npos)
            parseError(line_no, "expected 'key = value'");
        std::string key = trim(line.substr(0, eq));
        std::string value = trim(line.substr(eq + 1));
        if (key.empty() || value.empty())
            parseError(line_no, "empty key or value");

        switch (section) {
          case Section::None:
            parseError(line_no, "key outside any section");
          case Section::Soc:
            if (key == "name")
                soc_name = value;
            else if (key == "ppeak")
                ppeak = parseRate(value);
            else if (key == "bpeak")
                bpeak = parseRate(value);
            else
                parseError(line_no, "unknown [soc] key '" + key + "'");
            break;
          case Section::Ip:
            if (key == "accel") {
                char *end = nullptr;
                ips.back().accel = std::strtod(value.c_str(), &end);
                if (end == value.c_str() || !trim(end).empty())
                    parseError(line_no, "bad accel '" + value + "'");
            } else if (key == "bandwidth") {
                ips.back().bandwidth = parseRate(value);
            } else {
                parseError(line_no, "unknown [ip] key '" + key + "'");
            }
            break;
          case Section::Usecase:
            for (const auto &[ip, work] : usecases.back().work) {
                if (ip == key)
                    parseError(line_no, "duplicate work entry for '" +
                                            key + "'");
            }
            usecases.back().work.emplace_back(key,
                                              parseWork(value,
                                                        line_no));
            break;
        }
    }

    if (!saw_soc)
        fatal("config is missing the [soc] section");
    if (!ppeak)
        fatal("config [soc] is missing 'ppeak'");
    if (!bpeak)
        fatal("config [soc] is missing 'bpeak'");
    if (ips.empty())
        fatal("config declares no [ip ...] sections");

    std::vector<IpSpec> specs;
    for (const PendingIp &ip : ips) {
        if (!ip.accel)
            parseError(ip.line, "IP '" + ip.name +
                                    "' is missing 'accel'");
        if (!ip.bandwidth)
            parseError(ip.line, "IP '" + ip.name +
                                    "' is missing 'bandwidth'");
        specs.push_back(IpSpec{ip.name, *ip.accel, *ip.bandwidth});
    }
    SocSpec soc(soc_name, *ppeak, *bpeak, std::move(specs));

    std::vector<Usecase> built;
    for (const PendingUsecase &pu : usecases) {
        std::vector<IpWork> work(soc.numIps(), IpWork{0.0, 1.0});
        for (const auto &[ip_name, w] : pu.work) {
            size_t idx;
            try {
                idx = soc.ipIndex(ip_name);
            } catch (const FatalError &) {
                parseError(pu.line, "usecase '" + pu.name +
                                        "' names unknown IP '" +
                                        ip_name + "'");
            }
            work[idx] = w;
        }
        built.emplace_back(pu.name, std::move(work));
    }
    return SocConfig{std::move(soc), std::move(built)};
}

SocConfig
loadSocConfig(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open config file '" + path + "'");
    std::ostringstream oss;
    oss << in.rdbuf();
    return parseSocConfig(oss.str());
}

std::string
formatSocConfig(const SocSpec &soc,
                const std::vector<Usecase> &usecases)
{
    std::ostringstream oss;
    oss << "[soc]\n"
        << "name  = " << soc.name() << '\n'
        << "ppeak = " << formatDouble(soc.ppeak(), 6) << '\n'
        << "bpeak = " << formatDouble(soc.bpeak(), 6) << '\n';
    for (const IpSpec &ip : soc.ips()) {
        oss << "\n[ip " << ip.name << "]\n"
            << "accel     = " << formatDouble(ip.acceleration, 9)
            << '\n'
            << "bandwidth = " << formatDouble(ip.bandwidth, 6) << '\n';
    }
    for (const Usecase &u : usecases) {
        if (u.numIps() != soc.numIps())
            fatal("formatSocConfig: usecase '" + u.name() +
                  "' does not match the SoC");
        oss << "\n[usecase " << u.name() << "]\n";
        for (size_t i = 0; i < u.numIps(); ++i) {
            const IpWork &w = u.at(i);
            if (w.fraction == 0.0)
                continue;
            oss << soc.ip(i).name << " = "
                << formatDouble(w.fraction, 9) << " @ "
                << (std::isinf(w.intensity)
                        ? std::string("inf")
                        : formatDouble(w.intensity, 9))
                << '\n';
        }
    }
    return oss.str();
}

} // namespace gables
