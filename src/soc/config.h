/**
 * @file
 * A plain-text description format for SoCs and usecases, so designs
 * can be written down, versioned, and fed to the `gables` CLI
 * without recompiling — the counterpart of the paper's interactive
 * visualizer inputs.
 *
 * Format (INI-flavoured):
 *
 * @code
 *   [soc]
 *   name  = paper two-IP
 *   ppeak = 40 Gops/s
 *   bpeak = 10 GB/s
 *
 *   [ip CPU]
 *   accel     = 1
 *   bandwidth = 6 GB/s
 *
 *   [ip GPU]
 *   accel     = 5
 *   bandwidth = 15 GB/s
 *
 *   [usecase 6b]
 *   CPU = 0.25 @ 8
 *   GPU = 0.75 @ 0.1
 * @endcode
 *
 * Rules: one `[soc]` section (required); `[ip NAME]` sections in
 * declaration order (IP[0] first, accel must be 1); any number of
 * `[usecase NAME]` sections whose keys are IP names and values are
 * `fraction @ intensity` (intensity may be `inf`; omitted IPs get
 * fraction 0). `#` and `;` start comments. Rates accept the unit
 * suffixes of parseRate().
 */

#ifndef GABLES_SOC_CONFIG_H
#define GABLES_SOC_CONFIG_H

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/soc_spec.h"
#include "core/usecase.h"

namespace gables {

/** A parsed configuration: one SoC and its usecases. */
struct SocConfig {
    /** The hardware description. */
    SocSpec soc;
    /** Usecases in file order, index-aligned with the SoC's IPs. */
    std::vector<Usecase> usecases;

    /** @return The usecase named @p name.
     * @throws FatalError if absent (with a did-you-mean suggestion
     *         over the declared usecase names). */
    const Usecase &usecase(const std::string &name) const;
};

/**
 * Parse a configuration document.
 *
 * @param text   The document text.
 * @param source Input name used in diagnostics ("file" of the
 *               file:line location); defaults to "config" for
 *               in-memory documents.
 * @return The parsed configuration.
 * @throws ConfigError with a "source:line: message" diagnostic on any
 *         syntax or semantic error; unknown sections and keys carry a
 *         did-you-mean suggestion over the known-key set.
 */
SocConfig parseSocConfig(const std::string &text,
                         const std::string &source = "config");

/**
 * Load and parse a configuration file. Diagnostics use the file path
 * as the location ("path:line: message").
 *
 * @param path Filesystem path.
 * @throws FatalError if the file cannot be read; ConfigError if it
 *         cannot be parsed.
 */
SocConfig loadSocConfig(const std::string &path);

/**
 * Install a process-global content-override map for loadSocConfig():
 * while non-null, a path present in the map is parsed from the
 * mapped contents instead of the filesystem (diagnostics still cite
 * the path). This is the replay hook — `gables replay` installs the
 * bundle's inlined config files so a recorded run re-executes
 * against the captured bytes even when the tree has changed.
 *
 * @return The previously installed map, so callers can restore it.
 */
const std::map<std::string, std::string> *setConfigFileOverrides(
    const std::map<std::string, std::string> *overrides);

/** Observes every config load: (path, full contents). */
using ConfigFileObserver =
    std::function<void(const std::string &, const std::string &)>;

/**
 * Install a process-global observer called by loadSocConfig() with
 * each file's path and contents after reading (before parsing, so
 * even unparseable inputs are observed). The record side of
 * record/replay uses this to inline config files into bundles.
 *
 * @return The previously installed observer (nullptr when none).
 */
ConfigFileObserver *setConfigFileObserver(ConfigFileObserver *observer);

/**
 * One finding from lintSocConfig(): either a hard error or an
 * advisory warning about a parseable-but-suspect configuration.
 */
struct LintFinding {
    /** True for problems that should fail `gables validate`. */
    bool error;
    /** Human-readable description. */
    std::string message;
};

/**
 * Lint a parsed configuration without evaluating anything: re-checks
 * the model invariants (positive rates, fractions summing to 1) and
 * flags advisory conditions — IPs no usecase references, a config
 * with no usecases, and IP links faster than the off-chip interface.
 *
 * @return Findings in severity-then-declaration order; empty when the
 *         configuration is clean.
 */
std::vector<LintFinding> lintSocConfig(const SocConfig &cfg);

/**
 * Serialize a SoC and usecases back to the text format (round-trips
 * through parseSocConfig).
 */
std::string formatSocConfig(const SocSpec &soc,
                            const std::vector<Usecase> &usecases);

} // namespace gables

#endif // GABLES_SOC_CONFIG_H
