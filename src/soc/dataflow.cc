#include "soc/dataflow.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "util/logging.h"

namespace gables {

DataflowGraph::DataflowGraph(std::string name) : name_(std::move(name)) {}

void
DataflowGraph::addStage(const std::string &ip, double ops_per_frame)
{
    if (ip.empty())
        fatal("dataflow stage needs an IP name");
    if (!(ops_per_frame >= 0.0))
        fatal("dataflow stage ops/frame must be >= 0");
    for (DataflowStage &s : stages_) {
        if (s.ip == ip) {
            s.opsPerFrame += ops_per_frame;
            return;
        }
    }
    stages_.push_back({ip, ops_per_frame});
}

void
DataflowGraph::addBuffer(const std::string &producer,
                         const std::string &consumer,
                         double bytes_per_frame,
                         const std::string &label)
{
    if (!(bytes_per_frame > 0.0))
        fatal("dataflow buffer bytes/frame must be > 0");
    if (producer.empty() && consumer.empty())
        fatal("dataflow buffer needs at least one on-chip endpoint");
    buffers_.push_back({producer, consumer, bytes_per_frame, label});
}

double
DataflowGraph::opsPerFrame() const
{
    double ops = 0.0;
    for (const DataflowStage &s : stages_)
        ops += s.opsPerFrame;
    return ops;
}

double
DataflowGraph::ipBytesPerFrame(const std::string &ip) const
{
    double bytes = 0.0;
    for (const DataflowBuffer &b : buffers_) {
        if (b.producer == ip)
            bytes += b.bytesPerFrame;
        if (b.consumer == ip)
            bytes += b.bytesPerFrame;
    }
    return bytes;
}

double
DataflowGraph::dramBytesPerFrame() const
{
    double bytes = 0.0;
    for (const DataflowBuffer &b : buffers_)
        bytes += 2.0 * b.bytesPerFrame; // one write + one read
    return bytes;
}

bool
DataflowGraph::usesIp(const std::string &ip) const
{
    for (const DataflowStage &s : stages_) {
        if (s.ip == ip)
            return true;
    }
    for (const DataflowBuffer &b : buffers_) {
        if (b.producer == ip || b.consumer == ip)
            return true;
    }
    return false;
}

std::vector<std::string>
DataflowGraph::activeIps() const
{
    std::vector<std::string> out;
    std::set<std::string> seen;
    auto add = [&](const std::string &ip) {
        if (!ip.empty() && seen.insert(ip).second)
            out.push_back(ip);
    };
    for (const DataflowStage &s : stages_)
        add(s.ip);
    for (const DataflowBuffer &b : buffers_) {
        add(b.producer);
        add(b.consumer);
    }
    return out;
}

Usecase
DataflowGraph::toUsecase(const SocSpec &soc) const
{
    double total_ops = opsPerFrame();
    if (!(total_ops > 0.0))
        fatal("dataflow '" + name_ + "' has no work to lower");

    std::vector<IpWork> work(soc.numIps(), IpWork{0.0, 1.0});
    for (const DataflowStage &s : stages_) {
        size_t i = soc.ipIndex(s.ip); // fatal if absent
        double bytes = ipBytesPerFrame(s.ip);
        work[i].fraction = s.opsPerFrame / total_ops;
        work[i].intensity =
            bytes > 0.0 ? s.opsPerFrame / bytes
                        : std::numeric_limits<double>::infinity();
    }
    return Usecase(name_, std::move(work));
}

DataflowAnalysis
DataflowGraph::analyze(const SocSpec &soc) const
{
    if (stages_.empty())
        fatal("dataflow '" + name_ + "' has no stages to analyze");
    DataflowAnalysis analysis;
    analysis.ipTimes.assign(soc.numIps(), 0.0);

    double max_time = 0.0;
    for (const DataflowStage &s : stages_) {
        size_t i = soc.ipIndex(s.ip);
        double compute = s.opsPerFrame / soc.ipPeakPerf(i);
        double transfer = ipBytesPerFrame(s.ip) / soc.ip(i).bandwidth;
        double t = std::max(compute, transfer);
        analysis.ipTimes[i] = t;
        if (t > max_time) {
            max_time = t;
            analysis.bottleneckIp = static_cast<int>(i);
            analysis.bottleneck = compute >= transfer
                                      ? BottleneckKind::IpCompute
                                      : BottleneckKind::IpBandwidth;
        }
    }

    analysis.dramBytesPerFrame = dramBytesPerFrame();
    analysis.memoryTime = analysis.dramBytesPerFrame / soc.bpeak();
    if (analysis.memoryTime >= max_time) {
        max_time = analysis.memoryTime;
        analysis.bottleneckIp = -1;
        analysis.bottleneck = BottleneckKind::Memory;
    }

    GABLES_ASSERT(max_time > 0.0, "dataflow has zero frame time");
    analysis.maxFps = 1.0 / max_time;
    return analysis;
}

} // namespace gables
