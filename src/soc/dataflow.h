/**
 * @file
 * Usecase dataflow graphs (paper Section II-B, Figure 4): stages of
 * per-frame processing mapped onto IPs, connected by DRAM-resident
 * buffers (the base Gables assumption that all substantial inter-IP
 * communication goes through memory). A graph lowers to Gables
 * parameters — work fractions and per-IP operational intensities —
 * and supports direct frame-rate analysis.
 */

#ifndef GABLES_SOC_DATAFLOW_H
#define GABLES_SOC_DATAFLOW_H

#include <string>
#include <vector>

#include "core/gables.h"
#include "core/soc_spec.h"
#include "core/usecase.h"

namespace gables {

/** One processing stage, bound to an IP by name. */
struct DataflowStage {
    /** IP name; must exist in the SocSpec used for analysis. */
    std::string ip;
    /** Operations this stage performs per frame. */
    double opsPerFrame = 0.0;
};

/**
 * A DRAM-resident buffer between stages. Producer and consumer are
 * IP names; either may be empty to denote an off-chip endpoint
 * (camera sensor, network, display panel) whose side of the
 * transfer is a DMA that consumes DRAM bandwidth but no IP link.
 */
struct DataflowBuffer {
    /** Producing IP name, or "" for an external source. */
    std::string producer;
    /** Consuming IP name, or "" for an external sink. */
    std::string consumer;
    /** Bytes written (and read) per frame. */
    double bytesPerFrame = 0.0;
    /** Display label, e.g. "YUV frame". */
    std::string label;
};

/** Frame-rate analysis of a dataflow on a SoC. */
struct DataflowAnalysis {
    /** Maximum sustainable frame rate (frames/s). */
    double maxFps = 0.0;
    /** Index into the SoC's IPs of the binding IP, or -1 for the
     * memory interface. */
    int bottleneckIp = -1;
    /** The kind of resource that binds. */
    BottleneckKind bottleneck = BottleneckKind::Memory;
    /** Per-IP frame time contributions (s/frame). */
    std::vector<double> ipTimes;
    /** Memory-interface frame time (s/frame). */
    double memoryTime = 0.0;
    /** Total DRAM traffic per frame (bytes), DMA included. */
    double dramBytesPerFrame = 0.0;
};

/**
 * A per-frame dataflow graph for one usecase.
 */
class DataflowGraph
{
  public:
    /** @param name Display name, e.g. "Videocapture (HFR)". */
    explicit DataflowGraph(std::string name);

    /** @return Display name. */
    const std::string &name() const { return name_; }

    /**
     * Add a processing stage. Repeated stages on the same IP
     * accumulate.
     */
    void addStage(const std::string &ip, double ops_per_frame);

    /** Add a buffer; see DataflowBuffer for endpoint conventions. */
    void addBuffer(const std::string &producer,
                   const std::string &consumer, double bytes_per_frame,
                   const std::string &label = "");

    /** @return All stages in insertion order. */
    const std::vector<DataflowStage> &stages() const { return stages_; }

    /** @return All buffers in insertion order. */
    const std::vector<DataflowBuffer> &buffers() const
    {
        return buffers_;
    }

    /** @return Total operations per frame across stages. */
    double opsPerFrame() const;

    /**
     * @return Bytes per frame moving through IP @p ip's link: every
     * buffer write it produces plus every read it consumes.
     */
    double ipBytesPerFrame(const std::string &ip) const;

    /**
     * @return Total DRAM bytes per frame: each buffer is written
     * once and read once (producer DMA and consumer DMA count even
     * when external).
     */
    double dramBytesPerFrame() const;

    /** @return True if IP @p ip has a stage or touches a buffer. */
    bool usesIp(const std::string &ip) const;

    /** @return Names of all IPs the usecase exercises. */
    std::vector<std::string> activeIps() const;

    /**
     * Lower to a Gables usecase against @p soc: fi is the stage's
     * share of total ops; Ii = (IP ops) / (IP link bytes), +inf for
     * stages that touch no buffer. External DMA traffic is not
     * attributable to any IP under base Gables and is therefore
     * dropped here — use analyze() when that traffic matters.
     *
     * @throws FatalError if a stage names an IP absent from the SoC.
     */
    Usecase toUsecase(const SocSpec &soc) const;

    /**
     * Direct frame-rate bottleneck analysis (Gables arithmetic in
     * frame units, with external DMA charged to the memory
     * interface).
     */
    DataflowAnalysis analyze(const SocSpec &soc) const;

  private:
    std::string name_;
    std::vector<DataflowStage> stages_;
    std::vector<DataflowBuffer> buffers_;
};

} // namespace gables

#endif // GABLES_SOC_DATAFLOW_H
