#include "soc/market_data.h"

namespace gables {

const std::vector<YearCount> &
MarketData::chipsetsPerYear()
{
    // Shape-faithful reconstruction of Figure 2a: steady growth from
    // 2007, a peak around 2015, then decline as vendors exit the
    // low-margin market (TI OMAP, Intel) and consolidate offerings
    // (Qualcomm: 49 chipsets in 2014 -> 27 in 2017).
    static const std::vector<YearCount> data = {
        {2007, 12},  {2008, 19},  {2009, 28},  {2010, 45},
        {2011, 70},  {2012, 95},  {2013, 118}, {2014, 135},
        {2015, 146}, {2016, 120}, {2017, 92},
    };
    return data;
}

const std::vector<YearCount> &
MarketData::ipBlocksPerGeneration()
{
    // Shape-faithful reconstruction of Figure 2b (after Shao et al.,
    // "The Aladdin Approach"): specialized IP blocks per SoC
    // generation climbing past 30.
    static const std::vector<YearCount> data = {
        {1, 9}, {2, 13}, {3, 18}, {4, 22}, {5, 25},
        {6, 28}, {7, 31}, {8, 34},
    };
    return data;
}

int
MarketData::peakChipsetYear()
{
    int year = 0;
    double best = -1.0;
    for (const YearCount &yc : chipsetsPerYear()) {
        if (yc.count > best) {
            best = yc.count;
            year = yc.year;
        }
    }
    return year;
}

bool
MarketData::declinesAfterPeak()
{
    const auto &data = chipsetsPerYear();
    int peak = peakChipsetYear();
    double last = -1.0;
    for (const YearCount &yc : data) {
        if (yc.year < peak)
            continue;
        if (last >= 0.0 && yc.count >= last)
            return false;
        last = yc.count;
    }
    return true;
}

} // namespace gables
