/**
 * @file
 * The motivational datasets behind paper Figure 2, reconstructed
 * from the paper's description: (a) new mobile SoC chipsets
 * introduced per year, mined from GSMArena (9165 phone models, 109
 * brands; rise to a ~2015 peak then consolidation-driven decline);
 * (b) IP-block counts per SoC generation from Shao et al., climbing
 * past 30. The exact per-year values are not printed in the paper,
 * so these series are shape-faithful reconstructions (documented in
 * DESIGN.md).
 */

#ifndef GABLES_SOC_MARKET_DATA_H
#define GABLES_SOC_MARKET_DATA_H

#include <vector>

namespace gables {

/** One (year, count) observation. */
struct YearCount {
    int year;
    double count;
};

/**
 * Accessors for the embedded Figure 2 datasets.
 */
class MarketData
{
  public:
    /** Figure 2a: new SoC chipsets per year, 2007-2017. */
    static const std::vector<YearCount> &chipsetsPerYear();

    /** Figure 2b: IP blocks per SoC generation (generation index
     * starts at 1). */
    static const std::vector<YearCount> &ipBlocksPerGeneration();

    /** @return The year with the most chipset introductions. */
    static int peakChipsetYear();

    /** @return True if counts decline from the peak year onward
     * (the consolidation the paper postulates). */
    static bool declinesAfterPeak();
};

} // namespace gables

#endif // GABLES_SOC_MARKET_DATA_H
