#include "soc/pipeline.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "sim/event_queue.h"
#include "util/logging.h"

namespace gables {
namespace sim {

double
PipelineStats::utilization(const std::string &name) const
{
    for (const ResourceStats &r : resources) {
        if (r.name == name)
            return r.utilization;
    }
    fatal("pipeline stats have no resource named '" + name + "'");
}

PipelineSim::PipelineSim(const SocSpec &soc, const DataflowGraph &graph)
    : soc_(soc), graph_(graph)
{
    soc_.validate();
    if (graph_.stages().empty())
        fatal("pipeline sim: dataflow '" + graph.name() +
              "' has no stages");
    for (const DataflowStage &s : graph_.stages())
        stages_.push_back(StageRef{soc_.ipIndex(s.ip), s.opsPerFrame});
    for (const DataflowBuffer &b : graph_.buffers()) {
        if (!b.producer.empty())
            soc_.ipIndex(b.producer);
        if (!b.consumer.empty())
            soc_.ipIndex(b.consumer);
    }
}

namespace {

/** Per-(stage, slice) progress state. */
struct StageInstance {
    int inputsRemaining = 0;
    bool computeStarted = false;
};

} // namespace

PipelineStats
PipelineSim::run(int frames, double source_fps, int slices)
{
    if (frames < 2)
        fatal("pipeline sim needs at least two frames");
    if (slices < 1)
        fatal("pipeline sim needs at least one slice per frame");

    // Sensor ring-buffer depth in frames (double buffering plus one
    // in flight keeps long pipelines fed).
    constexpr int kRing = 3;
    const int K = slices;
    const int total_slices = frames * K;

    // Fresh FIFO servers per run.
    std::vector<std::unique_ptr<BandwidthResource>> computes;
    std::vector<std::unique_ptr<BandwidthResource>> links;
    for (size_t i = 0; i < soc_.numIps(); ++i) {
        computes.push_back(std::make_unique<BandwidthResource>(
            soc_.ip(i).name + ".compute", soc_.ipPeakPerf(i)));
        links.push_back(std::make_unique<BandwidthResource>(
            soc_.ip(i).name + ".link", soc_.ip(i).bandwidth));
    }
    BandwidthResource dram("DRAM", soc_.bpeak());
    if (tracer_ != nullptr) {
        dram.setTracer(tracer_);
        for (auto &c : computes)
            c->setTracer(tracer_);
        for (auto &l : links)
            l->setTracer(tracer_);
    }
    EventQueue eq;

    const auto &buffers = graph_.buffers();
    const size_t n_stages = stages_.size();
    const size_t n_buffers = buffers.size();

    // Static wiring: stage index consuming / producing each buffer,
    // and the slice lag of each consumption. A buffer written by a
    // stage at or after its consumer (in stage order) — including
    // self-references like TNR — supplies the PREVIOUS frame's
    // slices (the multi-megabyte rate-matching the base model
    // assumes).
    std::vector<int> consumer_stage(n_buffers, -1);
    std::vector<int> producer_stage(n_buffers, -1);
    std::vector<int> lag(n_buffers, 0); // in slices
    std::vector<std::vector<size_t>> stage_outputs(n_stages);
    for (size_t b = 0; b < n_buffers; ++b) {
        for (size_t s = 0; s < n_stages; ++s) {
            if (!buffers[b].consumer.empty() &&
                graph_.stages()[s].ip == buffers[b].consumer)
                consumer_stage[b] = static_cast<int>(s);
            if (!buffers[b].producer.empty() &&
                graph_.stages()[s].ip == buffers[b].producer)
                producer_stage[b] = static_cast<int>(s);
        }
        if (!buffers[b].producer.empty() && producer_stage[b] < 0)
            fatal("buffer '" + buffers[b].label + "' produced by '" +
                  buffers[b].producer + "' which has no stage");
        if (!buffers[b].consumer.empty() && consumer_stage[b] < 0)
            fatal("buffer '" + buffers[b].label + "' consumed by '" +
                  buffers[b].consumer + "' which has no stage");
        if (producer_stage[b] >= 0)
            stage_outputs[static_cast<size_t>(producer_stage[b])]
                .push_back(b);
        if (producer_stage[b] >= 0 && consumer_stage[b] >= 0 &&
            producer_stage[b] >= consumer_stage[b])
            lag[b] = K; // one full frame behind
    }

    // Per-slice completion accounting: one tick per external write,
    // per stage compute, per stage buffer write, and per external-
    // consumer DMA read.
    int ticks_per_slice = static_cast<int>(n_stages);
    std::vector<int> inputs_per_stage(n_stages, 0);
    for (size_t b = 0; b < n_buffers; ++b) {
        if (buffers[b].producer.empty())
            ++ticks_per_slice;
        if (buffers[b].consumer.empty())
            ++ticks_per_slice;
        else
            ++inputs_per_stage[static_cast<size_t>(consumer_stage[b])];
        if (producer_stage[b] >= 0)
            ++ticks_per_slice;
    }

    PipelineStats stats;
    stats.frames = frames;
    stats.frameDone.assign(frames, 0.0);
    std::vector<int> remaining(frames, ticks_per_slice * K);
    std::vector<std::vector<StageInstance>> state(
        total_slices, std::vector<StageInstance>(n_stages));
    for (int m = 0; m < total_slices; ++m) {
        for (size_t s = 0; s < n_stages; ++s)
            state[m][s].inputsRemaining = inputs_per_stage[s];
    }

    auto slice_bytes = [&](size_t b) {
        return buffers[b].bytesPerFrame / K;
    };
    auto pace_time = [&](int m) {
        return source_fps > 0.0
                   ? static_cast<double>(m) / (K * source_fps)
                   : 0.0;
    };

    auto tick = [&](int m) {
        int n = m / K;
        GABLES_ASSERT(remaining[n] > 0, "over-completed frame");
        stats.frameDone[n] = std::max(stats.frameDone[n], eq.now());
        --remaining[n];
    };

    // Externally produced buffers consumed by each stage (for ring
    // flow control at consumption time).
    std::vector<std::vector<size_t>> ext_inputs_of_stage(n_stages);
    for (size_t b = 0; b < n_buffers; ++b) {
        if (buffers[b].producer.empty() && consumer_stage[b] >= 0)
            ext_inputs_of_stage[static_cast<size_t>(consumer_stage[b])]
                .push_back(b);
    }

    // Mutually recursive event actions; all indices are slices.
    std::function<void(size_t, int)> on_written;
    std::function<void(size_t, int)> start_compute;
    std::function<void(size_t, int, double)> ext_write;

    // Buffer slice (b, written for slice wm) became available; its
    // consumer reads it for slice wm + lag (external consumers DMA
    // it straight out of DRAM).
    on_written = [&](size_t b, int wm) {
        if (buffers[b].consumer.empty()) {
            double done = dram.acquire(eq.now(), slice_bytes(b));
            int m = wm;
            eq.schedule(done, [&, m] { tick(m); });
            return;
        }
        size_t s = static_cast<size_t>(consumer_stage[b]);
        int m = wm + lag[b];
        if (m >= total_slices)
            return; // past the run horizon
        double t = dram.acquire(eq.now(), slice_bytes(b));
        t = links[stages_[s].ipIndex]->acquire(t, slice_bytes(b));
        eq.schedule(t, [&, s, m] {
            StageInstance &inst = state[m][s];
            GABLES_ASSERT(inst.inputsRemaining > 0,
                          "input arrived for a ready stage");
            if (--inst.inputsRemaining == 0)
                start_compute(s, m);
        });
    };

    start_compute = [&](size_t s, int m) {
        StageInstance &inst = state[m][s];
        GABLES_ASSERT(!inst.computeStarted, "stage started twice");
        inst.computeStarted = true;
        // Ring-buffer flow control: once this stage consumes slice
        // m of an externally produced buffer, the sensor may reuse
        // that slot for slice m + kRing*K. Gating on consumption
        // (not read completion) stops the source from racing ahead
        // of the pipeline and flooding the DRAM FIFO.
        for (size_t b : ext_inputs_of_stage[s]) {
            if (m + kRing * K < total_slices)
                ext_write(b, m + kRing * K, eq.now());
        }
        double done = computes[stages_[s].ipIndex]->acquire(
            eq.now(), stages_[s].opsPerFrame / K);
        eq.schedule(done, [&, s, m] {
            tick(m); // compute completion
            for (size_t b : stage_outputs[s]) {
                double t = links[stages_[s].ipIndex]->acquire(
                    eq.now(), slice_bytes(b));
                t = dram.acquire(t, slice_bytes(b));
                eq.schedule(t, [&, b, m] {
                    tick(m); // write completion
                    on_written(b, m);
                });
            }
        });
    };

    // External producers: slice m's DMA write launches at the source
    // pace and no earlier than the consumer's read of slice m - 2K
    // (a double-buffered sensor ring), so an unpaced source keeps
    // the pipe fed without flooding the DRAM FIFO arbitrarily far
    // ahead.
    ext_write = [&](size_t b, int m, double not_before) {
        double when = std::max(not_before, pace_time(m));
        eq.schedule(when, [&, b, m] {
            double done = dram.acquire(eq.now(), slice_bytes(b));
            eq.schedule(done, [&, b, m] {
                tick(m);
                on_written(b, m);
            });
        });
    };

    for (size_t b = 0; b < n_buffers; ++b) {
        if (buffers[b].producer.empty()) {
            for (int m = 0; m < std::min(kRing * K, total_slices); ++m)
                ext_write(b, m, 0.0);
        }
    }
    // Cold start: lagged buffers hold (zero-initialized) previous-
    // frame data, available immediately for frame 0's slices.
    for (size_t b = 0; b < n_buffers; ++b) {
        if (lag[b] > 0) {
            for (int k = 0; k < K; ++k) {
                int wm = k - K; // frame -1's slice k
                eq.schedule(0.0, [&, b, wm] { on_written(b, wm); });
            }
        }
    }
    // Stages with no inputs at all start on their own each slice.
    for (size_t s = 0; s < n_stages; ++s) {
        if (inputs_per_stage[s] == 0) {
            for (int m = 0; m < total_slices; ++m) {
                eq.schedule(pace_time(m),
                            [&, s, m] { start_compute(s, m); });
            }
        }
    }

    stats.makespan = eq.run();
    for (int n = 0; n < frames; ++n) {
        GABLES_ASSERT(remaining[n] == 0,
                      "frame " + std::to_string(n) +
                          " never completed");
    }

    // Steady-state window: skip the first half (pipeline fill) and
    // the last few frames (drain — frames near the horizon have no
    // successors contending for DRAM, so they complete artificially
    // fast).
    int half = frames / 2;
    int end = std::max(half + 1, frames - 1 - 2 * kRing);
    double span = stats.frameDone[end] - stats.frameDone[half - 1];
    GABLES_ASSERT(span > 0.0, "pipeline produced non-increasing times");
    stats.steadyFps = static_cast<double>(end - half + 1) / span;

    auto snapshot = [&](const BandwidthResource &r) {
        stats.resources.push_back(
            ResourceStats{r.name(), r.bytesServed(), r.busyTime(),
                          r.utilization(stats.makespan)});
    };
    snapshot(dram);
    for (const auto &l : links)
        snapshot(*l);
    for (const auto &c : computes)
        snapshot(*c);
    return stats;
}

} // namespace sim
} // namespace gables
