/**
 * @file
 * A frame-pipeline simulator for usecase dataflows (paper Figure 4):
 * each stage of a DataflowGraph runs on its IP's compute and link
 * resources, buffers hand frames downstream through the shared DRAM
 * interface, and frames pipeline — stage s of frame n overlaps stage
 * s+1 of frame n-1. Steady-state throughput emerges from resource
 * contention (a max-plus recurrence over FIFO servers) and is the
 * dynamic counterpart of DataflowGraph::analyze()'s static bound.
 */

#ifndef GABLES_SOC_PIPELINE_H
#define GABLES_SOC_PIPELINE_H

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/soc_spec.h"
#include "sim/resource.h"
#include "sim/soc.h"
#include "sim/trace.h"
#include "soc/dataflow.h"

namespace gables {
namespace sim {

/** Results of a pipeline simulation. */
struct PipelineStats {
    /** Frames completed. */
    int frames = 0;
    /** Completion time of the last frame (s). */
    double makespan = 0.0;
    /**
     * Steady-state throughput (frames/s), measured over the second
     * half of the run to exclude pipeline fill.
     */
    double steadyFps = 0.0;
    /** Completion time of each frame (s). */
    std::vector<double> frameDone;
    /** Per-resource utilization over the makespan. */
    std::vector<ResourceStats> resources;

    /** @return Utilization of the resource named @p name.
     * @throws FatalError if absent. */
    double utilization(const std::string &name) const;
};

/**
 * Simulates a DataflowGraph on a Gables SocSpec.
 *
 * Resource model per frame and stage:
 *  - each input buffer must have been written (producer dependency,
 *    or availability at the source frame interval for external
 *    producers);
 *  - the consuming IP's link carries the buffer in, the producing
 *    IP's link carries it out, and every buffer transfer also books
 *    the shared DRAM interface;
 *  - the stage's compute books the IP's compute server.
 *
 * All servers are FIFO BandwidthResources, so back-pressure and
 * contention (e.g. two stages sharing an IP, or total traffic
 * saturating DRAM) emerge naturally.
 */
class PipelineSim
{
  public:
    /**
     * @param soc   Hardware description (rates for each named IP).
     * @param graph The usecase dataflow; every stage IP must exist
     *              in @p soc.
     *
     * The simulator holds references: both arguments must outlive
     * it (do not pass temporaries).
     */
    PipelineSim(const SocSpec &soc, const DataflowGraph &graph);

    /**
     * Run @p frames frames entering as fast as the pipeline accepts
     * them (source_fps <= 0), or paced at @p source_fps.
     *
     * Each frame is processed in @p slices slices: stages consume,
     * compute, and produce slice-by-slice, so downstream stages and
     * self-referential (previous-frame) loops overlap the way real
     * line-buffered IPs do. More slices = closer to the analytic
     * full-overlap bound, at more simulation events.
     *
     * @param frames     Number of frames, >= 2.
     * @param source_fps External source pacing; <= 0 = unpaced.
     * @param slices     Slices per frame, >= 1 (default 8).
     */
    PipelineStats run(int frames, double source_fps = 0.0,
                      int slices = 8);

    /**
     * Attach a trace recorder: subsequent run()s record every
     * compute, link, and DRAM service interval (export with
     * TraceRecorder::writeChromeTrace). Pass nullptr to detach.
     */
    void setTraceRecorder(TraceRecorder *recorder)
    {
        tracer_ = recorder;
    }

  private:
    struct StageRef {
        size_t ipIndex;
        double opsPerFrame;
    };

    const SocSpec &soc_;
    const DataflowGraph &graph_;
    TraceRecorder *tracer_ = nullptr;
    std::vector<StageRef> stages_; // topological (insertion) order
};

} // namespace sim
} // namespace gables

#endif // GABLES_SOC_PIPELINE_H
