#include "soc/usecases.h"

#include "soc/catalog.h"
#include "util/units.h"

namespace gables {

UsecaseEntry
UsecaseCatalog::hdrPlus()
{
    DataflowGraph g("HDR+");
    const double burst = 8.0; // frames merged per shot

    // Sensor streams the burst into DRAM; the ISP consumes it.
    g.addBuffer("", "ISP", burst * kRaw12MpBytes, "RAW burst");
    g.addStage("ISP", burst * 12.0e6 * 30.0); // demosaic/denoise
    g.addBuffer("ISP", "IPU", burst * 12.0e6 * 1.5, "YUV burst");

    // The IPU aligns and merges the burst (the Pixel-Visual-Core
    // job: ~5x faster than the AP at one-tenth the power).
    g.addStage("IPU", 12.0e6 * 250.0);
    g.addBuffer("IPU", "GPU", 12.0e6 * 1.5, "merged YUV");

    // GPU tone-maps and renders the final image.
    g.addStage("GPU", 12.0e6 * 50.0);
    g.addBuffer("GPU", "JPEG", 12.0e6 * 1.5, "tonemapped YUV");

    g.addStage("JPEG", 12.0e6 * 20.0);
    g.addBuffer("JPEG", "AP", 4.0 * kMiB, "JPEG bitstream");

    // AP orchestrates; the Display shows the viewfinder preview.
    g.addStage("AP", 0.1e9);
    g.addBuffer("ISP", "Display", k1080pYuvBytes, "preview");
    g.addStage("Display", 2.0e6);

    return UsecaseEntry{std::move(g), 1.0}; // one shot per second
}

UsecaseEntry
UsecaseCatalog::videocapture()
{
    DataflowGraph g("Videocapture");

    g.addBuffer("", "ISP", kRaw12MpBytes, "RAW frame");
    // WNR + TNR with one reference frame at 30 fps.
    g.addStage("ISP", k4kPixels * 40.0);
    g.addBuffer("ISP", "ISP", k4kYuvBytes, "TNR reference");
    g.addBuffer("ISP", "VENC", k4kYuvBytes, "YUV frame");

    g.addStage("VENC", k4kPixels * 60.0);
    g.addBuffer("VENC", "VENC", 2.0 * k4kYuvBytes, "encode refs");
    g.addBuffer("VENC", "AP", 1.0 * kMiB, "bitstream");

    g.addBuffer("ISP", "Display", k1080pYuvBytes, "preview");
    g.addStage("Display", 2.0e6);

    g.addStage("DSP", 0.02e9); // audio + 3A statistics
    g.addBuffer("", "DSP", 0.1 * kMiB, "mic PCM");

    g.addStage("AP", 0.05e9);
    return UsecaseEntry{std::move(g), 30.0};
}

UsecaseEntry
UsecaseCatalog::videocaptureHfr()
{
    DataflowGraph g("Videocapture (HFR)");

    g.addBuffer("", "ISP", kRaw12MpBytes, "RAW frame");
    // The paper's stress case: WNR + TNR tracking as many as five
    // reference frames at 240 fps.
    g.addStage("ISP", k4kPixels * 40.0);
    g.addBuffer("ISP", "ISP", 5.0 * k4kYuvBytes, "TNR references");
    g.addBuffer("ISP", "G2DS", k4kYuvBytes, "YUV frame");

    // G2D scaler downsizes for preview while the full stream encodes.
    g.addStage("G2DS", k4kPixels * 5.0);
    g.addBuffer("G2DS", "VENC", k4kYuvBytes, "scaled YUV");

    g.addStage("VENC", k4kPixels * 60.0);
    g.addBuffer("VENC", "VENC", 2.0 * k4kYuvBytes, "encode refs");
    g.addBuffer("VENC", "AP", 1.0 * kMiB, "bitstream");

    // Audio work does not scale with the video frame rate; per
    // 240 fps frame slice it is tiny.
    g.addStage("DSP", 0.01e9);
    g.addBuffer("", "DSP", 0.1 * kMiB, "mic PCM");

    g.addStage("AP", 0.05e9);
    return UsecaseEntry{std::move(g), 240.0};
}

UsecaseEntry
UsecaseCatalog::videoplaybackUi()
{
    DataflowGraph g("Videoplayback UI");

    g.addBuffer("", "AP", 0.5 * kMiB, "network bitstream");
    g.addStage("AP", 0.02e9); // demux
    g.addBuffer("AP", "VDEC", 0.5 * kMiB, "video ES");

    g.addStage("VDEC", k4kPixels * 50.0);
    g.addBuffer("VDEC", "VDEC", 2.0 * k4kYuvBytes, "decode refs");
    g.addBuffer("VDEC", "GPU", k4kYuvBytes, "decoded frame");

    // GPU composes video with UI layers into an RGBA surface.
    g.addStage("GPU", k4kPixels * 20.0);
    g.addBuffer("GPU", "Display", k1080pPixels * 4.0, "composed UI");
    g.addStage("Display", 2.0e6);

    g.addStage("DSP", 0.02e9); // audio decode
    g.addBuffer("AP", "DSP", 0.05 * kMiB, "audio ES");

    return UsecaseEntry{std::move(g), 30.0};
}

UsecaseEntry
UsecaseCatalog::googleLens()
{
    DataflowGraph g("Google Lens");

    g.addBuffer("", "ISP", kRaw12MpBytes, "RAW frame");
    g.addStage("ISP", k4kPixels * 40.0);
    g.addBuffer("ISP", "IPU", k1080pYuvBytes, "downscaled YUV");

    // On-device vision inference on the IPU; weights stream from
    // DRAM each frame (no resident weight cache assumed).
    g.addStage("IPU", 2.0e9);
    g.addBuffer("", "IPU", 10.0 * kMiB, "NN weights");
    g.addBuffer("IPU", "AP", 0.1 * kMiB, "detections");

    g.addStage("DSP", 0.3e9); // feature tracking
    g.addBuffer("ISP", "DSP", k1080pYuvBytes, "luma for tracking");

    g.addBuffer("ISP", "Display", k1080pYuvBytes, "preview");
    g.addStage("Display", 2.0e6);

    g.addStage("AP", 0.1e9);
    return UsecaseEntry{std::move(g), 30.0};
}

UsecaseEntry
UsecaseCatalog::wifiStreaming()
{
    DataflowGraph g("WiFi streaming");

    // IP packets land in insecure memory; the AP separates the
    // streams and decrypts into secure buffers (Figure 4).
    g.addBuffer("", "AP", 0.5 * kMiB, "WiFi packets");
    g.addStage("AP", 0.1e9); // depacketize + decrypt
    g.addBuffer("AP", "VDEC", 0.5 * kMiB, "secure video ES");
    g.addBuffer("AP", "DSP", 0.05 * kMiB, "secure audio ES");

    g.addStage("VDEC", k4kPixels * 50.0);
    g.addBuffer("VDEC", "VDEC", 2.0 * k4kYuvBytes, "decode refs");
    g.addBuffer("VDEC", "Display", k4kYuvBytes, "frame buffer");
    g.addStage("Display", 2.0e6);

    // The audio DSP DMAs the stream into its SRAM and decodes.
    g.addStage("DSP", 0.02e9);

    return UsecaseEntry{std::move(g), 30.0};
}

UsecaseEntry
UsecaseCatalog::gaming()
{
    DataflowGraph g("3D gaming");

    // Game logic and scene preparation on the AP.
    g.addStage("AP", 0.1e9);
    g.addBuffer("AP", "GPU", 8.0 * kMiB, "draw commands + uniforms");

    // The GPU renders at 1080p60 with heavy texture traffic.
    g.addStage("GPU", k1080pPixels * 400.0);
    g.addBuffer("", "GPU", 48.0 * kMiB, "texture/geometry stream");
    g.addBuffer("GPU", "GPU", k1080pPixels * 4.0, "depth/G-buffer");
    g.addBuffer("GPU", "Display", k1080pPixels * 4.0, "frame");
    g.addStage("Display", 2.0e6);

    // Audio mixing and sensor fusion on the DSP.
    g.addStage("DSP", 0.05e9);
    g.addBuffer("AP", "DSP", 0.25 * kMiB, "audio commands");

    return UsecaseEntry{std::move(g), 60.0};
}

UsecaseEntry
UsecaseCatalog::videoCall()
{
    DataflowGraph g("Video call");

    // Send path: camera -> ISP -> encoder -> network (via AP).
    g.addBuffer("", "ISP", k1080pPixels * 1.25, "RAW frame");
    g.addStage("ISP", k1080pPixels * 40.0);
    g.addBuffer("ISP", "VENC", k1080pYuvBytes, "YUV to encode");
    g.addStage("VENC", k1080pPixels * 60.0);
    g.addBuffer("VENC", "VENC", 2.0 * k1080pYuvBytes, "encode refs");
    g.addBuffer("VENC", "AP", 0.25 * kMiB, "outgoing bitstream");

    // Receive path: network -> decoder -> composition.
    g.addBuffer("", "AP", 0.25 * kMiB, "incoming bitstream");
    g.addStage("AP", 0.15e9); // RTP, jitter buffer, control
    g.addBuffer("AP", "VDEC", 0.25 * kMiB, "video ES");
    g.addStage("VDEC", k1080pPixels * 50.0);
    g.addBuffer("VDEC", "VDEC", 2.0 * k1080pYuvBytes, "decode refs");
    g.addBuffer("VDEC", "GPU", k1080pYuvBytes, "remote frame");

    // The GPU composes remote video plus local self-view.
    g.addStage("GPU", k1080pPixels * 25.0);
    g.addBuffer("ISP", "GPU", 0.25 * k1080pYuvBytes, "self view");
    g.addBuffer("GPU", "Display", k1080pPixels * 4.0, "composed UI");
    g.addStage("Display", 2.0e6);

    // Full-duplex voice with echo cancellation on the DSP.
    g.addStage("DSP", 0.1e9);
    g.addBuffer("", "DSP", 0.1 * kMiB, "mic PCM");

    return UsecaseEntry{std::move(g), 30.0};
}

UsecaseEntry
UsecaseCatalog::arNavigation()
{
    DataflowGraph g("AR navigation");

    g.addBuffer("", "ISP", k1080pPixels * 1.25, "RAW frame");
    g.addStage("ISP", k1080pPixels * 40.0);
    g.addBuffer("ISP", "IPU", k1080pYuvBytes, "camera frame");
    g.addBuffer("ISP", "DSP", 0.25 * k1080pYuvBytes, "luma pyramid");

    // Scene understanding on the IPU; weights resident per frame.
    g.addStage("IPU", 1.5e9);
    g.addBuffer("", "IPU", 8.0 * kMiB, "NN weights");
    g.addBuffer("IPU", "AP", 0.05 * kMiB, "detections");

    // 6-DoF pose tracking on the DSP.
    g.addStage("DSP", 0.08e9);
    g.addBuffer("DSP", "AP", 0.01 * kMiB, "pose");

    // The AP fuses pose + map data and drives the overlay.
    g.addStage("AP", 0.2e9);
    g.addBuffer("AP", "GPU", 2.0 * kMiB, "overlay geometry");

    // The GPU renders camera + overlay.
    g.addStage("GPU", k1080pPixels * 60.0);
    g.addBuffer("ISP", "GPU", k1080pYuvBytes, "camera background");
    g.addBuffer("GPU", "Display", k1080pPixels * 4.0, "AR frame");
    g.addStage("Display", 2.0e6);

    return UsecaseEntry{std::move(g), 30.0};
}

std::vector<UsecaseEntry>
UsecaseCatalog::all()
{
    std::vector<UsecaseEntry> out;
    out.push_back(hdrPlus());
    out.push_back(videocapture());
    out.push_back(videocaptureHfr());
    out.push_back(videoplaybackUi());
    out.push_back(googleLens());
    out.push_back(wifiStreaming());
    return out;
}

std::vector<UsecaseEntry>
UsecaseCatalog::extended()
{
    std::vector<UsecaseEntry> out = all();
    out.push_back(gaming());
    out.push_back(videoCall());
    out.push_back(arNavigation());
    return out;
}

const std::vector<std::string> &
UsecaseCatalog::ipColumns()
{
    static const std::vector<std::string> columns = {
        "AP",  "Display", "G2DS", "GPU",  "ISP",
        "JPEG", "IPU",    "VDEC", "VENC", "DSP",
    };
    return columns;
}

std::vector<std::pair<std::string, std::vector<bool>>>
UsecaseCatalog::tableOneMatrix()
{
    std::vector<std::pair<std::string, std::vector<bool>>> matrix;
    std::vector<UsecaseEntry> camera;
    camera.push_back(hdrPlus());
    camera.push_back(videocapture());
    camera.push_back(videocaptureHfr());
    camera.push_back(videoplaybackUi());
    camera.push_back(googleLens());

    for (const UsecaseEntry &entry : camera) {
        std::vector<bool> active;
        active.reserve(ipColumns().size());
        for (const std::string &ip : ipColumns())
            active.push_back(entry.graph.usesIp(ip));
        matrix.emplace_back(entry.graph.name(), std::move(active));
    }
    return matrix;
}

} // namespace gables
