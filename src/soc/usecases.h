/**
 * @file
 * The usecase catalog: dataflow graphs for the five camera usecases
 * of paper Table I plus the WiFi-streaming usecase of Figure 4.
 * Stage operation counts and buffer sizes are synthetic but sized
 * from the paper's own examples (4K YUV420 frames of ~12.4 MB, up
 * to five TNR reference frames, HFR at 240 fps, ~30 GB/s of DRAM),
 * so the analyses exercise the same bottlenecks the paper discusses.
 */

#ifndef GABLES_SOC_USECASES_H
#define GABLES_SOC_USECASES_H

#include <string>
#include <vector>

#include "soc/dataflow.h"

namespace gables {

/** A catalog entry: a dataflow plus its real-time target. */
struct UsecaseEntry {
    /** The dataflow graph. */
    DataflowGraph graph;
    /** Real-time requirement in frames (or shots) per second. */
    double targetFps = 30.0;
};

/**
 * Factories for the catalog usecases.
 */
class UsecaseCatalog
{
  public:
    /** @name Frame-geometry constants used across usecases. */
    /** @{ */
    /** 4K YUV420 frame: 3840 x 2160 x 1.5 bytes ~ 12.4 MB. */
    static constexpr double k4kPixels = 3840.0 * 2160.0;
    static constexpr double k4kYuvBytes = k4kPixels * 1.5;
    /** 1080p YUV420 frame ~ 3.1 MB. */
    static constexpr double k1080pPixels = 1920.0 * 1080.0;
    static constexpr double k1080pYuvBytes = k1080pPixels * 1.5;
    /** 12 MP RAW10 sensor frame ~ 15 MB. */
    static constexpr double kRaw12MpBytes = 12.0e6 * 1.25;
    /** @} */

    /** HDR+ burst capture (Table I row 1): AP, Display, GPU, ISP,
     * JPEG, IPU. Target: 1 shot/s. */
    static UsecaseEntry hdrPlus();

    /** 4K30 video capture (row 2): AP, Display, ISP, VENC, DSP. */
    static UsecaseEntry videocapture();

    /** 4K high-frame-rate capture at 240 fps (row 3): AP, G2DS,
     * ISP, VENC, DSP — five TNR reference frames, the paper's
     * memory-bandwidth stress example. */
    static UsecaseEntry videocaptureHfr();

    /** Video playback with UI composition (row 4): AP, Display,
     * GPU, VDEC, DSP. */
    static UsecaseEntry videoplaybackUi();

    /** Google Lens live analysis (row 5): AP, Display, ISP, IPU,
     * DSP. */
    static UsecaseEntry googleLens();

    /** Streaming internet content over WiFi (Figure 4): AP
     * (network + crypto), VDEC, Display, audio DSP. */
    static UsecaseEntry wifiStreaming();

    /** 3D gaming at 60 fps: AP (game logic), GPU (rendering),
     * Display, DSP (audio/sensors) — the GPU-heavy member of the
     * paper's "dozen or more critical usecases". */
    static UsecaseEntry gaming();

    /** Two-way video call at 30 fps: simultaneous capture+encode
     * (ISP, VENC) and receive+decode (VDEC), GPU composition,
     * Display, DSP voice pipeline — the most IPs concurrently
     * active of any catalog entry. */
    static UsecaseEntry videoCall();

    /** AR navigation at 30 fps: camera (ISP), vision inference
     * (IPU), pose tracking (DSP), overlay rendering (GPU),
     * Display, AP fusion. */
    static UsecaseEntry arNavigation();

    /** All six Table I/Figure 4 entries, rows first. */
    static std::vector<UsecaseEntry> all();

    /** Every catalog entry including the extended set (gaming,
     * video call, AR) — nine usecases total. */
    static std::vector<UsecaseEntry> extended();

    /**
     * The Table I activity matrix: for each of the five camera
     * usecases, which of the ten catalog IPs (FullSocIp order) are
     * exercised.
     */
    static std::vector<std::pair<std::string, std::vector<bool>>>
    tableOneMatrix();

    /** The ten Table I column headers in FullSocIp order. */
    static const std::vector<std::string> &ipColumns();
};

} // namespace gables

#endif // GABLES_SOC_USECASES_H
