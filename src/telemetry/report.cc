#include "telemetry/report.h"

#include <sstream>

#include "telemetry/span.h"
#include "telemetry/stats.h"
#include "util/json_writer.h"

namespace gables {
namespace telemetry {

double
RunReport::DeltaRow::deltaPercent() const
{
    if (modelOpsPerSec == 0.0)
        return 0.0;
    return 100.0 * (simOpsPerSec - modelOpsPerSec) / modelOpsPerSec;
}

RunReport::RunReport(std::string generator, std::string subject)
    : generator_(std::move(generator)), subject_(std::move(subject))
{}

void
RunReport::addConfig(const std::string &key, const std::string &value)
{
    config_.push_back(ConfigItem{key, false, value, 0.0});
}

void
RunReport::addConfig(const std::string &key, double value)
{
    config_.push_back(ConfigItem{key, true, "", value});
}

void
RunReport::addConfig(const std::string &key, long value)
{
    addConfig(key, static_cast<double>(value));
}

void
RunReport::setDuration(double seconds)
{
    hasDuration_ = true;
    duration_ = seconds;
}

void
RunReport::addDelta(const std::string &name, double model_ops_per_sec,
                    double sim_ops_per_sec)
{
    deltas_.push_back(DeltaRow{name, model_ops_per_sec,
                               sim_ops_per_sec});
}

namespace {

/** The record/replay capture sink (see setCaptureSink()). */
std::string *g_capture_sink = nullptr;

} // namespace

std::string *
RunReport::setCaptureSink(std::string *sink)
{
    std::string *prev = g_capture_sink;
    g_capture_sink = sink;
    return prev;
}

void
RunReport::write(std::ostream &out) const
{
    writeTo(out);
    if (g_capture_sink != nullptr) {
        std::ostringstream oss;
        writeTo(oss);
        *g_capture_sink = oss.str();
    }
}

void
RunReport::writeTo(std::ostream &out) const
{
    JsonWriter json(out, true);
    json.beginObject();

    json.key("schema");
    json.beginObject();
    json.kv("name", kSchemaName);
    json.kv("version", kSchemaVersion);
    json.endObject();

    json.kv("generator", generator_);
    json.kv("subject", subject_);

    json.key("config");
    json.beginObject();
    for (const ConfigItem &c : config_) {
        if (c.isNumber)
            json.kv(c.key, c.num);
        else
            json.kv(c.key, c.str);
    }
    json.endObject();

    if (hasDuration_)
        json.kv("duration_s", duration_);

    if (!engines_.empty()) {
        json.key("engines");
        json.beginArray();
        for (const EngineRow &e : engines_) {
            json.beginObject();
            json.kv("name", e.name);
            json.kv("ops", e.ops);
            json.kv("bytes", e.bytes);
            json.kv("miss_bytes", e.missBytes);
            json.kv("ops_per_sec", e.opsPerSec);
            json.endObject();
        }
        json.endArray();
    }

    if (!resources_.empty()) {
        json.key("resources");
        json.beginArray();
        for (const ResourceRow &r : resources_) {
            json.beginObject();
            json.kv("name", r.name);
            json.kv("bytes", r.bytes);
            json.kv("busy_s", r.busySeconds);
            json.kv("utilization", r.utilization);
            json.endObject();
        }
        json.endArray();
    }

    if (!deltas_.empty()) {
        json.key("model_vs_sim");
        json.beginArray();
        for (const DeltaRow &d : deltas_) {
            json.beginObject();
            json.kv("name", d.name);
            json.kv("model_ops_per_sec", d.modelOpsPerSec);
            json.kv("sim_ops_per_sec", d.simOpsPerSec);
            json.kv("delta_pct", d.deltaPercent());
            json.endObject();
        }
        json.endArray();
    }

    if (tracer_ != nullptr) {
        json.key("profile");
        tracer_->writeProfile(json);
    }

    json.key("stats");
    if (registry_ != nullptr)
        registry_->writeJson(json);
    else {
        json.beginObject();
        json.endObject();
    }

    json.endObject();
    out << '\n';
}

} // namespace telemetry
} // namespace gables
