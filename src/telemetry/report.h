/**
 * @file
 * The structured run-report artifact: a schema-versioned JSON
 * document bundling a config echo, the end-of-run summary (engines
 * and resources), model-vs-sim deltas, and the full stats-registry
 * dump. This is the machine-readable contract every downstream
 * perf/scaling tool (CI smoke checks, regression trackers, plotting)
 * consumes, so the layer is deliberately independent of the
 * simulator types: callers fill plain rows.
 */

#ifndef GABLES_TELEMETRY_REPORT_H
#define GABLES_TELEMETRY_REPORT_H

#include <ostream>
#include <string>
#include <vector>

namespace gables {
namespace telemetry {

class SpanTracer;
class StatsRegistry;

/**
 * Builder for the run-report JSON. Sections are optional: only what
 * was filled in is emitted, but the schema header, generator,
 * subject, and config echo are always present.
 */
class RunReport
{
  public:
    /** Bump when the JSON layout changes incompatibly. */
    static constexpr int kSchemaVersion = 1;
    /** The schema identifier emitted under "schema"."name". */
    static constexpr const char *kSchemaName = "gables-run-report";

    /** One engine's end-of-run summary. */
    struct EngineRow {
        std::string name;
        double ops = 0.0;
        double bytes = 0.0;
        double missBytes = 0.0;
        double opsPerSec = 0.0;
    };

    /** One resource's end-of-run summary. */
    struct ResourceRow {
        std::string name;
        double bytes = 0.0;
        double busySeconds = 0.0;
        double utilization = 0.0;
    };

    /** One analytic-model-vs-simulation comparison. */
    struct DeltaRow {
        std::string name;
        double modelOpsPerSec = 0.0;
        double simOpsPerSec = 0.0;

        /** @return 100 * (sim - model) / model (0 if model is 0). */
        double deltaPercent() const;
    };

    /**
     * @param generator Tool that produced the report ("gables sim").
     * @param subject   What was measured (the SoC name).
     */
    RunReport(std::string generator, std::string subject);

    /** @name Config echo (emitted in insertion order). */
    /** @{ */
    void addConfig(const std::string &key, const std::string &value);
    void addConfig(const std::string &key, double value);
    void addConfig(const std::string &key, long value);
    /** @} */

    /** Record the simulated wall-clock duration (seconds). */
    void setDuration(double seconds);

    /** Append an engine summary row. */
    void addEngine(const EngineRow &row) { engines_.push_back(row); }

    /** Append a resource summary row. */
    void addResource(const ResourceRow &row)
    {
        resources_.push_back(row);
    }

    /** Append a model-vs-sim delta row. */
    void addDelta(const std::string &name, double model_ops_per_sec,
                  double sim_ops_per_sec);

    /**
     * Attach the stats registry whose dump becomes the "stats"
     * section; must outlive write().
     */
    void setRegistry(const StatsRegistry *registry)
    {
        registry_ = registry;
    }

    /**
     * Attach the span tracer whose snapshot becomes the "profile"
     * section (omitted when nullptr); must outlive write(). Passing
     * SpanTracer::active() directly is safe: it is nullptr whenever
     * --profile is off, keeping the report byte-identical.
     */
    void setProfile(const SpanTracer *tracer) { tracer_ = tracer; }

    /** Emit the report JSON (pretty-printed) to @p out. */
    void write(std::ostream &out) const;

    /**
     * Install a process-global capture sink: while non-null, every
     * write() also stores the serialized report into *@p sink
     * (latest write wins). This is the record/replay capture hook —
     * the replay Recorder and the replayer both use it to observe
     * the RunReport an invocation produces without changing any of
     * the run's own outputs.
     *
     * @return The previously installed sink, so callers can nest
     *         and restore (replay under an active recorder).
     */
    static std::string *setCaptureSink(std::string *sink);

  private:
    /** The write() body; write() tees it into the capture sink. */
    void writeTo(std::ostream &out) const;

    struct ConfigItem {
        std::string key;
        bool isNumber;
        std::string str;
        double num;
    };

    std::string generator_;
    std::string subject_;
    std::vector<ConfigItem> config_;
    bool hasDuration_ = false;
    double duration_ = 0.0;
    std::vector<EngineRow> engines_;
    std::vector<ResourceRow> resources_;
    std::vector<DeltaRow> deltas_;
    const StatsRegistry *registry_ = nullptr;
    const SpanTracer *tracer_ = nullptr;
};

} // namespace telemetry
} // namespace gables

#endif // GABLES_TELEMETRY_REPORT_H
