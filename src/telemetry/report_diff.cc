#include "telemetry/report_diff.h"

#include <cmath>
#include <cstdio>

#include "util/json_reader.h"
#include "util/strings.h"

namespace gables {
namespace telemetry {

namespace {

std::string
render(const JsonValue &v)
{
    switch (v.type()) {
    case JsonValue::Type::Null:
        return "null";
    case JsonValue::Type::Bool:
        return v.asBool() ? "true" : "false";
    case JsonValue::Type::Number: {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.17g", v.asNumber());
        return buf;
    }
    case JsonValue::Type::String:
        return "\"" + v.asString() + "\"";
    case JsonValue::Type::Array:
        return "[array of " + std::to_string(v.size()) + "]";
    case JsonValue::Type::Object:
        return "{object of " + std::to_string(v.size()) + "}";
    }
    return "?";
}

const char *
typeName(JsonValue::Type t)
{
    switch (t) {
    case JsonValue::Type::Null:
        return "null";
    case JsonValue::Type::Bool:
        return "bool";
    case JsonValue::Type::Number:
        return "number";
    case JsonValue::Type::String:
        return "string";
    case JsonValue::Type::Array:
        return "array";
    case JsonValue::Type::Object:
        return "object";
    }
    return "?";
}

struct Walker {
    const ReportDiffOptions &opts;
    ReportDiffResult &result;

    void
    report(const std::string &path, const std::string &reason,
           const std::string &a, const std::string &b)
    {
        if (result.diffs.size() >= opts.maxDiffs) {
            result.truncated = true;
            return;
        }
        result.diffs.push_back(FieldDiff{path, reason, a, b});
    }

    /** True when @p key (a whole member key) or the path formed by
     * appending it is on the ignore list. */
    bool
    ignored(const std::string &path, const std::string &key) const
    {
        for (const std::string &ig : opts.ignore) {
            if (ig == key)
                return true;
            std::string full =
                path.empty() ? key : path + "." + key;
            if (ig == full || startsWith(full, ig + "."))
                return true;
        }
        return false;
    }

    bool
    numbersMatch(double a, double b, bool exact) const
    {
        if (a == b)
            return true;
        if (std::isnan(a) && std::isnan(b))
            return true;
        if (exact)
            return false;
        if (opts.minRatio >= 0.0 && a > 0.0)
            return b / a >= opts.minRatio;
        double scale = std::max(std::fabs(a), std::fabs(b));
        return std::fabs(a - b) <= opts.tolAbs + opts.tolRel * scale;
    }

    /** @param exact True inside the "schema" subtree, where the
     * tolerances never apply. */
    void
    walk(const std::string &path, const JsonValue &a,
         const JsonValue &b, bool exact)
    {
        if (a.type() != b.type()) {
            ++result.fieldsCompared;
            report(path,
                   std::string("type (") + typeName(a.type()) +
                       " vs " + typeName(b.type()) + ")",
                   render(a), render(b));
            return;
        }
        switch (a.type()) {
        case JsonValue::Type::Object: {
            for (const auto &m : a.members()) {
                if (ignored(path, m.first))
                    continue;
                std::string child =
                    path.empty() ? m.first : path + "." + m.first;
                bool child_exact =
                    exact || (path.empty() && m.first == "schema");
                if (!b.has(m.first)) {
                    ++result.fieldsCompared;
                    report(child, "missing in B", render(m.second),
                           "-");
                    continue;
                }
                walk(child, m.second, b.at(m.first), child_exact);
            }
            for (const auto &m : b.members()) {
                if (ignored(path, m.first))
                    continue;
                if (!a.has(m.first)) {
                    std::string child =
                        path.empty() ? m.first : path + "." + m.first;
                    ++result.fieldsCompared;
                    report(child, "missing in A", "-",
                           render(m.second));
                }
            }
            break;
        }
        case JsonValue::Type::Array: {
            if (a.size() != b.size()) {
                ++result.fieldsCompared;
                report(path, "array length",
                       std::to_string(a.size()),
                       std::to_string(b.size()));
                return;
            }
            for (size_t i = 0; i < a.size(); ++i)
                walk(path + "[" + std::to_string(i) + "]", a.at(i),
                     b.at(i), exact);
            break;
        }
        case JsonValue::Type::Number:
            ++result.fieldsCompared;
            if (!numbersMatch(a.asNumber(), b.asNumber(), exact))
                report(path, "value", render(a), render(b));
            break;
        case JsonValue::Type::String:
            ++result.fieldsCompared;
            if (a.asString() != b.asString())
                report(path, "value", render(a), render(b));
            break;
        case JsonValue::Type::Bool:
            ++result.fieldsCompared;
            if (a.asBool() != b.asBool())
                report(path, "value", render(a), render(b));
            break;
        case JsonValue::Type::Null:
            ++result.fieldsCompared;
            break;
        }
    }
};

} // namespace

ReportDiffResult
diffReports(const JsonValue &a, const JsonValue &b,
            const ReportDiffOptions &opts)
{
    ReportDiffResult result;
    Walker walker{opts, result};
    walker.walk("", a, b, false);
    return result;
}

std::string
formatDiff(const ReportDiffResult &result)
{
    std::string out;
    for (const FieldDiff &d : result.diffs) {
        out += "  " + d.path + ": " + d.reason + "\n";
        out += "    A: " + d.a + "\n";
        out += "    B: " + d.b + "\n";
    }
    if (result.truncated)
        out += "  ... further differences truncated\n";
    return out;
}

void
addIgnoreSpecs(ReportDiffOptions &opts,
               const std::vector<std::string> &specs)
{
    for (const std::string &spec : specs) {
        for (const std::string &piece : split(spec, ',')) {
            if (!piece.empty())
                opts.ignore.push_back(piece);
        }
    }
}

} // namespace telemetry
} // namespace gables
