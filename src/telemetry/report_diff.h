/**
 * @file
 * Field-by-field comparison of two RunReport JSON documents with
 * per-field numeric tolerances — the diffing backbone behind
 * `gables report diff` and the CI bench-baseline gate. The walk is
 * structural (parsed DOM, not text), paths are dotted with [i] array
 * indices, and the "schema" subtree is always compared exactly so a
 * version bump can never hide inside a tolerance.
 *
 * Two numeric modes:
 *  - symmetric tolerance (default): a and b match when
 *    |a - b| <= tolAbs + tolRel * max(|a|, |b|);
 *  - one-sided ratio gating (minRatio >= 0): b fails only when
 *    b / a < minRatio, i.e. "the new value may be better without
 *    bound, but not worse than this fraction of the baseline" — the
 *    shape CI perf gates need.
 */

#ifndef GABLES_TELEMETRY_REPORT_DIFF_H
#define GABLES_TELEMETRY_REPORT_DIFF_H

#include <cstddef>
#include <string>
#include <vector>

namespace gables {

class JsonValue;

namespace telemetry {

/** Options steering a report comparison. */
struct ReportDiffOptions {
    /** Relative tolerance for numeric fields. */
    double tolRel = 0.0;
    /** Absolute tolerance for numeric fields. */
    double tolAbs = 0.0;
    /**
     * When >= 0, numeric fields are gated one-sidedly instead:
     * fail only if b / a < minRatio (with a > 0). Non-positive
     * baselines fall back to the symmetric tolerance check.
     */
    double minRatio = -1.0;
    /**
     * Paths to skip. An entry matches a field when it equals any
     * single segment of the field's dotted path (so "seconds"
     * ignores every field named seconds at any depth) or when the
     * path starts with "<entry>." (subtree ignore). Keys may
     * themselves contain dots ("DRAM.wait_time"), so segment
     * matching compares whole member keys, not dot-split pieces.
     */
    std::vector<std::string> ignore;
    /** Stop collecting after this many differences. */
    size_t maxDiffs = 100;
};

/** One differing field. */
struct FieldDiff {
    /** Dotted path, e.g. "stats.queue.events_executed.value". */
    std::string path;
    /** Human reason: "value", "type", "missing in A/B", ... */
    std::string reason;
    /** Rendering of the field in A ("-" when absent). */
    std::string a;
    /** Rendering of the field in B ("-" when absent). */
    std::string b;
};

/** The outcome of a comparison. */
struct ReportDiffResult {
    /** Differences in walk order, capped at options.maxDiffs. */
    std::vector<FieldDiff> diffs;
    /** Leaf fields compared (ignored fields excluded). */
    size_t fieldsCompared = 0;
    /** True when the diff list was capped. */
    bool truncated = false;

    /** @return True when no differences survived the tolerances. */
    bool identical() const { return diffs.empty(); }
};

/**
 * Compare two parsed report documents.
 *
 * @param a    Baseline document.
 * @param b    Candidate document.
 * @param opts Tolerances and ignore list.
 */
ReportDiffResult diffReports(const JsonValue &a, const JsonValue &b,
                             const ReportDiffOptions &opts = {});

/** Render @p result as a human-readable listing, one line per diff. */
std::string formatDiff(const ReportDiffResult &result);

/**
 * Append ignore patterns to @p opts from user-facing specs: each
 * spec is split on commas and empty pieces are dropped, so
 * `--ignore a,b` and `--ignore a --ignore b` produce the same
 * ignore list.
 */
void addIgnoreSpecs(ReportDiffOptions &opts,
                    const std::vector<std::string> &specs);

} // namespace telemetry
} // namespace gables

#endif // GABLES_TELEMETRY_REPORT_DIFF_H
