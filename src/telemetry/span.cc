#include "telemetry/span.h"

#include <algorithm>
#include <unordered_map>

#include "util/json_writer.h"
#include "util/strings.h"

namespace gables {
namespace telemetry {

namespace {

/** The process-wide active tracer (nullptr = profiling off). */
std::atomic<SpanTracer *> g_active{nullptr};

/** Unique ids so a thread-local cache survives tracer churn (a new
 * tracer allocated at a dead one's address must not reuse its thread
 * state). */
std::atomic<uint64_t> g_next_id{1};

/** Per-thread cache of the last tracer this thread registered with. */
struct TlsCache {
    uint64_t tracerId = 0;
    void *state = nullptr;
};
thread_local TlsCache tls_cache;

} // namespace

SpanTracer::SpanTracer()
    : id_(g_next_id.fetch_add(1, std::memory_order_relaxed)),
      epoch_(std::chrono::steady_clock::now())
{}

SpanTracer::~SpanTracer()
{
    // Deactivate on destruction so a dangling active pointer can
    // never outlive the tracer it points at.
    SpanTracer *self = this;
    g_active.compare_exchange_strong(self, nullptr,
                                     std::memory_order_acq_rel);
}

SpanTracer *
SpanTracer::active()
{
    return g_active.load(std::memory_order_acquire);
}

void
SpanTracer::setActive(SpanTracer *tracer)
{
    g_active.store(tracer, std::memory_order_release);
}

double
SpanTracer::now() const
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
}

double
SpanTracer::wallSeconds() const
{
    return now();
}

SpanTracer::ThreadState &
SpanTracer::threadState()
{
    if (tls_cache.tracerId == id_)
        return *static_cast<ThreadState *>(tls_cache.state);
    std::lock_guard<std::mutex> lock(mutex_);
    threads_.push_back(std::make_unique<ThreadState>());
    ThreadState &st = *threads_.back();
    st.index = static_cast<uint32_t>(threads_.size() - 1);
    tls_cache.tracerId = id_;
    tls_cache.state = &st;
    return st;
}

void
SpanTracer::begin(const char *name)
{
    ThreadState &st = threadState();
    Node *parent = st.stack.empty() ? &st.root : st.stack.back().node;
    Node *node = nullptr;
    for (const auto &c : parent->children) {
        if (c->name == name) {
            node = c.get();
            break;
        }
    }
    if (node == nullptr) {
        parent->children.push_back(std::make_unique<Node>());
        node = parent->children.back().get();
        node->name = name;
        node->parent = parent;
    }
    st.stack.push_back(OpenSpan{node, now()});
}

void
SpanTracer::end()
{
    ThreadState &st = threadState();
    if (st.stack.empty())
        return; // mispaired end: ignore rather than crash the tool
    OpenSpan open = st.stack.back();
    st.stack.pop_back();
    double duration = now() - open.startSeconds;
    open.node->count += 1;
    open.node->totalSeconds += duration;
    if (st.log.size() < kMaxEventsPerThread)
        st.log.push_back(
            RecordedSpan{open.node, open.startSeconds, duration});
    else
        ++st.dropped;
}

size_t
SpanTracer::threadCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return threads_.size();
}

uint64_t
SpanTracer::droppedEvents() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    uint64_t dropped = 0;
    for (const auto &t : threads_)
        dropped += t->dropped;
    return dropped;
}

namespace {

/** Add @p from (plus open-span elapsed) into the merged node @p to,
 * matching children by name in first-seen order. */
void
mergeNode(ProfileNode &to, const ProfileNode &from)
{
    to.count += from.count;
    to.totalSeconds += from.totalSeconds;
    for (const ProfileNode &child : from.children) {
        ProfileNode *slot = nullptr;
        for (ProfileNode &c : to.children) {
            if (c.name == child.name) {
                slot = &c;
                break;
            }
        }
        if (slot == nullptr) {
            to.children.push_back(
                ProfileNode{child.name, 0, 0.0, 0.0, {}});
            slot = &to.children.back();
        }
        mergeNode(*slot, child);
    }
}

/** Compute self = total - sum(child totals) over the whole tree. */
void
computeSelf(ProfileNode &node)
{
    double child_total = 0.0;
    for (ProfileNode &c : node.children) {
        computeSelf(c);
        child_total += c.totalSeconds;
    }
    node.selfSeconds = std::max(0.0, node.totalSeconds - child_total);
}

} // namespace

ProfileNode
SpanTracer::snapshot() const
{
    double snap_now = now();
    ProfileNode merged;

    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &t : threads_) {
        // Elapsed-so-far of this thread's open spans, keyed by node
        // (a recursive span can appear twice in the stack).
        std::unordered_map<const Node *, double> open_elapsed;
        std::unordered_map<const Node *, uint64_t> open_count;
        for (const OpenSpan &o : t->stack) {
            open_elapsed[o.node] += snap_now - o.startSeconds;
            open_count[o.node] += 1;
        }

        // Copy this thread's tree with the open-span adjustments,
        // then merge the copy into the aggregate.
        struct Copier {
            const std::unordered_map<const Node *, double> &elapsed;
            const std::unordered_map<const Node *, uint64_t> &count;
            ProfileNode operator()(const Node &n) const
            {
                ProfileNode out;
                out.name = n.name;
                out.count = n.count;
                out.totalSeconds = n.totalSeconds;
                auto e = elapsed.find(&n);
                if (e != elapsed.end())
                    out.totalSeconds += e->second;
                auto c = count.find(&n);
                if (c != count.end())
                    out.count += c->second;
                out.children.reserve(n.children.size());
                for (const auto &child : n.children)
                    out.children.push_back((*this)(*child));
                return out;
            }
        };
        ProfileNode copy =
            Copier{open_elapsed, open_count}(t->root);
        mergeNode(merged, copy);
    }
    // The synthetic root never carries its own time.
    merged.name.clear();
    merged.count = 0;
    merged.totalSeconds = 0.0;
    computeSelf(merged);
    merged.selfSeconds = 0.0;
    return merged;
}

namespace {

void
writeProfileNode(JsonWriter &json, const ProfileNode &node)
{
    json.beginObject();
    json.kv("name", node.name);
    json.kv("count", static_cast<size_t>(node.count));
    json.kv("total_s", node.totalSeconds);
    json.kv("self_s", node.selfSeconds);
    if (!node.children.empty()) {
        json.key("children");
        json.beginArray();
        for (const ProfileNode &c : node.children)
            writeProfileNode(json, c);
        json.endArray();
    }
    json.endObject();
}

} // namespace

void
SpanTracer::writeProfile(JsonWriter &json) const
{
    ProfileNode root = snapshot();
    json.beginObject();
    json.kv("wall_s", wallSeconds());
    json.kv("threads", threadCount());
    json.kv("events_dropped", static_cast<size_t>(droppedEvents()));
    json.key("spans");
    json.beginArray();
    for (const ProfileNode &c : root.children)
        writeProfileNode(json, c);
    json.endArray();
    json.endObject();
}

std::vector<SpanEvent>
SpanTracer::events() const
{
    std::vector<SpanEvent> out;
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &t : threads_) {
        for (const RecordedSpan &r : t->log) {
            SpanEvent ev;
            ev.name = r.node->name;
            // Dotted path from the outermost span down to the leaf.
            std::vector<const Node *> chain;
            for (const Node *n = r.node;
                 n != nullptr && n->parent != nullptr; n = n->parent)
                chain.push_back(n);
            for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
                if (!ev.path.empty())
                    ev.path += '.';
                ev.path += (*it)->name;
            }
            ev.thread = t->index;
            ev.startSeconds = r.startSeconds;
            ev.durationSeconds = r.durationSeconds;
            out.push_back(std::move(ev));
        }
    }
    return out;
}

namespace {

void
summaryLine(std::string &out, const ProfileNode &node, int depth,
            double root_total)
{
    std::string name(static_cast<size_t>(depth) * 2, ' ');
    name += node.name;
    if (name.size() < 34)
        name.resize(34, ' ');
    std::string count = std::to_string(node.count);
    if (count.size() < 8)
        count.insert(0, 8 - count.size(), ' ');
    auto ms = [](double s) {
        std::string v = formatDouble(s * 1e3, 3) + "ms";
        if (v.size() < 12)
            v.insert(0, 12 - v.size(), ' ');
        return v;
    };
    double share =
        root_total > 0.0 ? 100.0 * node.totalSeconds / root_total : 0.0;
    std::string pct = formatDouble(share, 1) + "%";
    if (pct.size() < 7)
        pct.insert(0, 7 - pct.size(), ' ');
    out += name + count + ms(node.totalSeconds) + ms(node.selfSeconds) +
           pct + '\n';
    for (const ProfileNode &c : node.children)
        summaryLine(out, c, depth + 1, root_total);
}

} // namespace

std::string
SpanTracer::summaryTable() const
{
    ProfileNode root = snapshot();
    double root_total = 0.0;
    for (const ProfileNode &c : root.children)
        root_total += c.totalSeconds;
    std::string out;
    out += "span                                 count     total"
           "        self  share\n";
    for (const ProfileNode &c : root.children)
        summaryLine(out, c, 0, root_total);
    uint64_t dropped = droppedEvents();
    if (dropped > 0)
        out += "(" + std::to_string(dropped) +
               " span event(s) dropped from the export log)\n";
    return out;
}

} // namespace telemetry
} // namespace gables
