/**
 * @file
 * Self-profiling span tracing for the tool itself: where did *gables*
 * (not the simulated SoC) spend its wall-clock time? A SpanTracer
 * owns per-thread span stacks; ScopedSpan (or the GABLES_SPAN macro)
 * opens a named span on construction and closes it on destruction.
 * Spans nest into a hierarchy per thread; at snapshot time every
 * thread's tree is merged by span path into one aggregate profile
 * (count, total and self wall seconds per node), which is emitted as
 * the "profile" subtree of a RunReport and exportable as Perfetto
 * "ph":"X" duration events.
 *
 * Cost discipline mirrors the stats registry: with no tracer active
 * a ScopedSpan is one relaxed atomic load and a branch — outputs are
 * bit-identical with profiling attached or detached, and the hot
 * analytic paths (GablesEvaluator::attainable(), the event queue
 * drain) are deliberately left uninstrumented.
 *
 * Threading contract: begin/end touch only the calling thread's
 * state, so concurrent spans on pool workers need no locking after
 * the first (mutex-guarded) per-thread registration. Snapshots
 * (writeProfile / events / summaryTable) may run while other
 * threads hold *no* open spans — in practice after every transient
 * worker pool has been joined, which is when drivers write reports.
 */

#ifndef GABLES_TELEMETRY_SPAN_H
#define GABLES_TELEMETRY_SPAN_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace gables {

class JsonWriter;

namespace telemetry {

/** One aggregated node of the merged profile tree. */
struct ProfileNode {
    /** Span name, e.g. "sweep.grid". */
    std::string name;
    /** Times the span was entered (open spans count once). */
    uint64_t count = 0;
    /** Wall seconds inside the span, children included; open spans
     * contribute their elapsed-so-far at snapshot time. */
    double totalSeconds = 0.0;
    /** totalSeconds minus the children's totals, clamped to >= 0. */
    double selfSeconds = 0.0;
    /** Child spans in first-entry order. */
    std::vector<ProfileNode> children;
};

/** One recorded span instance, for Perfetto "ph":"X" export. */
struct SpanEvent {
    /** Leaf span name. */
    std::string name;
    /** Dotted path from the thread's outermost span. */
    std::string path;
    /** Registration index of the recording thread (0 = first). */
    uint32_t thread = 0;
    /** Seconds since the tracer was created. */
    double startSeconds = 0.0;
    /** Span duration in seconds. */
    double durationSeconds = 0.0;
};

/**
 * The tracer: owns every thread's span stack and aggregation tree.
 * One tracer is installed process-wide with setActive(); ScopedSpan
 * no-ops when none is. Thread state is registered lazily on a
 * thread's first span and owned by the tracer, so worker threads may
 * exit (pools are transient) without losing their contribution.
 */
class SpanTracer
{
  public:
    /** Per-thread event-log cap; further spans still aggregate but
     * are dropped from the Perfetto export (droppedEvents counts). */
    static constexpr size_t kMaxEventsPerThread = 1 << 16;

    SpanTracer();
    ~SpanTracer();
    SpanTracer(const SpanTracer &) = delete;
    SpanTracer &operator=(const SpanTracer &) = delete;

    /** @return The process-wide active tracer, or nullptr. */
    static SpanTracer *active();

    /**
     * Install @p tracer as the process-wide active tracer (nullptr
     * deactivates). The tracer must outlive every span opened while
     * it is active.
     */
    static void setActive(SpanTracer *tracer);

    /** Open a span named @p name on the calling thread. */
    void begin(const char *name);

    /** Close the calling thread's innermost open span. */
    void end();

    /** @return Seconds since the tracer was created. */
    double wallSeconds() const;

    /** @return Number of threads that ever recorded a span. */
    size_t threadCount() const;

    /** @return Span instances dropped from the event log (the
     * aggregate tree is never truncated). */
    uint64_t droppedEvents() const;

    /**
     * Merge every thread's tree into one aggregate profile. The
     * returned root is synthetic (empty name); its children are the
     * outermost spans. Open spans contribute elapsed-so-far, so a
     * driver's root span totals track wall time even when the
     * snapshot happens inside it.
     */
    ProfileNode snapshot() const;

    /**
     * Emit the "profile" subtree consumed by RunReport: wall_s,
     * threads, events_dropped, and the recursive spans array
     * (name/count/total_s/self_s/children).
     */
    void writeProfile(JsonWriter &json) const;

    /** @return All recorded span instances, thread by thread in
     * registration order, recording order within a thread. */
    std::vector<SpanEvent> events() const;

    /** @return A fixed-width human summary of snapshot(), one line
     * per node, indented by depth. */
    std::string summaryTable() const;

  private:
    friend class ScopedSpan;

    struct Node {
        std::string name;
        Node *parent = nullptr;
        uint64_t count = 0;
        double totalSeconds = 0.0;
        std::vector<std::unique_ptr<Node>> children;
    };

    struct OpenSpan {
        Node *node;
        double startSeconds;
    };

    struct RecordedSpan {
        const Node *node;
        double startSeconds;
        double durationSeconds;
    };

    struct ThreadState {
        uint32_t index = 0;
        Node root; // synthetic; name stays empty
        std::vector<OpenSpan> stack;
        std::vector<RecordedSpan> log;
        uint64_t dropped = 0;
    };

    ThreadState &threadState();
    double now() const;

    const uint64_t id_;
    const std::chrono::steady_clock::time_point epoch_;
    mutable std::mutex mutex_; // guards threads_ registration
    std::vector<std::unique_ptr<ThreadState>> threads_;
};

/**
 * RAII span handle: opens a span on the active tracer (if any) at
 * construction and closes it at destruction. The name pointer is
 * only read during construction.
 */
class ScopedSpan
{
  public:
    explicit ScopedSpan(const char *name) : tracer_(SpanTracer::active())
    {
        if (tracer_ != nullptr)
            tracer_->begin(name);
    }

    ~ScopedSpan()
    {
        if (tracer_ != nullptr)
            tracer_->end();
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    SpanTracer *tracer_;
};

} // namespace telemetry
} // namespace gables

/** @name Span convenience macro (unique local per line). */
/** @{ */
#define GABLES_SPAN_CONCAT2(a, b) a##b
#define GABLES_SPAN_CONCAT(a, b) GABLES_SPAN_CONCAT2(a, b)
#define GABLES_SPAN(name)                                              \
    ::gables::telemetry::ScopedSpan GABLES_SPAN_CONCAT(               \
        gables_span_, __LINE__)(name)
/** @} */

#endif // GABLES_TELEMETRY_SPAN_H
