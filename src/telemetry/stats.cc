#include "telemetry/stats.h"

#include <cmath>

#include "util/json_writer.h"
#include "util/logging.h"
#include "util/parse.h"

namespace gables {
namespace telemetry {

void
Distribution::sample(double v)
{
    ++count_;
    sum_ += v;
    if (v < min_)
        min_ = v;
    if (v > max_)
        max_ = v;
    double delta = v - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (v - mean_);
}

double
Distribution::mean() const
{
    return count_ ? mean_ : 0.0;
}

double
Distribution::stddev() const
{
    if (count_ < 2)
        return 0.0;
    return std::sqrt(m2_ / static_cast<double>(count_));
}

void
Distribution::reset()
{
    count_ = 0;
    sum_ = 0.0;
    min_ = std::numeric_limits<double>::infinity();
    max_ = -std::numeric_limits<double>::infinity();
    mean_ = 0.0;
    m2_ = 0.0;
}

Histogram::Histogram(double lo, double hi, size_t nbuckets)
    : lo_(lo), hi_(hi), buckets_(nbuckets, 0)
{
    if (!(hi > lo))
        fatal("histogram needs hi > lo");
    if (nbuckets < 1)
        fatal("histogram needs at least one bucket");
}

void
Histogram::sample(double v)
{
    ++count_;
    if (v < lo_) {
        ++underflow_;
        return;
    }
    if (v >= hi_) {
        ++overflow_;
        return;
    }
    double width = (hi_ - lo_) / static_cast<double>(buckets_.size());
    size_t i = static_cast<size_t>((v - lo_) / width);
    if (i >= buckets_.size()) // guard the v ~ hi rounding edge
        i = buckets_.size() - 1;
    ++buckets_[i];
}

double
Histogram::bucketLo(size_t i) const
{
    double width = (hi_ - lo_) / static_cast<double>(buckets_.size());
    return lo_ + width * static_cast<double>(i);
}

void
Histogram::reset()
{
    for (uint64_t &b : buckets_)
        b = 0;
    underflow_ = overflow_ = count_ = 0;
}

void
TimeSeries::sample(double t, double v)
{
    times_.push_back(t);
    values_.push_back(v);
}

void
TimeSeries::reset()
{
    times_.clear();
    values_.clear();
}

StatsRegistry::Entry *
StatsRegistry::find(const std::string &name)
{
    for (auto &e : entries_) {
        if (e->name == name)
            return e.get();
    }
    return nullptr;
}

const StatsRegistry::Entry *
StatsRegistry::find(const std::string &name) const
{
    for (const auto &e : entries_) {
        if (e->name == name)
            return e.get();
    }
    return nullptr;
}

StatsRegistry::Entry &
StatsRegistry::require(const std::string &name, const std::string &desc,
                       Kind kind)
{
    auto kindName = [](Kind k) -> const char * {
        switch (k) {
        case Kind::Counter:
            return "counter";
        case Kind::Gauge:
            return "gauge";
        case Kind::Distribution:
            return "distribution";
        case Kind::Histogram:
            return "histogram";
        case Kind::TimeSeries:
            return "timeseries";
        }
        return "?";
    };
    if (Entry *e = find(name)) {
        if (e->kind != kind)
            configError(SourceLoc{"stats-registry", 0},
                        "stat '" + name + "' is already registered as "
                        "a " + kindName(e->kind) +
                        "; cannot re-register it as a " +
                        kindName(kind));
        // Re-attaching under the same name and kind is the supported
        // contract (components reconnect across runs); only flag it
        // when the descriptions disagree, which usually means two
        // unrelated components collided on a name.
        if (!desc.empty() && !e->desc.empty() && desc != e->desc) {
            ++duplicates_;
            if (!e->dupWarned) {
                e->dupWarned = true;
                warn("stat '" + name +
                     "' registered twice with conflicting "
                     "descriptions: \"" + e->desc + "\" vs \"" + desc +
                     "\" (keeping the first)");
            }
        }
        return *e;
    }
    entries_.push_back(std::make_unique<Entry>());
    Entry &e = *entries_.back();
    e.name = name;
    e.desc = desc;
    e.kind = kind;
    return e;
}

Counter &
StatsRegistry::counter(const std::string &name, const std::string &desc)
{
    Entry &e = require(name, desc, Kind::Counter);
    if (!e.counter)
        e.counter = std::make_unique<Counter>();
    return *e.counter;
}

Gauge &
StatsRegistry::gauge(const std::string &name, const std::string &desc)
{
    Entry &e = require(name, desc, Kind::Gauge);
    if (!e.gauge)
        e.gauge = std::make_unique<Gauge>();
    return *e.gauge;
}

Distribution &
StatsRegistry::distribution(const std::string &name,
                            const std::string &desc)
{
    Entry &e = require(name, desc, Kind::Distribution);
    if (!e.distribution)
        e.distribution = std::make_unique<Distribution>();
    return *e.distribution;
}

Histogram &
StatsRegistry::histogram(const std::string &name, double lo, double hi,
                         size_t nbuckets, const std::string &desc)
{
    Entry &e = require(name, desc, Kind::Histogram);
    if (!e.histogram)
        e.histogram = std::make_unique<Histogram>(lo, hi, nbuckets);
    return *e.histogram;
}

TimeSeries &
StatsRegistry::timeSeries(const std::string &name,
                          const std::string &desc)
{
    Entry &e = require(name, desc, Kind::TimeSeries);
    if (!e.timeSeries)
        e.timeSeries = std::make_unique<TimeSeries>();
    return *e.timeSeries;
}

const Counter *
StatsRegistry::findCounter(const std::string &name) const
{
    const Entry *e = find(name);
    return e ? e->counter.get() : nullptr;
}

const Gauge *
StatsRegistry::findGauge(const std::string &name) const
{
    const Entry *e = find(name);
    return e ? e->gauge.get() : nullptr;
}

const Distribution *
StatsRegistry::findDistribution(const std::string &name) const
{
    const Entry *e = find(name);
    return e ? e->distribution.get() : nullptr;
}

const Histogram *
StatsRegistry::findHistogram(const std::string &name) const
{
    const Entry *e = find(name);
    return e ? e->histogram.get() : nullptr;
}

const TimeSeries *
StatsRegistry::findTimeSeries(const std::string &name) const
{
    const Entry *e = find(name);
    return e ? e->timeSeries.get() : nullptr;
}

bool
StatsRegistry::has(const std::string &name) const
{
    return find(name) != nullptr;
}

void
StatsRegistry::resetValues()
{
    for (auto &e : entries_) {
        if (e->counter)
            e->counter->reset();
        if (e->gauge)
            e->gauge->reset();
        if (e->distribution)
            e->distribution->reset();
        if (e->histogram)
            e->histogram->reset();
        if (e->timeSeries)
            e->timeSeries->reset();
    }
}

void
StatsRegistry::writeJson(JsonWriter &json) const
{
    json.beginObject();
    for (const auto &e : entries_) {
        json.key(e->name);
        json.beginObject();
        if (!e->desc.empty())
            json.kv("desc", e->desc);
        switch (e->kind) {
          case Kind::Counter:
            json.kv("kind", "counter");
            json.kv("value", e->counter->value());
            break;
          case Kind::Gauge:
            json.kv("kind", "gauge");
            json.kv("value", e->gauge->value());
            break;
          case Kind::Distribution: {
            const Distribution &d = *e->distribution;
            json.kv("kind", "distribution");
            json.kv("count", static_cast<size_t>(d.count()));
            json.kv("sum", d.sum());
            json.kv("min", d.min());
            json.kv("max", d.max());
            json.kv("mean", d.mean());
            json.kv("stddev", d.stddev());
            break;
          }
          case Kind::Histogram: {
            const Histogram &h = *e->histogram;
            json.kv("kind", "histogram");
            json.kv("count", static_cast<size_t>(h.count()));
            json.kv("underflow", static_cast<size_t>(h.underflow()));
            json.kv("overflow", static_cast<size_t>(h.overflow()));
            json.key("bucket_lo");
            json.beginArray();
            for (size_t i = 0; i < h.numBuckets(); ++i)
                json.value(h.bucketLo(i));
            json.endArray();
            json.key("buckets");
            json.beginArray();
            for (size_t i = 0; i < h.numBuckets(); ++i)
                json.value(static_cast<size_t>(h.bucket(i)));
            json.endArray();
            break;
          }
          case Kind::TimeSeries: {
            const TimeSeries &s = *e->timeSeries;
            json.kv("kind", "timeseries");
            json.numberArray("t", s.times());
            json.numberArray("v", s.values());
            break;
          }
        }
        json.endObject();
    }
    json.endObject();
}

} // namespace telemetry
} // namespace gables
