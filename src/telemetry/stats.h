/**
 * @file
 * A gem5-style statistics registry for the simulators: named scalar
 * counters, accumulating distributions (min/max/mean/stddev via
 * Welford's algorithm), fixed-bucket histograms, and epoch-sampled
 * time series. Components own pointers into a StatsRegistry that
 * outlives them for a run; the registry dumps itself as ordered JSON
 * for the RunReport artifact.
 *
 * Telemetry is strictly observational: attaching or detaching a
 * registry never changes simulated timing, so runs with and without
 * telemetry are bit-identical.
 */

#ifndef GABLES_TELEMETRY_STATS_H
#define GABLES_TELEMETRY_STATS_H

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

namespace gables {

class JsonWriter;

namespace telemetry {

/** A named scalar accumulator (events, bytes, interrupts, ...). */
class Counter
{
  public:
    /** Add @p n (default one event). */
    void add(double n = 1.0) { value_ += n; }

    /** @return Accumulated value. */
    double value() const { return value_; }

    /** Zero the counter. */
    void reset() { value_ = 0.0; }

  private:
    double value_ = 0.0;
};

/**
 * A named last-value stat: unlike a Counter it overwrites rather
 * than accumulates — for point-in-time quantities like bytes of
 * memory currently held by an observability buffer.
 */
class Gauge
{
  public:
    /** Overwrite the value. */
    void set(double v) { value_ = v; }

    /** @return Last value set (0 after reset). */
    double value() const { return value_; }

    /** Zero the gauge. */
    void reset() { value_ = 0.0; }

  private:
    double value_ = 0.0;
};

/**
 * An accumulating distribution: count, sum, min, max, mean, and
 * standard deviation of every sample, in O(1) memory.
 */
class Distribution
{
  public:
    /** Record one sample. */
    void sample(double v);

    /** @return Number of samples. */
    uint64_t count() const { return count_; }
    /** @return Sum of all samples. */
    double sum() const { return sum_; }
    /** @return Smallest sample (0 when empty). */
    double min() const { return count_ ? min_ : 0.0; }
    /** @return Largest sample (0 when empty). */
    double max() const { return count_ ? max_ : 0.0; }
    /** @return Arithmetic mean (0 when empty). */
    double mean() const;
    /** @return Population standard deviation (0 when empty). */
    double stddev() const;

    /** Discard all samples. */
    void reset();

  private:
    uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
    double mean_ = 0.0;
    double m2_ = 0.0; // Welford's sum of squared deviations
};

/**
 * A fixed-bucket histogram over [lo, hi): samples below lo count as
 * underflow, at or above hi as overflow.
 */
class Histogram
{
  public:
    /**
     * @param lo       Inclusive lower bound of the first bucket.
     * @param hi       Exclusive upper bound of the last bucket, > lo.
     * @param nbuckets Number of equal-width buckets, >= 1.
     */
    Histogram(double lo, double hi, size_t nbuckets);

    /** Record one sample. */
    void sample(double v);

    /** @return Number of buckets. */
    size_t numBuckets() const { return buckets_.size(); }
    /** @return Count in bucket @p i. */
    uint64_t bucket(size_t i) const { return buckets_.at(i); }
    /** @return Inclusive lower edge of bucket @p i. */
    double bucketLo(size_t i) const;
    /** @return Samples below the range. */
    uint64_t underflow() const { return underflow_; }
    /** @return Samples at or above the range. */
    uint64_t overflow() const { return overflow_; }
    /** @return Total samples including under/overflow. */
    uint64_t count() const { return count_; }

    /** Zero all buckets. */
    void reset();

  private:
    double lo_;
    double hi_;
    std::vector<uint64_t> buckets_;
    uint64_t underflow_ = 0;
    uint64_t overflow_ = 0;
    uint64_t count_ = 0;
};

/**
 * An epoch-sampled time series: (time, value) points in sample
 * order, e.g. per-epoch utilization of a resource.
 */
class TimeSeries
{
  public:
    /** Append a point. */
    void sample(double t, double v);

    /** @return Sample times in order. */
    const std::vector<double> &times() const { return times_; }
    /** @return Sample values in order. */
    const std::vector<double> &values() const { return values_; }
    /** @return Number of points. */
    size_t size() const { return times_.size(); }

    /** Discard all points. */
    void reset();

  private:
    std::vector<double> times_;
    std::vector<double> values_;
};

/**
 * The registry: owns named stats and hands out stable references.
 * Registering an existing name returns the existing stat (so a
 * component can re-attach across runs); registering it as a
 * different kind raises a located ConfigError, and a same-kind
 * re-registration with a conflicting description warns once and
 * counts in duplicateRegistrations(). Dump order is registration
 * order, so reports are deterministic.
 */
class StatsRegistry
{
  public:
    StatsRegistry() = default;
    StatsRegistry(const StatsRegistry &) = delete;
    StatsRegistry &operator=(const StatsRegistry &) = delete;

    /** Register (or fetch) a counter. */
    Counter &counter(const std::string &name,
                     const std::string &desc = "");

    /** Register (or fetch) a gauge. */
    Gauge &gauge(const std::string &name,
                 const std::string &desc = "");

    /** Register (or fetch) a distribution. */
    Distribution &distribution(const std::string &name,
                               const std::string &desc = "");

    /** Register (or fetch) a histogram; bounds are set on first
     * registration only. */
    Histogram &histogram(const std::string &name, double lo, double hi,
                         size_t nbuckets,
                         const std::string &desc = "");

    /** Register (or fetch) a time series. */
    TimeSeries &timeSeries(const std::string &name,
                           const std::string &desc = "");

    /** @name Lookup without registering (nullptr when absent or of
     * another kind). */
    /** @{ */
    const Counter *findCounter(const std::string &name) const;
    const Gauge *findGauge(const std::string &name) const;
    const Distribution *findDistribution(const std::string &name) const;
    const Histogram *findHistogram(const std::string &name) const;
    const TimeSeries *findTimeSeries(const std::string &name) const;
    /** @} */

    /** @return True if any stat is registered under @p name. */
    bool has(const std::string &name) const;

    /** @return Number of registered stats. */
    size_t size() const { return entries_.size(); }

    /** @return Same-kind re-registrations whose descriptions
     * conflicted with the original (each occurrence counts; the
     * warning itself is emitted once per name). */
    uint64_t duplicateRegistrations() const { return duplicates_; }

    /** Zero every stat's value but keep all registrations. */
    void resetValues();

    /**
     * Dump every stat, in registration order, as one JSON object
     * keyed by stat name; each value carries "kind", "desc", and the
     * kind-specific fields.
     */
    void writeJson(JsonWriter &json) const;

  private:
    enum class Kind { Counter, Gauge, Distribution, Histogram, TimeSeries };

    struct Entry {
        std::string name;
        std::string desc;
        Kind kind;
        bool dupWarned = false;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<class Gauge> gauge;
        std::unique_ptr<Distribution> distribution;
        std::unique_ptr<Histogram> histogram;
        std::unique_ptr<TimeSeries> timeSeries;
    };

    Entry *find(const std::string &name);
    const Entry *find(const std::string &name) const;
    Entry &require(const std::string &name, const std::string &desc,
                   Kind kind);

    std::vector<std::unique_ptr<Entry>> entries_;
    uint64_t duplicates_ = 0;
};

} // namespace telemetry
} // namespace gables

#endif // GABLES_TELEMETRY_STATS_H
