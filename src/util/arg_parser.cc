#include "util/arg_parser.h"

#include <ostream>
#include <sstream>

#include "util/logging.h"
#include "util/parse.h"
#include "util/strings.h"

namespace gables {

ArgParser::ArgParser(std::string program, std::string synopsis)
    : program_(std::move(program)), synopsis_(std::move(synopsis))
{
    addFlag("help", "show this help text");
}

void
ArgParser::addOption(const std::string &name, const std::string &help,
                     const std::string &def)
{
    specs_.emplace_back(name, Spec{help, def, Kind::String});
}

void
ArgParser::addIntOption(const std::string &name, const std::string &help,
                        const std::string &def)
{
    specs_.emplace_back(name, Spec{help, def, Kind::Int});
}

void
ArgParser::addDoubleOption(const std::string &name,
                           const std::string &help,
                           const std::string &def)
{
    specs_.emplace_back(name, Spec{help, def, Kind::Double});
}

void
ArgParser::addFlag(const std::string &name, const std::string &help)
{
    specs_.emplace_back(name, Spec{help, "", Kind::Flag});
}

const ArgParser::Spec *
ArgParser::findSpec(const std::string &name) const
{
    for (const auto &[n, spec] : specs_) {
        if (n == name)
            return &spec;
    }
    return nullptr;
}

bool
ArgParser::checkValue(const std::string &name, const Spec &spec,
                      const std::string &value, std::ostream &err) const
{
    try {
        if (spec.kind == Kind::Int)
            parseIntStrict(value, "option --" + name);
        else if (spec.kind == Kind::Double)
            parseDoubleStrict(value, "option --" + name);
    } catch (const FatalError &) {
        err << program_ << ": option --" << name << " expects "
            << (spec.kind == Kind::Int ? "an integer" : "a number")
            << ", got '" << value << "'\n";
        return false;
    }
    return true;
}

bool
ArgParser::parse(int argc, const char *const *argv, std::ostream &err)
{
    help_requested_ = false;
    bool options_done = false;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (options_done || !startsWith(arg, "--")) {
            pos_.push_back(arg);
            continue;
        }
        if (arg == "--") {
            options_done = true;
            continue;
        }
        std::string body = arg.substr(2);
        std::string name = body;
        std::optional<std::string> inline_value;
        size_t eq = body.find('=');
        if (eq != std::string::npos) {
            name = body.substr(0, eq);
            inline_value = body.substr(eq + 1);
        }
        const Spec *spec = findSpec(name);
        if (!spec) {
            std::vector<std::string> known;
            for (const auto &[n, s] : specs_)
                known.push_back(n);
            err << program_ << ": unknown option --" << name;
            if (std::optional<std::string> m = closestMatch(name, known))
                err << " (did you mean '--" << *m << "'?)";
            err << "\n" << usage();
            return false;
        }
        if (spec->kind == Kind::Flag) {
            if (inline_value) {
                err << program_ << ": flag --" << name
                    << " does not take a value\n";
                return false;
            }
            values_[name].push_back("1");
        } else {
            std::string value;
            if (inline_value) {
                value = *inline_value;
            } else {
                if (i + 1 >= argc) {
                    err << program_ << ": option --" << name
                        << " requires a value\n";
                    return false;
                }
                value = argv[++i];
            }
            if (!checkValue(name, *spec, value, err))
                return false;
            values_[name].push_back(value);
        }
    }
    if (has("help")) {
        help_requested_ = true;
        err << usage();
        return false;
    }
    return true;
}

bool
ArgParser::has(const std::string &name) const
{
    return values_.count(name) > 0;
}

std::string
ArgParser::getString(const std::string &name, const std::string &def) const
{
    auto it = values_.find(name);
    return it == values_.end() ? def : it->second.back();
}

std::vector<std::string>
ArgParser::getStrings(const std::string &name) const
{
    auto it = values_.find(name);
    return it == values_.end() ? std::vector<std::string>()
                               : it->second;
}

double
ArgParser::getDouble(const std::string &name, double def) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        return def;
    return parseDoubleStrict(it->second.back(), "option --" + name);
}

long
ArgParser::getInt(const std::string &name, long def) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        return def;
    return parseIntStrict(it->second.back(), "option --" + name);
}

std::string
ArgParser::usage() const
{
    std::ostringstream oss;
    oss << "usage: " << program_ << " [options]\n  " << synopsis_
        << "\n\noptions:\n";
    for (const auto &[name, spec] : specs_) {
        const char *placeholder = "";
        switch (spec.kind) {
          case Kind::Flag: placeholder = ""; break;
          case Kind::Int: placeholder = " <int>"; break;
          case Kind::Double: placeholder = " <num>"; break;
          case Kind::String: placeholder = " <value>"; break;
        }
        std::string left = "  --" + name + placeholder;
        oss << padRight(left, 28) << spec.help;
        if (!spec.def.empty())
            oss << " (default: " << spec.def << ")";
        oss << '\n';
    }
    return oss.str();
}

} // namespace gables
