#include "util/arg_parser.h"

#include <cstdlib>
#include <ostream>
#include <sstream>

#include "util/strings.h"

namespace gables {

ArgParser::ArgParser(std::string program, std::string synopsis)
    : program_(std::move(program)), synopsis_(std::move(synopsis))
{
    addFlag("help", "show this help text");
}

void
ArgParser::addOption(const std::string &name, const std::string &help,
                     const std::string &def)
{
    specs_.emplace_back(name, Spec{help, def, false});
}

void
ArgParser::addFlag(const std::string &name, const std::string &help)
{
    specs_.emplace_back(name, Spec{help, "", true});
}

const ArgParser::Spec *
ArgParser::findSpec(const std::string &name) const
{
    for (const auto &[n, spec] : specs_) {
        if (n == name)
            return &spec;
    }
    return nullptr;
}

bool
ArgParser::parse(int argc, const char *const *argv, std::ostream &err)
{
    bool options_done = false;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (options_done || !startsWith(arg, "--")) {
            pos_.push_back(arg);
            continue;
        }
        if (arg == "--") {
            options_done = true;
            continue;
        }
        std::string body = arg.substr(2);
        std::string name = body;
        std::optional<std::string> inline_value;
        size_t eq = body.find('=');
        if (eq != std::string::npos) {
            name = body.substr(0, eq);
            inline_value = body.substr(eq + 1);
        }
        const Spec *spec = findSpec(name);
        if (!spec) {
            err << program_ << ": unknown option --" << name << "\n"
                << usage();
            return false;
        }
        if (spec->isFlag) {
            if (inline_value) {
                err << program_ << ": flag --" << name
                    << " does not take a value\n";
                return false;
            }
            values_[name] = "1";
        } else if (inline_value) {
            values_[name] = *inline_value;
        } else {
            if (i + 1 >= argc) {
                err << program_ << ": option --" << name
                    << " requires a value\n";
                return false;
            }
            values_[name] = argv[++i];
        }
    }
    if (has("help")) {
        err << usage();
        return false;
    }
    return true;
}

bool
ArgParser::has(const std::string &name) const
{
    return values_.count(name) > 0;
}

std::string
ArgParser::getString(const std::string &name, const std::string &def) const
{
    auto it = values_.find(name);
    return it == values_.end() ? def : it->second;
}

double
ArgParser::getDouble(const std::string &name, double def) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        return def;
    return std::strtod(it->second.c_str(), nullptr);
}

long
ArgParser::getInt(const std::string &name, long def) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        return def;
    return std::strtol(it->second.c_str(), nullptr, 10);
}

std::string
ArgParser::usage() const
{
    std::ostringstream oss;
    oss << "usage: " << program_ << " [options]\n  " << synopsis_
        << "\n\noptions:\n";
    for (const auto &[name, spec] : specs_) {
        std::string left = "  --" + name + (spec.isFlag ? "" : " <value>");
        oss << padRight(left, 28) << spec.help;
        if (!spec.def.empty())
            oss << " (default: " << spec.def << ")";
        oss << '\n';
    }
    return oss.str();
}

} // namespace gables
