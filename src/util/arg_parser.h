/**
 * @file
 * A small command-line argument parser for the `gables` CLI and the
 * bench harness binaries. Supports `--flag`, `--name value`,
 * `--name=value`, typed accessors with defaults, positional
 * arguments, and generated usage text.
 *
 * Parsing is strict: unknown options fail with a did-you-mean
 * suggestion over the declared option set, and options declared with
 * addIntOption()/addDoubleOption() are validated at parse() time via
 * the full-token parsers in util/parse.h, so `--jobs=abc` is a loud
 * usage error instead of silently becoming 0.
 */

#ifndef GABLES_UTIL_ARG_PARSER_H
#define GABLES_UTIL_ARG_PARSER_H

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace gables {

/**
 * Declarative option table + parse result in one object.
 */
class ArgParser
{
  public:
    /**
     * @param program  Program name for usage text.
     * @param synopsis One-line description of the tool.
     */
    ArgParser(std::string program, std::string synopsis);

    /**
     * Declare a value option.
     *
     * @param name      Long name without dashes, e.g. "bpeak".
     * @param help      Help text.
     * @param def       Default value rendered in usage (informational).
     */
    void addOption(const std::string &name, const std::string &help,
                   const std::string &def = "");

    /**
     * Declare an integer option; parse() rejects values with trailing
     * garbage or outside long's range.
     */
    void addIntOption(const std::string &name, const std::string &help,
                      const std::string &def = "");

    /**
     * Declare a floating-point option; parse() rejects non-numeric
     * values and trailing garbage.
     */
    void addDoubleOption(const std::string &name,
                         const std::string &help,
                         const std::string &def = "");

    /** Declare a boolean flag (present/absent). */
    void addFlag(const std::string &name, const std::string &help);

    /**
     * Parse argv. Unknown options are an error (with a did-you-mean
     * suggestion); typed option values are validated eagerly; "--"
     * ends option processing.
     *
     * @return True on success; false if parsing failed or --help was
     *         requested (usage is printed to the given stream). Use
     *         helpRequested() to tell the two apart for the CLI's
     *         exit-code contract (0 for help, 2 for usage errors).
     */
    bool parse(int argc, const char *const *argv, std::ostream &err);

    /** @return True when the last parse() saw --help. */
    bool helpRequested() const { return help_requested_; }

    /** @return True if the flag or option @p name was supplied. */
    bool has(const std::string &name) const;

    /** @return String value of option @p name, or @p def. When the
     * option was supplied more than once, the last occurrence wins
     * (use getStrings() to see them all). */
    std::string getString(const std::string &name,
                          const std::string &def = "") const;

    /**
     * @return Every occurrence of option @p name in command-line
     *         order; empty when absent. List-valued options (e.g.
     *         `report diff --ignore`) accept both one
     *         comma-separated occurrence and repeated flags.
     */
    std::vector<std::string> getStrings(const std::string &name) const;

    /**
     * @return Double value of option @p name, or @p def when absent.
     * @throws FatalError if the supplied value is not a full-token
     *         number (cannot happen for addDoubleOption() options,
     *         which parse() already validated).
     */
    double getDouble(const std::string &name, double def) const;

    /**
     * @return Integer value of option @p name, or @p def when absent.
     * @throws FatalError if the supplied value is not a full-token
     *         integer.
     */
    long getInt(const std::string &name, long def) const;

    /** @return Positional (non-option) arguments in order. */
    const std::vector<std::string> &positional() const { return pos_; }

    /** @return Generated usage text. */
    std::string usage() const;

  private:
    /** Value type enforced when the option is parsed. */
    enum class Kind { String, Int, Double, Flag };

    struct Spec {
        std::string help;
        std::string def;
        Kind kind;
    };

    std::string program_;
    std::string synopsis_;
    std::vector<std::pair<std::string, Spec>> specs_;
    std::map<std::string, std::vector<std::string>> values_;
    std::vector<std::string> pos_;
    bool help_requested_ = false;

    const Spec *findSpec(const std::string &name) const;
    bool checkValue(const std::string &name, const Spec &spec,
                    const std::string &value, std::ostream &err) const;
};

} // namespace gables

#endif // GABLES_UTIL_ARG_PARSER_H
