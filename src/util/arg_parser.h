/**
 * @file
 * A small command-line argument parser for the `gables` CLI and the
 * bench harness binaries. Supports `--flag`, `--name value`,
 * `--name=value`, typed accessors with defaults, positional
 * arguments, and generated usage text.
 */

#ifndef GABLES_UTIL_ARG_PARSER_H
#define GABLES_UTIL_ARG_PARSER_H

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace gables {

/**
 * Declarative option table + parse result in one object.
 */
class ArgParser
{
  public:
    /**
     * @param program  Program name for usage text.
     * @param synopsis One-line description of the tool.
     */
    ArgParser(std::string program, std::string synopsis);

    /**
     * Declare a value option.
     *
     * @param name      Long name without dashes, e.g. "bpeak".
     * @param help      Help text.
     * @param def       Default value rendered in usage (informational).
     */
    void addOption(const std::string &name, const std::string &help,
                   const std::string &def = "");

    /** Declare a boolean flag (present/absent). */
    void addFlag(const std::string &name, const std::string &help);

    /**
     * Parse argv. Unknown options are an error; "--" ends option
     * processing.
     *
     * @return True on success; false if parsing failed or --help was
     *         requested (usage is printed to the given stream).
     */
    bool parse(int argc, const char *const *argv, std::ostream &err);

    /** @return True if the flag or option @p name was supplied. */
    bool has(const std::string &name) const;

    /** @return String value of option @p name, or @p def. */
    std::string getString(const std::string &name,
                          const std::string &def = "") const;

    /** @return Double value of option @p name, or @p def. */
    double getDouble(const std::string &name, double def) const;

    /** @return Integer value of option @p name, or @p def. */
    long getInt(const std::string &name, long def) const;

    /** @return Positional (non-option) arguments in order. */
    const std::vector<std::string> &positional() const { return pos_; }

    /** @return Generated usage text. */
    std::string usage() const;

  private:
    struct Spec {
        std::string help;
        std::string def;
        bool isFlag;
    };

    std::string program_;
    std::string synopsis_;
    std::vector<std::pair<std::string, Spec>> specs_;
    std::map<std::string, std::string> values_;
    std::vector<std::string> pos_;

    const Spec *findSpec(const std::string &name) const;
};

} // namespace gables

#endif // GABLES_UTIL_ARG_PARSER_H
