#include "util/atomic_file.h"

#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "util/logging.h"

namespace gables {

namespace {

/** Active artifact-dir override (setArtifactDirOverride). */
const std::string *g_artifact_dir = nullptr;

} // namespace

const std::string *
setArtifactDirOverride(const std::string *dir)
{
    const std::string *prev = g_artifact_dir;
    g_artifact_dir = dir;
    return prev;
}

void
writeFileAtomic(const std::string &raw_path,
                const std::string &contents)
{
    std::string path = raw_path;
    if (g_artifact_dir != nullptr && !g_artifact_dir->empty() &&
        !std::filesystem::path(raw_path).is_absolute()) {
        std::filesystem::path redirected =
            std::filesystem::path(*g_artifact_dir) / raw_path;
        std::error_code ec;
        std::filesystem::create_directories(redirected.parent_path(),
                                            ec);
        // A failed mkdir surfaces as the open error below, with the
        // redirected path in the message.
        path = redirected.string();
    }
    // A unique sibling keeps the rename on one filesystem and lets
    // concurrent writers of the same target collide harmlessly.
    std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            fatal("cannot open '" + tmp + "' for writing: " +
                  std::strerror(errno));
        out.write(contents.data(),
                  static_cast<std::streamsize>(contents.size()));
        out.flush();
        if (!out) {
            int saved = errno;
            std::remove(tmp.c_str());
            fatal("cannot write '" + tmp + "': " +
                  std::strerror(saved));
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        int saved = errno;
        std::remove(tmp.c_str());
        fatal("cannot rename '" + tmp + "' to '" + path + "': " +
              std::strerror(saved));
    }
}

} // namespace gables
