#include "util/atomic_file.h"

#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "util/logging.h"

namespace gables {

void
writeFileAtomic(const std::string &path, const std::string &contents)
{
    // A unique sibling keeps the rename on one filesystem and lets
    // concurrent writers of the same target collide harmlessly.
    std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            fatal("cannot open '" + tmp + "' for writing: " +
                  std::strerror(errno));
        out.write(contents.data(),
                  static_cast<std::streamsize>(contents.size()));
        out.flush();
        if (!out) {
            int saved = errno;
            std::remove(tmp.c_str());
            fatal("cannot write '" + tmp + "': " +
                  std::strerror(saved));
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        int saved = errno;
        std::remove(tmp.c_str());
        fatal("cannot rename '" + tmp + "' to '" + path + "': " +
              std::strerror(saved));
    }
}

} // namespace gables
