/**
 * @file
 * Crash-safe whole-file writes.
 *
 * Replay bundles, RunReports, and bench baselines are consumed by
 * other processes (CI diff gates, the replay corpus, dashboards), so
 * a truncated file from an interrupted run is worse than no file: it
 * poisons downstream tooling with invalid JSON. writeFileAtomic()
 * writes to a temporary sibling and renames it over the target, so
 * readers only ever observe the old contents or the complete new
 * contents — never a partial write.
 */

#ifndef GABLES_UTIL_ATOMIC_FILE_H
#define GABLES_UTIL_ATOMIC_FILE_H

#include <string>

namespace gables {

/**
 * Atomically replace @p path with @p contents.
 *
 * The data is written to a unique temporary file in the same
 * directory (rename(2) is only atomic within a filesystem), flushed,
 * and renamed over @p path. On any failure the temporary file is
 * removed and the original @p path is left untouched.
 *
 * @param path     Destination file path.
 * @param contents Full new file contents.
 * @throws FatalError when the temporary cannot be created, written,
 *         or renamed into place.
 */
void writeFileAtomic(const std::string &path,
                     const std::string &contents);

/**
 * Redirect relative-path writeFileAtomic() targets under @p dir.
 *
 * While an override is installed, every writeFileAtomic() call whose
 * @p path is relative lands at "<dir>/<path>" (parent directories
 * are created); absolute paths are untouched. `gables replay`
 * installs this around the replayed command so artifacts recorded
 * with relative paths (e.g. `--metrics replay-out-sweep.json`) stop
 * littering the caller's working directory.
 *
 * Follows the scoped-install pattern of setConfigFileOverrides():
 * pass the previous return value back to restore it. @p dir may be
 * nullptr (or point at an empty string) to disable redirection. The
 * pointed-to string must outlive the installation; installs are not
 * thread-safe, but reads from writeFileAtomic() on worker threads
 * are safe once installed.
 *
 * @param dir New override directory (nullptr = none).
 * @return The previously installed override.
 */
const std::string *setArtifactDirOverride(const std::string *dir);

} // namespace gables

#endif // GABLES_UTIL_ATOMIC_FILE_H
