#include "util/csv.h"

#include <sstream>

#include "util/strings.h"

namespace gables {

std::string
CsvWriter::escape(const std::string &field)
{
    bool needs_quotes = field.find_first_of(",\"\n") != std::string::npos;
    if (!needs_quotes)
        return field;
    std::string out = "\"";
    for (char c : field) {
        if (c == '"')
            out += "\"\"";
        else
            out += c;
    }
    out += '"';
    return out;
}

void
CsvWriter::writeRow(const std::vector<std::string> &cells)
{
    for (size_t i = 0; i < cells.size(); ++i) {
        if (i)
            out_ << ',';
        out_ << escape(cells[i]);
    }
    out_ << '\n';
}

void
CsvWriter::writeRow(const std::vector<double> &cells)
{
    std::vector<std::string> text;
    text.reserve(cells.size());
    for (double v : cells)
        text.push_back(formatDouble(v, 9));
    writeRow(text);
}

std::vector<std::vector<std::string>>
parseCsv(const std::string &text)
{
    std::vector<std::vector<std::string>> rows;
    std::istringstream iss(text);
    std::string line;
    while (std::getline(iss, line)) {
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        std::vector<std::string> fields;
        std::string field;
        bool in_quotes = false;
        for (size_t i = 0; i < line.size(); ++i) {
            char c = line[i];
            if (in_quotes) {
                if (c == '"') {
                    if (i + 1 < line.size() && line[i + 1] == '"') {
                        field += '"';
                        ++i;
                    } else {
                        in_quotes = false;
                    }
                } else {
                    field += c;
                }
            } else if (c == '"') {
                in_quotes = true;
            } else if (c == ',') {
                fields.push_back(field);
                field.clear();
            } else {
                field += c;
            }
        }
        fields.push_back(field);
        rows.push_back(std::move(fields));
    }
    return rows;
}

} // namespace gables
