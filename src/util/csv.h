/**
 * @file
 * CSV writing (for bench output that downstream plotting can ingest)
 * and minimal CSV reading (for embedded datasets in tests).
 */

#ifndef GABLES_UTIL_CSV_H
#define GABLES_UTIL_CSV_H

#include <ostream>
#include <string>
#include <vector>

namespace gables {

/**
 * Streaming CSV writer with RFC-4180 quoting of fields that contain
 * commas, quotes, or newlines.
 */
class CsvWriter
{
  public:
    /** Write rows to @p out; the stream must outlive the writer. */
    explicit CsvWriter(std::ostream &out) : out_(out) {}

    /** Write one row of string cells. */
    void writeRow(const std::vector<std::string> &cells);

    /** Write one row of numeric cells. */
    void writeRow(const std::vector<double> &cells);

  private:
    static std::string escape(const std::string &field);

    std::ostream &out_;
};

/**
 * Parse CSV text into rows of fields. Handles quoted fields with
 * embedded commas and doubled quotes; does not handle embedded
 * newlines inside quotes (none of our data needs them).
 *
 * @param text Full CSV document.
 * @return Rows of unescaped fields.
 */
std::vector<std::vector<std::string>> parseCsv(const std::string &text);

} // namespace gables

#endif // GABLES_UTIL_CSV_H
