#include "util/json_reader.h"

#include <cctype>

#include "util/logging.h"
#include "util/parse.h"

namespace gables {

bool
JsonValue::asBool() const
{
    if (type_ != Type::Bool)
        fatal("JSON value is not a bool");
    return bool_;
}

double
JsonValue::asNumber() const
{
    if (type_ != Type::Number)
        fatal("JSON value is not a number");
    return number_;
}

const std::string &
JsonValue::asString() const
{
    if (type_ != Type::String)
        fatal("JSON value is not a string");
    return string_;
}

size_t
JsonValue::size() const
{
    if (type_ == Type::Array)
        return items_.size();
    if (type_ == Type::Object)
        return members_.size();
    fatal("JSON value is not a container");
}

const JsonValue &
JsonValue::at(size_t i) const
{
    if (type_ != Type::Array)
        fatal("JSON value is not an array");
    if (i >= items_.size())
        fatal("JSON array index out of range");
    return items_[i];
}

bool
JsonValue::has(const std::string &key) const
{
    if (type_ != Type::Object)
        return false;
    for (const auto &[k, v] : members_) {
        if (k == key)
            return true;
    }
    return false;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    if (type_ != Type::Object)
        fatal("JSON value is not an object");
    for (const auto &[k, v] : members_) {
        if (k == key)
            return v;
    }
    fatal("JSON object has no member '" + key + "'");
}

const std::vector<JsonValue> &
JsonValue::items() const
{
    if (type_ != Type::Array)
        fatal("JSON value is not an array");
    return items_;
}

const std::vector<std::pair<std::string, JsonValue>> &
JsonValue::members() const
{
    if (type_ != Type::Object)
        fatal("JSON value is not an object");
    return members_;
}

/** Recursive-descent parser over an in-memory document. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    JsonValue
    parse()
    {
        JsonValue root = parseValue();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing characters after JSON document");
        return root;
    }

  private:
    [[noreturn]] void
    fail(const std::string &why)
    {
        fatal("JSON parse error at offset " + std::to_string(pos_) +
              ": " + why);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consumeLiteral(const char *lit)
    {
        size_t n = 0;
        while (lit[n] != '\0')
            ++n;
        if (text_.compare(pos_, n, lit) != 0)
            return false;
        pos_ += n;
        return true;
    }

    JsonValue
    parseValue()
    {
        skipWs();
        char c = peek();
        if (c == '{')
            return parseObject();
        if (c == '[')
            return parseArray();
        if (c == '"') {
            JsonValue v;
            v.type_ = JsonValue::Type::String;
            v.string_ = parseString();
            return v;
        }
        if (c == 't' || c == 'f') {
            JsonValue v;
            v.type_ = JsonValue::Type::Bool;
            if (consumeLiteral("true"))
                v.bool_ = true;
            else if (consumeLiteral("false"))
                v.bool_ = false;
            else
                fail("bad literal");
            return v;
        }
        if (c == 'n') {
            if (!consumeLiteral("null"))
                fail("bad literal");
            return JsonValue{};
        }
        return parseNumber();
    }

    JsonValue
    parseObject()
    {
        expect('{');
        JsonValue v;
        v.type_ = JsonValue::Type::Object;
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        while (true) {
            skipWs();
            std::string key = parseString();
            skipWs();
            expect(':');
            v.members_.emplace_back(std::move(key), parseValue());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    JsonValue
    parseArray()
    {
        expect('[');
        JsonValue v;
        v.type_ = JsonValue::Type::Array;
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        while (true) {
            v.items_.push_back(parseValue());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    JsonValue
    parseNumber()
    {
        size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            fail("expected a value");
        const std::string token = text_.substr(start, pos_ - start);
        double d = 0.0;
        try {
            d = parseDoubleStrict(token, "JSON number");
        } catch (const FatalError &) {
            fail("malformed number '" + token + "'");
        }
        JsonValue v;
        v.type_ = JsonValue::Type::Number;
        v.number_ = d;
        return v;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            char e = text_[pos_++];
            switch (e) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'u': appendUnicodeEscape(out); break;
              default: fail("bad escape character");
            }
        }
    }

    void
    appendUnicodeEscape(std::string &out)
    {
        if (pos_ + 4 > text_.size())
            fail("truncated \\u escape");
        unsigned cp = 0;
        for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9')
                cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
                cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
                cp |= static_cast<unsigned>(h - 'A' + 10);
            else
                fail("bad hex digit in \\u escape");
        }
        // Encode the BMP code point as UTF-8 (surrogate pairs are
        // passed through as two separate 3-byte sequences, which is
        // fine for validation purposes).
        if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
        } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        } else {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        }
    }

    const std::string &text_;
    size_t pos_ = 0;
};

JsonValue
parseJson(const std::string &text)
{
    return JsonParser(text).parse();
}

} // namespace gables
