/**
 * @file
 * A minimal JSON parser: enough to read back the documents our own
 * JsonWriter emits (run reports, Chrome traces, visualization
 * exports) so tests and tools can validate them structurally instead
 * of regex-matching text. Full JSON syntax is accepted; numbers are
 * doubles; \uXXXX escapes are decoded to UTF-8.
 */

#ifndef GABLES_UTIL_JSON_READER_H
#define GABLES_UTIL_JSON_READER_H

#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace gables {

/**
 * A parsed JSON value (immutable DOM). Accessors fatal() on type
 * mismatch so tests fail with a message instead of crashing.
 */
class JsonValue
{
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    JsonValue() : type_(Type::Null) {}

    /** @return The value's type. */
    Type type() const { return type_; }

    /** @name Type predicates. */
    /** @{ */
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }
    /** @} */

    /** @return The boolean payload. @throws FatalError otherwise. */
    bool asBool() const;
    /** @return The numeric payload. @throws FatalError otherwise. */
    double asNumber() const;
    /** @return The string payload. @throws FatalError otherwise. */
    const std::string &asString() const;

    /** @return Element count of an array or member count of an
     * object. @throws FatalError otherwise. */
    size_t size() const;

    /** @return Array element @p i. @throws FatalError out of range
     * or not an array. */
    const JsonValue &at(size_t i) const;

    /** @return True if this is an object with member @p key. */
    bool has(const std::string &key) const;

    /** @return Object member @p key. @throws FatalError if absent or
     * not an object. */
    const JsonValue &at(const std::string &key) const;

    /** @return Array elements. @throws FatalError if not an array. */
    const std::vector<JsonValue> &items() const;

    /** @return Object members in document order. @throws FatalError
     * if not an object. */
    const std::vector<std::pair<std::string, JsonValue>> &
    members() const;

  private:
    friend class JsonParser;

    Type type_;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<JsonValue> items_;
    std::vector<std::pair<std::string, JsonValue>> members_;
};

/**
 * Parse a complete JSON document.
 *
 * @param text The document; trailing whitespace is allowed, trailing
 *             garbage is not.
 * @return The root value.
 * @throws FatalError with position info on malformed input.
 */
JsonValue parseJson(const std::string &text);

} // namespace gables

#endif // GABLES_UTIL_JSON_READER_H
