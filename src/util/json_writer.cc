#include "util/json_writer.h"

#include <charconv>
#include <clocale>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "util/logging.h"

namespace gables {

JsonWriter::JsonWriter(std::ostream &out, bool pretty)
    : out_(out), pretty_(pretty)
{}

std::string
JsonWriter::escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
JsonWriter::indent()
{
    if (!pretty_)
        return;
    out_ << '\n';
    for (size_t i = 0; i < stack_.size(); ++i)
        out_ << "  ";
}

void
JsonWriter::beforeValue()
{
    GABLES_ASSERT(!doneRoot, "write after JSON root closed");
    if (stack_.empty())
        return;
    if (stack_.back() == Ctx::Object) {
        GABLES_ASSERT(pendingKey, "object value requires a key first");
        pendingKey = false;
        return;
    }
    // Array item.
    if (hasItems_.back())
        out_ << ',';
    hasItems_.back() = true;
    indent();
}

void
JsonWriter::beginObject()
{
    beforeValue();
    out_ << '{';
    stack_.push_back(Ctx::Object);
    hasItems_.push_back(false);
}

void
JsonWriter::endObject()
{
    GABLES_ASSERT(!stack_.empty() && stack_.back() == Ctx::Object,
                  "endObject with no open object");
    GABLES_ASSERT(!pendingKey, "endObject with dangling key");
    bool had = hasItems_.back();
    stack_.pop_back();
    hasItems_.pop_back();
    if (had)
        indent();
    out_ << '}';
    if (stack_.empty()) {
        doneRoot = true;
        if (pretty_)
            out_ << '\n';
    }
}

void
JsonWriter::beginArray()
{
    beforeValue();
    out_ << '[';
    stack_.push_back(Ctx::Array);
    hasItems_.push_back(false);
}

void
JsonWriter::endArray()
{
    GABLES_ASSERT(!stack_.empty() && stack_.back() == Ctx::Array,
                  "endArray with no open array");
    bool had = hasItems_.back();
    stack_.pop_back();
    hasItems_.pop_back();
    if (had)
        indent();
    out_ << ']';
    if (stack_.empty()) {
        doneRoot = true;
        if (pretty_)
            out_ << '\n';
    }
}

void
JsonWriter::key(const std::string &name)
{
    GABLES_ASSERT(!stack_.empty() && stack_.back() == Ctx::Object,
                  "key() outside an object");
    GABLES_ASSERT(!pendingKey, "two keys in a row");
    if (hasItems_.back())
        out_ << ',';
    hasItems_.back() = true;
    indent();
    out_ << '"' << escape(name) << "\":";
    if (pretty_)
        out_ << ' ';
    pendingKey = true;
}

void
JsonWriter::value(const std::string &v)
{
    beforeValue();
    out_ << '"' << escape(v) << '"';
    if (stack_.empty())
        doneRoot = true;
}

void
JsonWriter::value(const char *v)
{
    value(std::string(v));
}

namespace {

/**
 * Format a finite double exactly like printf("%.*g") in the C
 * locale, but via std::to_chars so the output never picks up the
 * host's LC_NUMERIC decimal point (under de_DE, snprintf would emit
 * "1,5" — invalid JSON). Returns the formatted length.
 */
size_t
formatGeneral(char *buf, size_t cap, double v, int precision)
{
#if defined(__cpp_lib_to_chars)
    std::to_chars_result res = std::to_chars(
        buf, buf + cap, v, std::chars_format::general, precision);
    GABLES_ASSERT(res.ec == std::errc(), "to_chars buffer too small");
    return static_cast<size_t>(res.ptr - buf);
#else
    // Fallback for toolchains without floating-point to_chars:
    // snprintf, then force the C locale's '.' radix by hand.
    std::snprintf(buf, cap, "%.*g", precision, v);
    struct lconv *lc = std::localeconv();
    if (lc != nullptr && lc->decimal_point != nullptr &&
        lc->decimal_point[0] != '.') {
        if (char *dot = std::strstr(buf, lc->decimal_point)) {
            size_t sep = std::strlen(lc->decimal_point);
            *dot = '.';
            std::memmove(dot + 1, dot + sep,
                         std::strlen(dot + sep) + 1);
        }
    }
    return std::strlen(buf);
#endif
}

/** Locale-independent re-parse for the round-trip check. */
double
parseBack(const char *buf, size_t len)
{
    double back = 0.0;
    std::from_chars(buf, buf + len, back);
    return back;
}

} // namespace

void
JsonWriter::value(double v)
{
    beforeValue();
    if (std::isnan(v) || std::isinf(v)) {
        // JSON has no NaN/Inf; emit null, which downstream tools treat
        // as a gap.
        out_ << "null";
    } else {
        // Same two-tier scheme as the original snprintf("%.12g" /
        // "%.17g") path — byte-identical output, so committed
        // baselines and replay bundles are unchanged — but produced
        // and verified without touching the C locale.
        char short_buf[40];
        size_t short_len = formatGeneral(short_buf, sizeof(short_buf),
                                         v, 12);
        if (parseBack(short_buf, short_len) == v) {
            out_.write(short_buf, static_cast<std::streamsize>(short_len));
        } else {
            char buf[40];
            size_t len = formatGeneral(buf, sizeof(buf), v, 17);
            out_.write(buf, static_cast<std::streamsize>(len));
        }
    }
    if (stack_.empty())
        doneRoot = true;
}

void
JsonWriter::value(int v)
{
    beforeValue();
    out_ << v;
    if (stack_.empty())
        doneRoot = true;
}

void
JsonWriter::value(long v)
{
    beforeValue();
    out_ << v;
    if (stack_.empty())
        doneRoot = true;
}

void
JsonWriter::value(size_t v)
{
    beforeValue();
    out_ << v;
    if (stack_.empty())
        doneRoot = true;
}

void
JsonWriter::value(bool v)
{
    beforeValue();
    out_ << (v ? "true" : "false");
    if (stack_.empty())
        doneRoot = true;
}

void
JsonWriter::valueNull()
{
    beforeValue();
    out_ << "null";
    if (stack_.empty())
        doneRoot = true;
}

void
JsonWriter::numberArray(const std::string &name,
                        const std::vector<double> &values)
{
    key(name);
    beginArray();
    for (double v : values)
        value(v);
    endArray();
}

} // namespace gables
