#include "util/json_writer.h"

#include <cmath>
#include <cstdio>

#include "util/logging.h"

namespace gables {

JsonWriter::JsonWriter(std::ostream &out, bool pretty)
    : out_(out), pretty_(pretty)
{}

std::string
JsonWriter::escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
JsonWriter::indent()
{
    if (!pretty_)
        return;
    out_ << '\n';
    for (size_t i = 0; i < stack_.size(); ++i)
        out_ << "  ";
}

void
JsonWriter::beforeValue()
{
    GABLES_ASSERT(!doneRoot, "write after JSON root closed");
    if (stack_.empty())
        return;
    if (stack_.back() == Ctx::Object) {
        GABLES_ASSERT(pendingKey, "object value requires a key first");
        pendingKey = false;
        return;
    }
    // Array item.
    if (hasItems_.back())
        out_ << ',';
    hasItems_.back() = true;
    indent();
}

void
JsonWriter::beginObject()
{
    beforeValue();
    out_ << '{';
    stack_.push_back(Ctx::Object);
    hasItems_.push_back(false);
}

void
JsonWriter::endObject()
{
    GABLES_ASSERT(!stack_.empty() && stack_.back() == Ctx::Object,
                  "endObject with no open object");
    GABLES_ASSERT(!pendingKey, "endObject with dangling key");
    bool had = hasItems_.back();
    stack_.pop_back();
    hasItems_.pop_back();
    if (had)
        indent();
    out_ << '}';
    if (stack_.empty()) {
        doneRoot = true;
        if (pretty_)
            out_ << '\n';
    }
}

void
JsonWriter::beginArray()
{
    beforeValue();
    out_ << '[';
    stack_.push_back(Ctx::Array);
    hasItems_.push_back(false);
}

void
JsonWriter::endArray()
{
    GABLES_ASSERT(!stack_.empty() && stack_.back() == Ctx::Array,
                  "endArray with no open array");
    bool had = hasItems_.back();
    stack_.pop_back();
    hasItems_.pop_back();
    if (had)
        indent();
    out_ << ']';
    if (stack_.empty()) {
        doneRoot = true;
        if (pretty_)
            out_ << '\n';
    }
}

void
JsonWriter::key(const std::string &name)
{
    GABLES_ASSERT(!stack_.empty() && stack_.back() == Ctx::Object,
                  "key() outside an object");
    GABLES_ASSERT(!pendingKey, "two keys in a row");
    if (hasItems_.back())
        out_ << ',';
    hasItems_.back() = true;
    indent();
    out_ << '"' << escape(name) << "\":";
    if (pretty_)
        out_ << ' ';
    pendingKey = true;
}

void
JsonWriter::value(const std::string &v)
{
    beforeValue();
    out_ << '"' << escape(v) << '"';
    if (stack_.empty())
        doneRoot = true;
}

void
JsonWriter::value(const char *v)
{
    value(std::string(v));
}

void
JsonWriter::value(double v)
{
    beforeValue();
    if (std::isnan(v) || std::isinf(v)) {
        // JSON has no NaN/Inf; emit null, which downstream tools treat
        // as a gap.
        out_ << "null";
    } else {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", v);
        // Prefer a shorter form when it round-trips.
        char short_buf[32];
        std::snprintf(short_buf, sizeof(short_buf), "%.12g", v);
        double back = 0.0;
        std::sscanf(short_buf, "%lf", &back);
        out_ << (back == v ? short_buf : buf);
    }
    if (stack_.empty())
        doneRoot = true;
}

void
JsonWriter::value(int v)
{
    beforeValue();
    out_ << v;
    if (stack_.empty())
        doneRoot = true;
}

void
JsonWriter::value(long v)
{
    beforeValue();
    out_ << v;
    if (stack_.empty())
        doneRoot = true;
}

void
JsonWriter::value(size_t v)
{
    beforeValue();
    out_ << v;
    if (stack_.empty())
        doneRoot = true;
}

void
JsonWriter::value(bool v)
{
    beforeValue();
    out_ << (v ? "true" : "false");
    if (stack_.empty())
        doneRoot = true;
}

void
JsonWriter::valueNull()
{
    beforeValue();
    out_ << "null";
    if (stack_.empty())
        doneRoot = true;
}

void
JsonWriter::numberArray(const std::string &name,
                        const std::vector<double> &values)
{
    key(name);
    beginArray();
    for (double v : values)
        value(v);
    endArray();
}

} // namespace gables
