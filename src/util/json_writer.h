/**
 * @file
 * Minimal streaming JSON writer — enough to emit model results and
 * sweep series for external tooling (the paper's interactive
 * visualizer consumes exactly this kind of structure). No parsing, no
 * DOM; just a correct, ordered writer with proper string escaping and
 * shortest-faithful number formatting.
 */

#ifndef GABLES_UTIL_JSON_WRITER_H
#define GABLES_UTIL_JSON_WRITER_H

#include <ostream>
#include <string>
#include <vector>

namespace gables {

/**
 * Streaming JSON writer with an explicit begin/end nesting API.
 *
 * The writer validates nesting with an internal stack and panics on
 * misuse (writing a bare value inside an object without a key, or
 * unbalanced begin/end).
 */
class JsonWriter
{
  public:
    /** Write JSON to @p out; the stream must outlive the writer. */
    explicit JsonWriter(std::ostream &out, bool pretty = true);

    /** Begin the root or a nested object. */
    void beginObject();
    /** End the current object. */
    void endObject();
    /** Begin the root or a nested array. */
    void beginArray();
    /** End the current array. */
    void endArray();

    /** Emit a key inside an object; must be followed by a value. */
    void key(const std::string &name);

    /** @name Value emitters (object values after key(), or array items). */
    /** @{ */
    void value(const std::string &v);
    void value(const char *v);
    void value(double v);
    void value(int v);
    void value(long v);
    void value(size_t v);
    void value(bool v);
    void valueNull();
    /** @} */

    /** Convenience: key() then value(). */
    template <typename T>
    void
    kv(const std::string &name, const T &v)
    {
        key(name);
        value(v);
    }

    /** Emit a whole numeric array under @p name. */
    void numberArray(const std::string &name,
                     const std::vector<double> &values);

    /** @return True once the root value has been closed. */
    bool done() const { return doneRoot; }

  private:
    enum class Ctx { Object, Array };

    void beforeValue();
    void indent();
    static std::string escape(const std::string &s);

    std::ostream &out_;
    bool pretty_;
    std::vector<Ctx> stack_;
    std::vector<bool> hasItems_;
    bool pendingKey = false;
    bool doneRoot = false;
};

} // namespace gables

#endif // GABLES_UTIL_JSON_WRITER_H
