#include "util/logging.h"

#include <cstdlib>
#include <iostream>

namespace gables {

namespace {

LogLevel g_level = LogLevel::Info;
std::ostream *g_sink = nullptr;

std::ostream &
sink()
{
    return g_sink ? *g_sink : std::cerr;
}

void
emit(LogLevel level, const char *tag, const std::string &msg)
{
    if (static_cast<int>(level) < static_cast<int>(g_level))
        return;
    sink() << tag << msg << '\n';
}

} // namespace

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

void
setLogSink(std::ostream *sink_stream)
{
    g_sink = sink_stream;
}

void
debug(const std::string &msg)
{
    emit(LogLevel::Debug, "debug: ", msg);
}

void
inform(const std::string &msg)
{
    emit(LogLevel::Info, "info: ", msg);
}

void
warn(const std::string &msg)
{
    emit(LogLevel::Warn, "warn: ", msg);
}

void
fatal(const std::string &msg)
{
    emit(LogLevel::Error, "fatal: ", msg);
    throw FatalError(msg);
}

void
panic(const std::string &msg)
{
    sink() << "panic: " << msg << std::endl;
    std::abort();
}

} // namespace gables
