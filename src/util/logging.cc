#include "util/logging.h"

#include <cctype>
#include <cstdlib>
#include <iostream>

namespace gables {

namespace {

LogLevel g_level = LogLevel::Info;
std::ostream *g_sink = nullptr;

std::ostream &
sink()
{
    return g_sink ? *g_sink : std::cerr;
}

void
emit(LogLevel level, const char *tag, const std::string &msg)
{
    if (static_cast<int>(level) < static_cast<int>(g_level))
        return;
    sink() << tag << msg << '\n';
}

} // namespace

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

LogLevel
parseLogLevel(const std::string &name)
{
    std::string n;
    for (char c : name)
        n.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(c))));
    if (n == "debug")
        return LogLevel::Debug;
    if (n == "info")
        return LogLevel::Info;
    if (n == "warn" || n == "warning")
        return LogLevel::Warn;
    if (n == "error")
        return LogLevel::Error;
    fatal("unknown log level '" + name +
          "' (try debug, info, warn, error)");
}

const char *
logLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Error: return "error";
    }
    return "info";
}

void
setLogSink(std::ostream *sink_stream)
{
    g_sink = sink_stream;
}

void
debug(const std::string &msg)
{
    emit(LogLevel::Debug, "debug: ", msg);
}

void
inform(const std::string &msg)
{
    emit(LogLevel::Info, "info: ", msg);
}

void
warn(const std::string &msg)
{
    emit(LogLevel::Warn, "warn: ", msg);
}

void
logError(const std::string &msg)
{
    emit(LogLevel::Error, "error: ", msg);
}

void
fatal(const std::string &msg)
{
    emit(LogLevel::Error, "fatal: ", msg);
    throw FatalError(msg);
}

void
panic(const std::string &msg)
{
    sink() << "panic: " << msg << std::endl;
    std::abort();
}

} // namespace gables
