/**
 * @file
 * Logging and error-reporting primitives for the Gables library.
 *
 * Follows the gem5 discipline: inform() for status, warn() for suspect
 * but survivable conditions, fatal() for user errors that prevent
 * continuing, and panic() for internal invariant violations (library
 * bugs). fatal() throws so callers and tests can observe it; panic()
 * aborts.
 */

#ifndef GABLES_UTIL_LOGGING_H
#define GABLES_UTIL_LOGGING_H

#include <sstream>
#include <stdexcept>
#include <string>

namespace gables {

/** Severity of a log message. */
enum class LogLevel {
    Debug,
    Info,
    Warn,
    Error,
};

/**
 * Error thrown by fatal() — a user-correctable problem such as a
 * malformed SoC specification or an out-of-range usecase parameter.
 */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &what_arg)
        : std::runtime_error(what_arg)
    {}
};

/**
 * Set the minimum level that reaches the log sink.
 *
 * @param level Messages below this severity are suppressed.
 */
void setLogLevel(LogLevel level);

/** @return The current minimum log level. */
LogLevel logLevel();

/**
 * Parse a log-level name: "debug", "info", "warn"/"warning", or
 * "error" (case-insensitive).
 *
 * @throws FatalError on an unknown name.
 */
LogLevel parseLogLevel(const std::string &name);

/** @return The canonical name of @p level ("debug", "info", ...). */
const char *logLevelName(LogLevel level);

/**
 * Redirect log output to a string buffer for testing; pass nullptr to
 * restore stderr.
 *
 * @param sink Stream that receives subsequent log lines, or nullptr.
 */
void setLogSink(std::ostream *sink);

/** Emit an informational status message. */
void inform(const std::string &msg);

/** Emit a debug message (suppressed unless level is Debug). */
void debug(const std::string &msg);

/**
 * Emit a warning: something may be mis-modeled but execution can
 * continue.
 */
void warn(const std::string &msg);

/**
 * Emit an error-level message without throwing — for callers (like
 * configError()) that throw their own FatalError subclass but still
 * want the diagnostic on the log sink.
 */
void logError(const std::string &msg);

/**
 * Report a user-correctable error and abort the operation by throwing
 * FatalError.
 *
 * @param msg Description of the problem and how to fix it.
 */
[[noreturn]] void fatal(const std::string &msg);

/**
 * Report an internal invariant violation (a library bug) and abort the
 * process.
 */
[[noreturn]] void panic(const std::string &msg);

/**
 * Emit a debug message, building the message string only when the
 * Debug level is active. Use on hot paths where composing the message
 * (string concatenation, std::to_string) would otherwise run on every
 * call just to be discarded by debug()'s level check.
 */
#define GABLES_DLOG(expr)                                                 \
    do {                                                                  \
        if (::gables::logLevel() == ::gables::LogLevel::Debug)            \
            ::gables::debug(expr);                                        \
    } while (0)

/**
 * Assert an internal invariant; on failure, panic with location info.
 * Like the standard assert(), the check compiles away in NDEBUG
 * (optimized) builds — several sit on the simulator's innermost
 * loops. Default and test builds keep every check active.
 */
#ifdef NDEBUG
#define GABLES_ASSERT(cond, msg) ((void)0)
#else
#define GABLES_ASSERT(cond, msg)                                          \
    do {                                                                  \
        if (!(cond)) {                                                    \
            std::ostringstream oss_;                                      \
            oss_ << "assertion '" #cond "' failed at " << __FILE__ << ':' \
                 << __LINE__ << ": " << (msg);                            \
            ::gables::panic(oss_.str());                                  \
        }                                                                 \
    } while (0)
#endif

} // namespace gables

#endif // GABLES_UTIL_LOGGING_H
