#include "util/math_util.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace gables {

double
weightedHarmonicMean(const std::vector<double> &weights,
                     const std::vector<double> &values)
{
    GABLES_ASSERT(weights.size() == values.size(),
                  "weights/values size mismatch");
    double denom = 0.0;
    double weight_sum = 0.0;
    for (size_t i = 0; i < weights.size(); ++i) {
        if (weights[i] == 0.0)
            continue;
        GABLES_ASSERT(weights[i] > 0.0, "negative weight");
        if (values[i] == 0.0)
            return 0.0;
        denom += weights[i] / values[i];
        weight_sum += weights[i];
    }
    if (weight_sum == 0.0)
        return 0.0;
    return weight_sum / denom;
}

bool
approxEqual(double a, double b, double tol)
{
    double scale = std::max({std::fabs(a), std::fabs(b), 1.0});
    return std::fabs(a - b) <= tol * scale;
}

double
relativeError(double a, double b, double eps)
{
    return std::fabs(a - b) / std::max(std::fabs(b), eps);
}

std::vector<double>
logspace(double lo, double hi, size_t count)
{
    GABLES_ASSERT(lo > 0.0 && hi > lo && count >= 2,
                  "bad logspace arguments");
    std::vector<double> out(count);
    double llo = std::log(lo);
    double lhi = std::log(hi);
    for (size_t i = 0; i < count; ++i) {
        double t = static_cast<double>(i) / (count - 1);
        out[i] = std::exp(llo + t * (lhi - llo));
    }
    out.front() = lo;
    out.back() = hi;
    return out;
}

std::vector<double>
linspace(double lo, double hi, size_t count)
{
    GABLES_ASSERT(count >= 2, "linspace needs >= 2 points");
    std::vector<double> out(count);
    for (size_t i = 0; i < count; ++i) {
        double t = static_cast<double>(i) / (count - 1);
        out[i] = lo + t * (hi - lo);
    }
    out.back() = hi;
    return out;
}

std::vector<double>
logTicks(double lo, double hi)
{
    GABLES_ASSERT(lo > 0.0 && hi >= lo, "bad logTicks range");
    std::vector<double> out;
    int klo = static_cast<int>(std::floor(std::log10(lo)));
    int khi = static_cast<int>(std::ceil(std::log10(hi)));
    for (int k = klo; k <= khi; ++k)
        out.push_back(std::pow(10.0, k));
    return out;
}

double
bisect(const std::function<double(double)> &fn, double lo, double hi,
       double tol, int max_iter)
{
    double flo = fn(lo);
    double fhi = fn(hi);
    if (flo == 0.0)
        return lo;
    if (fhi == 0.0)
        return hi;
    GABLES_ASSERT((flo < 0.0) != (fhi < 0.0),
                  "bisect requires a sign change on the bracket");
    for (int i = 0; i < max_iter && (hi - lo) > tol; ++i) {
        double mid = 0.5 * (lo + hi);
        double fmid = fn(mid);
        if (fmid == 0.0)
            return mid;
        if ((fmid < 0.0) == (flo < 0.0)) {
            lo = mid;
            flo = fmid;
        } else {
            hi = mid;
        }
    }
    return 0.5 * (lo + hi);
}

double
goldenSectionMax(const std::function<double(double)> &fn, double lo,
                 double hi, double tol, int max_iter)
{
    static const double phi = (std::sqrt(5.0) - 1.0) / 2.0;
    double a = lo;
    double b = hi;
    double c = b - phi * (b - a);
    double d = a + phi * (b - a);
    double fc = fn(c);
    double fd = fn(d);
    for (int i = 0; i < max_iter && (b - a) > tol; ++i) {
        if (fc >= fd) {
            b = d;
            d = c;
            fd = fc;
            c = b - phi * (b - a);
            fc = fn(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + phi * (b - a);
            fd = fn(d);
        }
    }
    return 0.5 * (a + b);
}

double
clamp(double v, double lo, double hi)
{
    return std::min(std::max(v, lo), hi);
}

} // namespace gables
