/**
 * @file
 * Numeric helpers used throughout the model and analysis code:
 * weighted harmonic means (the memory-roofline intensity of Gables
 * Eq. 7/13), approximate comparison, log-scale tick generation, and
 * simple interpolation/root-finding utilities.
 */

#ifndef GABLES_UTIL_MATH_UTIL_H
#define GABLES_UTIL_MATH_UTIL_H

#include <cstddef>
#include <functional>
#include <vector>

namespace gables {

/**
 * Weighted harmonic mean: 1 / sum(w_i / x_i), with sum(w_i) assumed
 * to be 1. Terms with w_i == 0 are skipped (their x_i may be
 * arbitrary, matching the f_i = 0 convention of Gables). An x_i of 0
 * with positive weight yields 0.
 *
 * @param weights Non-negative weights summing to ~1.
 * @param values  Strictly positive values (where weighted).
 */
double weightedHarmonicMean(const std::vector<double> &weights,
                            const std::vector<double> &values);

/**
 * Relative approximate equality: |a-b| <= tol * max(|a|,|b|,1).
 */
bool approxEqual(double a, double b, double tol = 1e-9);

/** Relative error |a-b| / max(|b|, eps); b is the reference value. */
double relativeError(double a, double b, double eps = 1e-300);

/**
 * Generate logarithmically spaced points from @p lo to @p hi
 * inclusive.
 *
 * @param lo    Positive lower bound.
 * @param hi    Positive upper bound, > lo.
 * @param count Number of points (>= 2).
 */
std::vector<double> logspace(double lo, double hi, size_t count);

/** Generate linearly spaced points from @p lo to @p hi inclusive. */
std::vector<double> linspace(double lo, double hi, size_t count);

/**
 * Powers-of-ten tick positions covering [lo, hi] for log axes.
 * Returns 10^k for every integer k with 10^k within (or bracketing)
 * the range.
 */
std::vector<double> logTicks(double lo, double hi);

/**
 * Bisection root finder for a monotone function on [lo, hi].
 *
 * @param fn    Continuous function with fn(lo) and fn(hi) of opposite
 *              sign (or zero).
 * @param lo    Lower bracket.
 * @param hi    Upper bracket.
 * @param tol   Absolute tolerance on the bracket width.
 * @param max_iter Iteration cap.
 * @return Approximate root.
 */
double bisect(const std::function<double(double)> &fn, double lo,
              double hi, double tol = 1e-12, int max_iter = 200);

/**
 * Golden-section maximizer for a unimodal function on [lo, hi].
 *
 * @return The argmax (approximate).
 */
double goldenSectionMax(const std::function<double(double)> &fn,
                        double lo, double hi, double tol = 1e-10,
                        int max_iter = 300);

/** Clamp @p v into [lo, hi]. */
double clamp(double v, double lo, double hi);

} // namespace gables

#endif // GABLES_UTIL_MATH_UTIL_H
