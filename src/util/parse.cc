#include "util/parse.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <string_view>

#include "util/strings.h"

namespace gables {

std::string
SourceLoc::str() const
{
    if (file.empty())
        return line > 0 ? "line " + std::to_string(line) : "";
    if (line <= 0)
        return file;
    return file + ":" + std::to_string(line);
}

ConfigError::ConfigError(SourceLoc loc, const std::string &msg)
    : FatalError(loc.str().empty() ? msg : loc.str() + ": " + msg),
      loc_(std::move(loc)), msg_(msg)
{
}

void
configError(const SourceLoc &loc, const std::string &msg)
{
    ConfigError err(loc, msg);
    // Mirror fatal(): surface the diagnostic on the log sink so
    // non-CLI embedders see it even if they swallow the exception.
    logError(err.what());
    throw err;
}

namespace {

/**
 * Shared full-token scaffolding for the strict numeric parsers.
 * Throws without logging: these are building blocks whose callers
 * either re-wrap the error with location context (configError) or
 * surface it at the CLI top level — logging here would double-report.
 */
[[noreturn]] void
badToken(const std::string &what, const std::string &text,
         const std::string &why)
{
    throw FatalError("cannot parse " + what + " '" + text + "': " +
                     why);
}

/**
 * Locale-independent decimal-double scan via std::from_chars, with
 * the two strtod conveniences the callers relied on: an optional
 * leading '+' and (for the strict parser) surrounding whitespace.
 * Unlike strtod this never honors LC_NUMERIC — "1.5" parses as 1.5
 * even under de_DE, and "1,5" is a comma, not a decimal point.
 *
 * @return One past the last consumed character, or @p begin when no
 *         number could be parsed. Overflow/underflow reports through
 *         @p out_of_range with the value left at +-inf / 0.
 */
const char *
scanDouble(const char *begin, const char *end, double *value,
           bool *out_of_range)
{
    *out_of_range = false;
    const char *p = begin;
    bool plus = p != end && *p == '+';
    if (plus)
        ++p;
    double parsed = 0.0;
    std::from_chars_result res =
        std::from_chars(p, end, parsed, std::chars_format::general);
    if (res.ec == std::errc::invalid_argument || res.ptr == p)
        return begin;
    if (res.ec == std::errc::result_out_of_range) {
        // from_chars leaves the value unmodified on range errors;
        // reconstruct strtod's +-HUGE_VAL / 0 so callers can tell
        // overflow from underflow if they care.
        bool neg = p != end && *p == '-';
        // Heuristic: a tiny magnitude underflows, a huge one
        // overflows. The exponent sign decides which.
        bool under = std::string_view(p, res.ptr - p)
                         .find("e-") != std::string_view::npos ||
                     std::string_view(p, res.ptr - p)
                         .find("E-") != std::string_view::npos;
        parsed = under ? 0.0
                       : (neg ? -HUGE_VAL : HUGE_VAL);
        *out_of_range = !under;
    }
    *value = parsed;
    return res.ptr;
}

/** @return True when the token spells a hex-float ("0x1p3"). */
bool
looksHex(const char *begin, const char *end)
{
    const char *p = begin;
    if (p != end && (*p == '+' || *p == '-'))
        ++p;
    return end - p >= 2 && p[0] == '0' && (p[1] == 'x' || p[1] == 'X');
}

} // namespace

double
parseDoubleStrict(const std::string &text, const std::string &what)
{
    std::string token = trim(text);
    if (token.empty())
        badToken(what, text, "empty input");
    const char *begin = token.c_str();
    const char *end = begin + token.size();
    if (looksHex(begin, end))
        badToken(what, text, "hex floats are not accepted");
    double value = 0.0;
    bool out_of_range = false;
    const char *stop = scanDouble(begin, end, &value, &out_of_range);
    if (stop == begin)
        badToken(what, text, "not a number");
    if (stop != end)
        badToken(what, text,
                 "trailing garbage '" + std::string(stop, end) + "'");
    if (out_of_range)
        badToken(what, text, "magnitude out of range");
    // from_chars accepts the textual "inf"/"nan" family; strict
    // config input takes plain decimal numbers only.
    if (std::isinf(value) || std::isnan(value))
        badToken(what, text, "non-finite values are not accepted");
    return value;
}

long
parseIntStrict(const std::string &text, const std::string &what)
{
    std::string token = trim(text);
    if (token.empty())
        badToken(what, text, "empty input");
    const char *begin = token.c_str();
    char *end = nullptr;
    errno = 0;
    long value = std::strtol(begin, &end, 10);
    if (end == begin)
        badToken(what, text, "not an integer");
    if (*end != '\0')
        badToken(what, text,
                 "trailing garbage '" + std::string(end) + "'");
    if (errno == ERANGE)
        badToken(what, text, "magnitude out of range");
    return value;
}

long
parseIntInRange(const std::string &text, long lo, long hi,
                const std::string &what)
{
    long value = parseIntStrict(text, what);
    if (value < lo || value > hi)
        badToken(what, text,
                 "value must be in [" + std::to_string(lo) + ", " +
                     std::to_string(hi) + "]");
    return value;
}

double
parseDoubleInRange(const std::string &text, double lo, double hi,
                   const std::string &what)
{
    double value = parseDoubleStrict(text, what);
    if (!(value >= lo) || !(value <= hi))
        badToken(what, text,
                 "value must be in [" + formatDouble(lo) + ", " +
                     formatDouble(hi) + "]");
    return value;
}

double
parsePositiveDouble(const std::string &text, const std::string &what)
{
    double value = parseDoubleStrict(text, what);
    if (!(value > 0.0))
        badToken(what, text, "value must be > 0");
    return value;
}

double
parseNonNegativeDouble(const std::string &text, const std::string &what)
{
    double value = parseDoubleStrict(text, what);
    if (!(value >= 0.0))
        badToken(what, text, "value must be >= 0");
    return value;
}

bool
parseDoublePrefix(const std::string &text, double *value,
                  std::string *rest)
{
    const char *begin = text.c_str();
    const char *end = begin + text.size();
    // strtod skipped leading whitespace; keep that for unit strings
    // like " 24.4 GB/s".
    while (begin != end &&
           std::isspace(static_cast<unsigned char>(*begin)))
        ++begin;
    if (looksHex(begin, end))
        return false;
    double parsed = 0.0;
    bool out_of_range = false;
    const char *stop = scanDouble(begin, end, &parsed, &out_of_range);
    if (stop == begin || out_of_range || std::isinf(parsed) ||
        std::isnan(parsed))
        return false;
    *value = parsed;
    *rest = std::string(stop, end);
    return true;
}

size_t
editDistance(const std::string &a, const std::string &b)
{
    // Single-row Levenshtein DP; key sets are tiny, so O(|a||b|) is
    // more than fast enough.
    std::vector<size_t> row(b.size() + 1);
    for (size_t j = 0; j <= b.size(); ++j)
        row[j] = j;
    for (size_t i = 1; i <= a.size(); ++i) {
        size_t diag = row[0];
        row[0] = i;
        for (size_t j = 1; j <= b.size(); ++j) {
            size_t up = row[j];
            size_t subst = diag + (a[i - 1] == b[j - 1] ? 0 : 1);
            row[j] = std::min({row[j - 1] + 1, up + 1, subst});
            diag = up;
        }
    }
    return row[b.size()];
}

std::optional<std::string>
closestMatch(const std::string &word,
             const std::vector<std::string> &candidates)
{
    std::string low = toLower(word);
    size_t threshold = low.size() <= 3 ? 1 : 2;
    size_t best = threshold + 1;
    std::optional<std::string> match;
    for (const std::string &cand : candidates) {
        size_t dist = editDistance(low, toLower(cand));
        if (dist < best && dist < std::max<size_t>(low.size(), 1)) {
            best = dist;
            match = cand;
        }
    }
    return match;
}

std::string
didYouMean(const std::string &word,
           const std::vector<std::string> &candidates)
{
    std::optional<std::string> match = closestMatch(word, candidates);
    if (!match)
        return "";
    return " (did you mean '" + *match + "'?)";
}

} // namespace gables
